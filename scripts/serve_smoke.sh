#!/usr/bin/env bash
# serve-smoke: end-to-end gate for the `fractal serve` job server.
#
# Leg 1 (concurrent): starts a daemon with a 3-worker local cluster, then
# submits three different apps (motifs, cliques, fsm) concurrently against
# ONE shared snapshot. Every job must finish, verify bit-identical to a
# single-process rerun (`--verify-single`), and leave a per-job
# fractal-metrics/1 artifact.
#
# Leg 2 (chaos): with a long-running job and two survivor jobs in flight,
# the long job is cancelled mid-run and one worker process is SIGKILLed.
# The survivors must still verify bit-identical — the corpse's obligations
# are re-dispatched per affected job, never globally.
#
# Leg 3 (restart): a fresh daemon with a write-ahead journal and flaky
# link-fault injection armed takes three jobs; once the multi-round job
# journals its first committed word-set the WHOLE daemon is SIGKILLed and
# restarted on the same address + journal directory. The waiting clients
# must ride the outage out (reconnect + Watch resume), every job must
# verify bit-identical, and the metrics artifact must prove a journal
# replay actually resumed work (resumed_jobs > 0).
#
# Usage: scripts/serve_smoke.sh
#   FRACTAL_BIN      override the CLI binary (default target/release/fractal-cli)
#   SERVE_SMOKE_OUT  artifact directory (default target/serve-smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${FRACTAL_BIN:-target/release/fractal-cli}"
OUT="${SERVE_SMOKE_OUT:-target/serve-smoke}"
SNAPSHOT="gen:mico:400:7"
CHAOS_SNAPSHOT="gen:mico:2000:9"

if [[ ! -x "$BIN" ]]; then
    echo "serve-smoke: building $BIN"
    cargo build --release -q
fi
rm -rf "$OUT"
mkdir -p "$OUT"

SERVE_PID=""
cleanup() {
    if [[ -n "$SERVE_PID" ]]; then
        pkill -P "$SERVE_PID" 2>/dev/null || true
        kill "$SERVE_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- serve.log tail ---" >&2
    tail -n 40 "$OUT/serve.log" >&2 || true
    exit 1
}

# Poll (bounded) until a grep pattern appears in a file.
wait_for() {
    local pattern="$1" file="$2" tries="${3:-100}"
    for _ in $(seq "$tries"); do
        if grep -q "$pattern" "$file" 2>/dev/null; then
            return 0
        fi
        sleep 0.2
    done
    return 1
}

# ---- daemon ----

"$BIN" serve --listen 127.0.0.1:0 --local-cluster 3 --cores 2 \
    --heartbeat-ms 3000 >"$OUT/serve.log" 2>&1 &
SERVE_PID=$!
wait_for "^SERVING " "$OUT/serve.log" || fail "daemon did not announce SERVING"
ADDR=$(awk '/^SERVING /{print $2; exit}' "$OUT/serve.log")
echo "serve-smoke: daemon pid $SERVE_PID at $ADDR"

submit_wait() { # name tenant extra-args...
    local name="$1" tenant="$2"
    shift 2
    "$BIN" client submit --server "$ADDR" --tenant "$tenant" \
        --snapshot "$SNAPSHOT" --wait --verify-single \
        --metrics-out "$OUT/$name.metrics.json" "$@" \
        >"$OUT/$name.out" 2>"$OUT/$name.err"
}

check_job() { # name
    local name="$1"
    grep -q "VERIFY OK" "$OUT/$name.out" || fail "$name: no VERIFY OK (see $OUT/$name.out)"
    grep -q "^RESULT " "$OUT/$name.out" || fail "$name: no RESULT line"
    [[ -s "$OUT/$name.metrics.json" ]] || fail "$name: missing metrics artifact"
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT/$name.metrics.json" \
        || fail "$name: metrics artifact is not valid JSON"
    echo "serve-smoke: $name ok ($(grep '^RESULT ' "$OUT/$name.out"))"
}

# ---- leg 1: three concurrent apps, one shared snapshot ----

echo "serve-smoke: leg 1 — 3 concurrent jobs on $SNAPSHOT"
submit_wait motifs tenant-a --app motifs -k 3 &
P1=$!
submit_wait cliques tenant-b --app cliques -k 4 &
P2=$!
submit_wait fsm tenant-c --app fsm --support 50 --max-edges 2 &
P3=$!
wait "$P1" || fail "motifs client exited nonzero"
wait "$P2" || fail "cliques client exited nonzero"
wait "$P3" || fail "fsm client exited nonzero"
check_job motifs
check_job cliques
check_job fsm

# ---- leg 2: cancel one job mid-run + SIGKILL one worker ----

echo "serve-smoke: leg 2 — chaos (cancel + worker SIGKILL) on $CHAOS_SNAPSHOT"
"$BIN" client submit --server "$ADDR" --tenant chaos --snapshot "$CHAOS_SNAPSHOT" \
    --app motifs -k 4 >"$OUT/victim.out" 2>"$OUT/victim.err"
VICTIM=$(awk '/^JOB /{print $2; exit}' "$OUT/victim.out")
[[ -n "$VICTIM" ]] && [[ "$VICTIM" != 0 ]] || fail "victim submit did not return a job id"

"$BIN" client submit --server "$ADDR" --tenant chaos-b --snapshot "$CHAOS_SNAPSHOT" \
    --app cliques -k 4 --wait --verify-single \
    --metrics-out "$OUT/survivor1.metrics.json" \
    >"$OUT/survivor1.out" 2>"$OUT/survivor1.err" &
S1=$!
"$BIN" client submit --server "$ADDR" --tenant chaos-c --snapshot "$CHAOS_SNAPSHOT" \
    --app motifs -k 3 --wait --verify-single \
    --metrics-out "$OUT/survivor2.metrics.json" \
    >"$OUT/survivor2.out" 2>"$OUT/survivor2.err" &
S2=$!

# Let the jobs reach the workers before injecting faults.
wait_for "Running" "$OUT/survivor1.err" 150 || fail "survivor1 never started running"
"$BIN" client cancel --server "$ADDR" --job "$VICTIM" >"$OUT/cancel.out" 2>&1 \
    || fail "cancel verb failed"

WORKER_PID=$(pgrep -P "$SERVE_PID" | head -n 1)
[[ -n "$WORKER_PID" ]] || fail "no worker child process found to kill"
echo "serve-smoke: SIGKILL worker pid $WORKER_PID; cancelled job $VICTIM"
kill -9 "$WORKER_PID"

wait "$S1" || fail "survivor1 client exited nonzero after chaos"
wait "$S2" || fail "survivor2 client exited nonzero after chaos"
grep -q "VERIFY OK" "$OUT/survivor1.out" || fail "survivor1: no VERIFY OK after chaos"
grep -q "VERIFY OK" "$OUT/survivor2.out" || fail "survivor2: no VERIFY OK after chaos"
[[ -s "$OUT/survivor1.metrics.json" ]] || fail "survivor1: missing metrics artifact"
[[ -s "$OUT/survivor2.metrics.json" ]] || fail "survivor2: missing metrics artifact"
echo "serve-smoke: survivors ok ($(grep '^RESULT ' "$OUT/survivor1.out")," \
    "$(grep '^RESULT ' "$OUT/survivor2.out"))"

# The victim must land in the Cancelled terminal state (the cancel may
# complete asynchronously at a round boundary).
for _ in $(seq 100); do
    "$BIN" client status --server "$ADDR" --job "$VICTIM" >"$OUT/victim-status.out" 2>&1 || true
    if grep -q "Cancelled" "$OUT/victim-status.out"; then
        break
    fi
    sleep 0.2
done
grep -q "Cancelled" "$OUT/victim-status.out" \
    || fail "victim job $VICTIM never reached Cancelled: $(cat "$OUT/victim-status.out")"

# A fresh job on the surviving workers must still verify.
submit_wait postchaos tenant-d --app motifs -k 3 || fail "post-chaos client exited nonzero"
check_job postchaos

# ---- leg 3: SIGKILL the daemon mid-job, restart on the same journal ----

echo "serve-smoke: leg 3 — daemon crash/restart with journal + flaky links"
# Retire the leg-1/2 daemon; leg 3 runs its own crash-consistent one.
pkill -P "$SERVE_PID" 2>/dev/null || true
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
JDIR="$OUT/journal"
mkdir -p "$JDIR"

"$BIN" serve --listen 127.0.0.1:0 --local-cluster 2 --cores 2 \
    --journal "$JDIR" --link-fault 1234 --heartbeat-ms 3000 \
    >"$OUT/serve-restart-a.log" 2>&1 &
SERVE_PID=$!
wait_for "^SERVING " "$OUT/serve-restart-a.log" \
    || fail "journal daemon did not announce SERVING"
ADDR=$(awk '/^SERVING /{print $2; exit}' "$OUT/serve-restart-a.log")
echo "serve-smoke: journal daemon pid $SERVE_PID at $ADDR (journal $JDIR)"

# One deliberately multi-round job on the big snapshot (so it is still
# running at the kill) plus two quick companions.
"$BIN" client submit --server "$ADDR" --tenant restart-a \
    --snapshot "$CHAOS_SNAPSHOT" --app fsm --support 50 --max-edges 3 \
    --wait --verify-single --metrics-out "$OUT/restart-fsm.metrics.json" \
    >"$OUT/restart-fsm.out" 2>"$OUT/restart-fsm.err" &
R1=$!
"$BIN" client submit --server "$ADDR" --tenant restart-b --snapshot "$SNAPSHOT" \
    --app motifs -k 3 --wait --verify-single \
    --metrics-out "$OUT/restart-motifs.metrics.json" \
    >"$OUT/restart-motifs.out" 2>"$OUT/restart-motifs.err" &
R2=$!
"$BIN" client submit --server "$ADDR" --tenant restart-c --snapshot "$SNAPSHOT" \
    --app cliques -k 4 --wait --verify-single \
    --metrics-out "$OUT/restart-cliques.metrics.json" \
    >"$OUT/restart-cliques.out" 2>"$OUT/restart-cliques.err" &
R3=$!

# Kill only once the multi-round job's first word-set commit is durably
# journaled — that is the state the restarted daemon must resume from.
# (The quick companions commit and finish earlier; waiting on *their*
# commit lines could kill before the long job has anything to resume.)
wait_for "^JOB " "$OUT/restart-fsm.out" 150 || fail "restart-fsm was not admitted"
FSM_JOB=$(awk '/^JOB /{print $2; exit}' "$OUT/restart-fsm.out")
wait_for "^journal: committed job $FSM_JOB " "$OUT/serve-restart-a.log" 300 \
    || fail "no committed word-set for job $FSM_JOB before the crash"
echo "serve-smoke: SIGKILL daemon pid $SERVE_PID mid-job"
pkill -9 -P "$SERVE_PID" 2>/dev/null || true
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# Restart on the SAME address and journal directory: waiting clients are
# mid-backoff against that address right now.
"$BIN" serve --listen "$ADDR" --local-cluster 2 --cores 2 \
    --journal "$JDIR" --link-fault 1234 --heartbeat-ms 3000 \
    >"$OUT/serve-restart-b.log" 2>&1 &
SERVE_PID=$!
wait_for "^SERVING " "$OUT/serve-restart-b.log" \
    || fail "restarted daemon did not announce SERVING"
echo "serve-smoke: daemon restarted as pid $SERVE_PID on $ADDR"

wait "$R1" || fail "restart-fsm client exited nonzero across the restart"
wait "$R2" || fail "restart-motifs client exited nonzero across the restart"
wait "$R3" || fail "restart-cliques client exited nonzero across the restart"
check_job restart-fsm
check_job restart-motifs
check_job restart-cliques

# The multi-round job finished under the second incarnation, so its
# metrics artifact must carry the proof of recovery: a journal replay,
# at least one resumed job, injected link faults, and a client that
# survived at least one reconnect.
python3 - "$OUT/restart-fsm.metrics.json" <<'EOF' || fail "restart metrics do not prove recovery"
import json, sys
m = json.load(open(sys.argv[1]))
assert m["journal_replayed"] > 0, f"journal_replayed = {m['journal_replayed']}"
assert m["resumed_jobs"] > 0, f"resumed_jobs = {m['resumed_jobs']}"
assert m["link_faults_injected"] > 0, f"link_faults_injected = {m['link_faults_injected']}"
assert m["client_reconnects"] > 0, f"client_reconnects = {m['client_reconnects']}"
EOF
grep -q "^journal: committed job" "$OUT/serve-restart-b.log" \
    || fail "restarted daemon never committed a word-set"
echo "serve-smoke: restart leg ok" \
    "($(python3 -c 'import json,sys; m=json.load(open(sys.argv[1])); print("replayed", m["journal_replayed"], "resumed", m["resumed_jobs"], "faults", m["link_faults_injected"], "reconnects", m["client_reconnects"])' "$OUT/restart-fsm.metrics.json"))"

echo "serve-smoke: all legs passed (artifacts in $OUT)"
