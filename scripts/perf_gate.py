#!/usr/bin/env python3
"""CI perf-regression gate over fractal-perf-smoke work counters.

Compares a fresh `perf_smoke` JSON document against the checked-in
baseline (`ci/perf-baseline.json`) and fails when any gated counter
drifts beyond its tolerance. Deterministic counters (result counts,
extension cost, unit counts, kernel call mix) are gated tightly —
exact by default — because the deterministic leg runs with work
stealing disabled; scheduling-dependent metrics in the parallel leg
are gated only by loose absolute upper bounds. Wall-clock times are
reported but never gated.

With `--lint <lint.json>`, a `fractal lint --metrics-out` document
(schema fractal-metrics/1, kind lint) is checked alongside the perf
counters: the static-analysis pass must have scanned a non-empty tree
and reported zero findings. Waivers are allowed (they carry reasons and
are audited by the linter itself) but are echoed for visibility.

Usage:
    perf_gate.py check <smoke.json> [--baseline ci/perf-baseline.json]
                                    [--lint lint.json]
    perf_gate.py update <smoke.json> [--baseline ci/perf-baseline.json]
"""

import json
import sys
from pathlib import Path

SMOKE_SCHEMA = "fractal-perf-smoke/1"
BASELINE_SCHEMA = "fractal-perf-baseline/1"

# Relative tolerance per deterministic counter (0.0 = must match exactly).
# Result counts and unit counts are invariants of the algorithms; the
# kernel call mix is a deterministic function of the adaptive crossover
# heuristic, so any drift there is a real behavior change that should be
# acknowledged by refreshing the baseline.
DETERMINISTIC_TOLERANCES = {
    "count": 0.0,
    "total_units": 0.0,
    "total_ec": 0.0,
    "kernel_merge": 0.0,
    "kernel_gallop": 0.0,
    "kernel_bitset": 0.0,
    # Elements scanned tracks the hot-path work volume: allow a whisker of
    # slack so counter-neutral refactors (e.g. accounting of partial
    # scans) do not force a baseline churn, while a real 20% regression
    # fails loudly.
    "kernel_scanned": 0.02,
    "arena_peak_bytes": 0.10,
    # Planner counters are a pure function of (task, graph): pinned at zero
    # on every enumerate leg (the planner must not run when not asked) and
    # at the compiled plan's exact shape on the decomposed leg.
    "plans_compiled": 0.0,
    "subpatterns_counted": 0.0,
    "ie_terms": 0.0,
}

# Cross-workload speedup gates: the first workload's counter must be
# strictly below the second's in the *smoke* run. The decomposed 5-motif
# plan exists to beat plain enumeration on extension cost; losing that edge
# is a planner regression even if both legs stay individually stable.
SPEEDUP_GATES = (
    ("total_ec", "motifs_k5_decomposed", "motifs_k5_enumerate"),
)

# Absolute upper bounds for the scheduling-dependent parallel leg.
PARALLEL_BOUNDS = {
    "imbalance": 0.60,
    "steal_overhead": 0.50,
}

# Recovery counters that must be exactly zero in every fault-free leg: a
# nonzero value means the fault-tolerance machinery leaked into the
# fault-free path (spurious retries, watchdog trips, phantom recoveries).
# net_units must likewise be zero: single-process legs have no cluster
# substrate attached, so any externally pulled unit is a leak from the
# fractal-net hooks into plain execution.
FAULT_COUNTERS = (
    "faults_injected",
    "units_retried",
    "units_reexecuted",
    "watchdog_trips",
    "recovery_ns",
    "units_lost",
    # Fault-tap drains only happen when a tap is explicitly configured;
    # the smoke legs never configure one.
    "tap_drained",
    "net_units",
    # Serve-path counters: a single-process leg never goes through the
    # job-server admission or snapshot cache, so any nonzero value means
    # `fractal serve` plumbing leaked into plain execution.
    "jobs_admitted",
    "jobs_rejected",
    "snapshot_evictions",
    # Durability / degraded-link counters: fault-free single-process legs
    # run with no journal and no link-fault seed armed, so replayed
    # records, resumed jobs, injected link faults, or client reconnects
    # all indicate the crash-consistency machinery leaked.
    "journal_replayed",
    "resumed_jobs",
    "link_faults_injected",
    "client_reconnects",
)


def load(path):
    with open(path) as f:
        return json.load(f)


LINT_SCHEMA = "fractal-metrics/1"
LINT_COUNTERS = ("lint_files_scanned", "lint_findings", "lint_waivers")


def check_lint(lint_path, failures):
    """Gate a `fractal lint --metrics-out` document: zero findings over a
    non-empty scan. Returns the number of counters checked."""
    doc = load(lint_path)
    if doc.get("schema") != LINT_SCHEMA or doc.get("kind") != "lint":
        sys.exit(f"perf-gate: {lint_path} is not a {LINT_SCHEMA} lint document")
    checked = 0
    for key in LINT_COUNTERS:
        if doc.get(key) is None:
            failures.append(f"lint.{key}: missing from lint report")
    scanned = doc.get("lint_files_scanned", 0)
    checked += 1
    ok = scanned > 0
    print(f"  [{'ok' if ok else 'FAIL'}] lint.lint_files_scanned: {scanned} > 0")
    if not ok:
        failures.append(f"lint.lint_files_scanned: {scanned} (empty scan — wrong root?)")
    findings = doc.get("lint_findings", -1)
    checked += 1
    ok = findings == 0
    print(f"  [{'ok' if ok else 'FAIL'}] lint.lint_findings: {findings} == 0")
    if not ok:
        failures.append(f"lint.lint_findings: {findings} unexplained finding(s)")
        for f in doc.get("findings", [])[:20]:
            print(
                f"         {f.get('file')}:{f.get('line')}: "
                f"[{f.get('pass')}] {f.get('message')}",
                file=sys.stderr,
            )
    print(f"  [info] lint.lint_waivers: {doc.get('lint_waivers')} waiver(s) in use")
    return checked


def check(smoke_path, baseline_path, lint_path=None):
    smoke = load(smoke_path)
    if smoke.get("schema") != SMOKE_SCHEMA:
        sys.exit(f"perf-gate: {smoke_path} is not a {SMOKE_SCHEMA} document")
    baseline = load(baseline_path)
    if baseline.get("schema") != BASELINE_SCHEMA:
        sys.exit(f"perf-gate: {baseline_path} is not a {BASELINE_SCHEMA} document")

    failures = []
    checked = 0

    for workload, base_counters in sorted(baseline["deterministic"].items()):
        if workload == "faults":
            continue
        got_counters = smoke.get("deterministic", {}).get(workload)
        if got_counters is None:
            failures.append(f"deterministic workload '{workload}' missing from smoke run")
            continue
        for key, base in sorted(base_counters.items()):
            if key not in DETERMINISTIC_TOLERANCES:
                continue  # elapsed_ms and friends: informational only
            tol = DETERMINISTIC_TOLERANCES[key]
            got = got_counters.get(key)
            if got is None:
                failures.append(f"{workload}.{key}: missing from smoke run")
                continue
            checked += 1
            if tol == 0.0:
                ok = got == base
                window = "exact"
            else:
                lo, hi = base * (1 - tol), base * (1 + tol)
                ok = lo <= got <= hi
                window = f"±{tol:.0%}"
            status = "ok" if ok else "FAIL"
            print(f"  [{status}] {workload}.{key}: {got} vs baseline {base} ({window})")
            if not ok:
                failures.append(f"{workload}.{key}: {got} vs baseline {base} ({window})")

    for key, faster, slower in SPEEDUP_GATES:
        det = smoke.get("deterministic", {})
        lo = det.get(faster, {}).get(key)
        hi = det.get(slower, {}).get(key)
        if lo is None or hi is None:
            failures.append(f"speedup gate {faster}.{key} < {slower}.{key}: counters missing")
            continue
        checked += 1
        ok = lo < hi
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] speedup: {faster}.{key} ({lo}) < {slower}.{key} ({hi})")
        if not ok:
            failures.append(f"speedup gate: {faster}.{key} ({lo}) not below {slower}.{key} ({hi})")

    for workload, got_counters in sorted(smoke.get("parallel", {}).items()):
        if workload == "faults":
            continue
        for key, bound in sorted(PARALLEL_BOUNDS.items()):
            got = got_counters.get(key)
            if got is None:
                continue
            checked += 1
            ok = got <= bound
            status = "ok" if ok else "FAIL"
            print(f"  [{status}] parallel.{workload}.{key}: {got:.4f} <= {bound}")
            if not ok:
                failures.append(f"parallel.{workload}.{key}: {got:.4f} exceeds bound {bound}")

    # Both legs run fault-free: every recovery counter must be exactly
    # zero, and the block must be present (its absence would silently
    # disable this check). The baseline may extend the builtin list (e.g.
    # when a new subsystem adds counters before every checkout has the
    # updated script).
    extra = tuple(
        key
        for key in baseline.get("fault_free_counters", ())
        if key not in FAULT_COUNTERS
    )
    for leg in ("deterministic", "parallel"):
        faults = smoke.get(leg, {}).get("faults")
        if faults is None:
            failures.append(f"{leg}.faults: recovery-counter block missing from smoke run")
            continue
        for key in FAULT_COUNTERS + extra:
            got = faults.get(key)
            if got is None:
                failures.append(f"{leg}.faults.{key}: missing from smoke run")
                continue
            checked += 1
            ok = got == 0
            status = "ok" if ok else "FAIL"
            print(f"  [{status}] {leg}.faults.{key}: {got} == 0 (fault-free run)")
            if not ok:
                failures.append(f"{leg}.faults.{key}: {got} != 0 in a fault-free run")

    if lint_path is not None:
        checked += check_lint(lint_path, failures)

    if checked == 0:
        sys.exit("perf-gate: no counters checked — baseline/smoke mismatch?")
    if failures:
        print(f"\nperf-gate: {len(failures)} counter(s) regressed:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print(
            "\nIf the new counters are intentional (algorithm change), refresh the\n"
            "baseline with scripts/update-perf-baseline.sh and commit the result.",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"perf-gate: all {checked} gated counters within tolerance")


def update(smoke_path, baseline_path):
    smoke = load(smoke_path)
    if smoke.get("schema") != SMOKE_SCHEMA:
        sys.exit(f"perf-gate: {smoke_path} is not a {SMOKE_SCHEMA} document")
    baseline = {
        "schema": BASELINE_SCHEMA,
        "source": smoke.get("graph", {}),
        "deterministic": {
            workload: {k: v for k, v in counters.items() if k in DETERMINISTIC_TOLERANCES}
            for workload, counters in sorted(smoke["deterministic"].items())
            if workload != "faults"
        },
        "tolerances": DETERMINISTIC_TOLERANCES,
        "parallel_bounds": PARALLEL_BOUNDS,
        "fault_free_counters": list(FAULT_COUNTERS),
    }
    Path(baseline_path).write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"perf-gate: baseline written to {baseline_path}")


def main(argv):
    if len(argv) < 3 or argv[1] not in ("check", "update"):
        sys.exit(__doc__)
    smoke_path = argv[2]
    baseline_path = "ci/perf-baseline.json"
    lint_path = None
    rest = argv[3:]
    while rest:
        if rest[0] == "--baseline" and len(rest) >= 2:
            baseline_path = rest[1]
            rest = rest[2:]
        elif rest[0] == "--lint" and len(rest) >= 2:
            lint_path = rest[1]
            rest = rest[2:]
        else:
            sys.exit(f"perf-gate: unknown argument {rest[0]}\n{__doc__}")
    if argv[1] == "check":
        check(smoke_path, baseline_path, lint_path)
    else:
        update(smoke_path, baseline_path)


if __name__ == "__main__":
    main(sys.argv)
