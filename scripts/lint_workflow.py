#!/usr/bin/env python3
"""Workflow lints for the Fractal CI configuration.

Regex-based (no yaml dependency — the container is offline), enforced
over `.github/workflows/*.yml` and `.github/actions/*/action.yml`:

  action-pin      Every `uses:` must either reference a local action
                  (`./...`) or pin a marketplace action to a version tag
                  (`owner/name@vN`). Unpinned or branch-pinned actions
                  make CI runs unreproducible.

  inline-cache    Workflow jobs must not call `actions/cache` directly;
                  cargo caching goes through the shared composite action
                  (`.github/actions/setup-fractal`), so cache paths and
                  key shapes cannot drift between jobs. The composite
                  action itself is the one place allowed to use it.

  checkout-first  Any step that `uses:` a local action must be preceded
                  (within the same job) by an `actions/checkout` step —
                  local actions are resolved from the checked-out tree.

  offline-env     Every workflow must set `CARGO_NET_OFFLINE: "true"` in
                  its top-level env: the workspace vendors all deps under
                  crates/compat/, and a job that silently reaches for the
                  network is a reproducibility bug.

  cargo-locked    Build-graph cargo invocations (build, test, run, bench,
                  clippy) must pass `--locked` so CI can never rewrite
                  Cargo.lock. `cargo fmt` is exempt (it does not resolve
                  dependencies).

Usage:
  scripts/lint_workflow.py [--root DIR]   lint the tree (exit 1 on findings)
  scripts/lint_workflow.py --self-test    inject one violation per rule into
                                          a scratch tree and assert each is
                                          caught (exit 1 if any slips through)
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

USES = re.compile(r"^\s*-?\s*uses:\s*(\S+)")
PINNED = re.compile(r"^[\w.-]+/[\w./-]+@v\d+$")
CHECKOUT = re.compile(r"^actions/checkout@")
CACHE = re.compile(r"^actions/cache@")
JOB_HEADER = re.compile(r"^  (\w[\w-]*):\s*$")
OFFLINE_ENV = re.compile(r'^\s*CARGO_NET_OFFLINE:\s*"true"\s*$')
CARGO_CMD = re.compile(r"\bcargo\s+(?:\+\w+\s+)?(build|test|run|bench|clippy)\b")
LOCKED = re.compile(r"--locked\b")
COMMENT = re.compile(r"^\s*#")


def workflow_files(root: str) -> list[str]:
    rels = []
    wf = os.path.join(root, ".github", "workflows")
    if os.path.isdir(wf):
        for name in sorted(os.listdir(wf)):
            if name.endswith((".yml", ".yaml")):
                rels.append(os.path.join(".github", "workflows", name))
    actions = os.path.join(root, ".github", "actions")
    if os.path.isdir(actions):
        for sub in sorted(os.listdir(actions)):
            for name in ("action.yml", "action.yaml"):
                if os.path.isfile(os.path.join(actions, sub, name)):
                    rels.append(os.path.join(".github", "actions", sub, name))
    return rels


def is_composite_action(rel: str) -> bool:
    return rel.replace("\\", "/").startswith(".github/actions/")


def lint_file(root: str, rel: str) -> list[tuple[str, int, str, str]]:
    """Returns (rule, line_no, line, message) findings for one file."""
    try:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError):
        return []
    findings = []
    is_workflow = not is_composite_action(rel)
    saw_offline_env = False
    # Per-job state for the checkout-first rule; composite actions have no
    # jobs, so a single implicit scope is fine there (they cannot checkout
    # at all, which is exactly why callers must).
    saw_checkout = False

    for idx, raw in enumerate(lines):
        no = idx + 1
        if COMMENT.match(raw):
            continue
        if is_workflow and JOB_HEADER.match(raw):
            saw_checkout = False

        if OFFLINE_ENV.match(raw):
            saw_offline_env = True

        m = USES.search(raw)
        if m:
            target = m.group(1).strip("\"'")
            if target.startswith("./"):
                if is_workflow and not saw_checkout:
                    findings.append(
                        (
                            "checkout-first",
                            no,
                            raw.strip(),
                            "local actions are resolved from the checked-out tree; "
                            "run actions/checkout before this step",
                        )
                    )
            else:
                if not PINNED.match(target):
                    findings.append(
                        (
                            "action-pin",
                            no,
                            raw.strip(),
                            "pin marketplace actions to a version tag "
                            "(owner/name@vN) for reproducible CI",
                        )
                    )
                if CHECKOUT.match(target):
                    saw_checkout = True
                if CACHE.match(target) and is_workflow:
                    findings.append(
                        (
                            "inline-cache",
                            no,
                            raw.strip(),
                            "use the shared composite action "
                            "(./.github/actions/setup-fractal) instead of an "
                            "inline actions/cache step",
                        )
                    )

        if CARGO_CMD.search(raw) and not LOCKED.search(raw):
            findings.append(
                (
                    "cargo-locked",
                    no,
                    raw.strip(),
                    "cargo invocations in CI must pass --locked so the "
                    "committed Cargo.lock is authoritative",
                )
            )

    if is_workflow and not saw_offline_env:
        findings.append(
            (
                "offline-env",
                1,
                lines[0].strip() if lines else "",
                'workflow must set CARGO_NET_OFFLINE: "true" in its top-level '
                "env (all deps are vendored under crates/compat/)",
            )
        )
    return findings


def run_lint(root: str) -> int:
    total = 0
    files = workflow_files(root)
    if not files:
        print("lint_workflow: no workflow files found")
        return 1
    for rel in files:
        for rule, no, line, msg in lint_file(root, rel):
            total += 1
            print(f"{rel}:{no}: [{rule}] {msg}\n    {line}")
    if total:
        print(f"\nlint_workflow: {total} finding(s)")
        return 1
    print(f"lint_workflow: clean ({len(files)} files)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: inject one violation per rule, assert each is caught.
# ---------------------------------------------------------------------------

CLEAN_WORKFLOW = """\
name: CI
on: [push]
env:
  CARGO_NET_OFFLINE: "true"
jobs:
  build:
    runs-on: ubuntu-latest
    steps:
      - uses: actions/checkout@v4
      - uses: ./.github/actions/setup-fractal
        with:
          cache-key: build
      - run: cargo build --release --locked
      - run: cargo fmt --check
"""

VIOLATIONS = {
    "action-pin": CLEAN_WORKFLOW.replace(
        "actions/checkout@v4", "actions/checkout@main"
    ),
    "inline-cache": CLEAN_WORKFLOW.replace(
        "- uses: ./.github/actions/setup-fractal\n        with:\n          cache-key: build",
        "- uses: actions/cache@v4",
    ),
    "checkout-first": CLEAN_WORKFLOW.replace(
        "      - uses: actions/checkout@v4\n      - uses: ./.github/actions/setup-fractal",
        "      - uses: ./.github/actions/setup-fractal",
    ),
    "offline-env": CLEAN_WORKFLOW.replace('  CARGO_NET_OFFLINE: "true"\n', ""),
    "cargo-locked": CLEAN_WORKFLOW.replace(
        "cargo build --release --locked", "cargo build --release"
    ),
}


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        wf_dir = os.path.join(tmp, ".github", "workflows")
        os.makedirs(wf_dir)
        rel = os.path.join(".github", "workflows", "ci.yml")
        for rule, doc in VIOLATIONS.items():
            assert doc != CLEAN_WORKFLOW, f"{rule}: injection did not change the doc"
            with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
                f.write(doc)
            caught = [r for r, *_ in lint_file(tmp, rel)]
            if rule in caught:
                print(f"self-test: [{rule}] injected violation caught")
            else:
                failures.append(rule)
                print(f"self-test: [{rule}] MISSED (caught: {caught})")

        with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
            f.write(CLEAN_WORKFLOW)
        extra = lint_file(tmp, rel)
        if extra:
            failures.append("clean-file")
            for rule, no, line, msg in extra:
                print(f"self-test: FALSE POSITIVE {rel}:{no}: [{rule}]\n    {line}")
        else:
            print("self-test: compliant workflow is clean")

    if failures:
        print(f"\nself-test FAILED: {failures}")
        return 1
    print("\nself-test passed: every injected violation caught, no false positives")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="workspace root (default: cwd)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches injected violations, then exit",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
