#!/usr/bin/env bash
# Refreshes ci/perf-baseline.json from a fresh perf_smoke run.
#
# Run this after an intentional change to enumeration or kernel behavior
# (the perf-gate CI job will have told you which counters moved), review
# the diff, and commit the new baseline together with the change that
# caused it.
set -euo pipefail
cd "$(dirname "$0")/.."

out="target/perf-smoke.json"
cargo run --release -p fractal-bench --bin perf_smoke -- --out "$out"
python3 scripts/perf_gate.py update "$out"
git --no-pager diff --stat -- ci/perf-baseline.json || true
