#!/usr/bin/env python3
"""Thin wrapper over `fractal lint` (the in-tree static analyzer).

The invariant lints that used to live here as line-based regexes —
facade imports, `// ordering:` justifications, `// SAFETY:` comments,
net-read unwraps — moved into `crates/lint` (DESIGN.md §15), where a
real tokenizer handles strings, block comments and `#[cfg(test)]`
regions correctly, and two more passes (cross-artifact consistency,
hot-path panic audit) run alongside them. This script survives so
existing CI entry points and muscle memory keep working; it locates the
`fractal` binary and delegates.

Usage:
  scripts/lint_invariants.py [--root DIR]   lint the tree (exit 1 on findings)
  scripts/lint_invariants.py --self-test    delegate to `fractal lint
                                            --self-test`: plant one violation
                                            per pass in a scratch tree and
                                            assert each is caught

Binary resolution order:
  1. $FRACTAL_BIN, if set
  2. target/release/fractal, then target/debug/fractal (under --root)
  3. `cargo run --release --locked --bin fractal --` as a fallback
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys


def find_fractal(root: str) -> list[str]:
    env_bin = os.environ.get("FRACTAL_BIN")
    if env_bin:
        return [env_bin]
    for profile in ("release", "debug"):
        cand = os.path.join(root, "target", profile, "fractal")
        if os.name == "nt":
            cand += ".exe"
        if os.path.isfile(cand) and os.access(cand, os.X_OK):
            return [cand]
    return ["cargo", "run", "--release", "--locked", "--bin", "fractal", "--"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="workspace root (default: cwd)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches injected violations, then exit",
    )
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    cmd = find_fractal(root) + ["lint"]
    if args.self_test:
        cmd.append("--self-test")
    else:
        cmd += ["--root", root]

    try:
        return subprocess.call(cmd, cwd=root)
    except OSError as e:
        print(f"lint_invariants: failed to run {cmd[0]}: {e}", file=sys.stderr)
        print(
            "lint_invariants: build the binary first (cargo build --release --locked) "
            "or set $FRACTAL_BIN",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
