#!/usr/bin/env python3
"""Custom invariant lints for the Fractal workspace.

Four rules, enforced over product source (`crates/*/src`, `src/`):

  facade-import   Concurrency primitives must come from the sync facade
                  (`fractal_runtime::sync` / `fractal_check::facade` /
                  `crate::sync`), never from `std::sync::atomic`,
                  `std::sync::Mutex`/`RwLock`/`Condvar` or `parking_lot`
                  directly — otherwise the type silently escapes the
                  model checker's instrumentation.

  ordering-comment
                  Every `Ordering::Relaxed` must carry a justification:
                  a `// ordering:` comment on the same line or within
                  the ORDERING_WINDOW lines above. Relaxed is the only
                  ordering weak enough to need an argument; the comment
                  records it next to the code.

  net-read-unwrap In `crates/net/src`, the result of a socket read must
                  not be `.unwrap()`ed / `.expect()`ed in protocol
                  paths: a peer that hangs up mid-frame must surface as
                  an `io::Result`, not a worker panic.

  safety-comment  Every `unsafe` must be preceded (within
                  SAFETY_WINDOW lines) or accompanied by a `// SAFETY:`
                  comment stating the proof obligation.

Exemptions:

  * `crates/compat/` entirely (it *implements* shims over std).
  * `crates/check/src/` from facade-import and ordering-comment (it
    implements the facade and the instrumented primitives).
  * `#[cfg(test)] mod` regions, `tests/` and `benches/` directories
    (tests may use std primitives and unwrap freely).

Usage:
  scripts/lint_invariants.py [--root DIR]   lint the tree (exit 1 on findings)
  scripts/lint_invariants.py --self-test    inject one violation per rule into
                                            a scratch tree and assert each is
                                            caught (exit 1 if any slips through)
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

ORDERING_WINDOW = 10  # lines above a Relaxed that may hold `// ordering:`
SAFETY_WINDOW = 3  # lines above an `unsafe` that may hold `// SAFETY:`

FACADE_BANNED = [
    re.compile(r"\bstd::sync::atomic\b"),
    re.compile(r"\bcore::sync::atomic\b"),
    re.compile(r"\bstd::sync::(Mutex|RwLock|Condvar)\b"),
    re.compile(r"\bparking_lot\b"),
    # `use std::sync::{..., Mutex, ...}` style grouped imports.
    re.compile(r"use\s+std::sync::\{[^}]*\b(Mutex|RwLock|Condvar|atomic)\b"),
]

RELAXED = re.compile(r"\bOrdering::Relaxed\b")
ORDERING_COMMENT = re.compile(r"//.*\bordering:")

NET_READ = re.compile(
    r"(read_exact\s*\(|read_to_end\s*\(|read_frame\s*\(|\.recv\s*\(|recv_timeout\s*\(|\.peek\s*\()"
)
UNWRAP = re.compile(r"\.(unwrap|expect)\s*\(")

UNSAFE = re.compile(r"\bunsafe\b")
SAFETY_COMMENT = re.compile(r"//.*\bSAFETY:")

CFG_TEST = re.compile(r"#\[cfg\((test|all\(test)")


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of `//...`, string and char literals so lint
    patterns only see code. Line-based (no multiline strings/comments in
    this tree's style); good enough for a repo-specific lint."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        if c == '"':
            i += 1
            while i < n and line[i] != '"':
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""')
            continue
        if c == "'" and i + 2 < n and (line[i + 1] == "\\" or line[i + 2] == "'"):
            # char literal (skip; lifetimes like 'a don't match this shape)
            j = i + 1
            if line[j] == "\\":
                j += 1
            i = j + 2
            out.append("''")
            continue
        out.append(c)
        i += 1
    return "".join(out)


def test_region_mask(lines: list[str]) -> list[bool]:
    """True for lines inside a `#[cfg(test)] mod { ... }` region."""
    mask = [False] * len(lines)
    i = 0
    while i < len(lines):
        if CFG_TEST.search(lines[i]):
            # Find the mod (or fn/impl) the cfg applies to, then span its
            # braces. Scan a few lines ahead for the opening `{`.
            depth = 0
            opened = False
            j = i
            while j < len(lines):
                mask[j] = True
                code = strip_comments_and_strings(lines[j])
                depth += code.count("{") - code.count("}")
                if "{" in code:
                    opened = True
                if opened and depth <= 0:
                    break
                j += 1
            i = j + 1
        else:
            i += 1
    return mask


def is_exempt_path(rel: str, rule: str) -> bool:
    parts = rel.replace("\\", "/").split("/")
    if "compat" in parts and "crates" in parts:
        return True  # crates/compat implements the shims
    if "tests" in parts or "benches" in parts:
        return True  # test code may use std primitives and unwrap
    if rule in ("facade-import", "ordering-comment"):
        if rel.startswith("crates/check/src"):
            return True  # the facade and instrumented types themselves
    return False


def lint_file(root: str, rel: str) -> list[tuple[str, int, str, str]]:
    """Returns (rule, line_no, line, message) findings for one file."""
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError):
        return []
    in_test = test_region_mask(lines)
    findings = []

    for idx, raw in enumerate(lines):
        if in_test[idx]:
            continue
        no = idx + 1
        code = strip_comments_and_strings(raw)

        if not is_exempt_path(rel, "facade-import"):
            for pat in FACADE_BANNED:
                if pat.search(code):
                    findings.append(
                        (
                            "facade-import",
                            no,
                            raw.strip(),
                            "import concurrency primitives via the sync facade "
                            "(fractal_runtime::sync / fractal_check::facade / crate::sync), "
                            "not std::sync / parking_lot directly",
                        )
                    )
                    break

        if not is_exempt_path(rel, "ordering-comment") and RELAXED.search(code):
            lo = max(0, idx - ORDERING_WINDOW)
            window = lines[lo : idx + 1]
            if not any(ORDERING_COMMENT.search(w) for w in window):
                findings.append(
                    (
                        "ordering-comment",
                        no,
                        raw.strip(),
                        "Ordering::Relaxed needs a `// ordering:` justification on the "
                        f"same line or within {ORDERING_WINDOW} lines above",
                    )
                )

        if rel.startswith("crates/net/src") and NET_READ.search(code) and UNWRAP.search(code):
            findings.append(
                (
                    "net-read-unwrap",
                    no,
                    raw.strip(),
                    "socket reads in protocol paths must propagate io::Result, "
                    "not unwrap()/expect()",
                )
            )

        if not is_exempt_path(rel, "safety-comment") and UNSAFE.search(code):
            lo = max(0, idx - SAFETY_WINDOW)
            window = lines[lo : idx + 1]
            if not any(SAFETY_COMMENT.search(w) for w in window):
                findings.append(
                    (
                        "safety-comment",
                        no,
                        raw.strip(),
                        "unsafe needs a `// SAFETY:` comment on the same line or "
                        f"within {SAFETY_WINDOW} lines above",
                    )
                )

    return [(rule, no, line, msg) for rule, no, line, msg in findings]


def source_files(root: str) -> list[str]:
    rels = []
    for base in ("crates", "src"):
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d != "target"]
            for name in filenames:
                if name.endswith(".rs"):
                    rels.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(rels)


def run_lint(root: str) -> int:
    total = 0
    for rel in source_files(root):
        for rule, no, line, msg in lint_file(root, rel):
            total += 1
            print(f"{rel}:{no}: [{rule}] {msg}\n    {line}")
    if total:
        print(f"\nlint_invariants: {total} finding(s)")
        return 1
    print(f"lint_invariants: clean ({len(source_files(root))} files)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: inject one violation per rule, assert each is caught.
# ---------------------------------------------------------------------------

VIOLATIONS = {
    "facade-import": "use std::sync::atomic::{AtomicUsize, Ordering};\n",
    "ordering-comment": (
        "fn f(c: &AtomicUsize) -> usize {\n"
        "    c.load(Ordering::Relaxed)\n"
        "}\n"
    ),
    "net-read-unwrap": (
        "fn g(s: &mut std::net::TcpStream, buf: &mut [u8]) {\n"
        "    s.read_exact(buf).unwrap();\n"
        "}\n"
    ),
    "safety-comment": (
        "fn h(p: *const u8) -> u8 {\n"
        "    unsafe { *p }\n"
        "}\n"
    ),
}

CLEAN_FILE = """\
use fractal_runtime::sync::{AtomicUsize, Ordering};

fn ok(c: &AtomicUsize) -> usize {
    // ordering: Relaxed — diagnostic counter, read after join.
    c.load(Ordering::Relaxed)
}

// SAFETY: p is valid for reads by contract.
fn ok_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn std_is_fine_in_tests() {
        let c = AtomicUsize::new(0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
"""


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        # One scratch crate per injected violation; net rule needs the
        # crates/net/src path prefix to arm.
        for rule, snippet in VIOLATIONS.items():
            crate = "net" if rule == "net-read-unwrap" else f"scratch_{rule.replace('-', '_')}"
            d = os.path.join(tmp, "crates", crate, "src")
            os.makedirs(d, exist_ok=True)
            with open(os.path.join(d, "lib.rs"), "w", encoding="utf-8") as f:
                f.write(snippet)
            rel = os.path.join("crates", crate, "src", "lib.rs")
            caught = [r for r, *_ in lint_file(tmp, rel)]
            if rule in caught:
                print(f"self-test: [{rule}] injected violation caught")
            else:
                failures.append(rule)
                print(f"self-test: [{rule}] MISSED (caught: {caught})")
            os.remove(os.path.join(d, "lib.rs"))

        # A compliant file (including a std-using test mod) must be clean.
        d = os.path.join(tmp, "crates", "clean", "src")
        os.makedirs(d)
        with open(os.path.join(d, "lib.rs"), "w", encoding="utf-8") as f:
            f.write(CLEAN_FILE)
        rel = os.path.join("crates", "clean", "src", "lib.rs")
        extra = lint_file(tmp, rel)
        if extra:
            failures.append("clean-file")
            for rule, no, line, msg in extra:
                print(f"self-test: FALSE POSITIVE {rel}:{no}: [{rule}]\n    {line}")
        else:
            print("self-test: compliant file (with std-using test mod) is clean")

    if failures:
        print(f"\nself-test FAILED: {failures}")
        return 1
    print("\nself-test passed: every injected violation caught, no false positives")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="workspace root (default: cwd)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the linter catches injected violations, then exit",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
