//! Frequent subgraph mining on a citation-style network (the paper's FSM
//! workload, Listing 3): find every labeled pattern whose minimum-image
//! support clears a threshold, comparing the plain run against the
//! transparent graph-reduction variant.
//!
//! ```sh
//! cargo run --release --example frequent_patterns
//! ```

use fractal::prelude::*;

fn main() {
    // Patents-like citation network with 12 vertex labels.
    let graph = fractal::graph::gen::patents_like(3000, 12, 5);
    println!(
        "citation graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_vertex_labels()
    );

    let fc = FractalContext::new(ClusterConfig::local(2, 4));
    let fg = fc.fractal_graph(graph);

    let min_support = 150;
    let max_edges = 3;

    let t0 = std::time::Instant::now();
    let plain = fractal::apps::fsm::fsm(&fg, min_support, max_edges);
    let t_plain = t0.elapsed();

    let t0 = std::time::Instant::now();
    let reduced = fractal::apps::fsm::fsm_with_reduction(&fg, min_support, max_edges);
    let t_reduced = t0.elapsed();

    // Same frequent set, same exact supports.
    let a = fractal::apps::fsm::frequent_map(&plain);
    let b = fractal::apps::fsm::frequent_map(&reduced);
    assert_eq!(a, b, "reduction must not change the result");

    println!(
        "\nfrequent patterns (support >= {min_support}, <= {max_edges} edges): {}",
        plain.frequent.len()
    );
    println!(
        "plain: {:.2}s   with transparent reduction: {:.2}s",
        t_plain.as_secs_f64(),
        t_reduced.as_secs_f64()
    );

    let mut by_size: Vec<&fractal::apps::fsm::FrequentPattern> = plain.frequent.iter().collect();
    by_size.sort_by_key(|p| (p.num_edges, std::cmp::Reverse(p.support)));
    println!("\n{:>6} {:>9} pattern", "edges", "support");
    for p in by_size.iter().take(15) {
        let pat = p.code.to_pattern();
        let labels: Vec<u32> = (0..pat.num_vertices())
            .map(|v| pat.vertex_label(v))
            .collect();
        println!(
            "{:>6} {:>9} labels {:?}, edges {:?}",
            p.num_edges,
            p.support,
            labels,
            pat.edges()
                .iter()
                .map(|&(u, v, _)| (u, v))
                .collect::<Vec<_>>()
        );
    }
    if plain.frequent.len() > 15 {
        println!("... and {} more", plain.frequent.len() - 15);
    }
}
