//! Quickstart: build a graph, spin up a simulated cluster, and run the
//! three computation primitives through the fractoid API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fractal::prelude::*;

fn main() {
    // A scale-free graph shaped like the paper's Mico dataset (co-author
    // network, 29 labels), deterministic under the seed.
    let graph = fractal::graph::gen::mico_like(2000, 29, 42);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // A context over 2 simulated workers x 4 cores with hierarchical work
    // stealing (the paper's default environment, scaled down).
    let fc = FractalContext::new(ClusterConfig::local(2, 4));
    let fg = fc.fractal_graph(graph);

    // --- Extension + filtering: count 4-cliques (Listing 2). ---
    let cliques = fractal::apps::cliques::count(&fg, 4);
    println!("4-cliques: {cliques}");

    // --- Extension + aggregation: 3-vertex motif census (Listing 1). ---
    let motifs = fg
        .vfractoid()
        .expand(3)
        .aggregate(
            "motifs",
            |s| s.pattern_code(false, false),
            |_| 1u64,
            |acc, v| *acc += v,
        )
        .aggregation::<fractal::pattern::CanonicalCode, u64>("motifs");
    for (code, count) in &motifs {
        let shape = if code.to_pattern().is_clique() {
            "triangle"
        } else {
            "path"
        };
        println!("motif {shape}: {count}");
    }

    // --- The same triangle count three ways, as a consistency check. ---
    let via_filter = fg
        .vfractoid()
        .expand(1)
        .filter(|s| s.last_level_edge_count() == s.num_vertices() - 1)
        .explore(3)
        .count();
    let via_pattern = fg
        .pfractoid_unlabeled(&Pattern::clique(3))
        .expand(3)
        .count();
    let via_kclist = fractal::apps::cliques::count_kclist(&fg, 3);
    assert_eq!(via_filter, via_pattern);
    assert_eq!(via_filter, via_kclist);
    println!("triangles (filter / pattern / kclist agree): {via_filter}");
}
