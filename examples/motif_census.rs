//! Motif census of a social-style network — the bioinformatics /
//! social-media workload from the paper's introduction: which small
//! connected shapes dominate a network, and how does the census shift
//! against a random graph with the same size?
//!
//! ```sh
//! cargo run --release --example motif_census
//! ```

use fractal::pattern::CanonicalCode;
use fractal::prelude::*;
use std::collections::HashMap;

fn census(fg: &fractal::core::FractalGraph, k: usize) -> HashMap<CanonicalCode, u64> {
    fractal::apps::motifs::motifs(fg, k)
}

fn describe(code: &CanonicalCode) -> String {
    let p = code.to_pattern();
    let (n, m) = (p.num_vertices(), p.num_edges());
    if p.is_clique() {
        return format!("K{n}");
    }
    let max_deg = (0..n).map(|v| p.degree(v)).max().unwrap_or(0);
    if max_deg == n - 1 && m == n - 1 {
        return format!("star{}", n - 1);
    }
    if m == n - 1 {
        return format!("tree{n}v");
    }
    if m == n && (0..n).all(|v| p.degree(v) == 2) {
        return format!("C{n}");
    }
    format!("{n}v{m}e")
}

fn main() {
    let fc = FractalContext::new(ClusterConfig::local(2, 4));

    // A preferential-attachment network (heavy clustering of hubs) vs an
    // Erdős–Rényi graph of identical size.
    let social = fractal::graph::gen::youtube_like(1500, 1, 7);
    let m = social.num_edges();
    let random = fractal::graph::gen::erdos_renyi(1500, m, 1, 7);

    let fg_social = fc.fractal_graph(social);
    let fg_random = fc.fractal_graph(random);

    for k in [3usize, 4] {
        println!("== {k}-vertex motif census ==");
        let a = census(&fg_social, k);
        let b = census(&fg_random, k);
        let mut keys: Vec<&CanonicalCode> = a.keys().chain(b.keys()).collect();
        keys.sort();
        keys.dedup();
        println!(
            "{:>10} {:>12} {:>12} {:>8}",
            "motif", "social", "random", "ratio"
        );
        for code in keys {
            let ca = a.get(code).copied().unwrap_or(0);
            let cb = b.get(code).copied().unwrap_or(0);
            let ratio = if cb == 0 {
                "inf".to_string()
            } else {
                format!("{:.2}", ca as f64 / cb as f64)
            };
            println!("{:>10} {ca:>12} {cb:>12} {ratio:>8}", describe(code));
        }
        println!();
    }
    println!("scale-free graphs over-express cliques relative to ER — the");
    println!("irregularity that makes GPM load balancing hard (paper §4.2).");
}
