//! Subgraph querying (Listing 5) with a custom query pattern, plus a look
//! at the work-stealing runtime: the same query across stealing modes,
//! with per-core busy times.
//!
//! ```sh
//! cargo run --release --example subgraph_search
//! ```

use fractal::prelude::*;

fn main() {
    let graph = fractal::graph::gen::youtube_like(2500, 1, 3);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The evaluation queries of Fig. 14 (reconstructed; see
    // fractal::apps::query docs).
    println!("\n== query matches ==");
    let fc = FractalContext::new(ClusterConfig::local(2, 4));
    let fg = fc.fractal_graph(graph.clone());
    for (name, q) in fractal::apps::query::evaluation_queries() {
        let t0 = std::time::Instant::now();
        let n = fractal::apps::query::count_matches(&fg, &q);
        println!(
            "{name}: {n} matches ({} vertices, {} edges) in {:.2}s",
            q.num_vertices(),
            q.num_edges(),
            t0.elapsed().as_secs_f64()
        );
    }

    // A custom labeled query on a labeled graph: a triangle of label-0
    // vertices with one label-1 pendant.
    let labeled = fractal::graph::gen::mico_like(2500, 4, 9);
    let fg2 = fc.fractal_graph(labeled);
    let query = Pattern::new(
        vec![0, 0, 0, 1],
        vec![(0, 1, 0), (1, 2, 0), (0, 2, 0), (2, 3, 0)],
    );
    let matches = fractal::apps::query::subgraph_querying(&fg2, &query);
    println!(
        "\nlabeled query (triangle + pendant): {} matches",
        matches.len()
    );

    // Work-stealing drilldown: the same enumeration across modes.
    println!("\n== work stealing modes (house query) ==");
    let house = fractal::apps::query::house();
    for mode in [WsMode::Disabled, WsMode::InternalOnly, WsMode::Both] {
        let fc = FractalContext::new(ClusterConfig::local(2, 4).with_ws(mode));
        let fg = fc.fractal_graph(graph.clone());
        let (n, report) = fractal::apps::query::count_matches_with_report(&fg, &house);
        let step = &report.steps[0];
        let (int, ext) = step.steals();
        println!(
            "{mode:?}: {n} matches, wall {:.2}s, imbalance cv {:.3}, steals {int}/{ext}",
            step.elapsed.as_secs_f64(),
            step.imbalance(),
        );
    }
}
