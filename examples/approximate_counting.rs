//! Approximate subgraph counting with a custom sampling enumerator — the
//! "sampling policy" use of Appendix B's custom-enumerator hook: thin the
//! enumeration tree by keeping each extension with probability `p`, then
//! de-bias the count by `p^-depth`.
//!
//! Coins are hashed from (seed, prefix, candidate), so results are
//! deterministic and work stealing cannot skew the estimate.
//!
//! ```sh
//! cargo run --release --example approximate_counting
//! ```

use fractal::prelude::*;
use fractal::subgraph::{SamplingEnumerator, VertexInducedEnumerator};

fn main() {
    let graph = fractal::graph::gen::youtube_like(3000, 1, 21);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let fc = FractalContext::new(ClusterConfig::local(2, 4));
    let fg = fc.fractal_graph(graph);

    let k = 4;
    let t0 = std::time::Instant::now();
    let exact = fg.vfractoid().expand(k).count();
    let exact_time = t0.elapsed();
    println!(
        "\nexact {k}-subgraph count: {exact} in {:.2}s",
        exact_time.as_secs_f64()
    );

    println!(
        "\n{:>6} {:>14} {:>9} {:>9}",
        "p", "estimate", "error", "time(s)"
    );
    for p in [0.5f64, 0.25, 0.1] {
        let t0 = std::time::Instant::now();
        // Average a few seeds — each run is an unbiased estimator.
        let seeds = 4u64;
        let mut acc = 0.0;
        for seed in 0..seeds {
            let sampled = fg
                .vfractoid_with(move |_| {
                    Box::new(SamplingEnumerator::new(
                        Box::new(VertexInducedEnumerator::new()),
                        p,
                        seed,
                    ))
                })
                .expand(k)
                .count();
            acc += sampled as f64 * p.powi(-(k as i32));
        }
        let estimate = acc / seeds as f64;
        let err = (estimate - exact as f64).abs() / exact as f64;
        println!(
            "{p:>6} {estimate:>14.0} {:>8.1}% {:>9.2}",
            err * 100.0,
            t0.elapsed().as_secs_f64()
        );
    }
    println!("\nlower p trades accuracy for time; the estimator stays unbiased.");
}
