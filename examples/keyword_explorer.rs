//! Keyword search over a knowledge graph (the paper's Wikidata workload,
//! §2.2/§5.2.3): retrieve connected subgraphs covering a set of query
//! keywords, and measure what the graph-reduction optimization buys.
//!
//! ```sh
//! cargo run --release --example keyword_explorer
//! ```

use fractal::prelude::*;

fn main() {
    // An attributed knowledge graph: sparse skeleton, zipfian keyword sets
    // on vertices and edges (vocabulary kw0..kw299).
    let graph = fractal::graph::gen::wikidata_like(12_000, 300, 11);
    println!(
        "knowledge graph: {} vertices, {} edges, {} keywords",
        graph.num_vertices(),
        graph.num_edges(),
        graph.keyword_table().map(|t| t.len()).unwrap_or(0),
    );

    let fc = FractalContext::new(ClusterConfig::local(2, 4));
    let fg = fc.fractal_graph(graph);

    for words in [
        vec!["kw0", "kw12"],
        vec!["kw3", "kw7", "kw31"],
        vec!["kw5", "kw40", "kw80"],
    ] {
        println!("\nquery {words:?}");
        // Without reduction: enumerate over the whole graph.
        let plain = fractal::apps::keyword::keyword_search_str(&fg, &words, false)
            .expect("vocabulary words exist");
        // With reduction: materialize the sub-graph touching the keywords
        // first (§4.3), then run the same workflow.
        let reduced = fractal::apps::keyword::keyword_search_str(&fg, &words, true)
            .expect("vocabulary words exist");

        assert_eq!(plain.subgraphs.len(), reduced.subgraphs.len());
        println!("  covering subgraphs: {}", reduced.subgraphs.len());
        println!(
            "  reduced input: {} -> {} edges ({:.1}% removed)",
            fg.graph().num_edges(),
            reduced.reduced_edges,
            100.0 * (1.0 - reduced.reduced_edges as f64 / fg.graph().num_edges() as f64)
        );
        let (ec_plain, ec_red) = (plain.report.total_ec(), reduced.report.total_ec());
        println!(
            "  extension cost: {ec_plain} -> {ec_red} ({:.1}% fewer candidate tests)",
            100.0 * (1.0 - ec_red as f64 / ec_plain.max(1) as f64)
        );
        if let Some(s) = reduced.subgraphs.first() {
            println!(
                "  sample result: vertices {:?} edges {:?}",
                s.vertices, s.edges
            );
        }
    }
}
