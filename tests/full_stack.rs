//! Workspace-level integration tests through the umbrella crate: every
//! application, on every extension strategy, against independent oracles.

use fractal::pattern::CanonicalCode;
use fractal::prelude::*;
use std::collections::HashMap;

fn fc() -> FractalContext {
    FractalContext::new(ClusterConfig::local(2, 2))
}

#[test]
fn paper_running_example_counts() {
    // The graph of Fig. 1: vertices v0..v6. Reconstructed edges consistent
    // with the figure's counts are not fully recoverable from text, so use
    // the canonical toy: triangle + tail + square sharing a vertex.
    let g = fractal::graph::unlabeled_from_edges(
        6,
        &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
    );
    let fg = fc().fractal_graph(g);
    // 2 triangles, every edge is a 2-vertex subgraph, etc.
    assert_eq!(fractal::apps::cliques::count(&fg, 3), 2);
    assert_eq!(fg.vfractoid().expand(2).count(), 7);
    let motifs = fractal::apps::motifs::motifs(&fg, 3);
    let total: u64 = motifs.values().sum();
    assert_eq!(total, fg.vfractoid().expand(3).count());
}

#[test]
fn three_fractoid_types_agree_on_triangles() {
    let g = fractal::graph::gen::mico_like(300, 1, 99);
    let fg = fc().fractal_graph(g);
    let vertex_way = fg.vfractoid().expand(3).filter(|s| s.is_clique()).count();
    let edge_way = fg
        .efractoid()
        .expand(3)
        .filter(|s| s.num_vertices() == 3)
        .count();
    let pattern_way = fg
        .pfractoid_unlabeled(&Pattern::clique(3))
        .expand(3)
        .count();
    assert_eq!(vertex_way, edge_way);
    assert_eq!(vertex_way, pattern_way);
    assert!(vertex_way > 0);
}

#[test]
fn apps_agree_with_baselines_end_to_end() {
    let g = fractal::graph::gen::youtube_like(250, 2, 41);
    let fg = fc().fractal_graph(g.clone());

    // Motifs vs the single-thread baseline.
    let motifs = fractal::apps::motifs::motifs(&fg, 3);
    let st = fractal::baselines::single_thread::gtries_motifs(&g, 3);
    assert_eq!(motifs, st);

    // Cliques vs KClist.
    assert_eq!(
        fractal::apps::cliques::count(&fg, 4),
        fractal::baselines::single_thread::kclist_cliques(&g, 4)
    );

    // Triangles vs node-iterator.
    assert_eq!(
        fractal::apps::cliques::triangles(&fg),
        fractal::baselines::single_thread::node_iterator_triangles(&g)
    );
}

#[test]
fn fsm_exact_supports_against_grami() {
    let g = fractal::graph::gen::patents_like(80, 3, 13);
    let fg = fc().fractal_graph(g.clone());
    let ours: HashMap<CanonicalCode, u64> =
        fractal::apps::fsm::frequent_map(&fractal::apps::fsm::fsm(&fg, 10, 2));
    let grami: HashMap<CanonicalCode, u64> =
        fractal::baselines::single_thread::grami_fsm(&g, 10, 2)
            .into_iter()
            .collect();
    assert_eq!(ours, grami);
}

#[test]
fn io_roundtrip_through_context() {
    let g = fractal::graph::gen::mico_like(120, 5, 3);
    let dir = std::env::temp_dir().join("fractal_full_stack");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.adj");
    fractal::graph::io::save_adjacency_list(&g, &path).unwrap();
    let fg = fc().adjacency_list(&path).unwrap();
    let fg_orig = fc().fractal_graph(g);
    assert_eq!(
        fractal::apps::cliques::triangles(&fg),
        fractal::apps::cliques::triangles(&fg_orig)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn custom_enumerator_through_public_api() {
    // Listing 7: pass a custom subgraph enumerator to vfractoid.
    let g = fractal::graph::gen::youtube_like(200, 1, 17);
    let fg = fc().fractal_graph(g.clone());
    let dag = std::sync::Arc::new(fractal::subgraph::kclist::CliqueDag::build(&g));
    let custom = fg
        .vfractoid_with(move |_| {
            Box::new(fractal::subgraph::KClistEnumerator::with_dag(dag.clone()))
        })
        .expand(1)
        .explore(4)
        .count();
    assert_eq!(custom, fractal::apps::cliques::count(&fg, 4));
}

#[test]
fn subgraph_outputs_are_real_subgraphs() {
    let g = fractal::graph::gen::mico_like(200, 2, 23);
    let fg = fc().fractal_graph(g.clone());
    for s in fractal::apps::cliques::list(&fg, 3) {
        assert_eq!(s.vertices.len(), 3);
        assert_eq!(s.edges.len(), 3);
        for &e in &s.edges {
            let (a, b) = g.edge_endpoints(fractal::graph::EdgeId(e));
            assert!(s.vertices.contains(&a.raw()));
            assert!(s.vertices.contains(&b.raw()));
        }
    }
}
