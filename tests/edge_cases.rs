//! Edge cases and failure injection across the stack: degenerate graphs,
//! out-of-range parameters, empty results, reduced-to-empty graphs.

use fractal::prelude::*;

fn fc() -> FractalContext {
    FractalContext::new(ClusterConfig::local(2, 2))
}

#[test]
fn k_larger_than_graph_yields_zero() {
    let g = fractal::graph::gen::complete(4);
    let fg = fc().fractal_graph(g);
    assert_eq!(fractal::apps::cliques::count(&fg, 5), 0);
    assert_eq!(fractal::apps::cliques::count_kclist(&fg, 7), 0);
    assert!(fractal::apps::motifs::motifs(&fg, 6).is_empty());
}

#[test]
fn graph_with_isolated_vertices() {
    // 5 vertices, only one edge: isolated vertices are valid 1-vertex
    // subgraphs but never extend.
    let g = fractal::graph::unlabeled_from_edges(5, &[(0, 1)]);
    let fg = fc().fractal_graph(g);
    assert_eq!(fg.vfractoid().expand(1).count(), 5);
    assert_eq!(fg.vfractoid().expand(2).count(), 1);
    assert_eq!(fg.vfractoid().expand(3).count(), 0);
}

#[test]
fn edgeless_graph() {
    let mut b = fractal::graph::GraphBuilder::new();
    for _ in 0..3 {
        b.add_vertex(fractal::graph::Label(0));
    }
    let fg = fc().fractal_graph(b.build());
    assert_eq!(fg.vfractoid().expand(1).count(), 3);
    assert_eq!(fg.efractoid().expand(1).count(), 0);
    assert_eq!(fractal::apps::cliques::triangles(&fg), 0);
}

#[test]
fn reduction_to_empty_graph_is_safe() {
    let g = fractal::graph::gen::mico_like(100, 2, 3);
    let fg = fc().fractal_graph(g);
    let empty = fg.vfilter(|_, _| false);
    assert_eq!(empty.graph().num_vertices(), 0);
    assert_eq!(empty.vfractoid().expand(1).count(), 0);
    assert_eq!(fractal::apps::cliques::count(&empty, 3), 0);
}

#[test]
fn fsm_zero_iterations_and_impossible_support() {
    let g = fractal::graph::gen::complete(4);
    let fg = fc().fractal_graph(g);
    let none = fractal::apps::fsm::fsm(&fg, 1, 0);
    assert!(none.frequent.is_empty());
    let impossible = fractal::apps::fsm::fsm(&fg, u64::MAX, 3);
    assert!(impossible.frequent.is_empty());
    let reduced = fractal::apps::fsm::fsm_with_reduction(&fg, u64::MAX, 3);
    assert!(reduced.frequent.is_empty());
}

#[test]
fn pattern_query_larger_than_graph() {
    let g = fractal::graph::gen::complete(3);
    let fg = fc().fractal_graph(g);
    assert_eq!(
        fractal::apps::query::count_matches(&fg, &Pattern::clique(4)),
        0
    );
}

#[test]
fn single_vertex_and_single_edge_graphs() {
    let mut b = fractal::graph::GraphBuilder::new();
    let u = b.add_vertex(fractal::graph::Label(0));
    let v = b.add_vertex(fractal::graph::Label(0));
    b.add_edge(u, v, fractal::graph::Label(0)).unwrap();
    let fg = fc().fractal_graph(b.build());
    assert_eq!(fg.vfractoid().expand(2).count(), 1);
    let subs = fg.efractoid().expand(1).subgraphs();
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].edges, vec![0]);
}

#[test]
fn keyword_search_with_no_hits() {
    let g = fractal::graph::gen::wikidata_like(200, 20, 9);
    let fg = fc().fractal_graph(g.clone());
    let table = g.keyword_table().unwrap();
    // A keyword that exists but decorate nothing is impossible here (all
    // interned keywords were used); instead query a rare pair that cannot
    // co-occur adjacently by checking the result is consistent between
    // modes even when empty-ish.
    let kw_hi = table.get(&format!("kw{}", table.len() - 1)).unwrap();
    let plain = fractal::apps::keyword::keyword_search(&fg, &[kw_hi, kw_hi], false);
    let red = fractal::apps::keyword::keyword_search(&fg, &[kw_hi, kw_hi], true);
    assert_eq!(plain.subgraphs.len(), red.subgraphs.len());
}

#[test]
fn aggregation_on_no_subgraphs_is_empty() {
    let g = fractal::graph::gen::cycle(6); // no triangles
    let fg = fc().fractal_graph(g);
    let agg = fg
        .vfractoid()
        .expand(1)
        .filter(|s| s.last_level_edge_count() == s.num_vertices() - 1)
        .explore(3)
        .aggregate("m", |s| s.num_edges(), |_| 1u64, |a, v| *a += v)
        .aggregation::<usize, u64>("m");
    assert!(agg.is_empty());
}

#[test]
fn zero_latency_and_high_latency_agree() {
    let g = fractal::graph::gen::mico_like(150, 1, 4);
    let a =
        FractalContext::new(ClusterConfig::local(2, 2).with_latency_us(0)).fractal_graph(g.clone());
    let b = FractalContext::new(ClusterConfig::local(2, 2).with_latency_us(500)).fractal_graph(g);
    assert_eq!(
        fractal::apps::cliques::count(&a, 4),
        fractal::apps::cliques::count(&b, 4)
    );
}
