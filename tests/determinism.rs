//! Determinism and configuration-invariance: results never depend on the
//! cluster shape, stealing mode, or repetition.

use fractal::pattern::CanonicalCode;
use fractal::prelude::*;
use std::collections::HashMap;

fn shapes() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::single_thread(),
        ClusterConfig::local(1, 4),
        ClusterConfig::local(2, 2),
        ClusterConfig::local(2, 2).with_ws(WsMode::Disabled),
        ClusterConfig::local(2, 2).with_ws(WsMode::ExternalOnly),
        ClusterConfig::local(4, 1)
            .with_ws(WsMode::Both)
            .with_latency_us(1),
    ]
}

#[test]
fn motif_census_invariant() {
    let g = fractal::graph::gen::mico_like(220, 3, 7);
    let mut reference: Option<HashMap<CanonicalCode, u64>> = None;
    for cfg in shapes() {
        let fg = FractalContext::new(cfg).fractal_graph(g.clone());
        let m = fractal::apps::motifs::motifs(&fg, 3);
        match &reference {
            None => reference = Some(m),
            Some(r) => assert_eq!(&m, r),
        }
    }
}

#[test]
fn query_counts_invariant() {
    let g = fractal::graph::gen::patents_like(200, 1, 7);
    let q = fractal::apps::query::diamond();
    let mut reference = None;
    for cfg in shapes() {
        let fg = FractalContext::new(cfg).fractal_graph(g.clone());
        let n = fractal::apps::query::count_matches(&fg, &q);
        match reference {
            None => reference = Some(n),
            Some(r) => assert_eq!(n, r),
        }
    }
}

#[test]
fn fsm_results_invariant() {
    let g = fractal::graph::gen::patents_like(80, 3, 29);
    let mut reference: Option<HashMap<CanonicalCode, u64>> = None;
    for cfg in shapes().into_iter().take(4) {
        let fg = FractalContext::new(cfg).fractal_graph(g.clone());
        let m = fractal::apps::fsm::frequent_map(&fractal::apps::fsm::fsm(&fg, 8, 2));
        match &reference {
            None => reference = Some(m),
            Some(r) => assert_eq!(&m, r),
        }
    }
}

#[test]
fn repeated_runs_identical() {
    let g = fractal::graph::gen::youtube_like(200, 1, 31);
    let fg = FractalContext::new(ClusterConfig::local(2, 2)).fractal_graph(g);
    let runs: Vec<u64> = (0..3)
        .map(|_| fractal::apps::cliques::count(&fg, 4))
        .collect();
    assert!(runs.windows(2).all(|w| w[0] == w[1]), "{runs:?}");
}

#[test]
fn generators_are_deterministic() {
    let a = fractal::graph::gen::wikidata_like(300, 40, 5);
    let b = fractal::graph::gen::wikidata_like(300, 40, 5);
    assert_eq!(a.num_edges(), b.num_edges());
    for v in a.vertices() {
        assert_eq!(a.neighbors(v), b.neighbors(v));
        assert_eq!(a.vertex_keywords(v), b.vertex_keywords(v));
    }
}
