//! Qualitative shape tests: the claims the paper's evaluation rests on,
//! asserted as invariants rather than timed comparisons (timing is the
//! harness's job; these must hold on any machine).

use fractal::prelude::*;
use fractal_baselines::bfs_engine::{self, BfsConfig, Storage};

/// §4.1/Table 2: the BFS engine's stored state grows steeply with the
/// enumeration depth; Fractal's from-scratch DFS state stays flat.
#[test]
fn memory_flat_vs_growing() {
    let g = fractal::graph::gen::mico_like(250, 2, 31);
    let fc = FractalContext::new(ClusterConfig::local(2, 2));
    let fg = fc.fractal_graph(g.clone());

    let frac_mem: Vec<u64> = (3..=5)
        .map(|k| {
            let (_, r) = fractal::apps::cliques::count_with_report(&fg, k);
            r.peak_worker_state_bytes()
        })
        .collect();
    let bfs_mem: Vec<u64> = (3..=5)
        .map(|k| {
            bfs_engine::motifs_bfs(&g, k, &BfsConfig::new(2).with_storage(Storage::Flat), false)
                .stats()
                .peak_state_bytes
        })
        .collect();
    // BFS state explodes with depth…
    assert!(bfs_mem[2] > 4 * bfs_mem[0], "bfs: {bfs_mem:?}");
    // …while Fractal stays within a small constant factor.
    let fmax = *frac_mem.iter().max().unwrap() as f64;
    let fmin = *frac_mem.iter().min().unwrap().max(&1) as f64;
    assert!(fmax / fmin < 4.0, "fractal state not flat: {frac_mem:?}");
    // And at the deepest level the BFS engine holds far more state.
    assert!(
        bfs_mem[2] > frac_mem[2],
        "bfs {bfs_mem:?} vs fractal {frac_mem:?}"
    );
}

/// §4.2/Fig. 16: enabling work stealing on skewed work reduces per-core
/// imbalance without changing results.
#[test]
fn work_stealing_improves_balance() {
    let g = fractal::graph::gen::barabasi_albert(600, 7, 1, 1, 3);
    let run = |mode: WsMode| {
        let fc = FractalContext::new(ClusterConfig::local(2, 2).with_ws(mode));
        let fg = fc.fractal_graph(g.clone());
        fractal::apps::cliques::count_with_report(&fg, 4)
    };
    let (count_d, rep_d) = run(WsMode::Disabled);
    let (count_b, rep_b) = run(WsMode::Both);
    assert_eq!(count_d, count_b);
    let imb_d = rep_d.steps[0].imbalance();
    let imb_b = rep_b.steps[0].imbalance();
    let (int, ext) = rep_b.steals();
    assert!(int + ext > 0, "no steals on skewed work");
    assert!(
        imb_b < imb_d || imb_d < 0.1,
        "stealing did not improve balance: {imb_d:.3} -> {imb_b:.3}"
    );
}

/// §4.3/Fig. 17: graph reduction slashes the extension cost for localized
/// (keyword) workloads and preserves results exactly.
#[test]
fn reduction_helps_keyword_search() {
    let g = fractal::graph::gen::wikidata_like(1500, 80, 7);
    let fc = FractalContext::new(ClusterConfig::local(1, 2));
    let fg = fc.fractal_graph(g);
    let words = ["kw2", "kw9"];
    let plain = fractal::apps::keyword::keyword_search_str(&fg, &words, false).unwrap();
    let reduced = fractal::apps::keyword::keyword_search_str(&fg, &words, true).unwrap();
    assert_eq!(plain.subgraphs.len(), reduced.subgraphs.len());
    assert!(
        reduced.report.total_ec() * 2 < plain.report.total_ec(),
        "EC {} -> {}",
        plain.report.total_ec(),
        reduced.report.total_ec()
    );
}

/// §6: the counter-example — reducing the input to clique-participating
/// elements barely moves the extension cost of clique mining.
#[test]
fn reduction_does_not_help_cliques_much() {
    let g = fractal::graph::gen::mico_like(300, 1, 77);
    let fc = FractalContext::new(ClusterConfig::local(1, 2));
    let fg = fc.fractal_graph(g.clone());
    let k = 4;
    let (n_before, rep_before) = fractal::apps::cliques::count_with_report(&fg, k);
    let tracked = fractal::apps::cliques::cliques_fractoid(&fg, k).execute_tracking_participation();
    let p = tracked.participation.unwrap();
    let reduced = fg.wrap_reduced(g.reduce(&p.vertices, &p.edges));
    let (n_after, rep_after) = fractal::apps::cliques::count_with_report(&reduced, k);
    assert_eq!(n_before, n_after);
    // Most of the EC survives: candidate tests concentrate in the dense
    // regions the reduction keeps. (Keyword search drops EC by >2x in the
    // companion test; here the bulk remains.)
    assert!(
        rep_after.total_ec() * 10 > rep_before.total_ec() * 5,
        "clique EC unexpectedly halved: {} -> {}",
        rep_before.total_ec(),
        rep_after.total_ec()
    );
}

/// §6: work-stealing overhead is a small fraction of execution.
#[test]
fn steal_overhead_is_small() {
    let g = fractal::graph::gen::mico_like(400, 1, 13);
    let fc = FractalContext::new(ClusterConfig::local(2, 2));
    let fg = fc.fractal_graph(g);
    let (_, report) = fractal::apps::cliques::count_with_report(&fg, 4);
    let overhead = report.steps[0].steal_overhead();
    assert!(overhead < 0.25, "steal overhead {overhead:.3} too large");
}

/// Algorithm 2: FSM splits into one step per aggregation filter, and
/// recomputing from scratch reuses published aggregations.
#[test]
fn fsm_is_multi_step_and_reuses_aggregations() {
    let g = fractal::graph::gen::patents_like(100, 3, 19);
    let fc = FractalContext::new(ClusterConfig::local(1, 2));
    let fg = fc.fractal_graph(g);
    let result = fractal::apps::fsm::fsm(&fg, 8, 3);
    // Iteration i's report contains exactly one *new* step (ancestor
    // aggregations are served from the store).
    for (i, report) in result.reports.iter().enumerate() {
        assert_eq!(report.num_steps(), 1, "iteration {i} recomputed steps");
    }
    assert!(result.reports.len() >= 2, "fsm did not iterate");
}
