//! End-to-end CLI tests for the multi-process cluster path: `fractal
//! submit --local-cluster N` spawns real worker processes over localhost
//! TCP and `--verify-single` re-runs the job in-process, dying unless the
//! results are bit-identical. The chaos variant SIGKILLs one worker
//! mid-job and demands the same exactness from the recovery path.

use std::process::{Command, Output};

fn submit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fractal"))
        .arg("submit")
        .args(args)
        .output()
        .expect("run fractal submit")
}

fn assert_verified(out: &Output) {
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "submit failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("VERIFY OK"),
        "missing VERIFY OK\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn submit_local_cluster_matches_single_process() {
    let out = submit(&[
        "--app",
        "motifs",
        "-k",
        "3",
        "--gen",
        "mico",
        "--n",
        "220",
        "--seed",
        "7",
        "--local-cluster",
        "2",
        "--verify-single",
    ]);
    assert_verified(&out);
}

#[test]
fn submit_survives_worker_kill_with_identical_results() {
    let out = submit(&[
        "--app",
        "motifs",
        "-k",
        "3",
        "--gen",
        "mico",
        "--n",
        "300",
        "--seed",
        "7",
        "--local-cluster",
        "3",
        "--chaos-kill",
        "1",
        "--verify-single",
    ]);
    assert_verified(&out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("recovered from 1 worker death(s)"),
        "kill never fired:\n{stderr}"
    );
}

#[test]
fn submit_kclist_local_cluster_matches_single_process() {
    let out = submit(&[
        "--app",
        "cliques",
        "-k",
        "4",
        "--gen",
        "mico",
        "--n",
        "250",
        "--seed",
        "11",
        "--local-cluster",
        "3",
        "--verify-single",
    ]);
    assert_verified(&out);
}
