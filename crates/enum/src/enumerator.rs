//! The subgraph enumerator abstraction (Fig. 7) and its three built-in
//! extension strategies.
//!
//! An enumerator knows how to compute the extension candidates of the
//! current subgraph (`compute_extensions`) and how to apply/undo one
//! extension word (`extend`/`retract`). Enumerators may carry custom state
//! (the KClist enumerator of Appendix B keeps per-level candidate sets);
//! when a stolen work unit lands on another core the state is **rebuilt
//! from the prefix** — the "from scratch" philosophy applied to stolen
//! work, which keeps steal messages small (§4.2).

use crate::canonical::{canonical_edge_extension, canonical_vertex_extension};
use crate::subgraph::Subgraph;
use fractal_graph::kernels::seek_above;
use fractal_graph::{ExtensionKernels, Graph, KernelCounters, VertexId};
use fractal_pattern::ExplorationPlan;
use std::sync::Arc;

/// A strategy for growing subgraphs one word at a time (Fig. 7).
///
/// `compute_extensions` returns the number of candidate tests performed —
/// the paper's *extension cost* (EC) metric (§4.3).
pub trait SubgraphEnumerator: Send {
    /// Computes the extension words of `sg` into `out` (cleared first).
    /// Returns the number of candidate tests performed.
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64;

    /// Applies extension `word` to `sg` (and any custom state).
    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64);

    /// Undoes the most recent extension.
    fn retract(&mut self, g: &Graph, sg: &mut Subgraph);

    /// Clears custom state (called before rebuilding from a prefix).
    fn reset_state(&mut self, _g: &Graph) {}

    /// Rebuilds `sg` and custom state from a word prefix (stolen work).
    fn rebuild(&mut self, g: &Graph, sg: &mut Subgraph, words: &[u64]) {
        sg.reset();
        self.reset_state(g);
        for &w in words {
            self.extend(g, sg, w);
        }
    }

    /// Drains the kernel-path counters accumulated since the last call
    /// (merge/gallop/bitset invocations, elements scanned, arena
    /// high-water mark). Enumerators that bypass the kernel layer return
    /// the zero default.
    fn take_kernel_counters(&mut self) -> KernelCounters {
        KernelCounters::default()
    }

    /// A fresh clone for another core (shared immutable state may be
    /// reference-counted).
    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator>;
}

impl Clone for Box<dyn SubgraphEnumerator> {
    fn clone(&self) -> Self {
        self.clone_boxed()
    }
}

/// Vertex-induced extension (Fig. 1): add a neighbor vertex plus all its
/// edges into the subgraph, filtered by the canonicality rule.
#[derive(Debug, Default, Clone)]
pub struct VertexInducedEnumerator {
    kernels: ExtensionKernels,
    scratch: Vec<u32>,
    anchors: Vec<u32>,
    sufmax: Vec<u32>,
}

impl VertexInducedEnumerator {
    /// Creates the enumerator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SubgraphEnumerator for VertexInducedEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        if sg.num_vertices() == 0 {
            out.extend(0..g.num_vertices() as u64);
            return g.num_vertices() as u64;
        }
        // Anchored multi-way merge-union of the prefix's sorted
        // neighborhoods (the CSR slices are sorted, so no gather + sort +
        // dedup). The union reports each candidate's anchor — the earliest
        // prefix position it is adjacent to — which turns the canonicality
        // rule into a single suffix-max comparison: a candidate `u`
        // anchored at position `a` is canonical iff `u > prefix[0]` and
        // `u > max(prefix[a+1..])`. No per-candidate adjacency probes.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut anchors = std::mem::take(&mut self.anchors);
        {
            let lists: Vec<&[u32]> = sg
                .vertices()
                .iter()
                .map(|&v| g.neighbors(VertexId(v)))
                .collect();
            self.kernels
                .union_sorted_anchored_into(&lists, &mut scratch, &mut anchors);
        }
        let prefix = sg.vertices();
        self.sufmax.clear();
        self.sufmax.resize(prefix.len(), 0);
        let mut running = 0u32;
        for i in (0..prefix.len()).rev() {
            running = running.max(prefix[i]);
            self.sufmax[i] = running;
        }
        let first = prefix[0];
        let mut tests = 0u64;
        for (&u, &a) in scratch.iter().zip(&anchors) {
            if sg.has_vertex(u) {
                continue;
            }
            tests += 1;
            debug_assert_eq!(
                u > first && self.sufmax.get(a as usize + 1).is_none_or(|&m| m < u),
                canonical_vertex_extension(g, prefix, u)
            );
            if u > first && self.sufmax.get(a as usize + 1).is_none_or(|&m| m < u) {
                out.push(u as u64);
            }
        }
        self.scratch = scratch;
        self.anchors = anchors;
        tests
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        sg.push_vertex_induced(g, word as u32);
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        sg.pop_vertex_induced();
    }

    fn take_kernel_counters(&mut self) -> KernelCounters {
        self.kernels.take_counters()
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(VertexInducedEnumerator::new())
    }
}

/// Edge-induced extension (Fig. 1): add an incident edge, filtered by the
/// canonicality rule over edge ids.
#[derive(Debug, Default, Clone)]
pub struct EdgeInducedEnumerator {
    kernels: ExtensionKernels,
    incident_scratch: Vec<Vec<u32>>,
    scratch: Vec<u32>,
}

impl EdgeInducedEnumerator {
    /// Creates the enumerator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SubgraphEnumerator for EdgeInducedEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        if sg.num_edges() == 0 {
            out.extend(0..g.num_edges() as u64);
            return g.num_edges() as u64;
        }
        // Incident-edge lists are CSR slices ordered by neighbor vertex,
        // not by edge id — sort each (reusing buffers) and merge-union.
        let nv = sg.num_vertices();
        while self.incident_scratch.len() < nv {
            self.incident_scratch.push(Vec::new());
        }
        for (i, &v) in sg.vertices().iter().enumerate() {
            let buf = &mut self.incident_scratch[i];
            buf.clear();
            buf.extend_from_slice(g.incident_edges(VertexId(v)));
            buf.sort_unstable();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        {
            let lists: Vec<&[u32]> = self.incident_scratch[..nv]
                .iter()
                .map(|b| b.as_slice())
                .collect();
            self.kernels.union_sorted_into(&lists, &mut scratch);
        }
        let mut tests = 0u64;
        for &e in &scratch {
            if sg.has_edge(e) {
                continue;
            }
            tests += 1;
            if canonical_edge_extension(g, sg.edges(), e) {
                out.push(e as u64);
            }
        }
        self.scratch = scratch;
        tests
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        sg.push_edge(g, word as u32);
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        sg.pop_edge();
    }

    fn take_kernel_counters(&mut self) -> KernelCounters {
        self.kernels.take_counters()
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(EdgeInducedEnumerator::new())
    }
}

/// Pattern-induced extension (Fig. 1): grow matches of a reference pattern
/// position by position along an [`ExplorationPlan`], with Grochow–Kellis
/// symmetry breaking removing automorphic duplicates.
#[derive(Clone)]
pub struct PatternEnumerator {
    plan: Arc<ExplorationPlan>,
    /// Whether graph vertex labels must equal pattern vertex labels.
    match_vertex_labels: bool,
    /// Whether graph edge labels must equal pattern edge labels.
    match_edge_labels: bool,
    edge_scratch: Vec<u32>,
    kernels: ExtensionKernels,
    cand_a: Vec<u32>,
    cand_b: Vec<u32>,
}

impl PatternEnumerator {
    /// Builds an enumerator for `plan`, matching labels as configured.
    pub fn new(
        plan: Arc<ExplorationPlan>,
        match_vertex_labels: bool,
        match_edge_labels: bool,
    ) -> Self {
        PatternEnumerator {
            plan,
            match_vertex_labels,
            match_edge_labels,
            edge_scratch: Vec::new(),
            kernels: ExtensionKernels::new(),
            cand_a: Vec::new(),
            cand_b: Vec::new(),
        }
    }

    /// The plan driving this enumerator.
    pub fn plan(&self) -> &ExplorationPlan {
        &self.plan
    }

    /// Constraints the kernel pre-pass cannot discharge: membership,
    /// vertex label, edge labels, and upper symmetry bounds. Adjacency to
    /// every back-edge anchor and the `must_be_greater_than` lower bound
    /// are already guaranteed by the anchored intersection.
    fn residual_ok(&self, g: &Graph, matched: &[u32], pos: usize, cand: u32) -> bool {
        if matched.contains(&cand) {
            return false;
        }
        if self.match_vertex_labels
            && g.vertex_label(VertexId(cand)).raw() != self.plan.label_at(pos)
        {
            return false;
        }
        if self.match_edge_labels {
            for &(epos, elabel) in self.plan.back_edges(pos) {
                // panic-ok: the candidate came out of intersecting the matched
                // vertices' adjacency lists, so every back edge exists; a miss is a
                // kernel bug that must abort rather than silently skew counts.
                let e = g
                    .edge_between(VertexId(matched[epos as usize]), VertexId(cand))
                    .expect("intersection produced a non-adjacent candidate");
                if g.edge_label(e).raw() != elabel {
                    return false;
                }
            }
        }
        for &q in self.plan.must_be_less_than(pos) {
            if cand >= matched[q as usize] {
                return false;
            }
        }
        true
    }
}

impl SubgraphEnumerator for PatternEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        let pos = sg.num_vertices();
        if pos >= self.plan.len() {
            return 0;
        }
        let matched = sg.vertices();
        if pos == 0 {
            let mut tests = 0u64;
            for v in 0..g.num_vertices() as u32 {
                tests += 1;
                if !self.match_vertex_labels
                    || g.vertex_label(VertexId(v)).raw() == self.plan.label_at(0)
                {
                    out.push(v as u64);
                }
            }
            return tests;
        }
        // Candidates must be adjacent to *every* matched back-edge anchor:
        // intersect the anchors' sorted neighborhoods (smallest first),
        // with the `must_be_greater_than` symmetry lower bound pushed into
        // the kernel so excluded ranges are never scanned.
        let back = self.plan.back_edges(pos);
        debug_assert!(!back.is_empty(), "plan orders are connected");
        let lo = self
            .plan
            .must_be_greater_than(pos)
            .iter()
            .map(|&q| matched[q as usize])
            .max();
        self.kernels.ensure_universe(g.num_vertices());
        let mut acc = std::mem::take(&mut self.cand_a);
        let mut tmp = std::mem::take(&mut self.cand_b);
        acc.clear();
        {
            let mut anchors: Vec<u32> = back.iter().map(|&(p, _)| matched[p as usize]).collect();
            anchors.sort_unstable_by_key(|&v| g.degree(VertexId(v)));
            anchors.dedup();
            let base = g.neighbors(VertexId(anchors[0]));
            let base = match lo {
                Some(l) => seek_above(base, l),
                None => base,
            };
            acc.extend_from_slice(base);
            for &a in &anchors[1..] {
                self.kernels
                    .intersect_into(&acc, g.neighbors(VertexId(a)), &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        let mut tests = 0u64;
        for &cand in &acc {
            tests += 1;
            if self.residual_ok(g, matched, pos, cand) {
                out.push(cand as u64);
            }
        }
        self.cand_a = acc;
        self.cand_b = tmp;
        tests
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        let pos = sg.num_vertices();
        let v = word as u32;
        self.edge_scratch.clear();
        for &(epos, _) in self.plan.back_edges(pos) {
            let u = sg.vertices()[epos as usize];
            // panic-ok: extend candidates are adjacency-intersection members (same
            // invariant as label matching above).
            let e = g
                .edge_between(VertexId(u), VertexId(v))
                .expect("extend called with a non-adjacent candidate");
            self.edge_scratch.push(e.raw());
        }
        let edges = std::mem::take(&mut self.edge_scratch);
        sg.push_matched(v, &edges);
        self.edge_scratch = edges;
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        sg.pop_matched();
    }

    fn take_kernel_counters(&mut self) -> KernelCounters {
        self.kernels.take_counters()
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(PatternEnumerator::new(
            self.plan.clone(),
            self.match_vertex_labels,
            self.match_edge_labels,
        ))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use fractal_graph::builder::{graph_from_edges, unlabeled_from_edges};
    use fractal_pattern::Pattern;

    /// Drives an enumerator to a fixed depth, returning all complete
    /// subgraph snapshots.
    pub(crate) fn run_to_depth(
        g: &Graph,
        mut enumerator: Box<dyn SubgraphEnumerator>,
        depth: usize,
    ) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut sg = Subgraph::new(g);
        let mut out = Vec::new();
        fn rec(
            g: &Graph,
            en: &mut Box<dyn SubgraphEnumerator>,
            sg: &mut Subgraph,
            depth: usize,
            out: &mut Vec<(Vec<u32>, Vec<u32>)>,
        ) {
            if depth == 0 {
                out.push(sg.snapshot());
                return;
            }
            let mut exts = Vec::new();
            en.compute_extensions(g, sg, &mut exts);
            for w in exts {
                en.extend(g, sg, w);
                rec(g, en, sg, depth - 1, out);
                en.retract(g, sg);
            }
        }
        rec(g, &mut enumerator, &mut sg, depth, &mut out);
        out
    }

    #[test]
    fn vertex_induced_counts_triangles() {
        // Triangle + tail: exactly one 3-vertex clique, three connected
        // 3-vertex subgraphs total ({0,1,2}, {0,2,3}, {1,2,3}).
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let subs = run_to_depth(&g, Box::new(VertexInducedEnumerator::new()), 3);
        assert_eq!(subs.len(), 3);
        let cliques = subs.iter().filter(|(_, es)| es.len() == 3).count();
        assert_eq!(cliques, 1);
    }

    #[test]
    fn edge_induced_counts_paths() {
        // Path 0-1-2: 2 single edges, 1 two-edge subgraph.
        let g = unlabeled_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(
            run_to_depth(&g, Box::new(EdgeInducedEnumerator::new()), 1).len(),
            2
        );
        assert_eq!(
            run_to_depth(&g, Box::new(EdgeInducedEnumerator::new()), 2).len(),
            1
        );
    }

    #[test]
    fn pattern_enumerator_counts_triangles_once() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let plan = Arc::new(ExplorationPlan::new(&Pattern::clique(3)));
        let subs = run_to_depth(&g, Box::new(PatternEnumerator::new(plan, false, false)), 3);
        assert_eq!(subs.len(), 1);
        let (vs, es) = &subs[0];
        let mut vs = vs.clone();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
        assert_eq!(es.len(), 3);
    }

    #[test]
    fn pattern_without_symmetry_overcounts_by_group_size() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let plan = Arc::new(ExplorationPlan::without_symmetry(&Pattern::clique(3)));
        let subs = run_to_depth(&g, Box::new(PatternEnumerator::new(plan, false, false)), 3);
        assert_eq!(subs.len(), 6); // |Aut(K3)| = 6 images of the one triangle
    }

    #[test]
    fn pattern_respects_vertex_labels() {
        // Triangle with labels 0,1,1 — query a 0-1-1 triangle.
        let g = graph_from_edges(&[0, 1, 1], &[(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let q = Pattern::new(vec![0, 1, 1], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let plan = Arc::new(ExplorationPlan::new(&q));
        let subs = run_to_depth(&g, Box::new(PatternEnumerator::new(plan, true, false)), 3);
        assert_eq!(subs.len(), 1);
        // A 0-0-0 query matches nothing.
        let q0 = Pattern::new(vec![0, 0, 0], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let plan0 = Arc::new(ExplorationPlan::new(&q0));
        let subs0 = run_to_depth(&g, Box::new(PatternEnumerator::new(plan0, true, false)), 3);
        assert!(subs0.is_empty());
    }

    #[test]
    fn pattern_respects_edge_labels() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1, 5), (1, 2, 5), (0, 2, 9)]);
        // Path of two label-5 edges: only 0-1-2 matches (centered at 1).
        let q = Pattern::new(vec![0, 0, 0], vec![(0, 1, 5), (1, 2, 5)]);
        let plan = Arc::new(ExplorationPlan::new(&q));
        let subs = run_to_depth(&g, Box::new(PatternEnumerator::new(plan, false, true)), 3);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn rebuild_reproduces_state() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut en: Box<dyn SubgraphEnumerator> = Box::new(VertexInducedEnumerator::new());
        let mut sg = Subgraph::new(&g);
        en.extend(&g, &mut sg, 0);
        en.extend(&g, &mut sg, 1);
        let snap = sg.snapshot();
        let mut en2: Box<dyn SubgraphEnumerator> = en.clone_boxed();
        let mut sg2 = Subgraph::new(&g);
        en2.rebuild(&g, &mut sg2, &[0, 1]);
        assert_eq!(sg2.snapshot(), snap);
    }

    #[test]
    fn extension_cost_counts_tests() {
        let g = fractal_graph::gen::complete(4);
        let mut en = VertexInducedEnumerator::new();
        let mut sg = Subgraph::new(&g);
        let mut exts = Vec::new();
        // Root: n tests.
        assert_eq!(en.compute_extensions(&g, &sg, &mut exts), 4);
        sg.push_vertex_induced(&g, 0);
        // All 3 other vertices are candidates.
        assert_eq!(en.compute_extensions(&g, &sg, &mut exts), 3);
        assert_eq!(exts.len(), 3);
    }
}
