//! Shared extension queues: the unit of work sharing.
//!
//! The paper implements work stealing "directly over the subgraph
//! enumerator abstraction": the extension list of each enumeration level is
//! a thread-safe queue; the owning core and thieves consume extensions with
//! a single atomic fetch-add — the "very short critical section" of §4.2.

use fractal_check::facade::{AtomicUsize, Ordering};

/// A fixed list of extension words with an atomic claim cursor.
///
/// Words are `u64`-encoded vertex or edge ids. Claiming is wait-free; once
/// the cursor passes the end the queue is exhausted for everyone.
#[derive(Debug)]
pub struct ExtensionQueue {
    items: Vec<u64>,
    cursor: AtomicUsize,
}

impl ExtensionQueue {
    /// Wraps a computed extension list.
    pub fn new(items: Vec<u64>) -> Self {
        ExtensionQueue {
            items,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Claims the next unconsumed word, if any. Safe to call from any
    /// thread; each word is returned exactly once.
    #[inline]
    pub fn claim(&self) -> Option<u64> {
        // ordering: Relaxed — claim exclusivity comes from fetch_add atomicity;
        // fetch_add may overshoot past the end under contention, which is
        // harmless (cursor only ever grows, claims past len return None).
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.items.get(idx).copied()
    }

    /// Number of words actually claimed, clamped to the queue length.
    ///
    /// The raw cursor overshoots `len` under contention (every losing
    /// `fetch_add` past the end still increments it), so arithmetic on the
    /// raw value can wrap. The clamp makes the snapshot safe to subtract:
    /// callers deriving `remaining = len - claimed` can never go negative.
    /// The snapshot is still racy — it may be stale by the time the caller
    /// acts on it — but staleness only ever *overstates* remaining work
    /// (claims are monotone), which steal-victim selection tolerates: the
    /// worst case is one wasted steal attempt, never a wrapped count.
    #[inline]
    pub fn claimed(&self) -> usize {
        // ordering: Relaxed — monotonic cursor read, clamped to len; callers only
        // use this as a progress estimate.
        self.cursor.load(Ordering::Relaxed).min(self.items.len())
    }

    /// Number of words not yet claimed (racy snapshot — may be stale by the
    /// time the caller acts on it, which stealing tolerates; see
    /// [`claimed`](Self::claimed) for why this cannot underflow or wrap).
    #[inline]
    pub fn remaining(&self) -> usize {
        self.items.len() - self.claimed()
    }

    /// Whether any unclaimed word remains (racy snapshot).
    #[inline]
    pub fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Total number of words the queue started with.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue started empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The underlying word list (for diagnostics and serialization).
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Approximate resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.items.capacity() * 8 + std::mem::size_of::<AtomicUsize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claims_each_word_once() {
        let q = ExtensionQueue::new(vec![10, 20, 30]);
        assert_eq!(q.remaining(), 3);
        assert_eq!(q.claim(), Some(10));
        assert_eq!(q.claim(), Some(20));
        assert_eq!(q.remaining(), 1);
        assert!(q.has_remaining());
        assert_eq!(q.claim(), Some(30));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        let q = Arc::new(ExtensionQueue::new((0..10_000).collect()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(w) = q.claim() {
                    got.push(w);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..10_000).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn empty_queue() {
        let q = ExtensionQueue::new(Vec::new());
        assert!(q.is_empty());
        assert_eq!(q.claim(), None);
        assert!(!q.has_remaining());
    }

    #[test]
    fn overshot_cursor_stays_clamped() {
        let q = ExtensionQueue::new(vec![1, 2]);
        // Drain plus extra failed claims: the raw cursor overshoots len.
        for _ in 0..10 {
            q.claim();
        }
        assert_eq!(q.claimed(), 2);
        assert_eq!(q.remaining(), 0);
        assert!(!q.has_remaining());
    }
}
