//! Cost estimate for plain vertex-induced enumeration.
//!
//! The decomposition planner (`fractal-pattern`) carries a cost estimate
//! per compiled plan; `--plan auto` needs a comparable figure for the
//! enumeration path so it can pick the cheaper strategy. The model mirrors
//! the planner's: the enumeration frontier at depth `i` holds roughly
//! `n · d^(i-1)` connected subgraphs (with `d` the average degree), and
//! extending each costs one scan of the candidate set — about `i · d`
//! words, since a size-`i` subgraph's extension candidates are the union
//! of its vertices' neighbourhoods.
//!
//! Both estimates are unitless "words touched" figures; only their ratio
//! is meaningful, and only for steering `auto` — they are never reported
//! as measurements.

/// Estimated extension cost of enumerating all connected `k`-vertex
/// subgraphs of a graph with `vertices` vertices and average degree
/// `avg_degree`.
pub fn expansion_cost_estimate(vertices: u64, avg_degree: f64, k: usize) -> f64 {
    if k == 0 || vertices == 0 {
        return 0.0;
    }
    let n = vertices as f64;
    let d = avg_degree.max(1.0);
    let mut cost = n; // emitting the root frontier
    let mut frontier = n;
    for i in 1..k {
        cost += frontier * (i as f64) * d;
        frontier *= d;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_inputs_cost_nothing() {
        assert_eq!(expansion_cost_estimate(0, 3.0, 4), 0.0);
        assert_eq!(expansion_cost_estimate(100, 3.0, 0), 0.0);
    }

    #[test]
    fn cost_grows_with_depth_and_degree() {
        let base = expansion_cost_estimate(1000, 4.0, 3);
        assert!(expansion_cost_estimate(1000, 4.0, 4) > base);
        assert!(expansion_cost_estimate(1000, 8.0, 3) > base);
        assert!(expansion_cost_estimate(2000, 4.0, 3) > base);
    }

    #[test]
    fn single_vertex_exploration_costs_one_scan_per_root() {
        assert_eq!(expansion_cost_estimate(42, 7.0, 1), 42.0);
    }
}
