//! Canonicality checks: each connected subgraph enumerated exactly once.
//!
//! For vertex(edge)-induced extension the paper combines extension with
//! *canonical subgraph checking* in the style of Arabesque [53]. The rule
//! implemented here accepts a growth sequence iff it is the
//! lexicographically smallest connected ordering of its element set:
//!
//! * the first element is the minimum of the set, and
//! * every element appended after the position of its first "anchor"
//!   (earliest prefix element it is adjacent to) must be **greater** than
//!   all elements placed between that anchor and itself.
//!
//! Equivalently, the sequence is the greedy "always append the smallest
//! attached element" ordering, which exists and is unique for every
//! connected set — so exactly one growth sequence per subgraph survives.
//! The property tests at the crate root verify this against brute force.

use fractal_graph::{EdgeId, Graph, VertexId};

/// Whether appending vertex `u` to the vertex-induced prefix
/// `prefix` keeps the sequence canonical. The caller guarantees `u` is not
/// already in the prefix.
///
/// Returns `false` when `u` is not adjacent to the prefix at all (except
/// for the empty prefix, where every vertex is a canonical root).
#[inline]
pub fn canonical_vertex_extension(g: &Graph, prefix: &[u32], u: u32) -> bool {
    let Some((&first, rest)) = prefix.split_first() else {
        return true;
    };
    if u < first {
        return false;
    }
    let mut found = g.are_adjacent(VertexId(first), VertexId(u));
    for &w in rest {
        if found {
            if w > u {
                return false;
            }
        } else if g.are_adjacent(VertexId(w), VertexId(u)) {
            found = true;
        }
    }
    found
}

/// Whether two distinct edges share an endpoint.
#[inline]
pub fn edges_adjacent(g: &Graph, a: u32, b: u32) -> bool {
    let (s1, d1) = g.edge_endpoints(EdgeId(a));
    let (s2, d2) = g.edge_endpoints(EdgeId(b));
    s1 == s2 || s1 == d2 || d1 == s2 || d1 == d2
}

/// Whether appending edge `e` to the edge-induced prefix `prefix` keeps the
/// sequence canonical — the same rule as
/// [`canonical_vertex_extension`], over edge ids with adjacency =
/// sharing an endpoint. The caller guarantees `e` is not in the prefix.
#[inline]
pub fn canonical_edge_extension(g: &Graph, prefix: &[u32], e: u32) -> bool {
    let Some((&first, rest)) = prefix.split_first() else {
        return true;
    };
    if e < first {
        return false;
    }
    let mut found = edges_adjacent(g, first, e);
    for &w in rest {
        if found {
            if w > e {
                return false;
            }
        } else if edges_adjacent(g, w, e) {
            found = true;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::unlabeled_from_edges;
    use std::collections::BTreeSet;

    /// DFS enumeration of vertex-induced subgraphs of size `k` using the
    /// canonical rule; returns the multiset of vertex sets produced.
    fn enumerate_vertex_induced(g: &Graph, k: usize) -> Vec<BTreeSet<u32>> {
        let mut out = Vec::new();
        let mut prefix: Vec<u32> = Vec::new();
        fn rec(g: &Graph, k: usize, prefix: &mut Vec<u32>, out: &mut Vec<BTreeSet<u32>>) {
            if prefix.len() == k {
                out.push(prefix.iter().copied().collect());
                return;
            }
            // Candidates: all vertices when empty, else neighbors of the
            // prefix.
            let cands: Vec<u32> = if prefix.is_empty() {
                (0..g.num_vertices() as u32).collect()
            } else {
                let mut c: Vec<u32> = prefix
                    .iter()
                    .flat_map(|&v| g.neighbors(VertexId(v)).iter().copied())
                    .filter(|&u| !prefix.contains(&u))
                    .collect();
                c.sort_unstable();
                c.dedup();
                c
            };
            for u in cands {
                if canonical_vertex_extension(g, prefix, u) {
                    prefix.push(u);
                    rec(g, k, prefix, out);
                    prefix.pop();
                }
            }
        }
        rec(g, k, &mut prefix, &mut out);
        out
    }

    /// Brute force: all k-subsets of vertices that induce a connected
    /// subgraph.
    fn brute_force_connected_sets(g: &Graph, k: usize) -> Vec<BTreeSet<u32>> {
        let n = g.num_vertices();
        let mut out = Vec::new();
        let mut subset: Vec<u32> = Vec::new();
        fn rec(
            g: &Graph,
            k: usize,
            start: u32,
            subset: &mut Vec<u32>,
            out: &mut Vec<BTreeSet<u32>>,
        ) {
            if subset.len() == k {
                if connected(g, subset) {
                    out.push(subset.iter().copied().collect());
                }
                return;
            }
            for v in start..g.num_vertices() as u32 {
                subset.push(v);
                rec(g, k, v + 1, subset, out);
                subset.pop();
            }
        }
        fn connected(g: &Graph, vs: &[u32]) -> bool {
            let mut seen = vec![vs[0]];
            let mut frontier = vec![vs[0]];
            while let Some(v) = frontier.pop() {
                for &u in g.neighbors(VertexId(v)) {
                    if vs.contains(&u) && !seen.contains(&u) {
                        seen.push(u);
                        frontier.push(u);
                    }
                }
            }
            seen.len() == vs.len()
        }
        let _ = n;
        rec(g, k, 0, &mut subset, &mut out);
        out
    }

    fn sample_graphs() -> Vec<Graph> {
        vec![
            // Triangle with tail.
            unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]),
            // Square with diagonal.
            unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]),
            // Two triangles sharing a vertex.
            unlabeled_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]),
            // Star.
            fractal_graph::gen::star(5),
            // Complete graph.
            fractal_graph::gen::complete(5),
            // Disconnected pair of edges.
            unlabeled_from_edges(4, &[(0, 1), (2, 3)]),
        ]
    }

    #[test]
    fn vertex_rule_matches_brute_force() {
        for g in sample_graphs() {
            for k in 1..=4 {
                let mut got = enumerate_vertex_induced(&g, k);
                let mut want = brute_force_connected_sets(&g, k);
                got.sort();
                want.sort();
                // No duplicates: each set exactly once.
                let dedup_len = {
                    let mut d = got.clone();
                    d.dedup();
                    d.len()
                };
                assert_eq!(dedup_len, got.len(), "duplicates for k={k}");
                assert_eq!(got, want, "mismatch for k={k}");
            }
        }
    }

    /// DFS enumeration of edge-induced subgraphs of size `k` edges.
    fn enumerate_edge_induced(g: &Graph, k: usize) -> Vec<BTreeSet<u32>> {
        let mut out = Vec::new();
        let mut prefix: Vec<u32> = Vec::new();
        fn rec(g: &Graph, k: usize, prefix: &mut Vec<u32>, out: &mut Vec<BTreeSet<u32>>) {
            if prefix.len() == k {
                out.push(prefix.iter().copied().collect());
                return;
            }
            let cands: Vec<u32> = if prefix.is_empty() {
                (0..g.num_edges() as u32).collect()
            } else {
                let mut c: Vec<u32> = Vec::new();
                for &e in prefix.iter() {
                    let (s, d) = g.edge_endpoints(EdgeId(e));
                    for v in [s, d] {
                        for &e2 in g.incident_edges(v) {
                            if !prefix.contains(&e2) {
                                c.push(e2);
                            }
                        }
                    }
                }
                c.sort_unstable();
                c.dedup();
                c
            };
            for e in cands {
                if canonical_edge_extension(g, prefix, e) {
                    prefix.push(e);
                    rec(g, k, prefix, out);
                    prefix.pop();
                }
            }
        }
        rec(g, k, &mut prefix, &mut out);
        out
    }

    /// Brute force: all k-subsets of edges forming a connected line graph.
    fn brute_force_connected_edge_sets(g: &Graph, k: usize) -> Vec<BTreeSet<u32>> {
        let m = g.num_edges() as u32;
        let mut out = Vec::new();
        let mut subset: Vec<u32> = Vec::new();
        fn connected(g: &Graph, es: &[u32]) -> bool {
            let mut seen = vec![es[0]];
            let mut frontier = vec![es[0]];
            while let Some(e) = frontier.pop() {
                for &f in es {
                    if !seen.contains(&f) && edges_adjacent(g, e, f) {
                        seen.push(f);
                        frontier.push(f);
                    }
                }
            }
            seen.len() == es.len()
        }
        fn rec(
            g: &Graph,
            k: usize,
            start: u32,
            m: u32,
            subset: &mut Vec<u32>,
            out: &mut Vec<BTreeSet<u32>>,
        ) {
            if subset.len() == k {
                if connected(g, subset) {
                    out.push(subset.iter().copied().collect());
                }
                return;
            }
            for e in start..m {
                subset.push(e);
                rec(g, k, e + 1, m, subset, out);
                subset.pop();
            }
        }
        rec(g, k, 0, m, &mut subset, &mut out);
        out
    }

    #[test]
    fn edge_rule_matches_brute_force() {
        for g in sample_graphs() {
            for k in 1..=3 {
                let mut got = enumerate_edge_induced(&g, k);
                let mut want = brute_force_connected_edge_sets(&g, k);
                got.sort();
                want.sort();
                let dedup_len = {
                    let mut d = got.clone();
                    d.dedup();
                    d.len()
                };
                assert_eq!(dedup_len, got.len(), "duplicates for k={k}");
                assert_eq!(got, want, "mismatch for k={k}");
            }
        }
    }

    #[test]
    fn root_is_always_canonical() {
        let g = fractal_graph::gen::path(3);
        for v in 0..3 {
            assert!(canonical_vertex_extension(&g, &[], v));
        }
        for e in 0..2 {
            assert!(canonical_edge_extension(&g, &[], e));
        }
    }

    #[test]
    fn smaller_than_first_rejected() {
        let g = fractal_graph::gen::complete(4);
        assert!(!canonical_vertex_extension(&g, &[2], 0));
        assert!(canonical_vertex_extension(&g, &[2], 3));
    }
}
