//! # fractal-enum
//!
//! Subgraph representation and enumeration.
//!
//! This crate implements the *extension* primitive of the Fractal model
//! (§3, Fig. 1): given a subgraph, produce the candidate words (vertices or
//! edges) that extend it, with redundancy eliminated by canonicality checks
//! (vertex- and edge-induced) or symmetry breaking (pattern-induced).
//!
//! - [`Subgraph`] — an incrementally grown connected subgraph with O(1)
//!   membership tests and per-level rollback (the structure each core
//!   mutates during the DFS of Algorithm 1),
//! - [`canonical`] — the canonicality rules that make every subgraph be
//!   enumerated exactly once,
//! - [`enumerator`] — the [`SubgraphEnumerator`] abstraction of Fig. 7 and
//!   its vertex-, edge- and pattern-induced implementations,
//! - [`kclist`] — the custom KClist clique enumerator of Appendix B,
//! - [`cost`] — the enumeration cost estimate that `--plan auto` weighs
//!   against a compiled decomposition plan's estimate,
//! - [`queue`] — shared extension queues with atomic claim cursors, the
//!   unit of work stealing (§4.2).

pub mod canonical;
pub mod cost;
pub mod enumerator;
pub mod kclist;
pub mod queue;
pub mod sampling;
pub mod subgraph;

pub use cost::expansion_cost_estimate;
pub use enumerator::{
    EdgeInducedEnumerator, PatternEnumerator, SubgraphEnumerator, VertexInducedEnumerator,
};
pub use kclist::KClistEnumerator;
pub use queue::ExtensionQueue;
pub use sampling::SamplingEnumerator;
pub use subgraph::Subgraph;

/// How subgraphs are grown — the three extension strategies of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Induction {
    /// Grow vertex-by-vertex; all edges to the new vertex are included.
    Vertex,
    /// Grow edge-by-edge.
    Edge,
    /// Grow vertex-by-vertex guided by a reference pattern.
    Pattern,
}
