//! A sampling subgraph enumerator — the Appendix B use case beyond
//! KClist: "a specific policy for generating extension candidates, such
//! as sampling".
//!
//! [`SamplingEnumerator`] wraps any inner enumerator and keeps each
//! extension candidate with probability `p`, thinning the enumeration
//! tree: the expected number of surviving subgraphs at depth `d` is
//! `p^d × N_d`, so dividing a sampled count by `p^d` gives an unbiased
//! estimator of `N_d` (each depth-`d` subgraph's generation path survives
//! with probability exactly `p^d`).
//!
//! The coin for a candidate is a hash of `(seed, prefix words, word)` —
//! deterministic and **location-independent**, so a stolen unit rebuilt on
//! another core draws exactly the same decisions and parallel estimates
//! are reproducible.

use crate::enumerator::SubgraphEnumerator;
use crate::subgraph::Subgraph;
use fractal_graph::Graph;
use std::hash::{Hash, Hasher};

/// Wraps an enumerator, keeping each extension with probability `p`.
pub struct SamplingEnumerator {
    inner: Box<dyn SubgraphEnumerator>,
    /// Keep-probability in `(0, 1]`.
    p: f64,
    seed: u64,
}

impl SamplingEnumerator {
    /// Wraps `inner`, keeping extensions with probability `p` using coins
    /// derived from `seed`.
    pub fn new(inner: Box<dyn SubgraphEnumerator>, p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "keep probability must be in (0, 1]");
        SamplingEnumerator { inner, p, seed }
    }

    /// The correction factor `p^-depth` that de-biases counts measured at
    /// `depth` extensions.
    pub fn correction(&self, depth: usize) -> f64 {
        self.p.powi(-(depth as i32))
    }

    fn keep(&self, prefix: &[u32], word: u64) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        prefix.hash(&mut h);
        word.hash(&mut h);
        // Map the hash to [0, 1).
        let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        u < self.p
    }
}

impl SubgraphEnumerator for SamplingEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        let tests = self.inner.compute_extensions(g, sg, out);
        // The coin keys on the vertex prefix: identical for the original
        // owner and for a thief that rebuilt the prefix.
        let prefix = sg.vertices();
        out.retain(|&w| self.keep(prefix, w));
        tests
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        self.inner.extend(g, sg, word);
    }

    fn retract(&mut self, g: &Graph, sg: &mut Subgraph) {
        self.inner.retract(g, sg);
    }

    fn reset_state(&mut self, g: &Graph) {
        self.inner.reset_state(g);
    }

    fn take_kernel_counters(&mut self) -> fractal_graph::KernelCounters {
        self.inner.take_kernel_counters()
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(SamplingEnumerator {
            inner: self.inner.clone_boxed(),
            p: self.p,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::VertexInducedEnumerator;
    use fractal_graph::gen;

    fn count_at_depth(g: &Graph, mut en: Box<dyn SubgraphEnumerator>, depth: usize) -> u64 {
        fn rec(
            g: &Graph,
            en: &mut Box<dyn SubgraphEnumerator>,
            sg: &mut Subgraph,
            depth: usize,
        ) -> u64 {
            if depth == 0 {
                return 1;
            }
            let mut exts = Vec::new();
            en.compute_extensions(g, sg, &mut exts);
            let mut n = 0;
            for w in exts {
                en.extend(g, sg, w);
                n += rec(g, en, sg, depth - 1);
                en.retract(g, sg);
            }
            n
        }
        let mut sg = Subgraph::new(g);
        rec(g, &mut en, &mut sg, depth)
    }

    #[test]
    fn p_one_is_exact() {
        let g = gen::mico_like(120, 1, 5);
        let exact = count_at_depth(&g, Box::new(VertexInducedEnumerator::new()), 3);
        let sampled = count_at_depth(
            &g,
            Box::new(SamplingEnumerator::new(
                Box::new(VertexInducedEnumerator::new()),
                1.0,
                7,
            )),
            3,
        );
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampling_thins_and_estimates() {
        let g = gen::mico_like(250, 1, 9);
        let exact = count_at_depth(&g, Box::new(VertexInducedEnumerator::new()), 3) as f64;
        // Average several seeds: the estimator is unbiased, one draw is
        // noisy.
        let p = 0.5;
        let mut est_sum = 0.0;
        let seeds = 12;
        for seed in 0..seeds {
            let en = SamplingEnumerator::new(Box::new(VertexInducedEnumerator::new()), p, seed);
            let corr = en.correction(3);
            let sampled = count_at_depth(&g, Box::new(en), 3) as f64;
            assert!(sampled < exact, "sampling did not thin");
            est_sum += sampled * corr;
        }
        let est = est_sum / seeds as f64;
        let rel_err = (est - exact).abs() / exact;
        assert!(
            rel_err < 0.35,
            "estimate {est:.0} vs exact {exact:.0} ({rel_err:.2})"
        );
    }

    #[test]
    fn deterministic_across_rebuild() {
        let g = gen::mico_like(100, 1, 3);
        let mk = || {
            Box::new(SamplingEnumerator::new(
                Box::new(VertexInducedEnumerator::new()),
                0.7,
                42,
            )) as Box<dyn SubgraphEnumerator>
        };
        let a = count_at_depth(&g, mk(), 3);
        let b = count_at_depth(&g, mk(), 3);
        assert_eq!(a, b);
        // Rebuild path: extend then rebuild on a clone reproduces the same
        // extension decisions.
        let mut en1 = mk();
        let mut sg1 = Subgraph::new(&g);
        en1.extend(&g, &mut sg1, 0);
        let mut exts1 = Vec::new();
        en1.compute_extensions(&g, &sg1, &mut exts1);
        let mut en2 = mk();
        let mut sg2 = Subgraph::new(&g);
        en2.rebuild(&g, &mut sg2, &[0]);
        let mut exts2 = Vec::new();
        en2.compute_extensions(&g, &sg2, &mut exts2);
        assert_eq!(exts1, exts2);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn rejects_bad_probability() {
        SamplingEnumerator::new(Box::new(VertexInducedEnumerator::new()), 0.0, 1);
    }
}
