//! The custom KClist clique enumerator of Appendix B.
//!
//! KClist [12] lists k-cliques by orienting the graph into a DAG (edges
//! point from lower to higher degree, ties by id) and intersecting
//! out-neighborhoods: the candidate set after matching a clique prefix is
//! the intersection of the out-neighborhoods of all its vertices, so every
//! clique is produced exactly once in DAG order and the search space never
//! leaves clique territory. The per-level candidate sets are the custom
//! enumerator state of Listing 6; when work is stolen the state is rebuilt
//! from the prefix (Listing 6's `extend` chain replayed from scratch).

use crate::enumerator::SubgraphEnumerator;
use crate::subgraph::Subgraph;
use fractal_graph::{ExtensionKernels, Graph, KernelCounters, VertexId};
use std::sync::Arc;

/// Degree-ordered DAG view of a graph, shared immutably among cores.
#[derive(Debug)]
pub struct CliqueDag {
    /// `out[v]` = out-neighbors of `v` (higher degree-order), sorted by id.
    out: Vec<Vec<u32>>,
}

impl CliqueDag {
    /// Orients `g`: `u → v` iff `(deg(u), u) < (deg(v), v)`.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut out = vec![Vec::new(); n];
        for v in 0..n as u32 {
            let dv = g.degree(VertexId(v));
            for &u in g.neighbors(VertexId(v)) {
                let du = g.degree(VertexId(u));
                if (dv, v) < (du, u) {
                    out[v as usize].push(u);
                }
            }
            // CSR neighbors are sorted by id already, and the filter
            // preserves order.
            debug_assert!(out[v as usize].windows(2).all(|w| w[0] < w[1]));
        }
        CliqueDag { out }
    }

    /// Out-neighbors of `v`, sorted by id.
    #[inline]
    pub fn out(&self, v: u32) -> &[u32] {
        &self.out[v as usize]
    }
}

/// Custom enumerator listing cliques via candidate-set intersection
/// (Listing 6/7).
///
/// The per-level candidate sets live in the bump arena of
/// [`ExtensionKernels`]: DFS levels are strictly nested, so each level is a
/// contiguous arena region and retract is a truncation — no per-extension
/// allocation. The arena is per-core scratch; a stolen unit rebuilds it by
/// replaying the prefix ([`SubgraphEnumerator::rebuild`]).
pub struct KClistEnumerator {
    dag: Arc<CliqueDag>,
    /// Arena-backed candidate-set stack + hybrid intersection kernels.
    kernels: ExtensionKernels,
}

impl KClistEnumerator {
    /// Builds the enumerator (and its DAG) for `g`.
    pub fn new(g: &Graph) -> Self {
        Self::with_dag(Arc::new(CliqueDag::build(g)))
    }

    /// Builds from an existing shared DAG.
    pub fn with_dag(dag: Arc<CliqueDag>) -> Self {
        KClistEnumerator {
            dag,
            kernels: ExtensionKernels::new(),
        }
    }

    /// The shared DAG (for cloning onto other cores cheaply).
    pub fn dag(&self) -> Arc<CliqueDag> {
        self.dag.clone()
    }
}

impl SubgraphEnumerator for KClistEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        if sg.num_vertices() == 0 {
            out.extend(0..g.num_vertices() as u64);
            return g.num_vertices() as u64;
        }
        debug_assert_eq!(self.kernels.depth(), sg.num_vertices());
        let cands = self.kernels.top();
        out.extend(cands.iter().map(|&v| v as u64));
        cands.len() as u64
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        let v = word as u32;
        self.kernels.ensure_universe(g.num_vertices());
        if self.kernels.depth() == 0 {
            self.kernels.push_level_copy(self.dag.out(v));
        } else {
            self.kernels.push_level_intersect(self.dag.out(v));
        }
        sg.push_vertex_induced(g, v);
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        self.kernels.pop_level();
        sg.pop_vertex_induced();
    }

    fn reset_state(&mut self, _g: &Graph) {
        self.kernels.reset_levels();
    }

    fn take_kernel_counters(&mut self) -> KernelCounters {
        self.kernels.take_counters()
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(KClistEnumerator::with_dag(self.dag.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::tests::run_to_depth;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;

    fn count_cliques_kclist(g: &Graph, k: usize) -> usize {
        run_to_depth(g, Box::new(KClistEnumerator::new(g)), k).len()
    }

    #[test]
    fn complete_graph_counts() {
        // K5 has C(5,k) k-cliques.
        let g = gen::complete(5);
        assert_eq!(count_cliques_kclist(&g, 1), 5);
        assert_eq!(count_cliques_kclist(&g, 2), 10);
        assert_eq!(count_cliques_kclist(&g, 3), 10);
        assert_eq!(count_cliques_kclist(&g, 4), 5);
        assert_eq!(count_cliques_kclist(&g, 5), 1);
    }

    #[test]
    fn triangle_with_tail() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(count_cliques_kclist(&g, 3), 1);
        assert_eq!(count_cliques_kclist(&g, 4), 0);
    }

    #[test]
    fn cycle_has_no_triangles() {
        assert_eq!(count_cliques_kclist(&gen::cycle(6), 3), 0);
    }

    #[test]
    fn every_listed_subgraph_is_a_clique() {
        let g = gen::erdos_renyi(40, 160, 1, 3);
        for (vs, es) in run_to_depth(&g, Box::new(KClistEnumerator::new(&g)), 3) {
            assert_eq!(vs.len(), 3);
            assert_eq!(es.len(), 3, "not a clique: {vs:?}");
        }
    }

    #[test]
    fn agrees_with_generic_enumerator_on_random_graphs() {
        use crate::enumerator::VertexInducedEnumerator;
        for seed in 0..3 {
            let g = gen::erdos_renyi(25, 80, 1, seed);
            for k in 2..=4 {
                let generic = run_to_depth(&g, Box::new(VertexInducedEnumerator::new()), k)
                    .into_iter()
                    .filter(|(_, es)| es.len() == k * (k - 1) / 2)
                    .count();
                assert_eq!(count_cliques_kclist(&g, k), generic, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn rebuild_restores_candidate_stack() {
        let g = gen::complete(5);
        let mut en = KClistEnumerator::new(&g);
        let mut sg = Subgraph::new(&g);
        en.extend(&g, &mut sg, 0);
        en.extend(&g, &mut sg, 1);
        let mut exts = Vec::new();
        en.compute_extensions(&g, &sg, &mut exts);
        // Rebuild on a second instance.
        let mut en2 = KClistEnumerator::with_dag(en.dag());
        let mut sg2 = Subgraph::new(&g);
        en2.rebuild(&g, &mut sg2, &[0, 1]);
        let mut exts2 = Vec::new();
        en2.compute_extensions(&g, &sg2, &mut exts2);
        assert_eq!(exts, exts2);
        assert_eq!(sg.snapshot(), sg2.snapshot());
    }
}
