//! The incrementally grown [`Subgraph`] each core mutates during the DFS.

use fractal_graph::bitset::Bitset;
use fractal_graph::{EdgeId, Graph, VertexId};
use fractal_pattern::Pattern;

/// A connected subgraph under construction (Definition 2).
///
/// The structure supports the three growth modes of Fig. 1 with O(1)
/// membership tests and exact per-level rollback, so a single instance is
/// reused across the entire DFS of Algorithm 1 ("reusing the data
/// structures on each enumeration level"):
///
/// - [`push_vertex_induced`](Subgraph::push_vertex_induced) adds a vertex
///   and *all* edges connecting it to the current subgraph,
/// - [`push_edge`](Subgraph::push_edge) adds an edge and its missing
///   endpoints,
/// - [`push_matched`](Subgraph::push_matched) adds a vertex plus an
///   explicit set of matched edges (pattern-induced growth).
///
/// Each push records what it added; the corresponding `pop_*` undoes it.
#[derive(Debug, Clone)]
pub struct Subgraph {
    vertices: Vec<u32>,
    edges: Vec<u32>,
    vmember: Bitset,
    emember: Bitset,
    /// Per vertex-level: number of edges that level added (vertex modes).
    level_edges: Vec<u32>,
    /// Per edge-level: number of vertices that level added (edge mode).
    level_vertices: Vec<u32>,
}

impl Subgraph {
    /// An empty subgraph with membership capacity sized for `g`.
    pub fn new(g: &Graph) -> Self {
        Subgraph {
            vertices: Vec::with_capacity(16),
            edges: Vec::with_capacity(32),
            vmember: Bitset::new(g.num_vertices()),
            emember: Bitset::new(g.num_edges()),
            level_edges: Vec::with_capacity(16),
            level_vertices: Vec::with_capacity(16),
        }
    }

    /// Current vertices, in insertion order.
    #[inline(always)]
    pub fn vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// Current edges, in insertion order.
    #[inline(always)]
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the subgraph is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// O(1) vertex membership.
    #[inline(always)]
    pub fn has_vertex(&self, v: u32) -> bool {
        self.vmember.get(v as usize)
    }

    /// O(1) edge membership.
    #[inline(always)]
    pub fn has_edge(&self, e: u32) -> bool {
        self.emember.get(e as usize)
    }

    /// The most recently added edge, if any (used by the keyword-search
    /// filter of Listing 4).
    #[inline]
    pub fn last_edge(&self) -> Option<EdgeId> {
        self.edges.last().map(|&e| EdgeId(e))
    }

    /// The most recently added vertex, if any.
    #[inline]
    pub fn last_vertex(&self) -> Option<VertexId> {
        self.vertices.last().map(|&v| VertexId(v))
    }

    /// Number of edges added by the most recent vertex push (the clique
    /// filter of Listing 2 checks this against `num_vertices - 1`).
    #[inline]
    pub fn last_level_edge_count(&self) -> usize {
        self.level_edges.last().copied().unwrap_or(0) as usize
    }

    /// Adds vertex `v` and every edge of `g` between `v` and the current
    /// vertices (vertex-induced growth).
    pub fn push_vertex_induced(&mut self, g: &Graph, v: u32) {
        debug_assert!(!self.has_vertex(v));
        // Hybrid induced-edge kernel: probes the (small) member set into
        // v's sorted adjacency when deg(v) is large, scans otherwise.
        let nbrs = g.neighbors(VertexId(v));
        let eids = g.incident_edges(VertexId(v));
        let vmember = &self.vmember;
        let edges = &mut self.edges;
        let emember = &mut self.emember;
        let added = fractal_graph::kernels::collect_induced_edges(
            nbrs,
            eids,
            &self.vertices,
            |u| vmember.get(u as usize),
            |e| {
                edges.push(e);
                emember.set(e as usize);
            },
        );
        self.vertices.push(v);
        self.vmember.set(v as usize);
        self.level_edges.push(added);
    }

    /// Reference variant of [`push_vertex_induced`](Self::push_vertex_induced)
    /// that always scans the full adjacency of `v` (the pre-kernel
    /// behavior). Kept for A/B benchmarking and for cross-checking the
    /// hybrid kernel; produces byte-identical state.
    pub fn push_vertex_induced_scan(&mut self, g: &Graph, v: u32) {
        debug_assert!(!self.has_vertex(v));
        let mut added = 0u32;
        let nbrs = g.neighbors(VertexId(v));
        let eids = g.incident_edges(VertexId(v));
        for (i, &u) in nbrs.iter().enumerate() {
            if self.vmember.get(u as usize) {
                let e = eids[i];
                self.edges.push(e);
                self.emember.set(e as usize);
                added += 1;
            }
        }
        self.vertices.push(v);
        self.vmember.set(v as usize);
        self.level_edges.push(added);
    }

    /// Undoes the most recent [`push_vertex_induced`](Self::push_vertex_induced).
    pub fn pop_vertex_induced(&mut self) {
        // panic-ok: push/pop discipline is enforced by the enumerator's
        // recursion; an underflow is a traversal bug and must fail loudly, not
        // corrupt counts.
        let added = self.level_edges.pop().expect("pop on empty subgraph") as usize;
        for _ in 0..added {
            let e = self.edges.pop().unwrap();
            self.emember.clear(e as usize);
        }
        // panic-ok: same pop discipline — vertices/edges stay balanced with
        // level_edges.
        let v = self.vertices.pop().unwrap();
        self.vmember.clear(v as usize);
    }

    /// Adds edge `e` and its endpoints that are not yet present
    /// (edge-induced growth).
    pub fn push_edge(&mut self, g: &Graph, e: u32) {
        debug_assert!(!self.has_edge(e));
        let (s, d) = g.edge_endpoints(EdgeId(e));
        let mut added = 0u32;
        for v in [s.raw(), d.raw()] {
            if !self.vmember.get(v as usize) {
                self.vertices.push(v);
                self.vmember.set(v as usize);
                added += 1;
            }
        }
        self.edges.push(e);
        self.emember.set(e as usize);
        self.level_vertices.push(added);
    }

    /// Undoes the most recent [`push_edge`](Self::push_edge).
    pub fn pop_edge(&mut self) {
        // panic-ok: push/pop discipline, see pop_vertex_induced.
        let added = self.level_vertices.pop().expect("pop on empty subgraph") as usize;
        for _ in 0..added {
            let v = self.vertices.pop().unwrap();
            self.vmember.clear(v as usize);
        }
        // panic-ok: same pop discipline — the edge pushed with this level is
        // still present.
        let e = self.edges.pop().unwrap();
        self.emember.clear(e as usize);
    }

    /// Adds vertex `v` plus the explicit `matched_edges` (pattern-induced
    /// growth: only the pattern's edges are part of the subgraph, Fig. 1).
    pub fn push_matched(&mut self, v: u32, matched_edges: &[u32]) {
        debug_assert!(!self.has_vertex(v));
        for &e in matched_edges {
            debug_assert!(!self.has_edge(e));
            self.edges.push(e);
            self.emember.set(e as usize);
        }
        self.vertices.push(v);
        self.vmember.set(v as usize);
        self.level_edges.push(matched_edges.len() as u32);
    }

    /// Undoes the most recent [`push_matched`](Self::push_matched).
    pub fn pop_matched(&mut self) {
        self.pop_vertex_induced();
    }

    /// Clears everything, keeping capacity.
    pub fn reset(&mut self) {
        for &v in &self.vertices {
            self.vmember.clear(v as usize);
        }
        for &e in &self.edges {
            self.emember.clear(e as usize);
        }
        self.vertices.clear();
        self.edges.clear();
        self.level_edges.clear();
        self.level_vertices.clear();
    }

    /// The pattern of this subgraph as stored (vertex set + stored edges).
    /// For vertex-induced growth the stored edges are exactly the induced
    /// edges, so this is the induced pattern.
    pub fn pattern(&self, g: &Graph, use_vlabels: bool, use_elabels: bool) -> Pattern {
        if self.edges.is_empty() {
            // Single vertices (or empty).
            let labels = self
                .vertices
                .iter()
                .map(|&v| {
                    if use_vlabels {
                        g.vertex_label(VertexId(v)).raw()
                    } else {
                        0
                    }
                })
                .collect();
            return Pattern::new(labels, Vec::new());
        }
        // panic-ok: the canonical relabeling looks up vertices taken from this
        // subgraph's own vertex list; a miss is impossible by construction.
        let local_of = |v: u32| -> u8 { self.vertices.iter().position(|&x| x == v).unwrap() as u8 };
        let labels = self
            .vertices
            .iter()
            .map(|&v| {
                if use_vlabels {
                    g.vertex_label(VertexId(v)).raw()
                } else {
                    0
                }
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|&e| {
                let (s, d) = g.edge_endpoints(EdgeId(e));
                let l = if use_elabels {
                    g.edge_label(EdgeId(e)).raw()
                } else {
                    0
                };
                (local_of(s.raw()), local_of(d.raw()), l)
            })
            .collect();
        Pattern::new(labels, edges)
    }

    /// An owned snapshot `(vertices, edges)` of the current state.
    pub fn snapshot(&self) -> (Vec<u32>, Vec<u32>) {
        (self.vertices.clone(), self.edges.clone())
    }

    /// Approximate live bytes of this structure (memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.vertices.capacity() * 4
            + self.edges.capacity() * 4
            + self.vmember.resident_bytes()
            + self.emember.resident_bytes()
            + self.level_edges.capacity() * 4
            + self.level_vertices.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::graph_from_edges;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        graph_from_edges(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 1), (0, 2, 2), (2, 3, 3)])
    }

    #[test]
    fn vertex_induced_push_collects_all_edges() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        assert_eq!(sg.num_edges(), 0);
        sg.push_vertex_induced(&g, 1);
        assert_eq!(sg.num_edges(), 1);
        sg.push_vertex_induced(&g, 2);
        // Vertex 2 connects to both 0 and 1.
        assert_eq!(sg.num_edges(), 3);
        assert_eq!(sg.last_level_edge_count(), 2);
        assert!(sg.has_vertex(2));
        assert!(sg.has_edge(2));
    }

    #[test]
    fn vertex_induced_pop_restores_exactly() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        sg.push_vertex_induced(&g, 2);
        let snap = sg.snapshot();
        sg.push_vertex_induced(&g, 1);
        sg.pop_vertex_induced();
        assert_eq!(sg.snapshot(), snap);
        assert!(!sg.has_vertex(1));
        assert!(sg.has_edge(2)); // edge 0-2 still present
        sg.pop_vertex_induced();
        sg.pop_vertex_induced();
        assert!(sg.is_empty());
    }

    #[test]
    fn edge_induced_tracks_endpoint_additions() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_edge(&g, 0); // 0-1: two new vertices
        assert_eq!(sg.num_vertices(), 2);
        sg.push_edge(&g, 1); // 1-2: one new vertex
        assert_eq!(sg.num_vertices(), 3);
        sg.push_edge(&g, 2); // 0-2: zero new vertices
        assert_eq!(sg.num_vertices(), 3);
        assert_eq!(sg.num_edges(), 3);
        sg.pop_edge();
        assert_eq!(sg.num_vertices(), 3);
        assert_eq!(sg.num_edges(), 2);
        sg.pop_edge();
        assert_eq!(sg.num_vertices(), 2);
        sg.pop_edge();
        assert!(sg.is_empty());
    }

    #[test]
    fn matched_push_stores_exact_edges() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_matched(0, &[]);
        sg.push_matched(1, &[0]);
        sg.push_matched(2, &[1]); // only pattern edge 1-2, not 0-2
        assert_eq!(sg.num_edges(), 2);
        assert!(!sg.has_edge(2));
        sg.pop_matched();
        assert_eq!(sg.num_edges(), 1);
        assert!(!sg.has_vertex(2));
    }

    #[test]
    fn last_accessors() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        assert!(sg.last_edge().is_none());
        sg.push_edge(&g, 3);
        assert_eq!(sg.last_edge(), Some(EdgeId(3)));
        assert_eq!(sg.last_vertex(), Some(VertexId(3)));
    }

    #[test]
    fn pattern_extraction_vertex_induced() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        sg.push_vertex_induced(&g, 1);
        sg.push_vertex_induced(&g, 2);
        let p = sg.pattern(&g, true, true);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edges(), 3);
        assert!(p.is_clique());
        let pu = sg.pattern(&g, false, false);
        assert_eq!(pu.vertex_label(0), 0);
    }

    #[test]
    fn reset_clears_membership() {
        let g = triangle_plus_tail();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        sg.push_vertex_induced(&g, 1);
        sg.reset();
        assert!(sg.is_empty());
        assert!(!sg.has_vertex(0));
        assert!(!sg.has_edge(0));
        // Reusable after reset.
        sg.push_vertex_induced(&g, 3);
        assert_eq!(sg.vertices(), &[3]);
    }
}
