//! Property tests: enumeration strategies vs brute-force oracles on random
//! graphs.

use fractal_enum::enumerator::{
    EdgeInducedEnumerator, PatternEnumerator, SubgraphEnumerator, VertexInducedEnumerator,
};
use fractal_enum::{KClistEnumerator, Subgraph};
use fractal_graph::{Graph, GraphBuilder, Label, VertexId};
use fractal_pattern::{ExplorationPlan, Pattern};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..16, 0u64..1000).prop_map(|(n, seed)| {
        // Density high enough to create triangles regularly.
        fractal_graph::gen::erdos_renyi(n, n * 2, 2, seed)
    })
}

/// Drives any enumerator to `depth`, returning all snapshots.
fn run(g: &Graph, mut en: Box<dyn SubgraphEnumerator>, depth: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
    fn rec(
        g: &Graph,
        en: &mut Box<dyn SubgraphEnumerator>,
        sg: &mut Subgraph,
        depth: usize,
        out: &mut Vec<(Vec<u32>, Vec<u32>)>,
    ) {
        if depth == 0 {
            out.push(sg.snapshot());
            return;
        }
        let mut exts = Vec::new();
        en.compute_extensions(g, sg, &mut exts);
        for w in exts {
            en.extend(g, sg, w);
            rec(g, en, sg, depth - 1, out);
            en.retract(g, sg);
        }
    }
    let mut sg = Subgraph::new(g);
    let mut out = Vec::new();
    rec(g, &mut en, &mut sg, depth, &mut out);
    out
}

/// Brute force: connected induced k-vertex subgraphs as vertex sets.
fn oracle_connected_vertex_sets(g: &Graph, k: usize) -> BTreeSet<BTreeSet<u32>> {
    fn connected(g: &Graph, vs: &[u32]) -> bool {
        let mut seen = vec![vs[0]];
        let mut stack = vec![vs[0]];
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(VertexId(v)) {
                if vs.contains(&u) && !seen.contains(&u) {
                    seen.push(u);
                    stack.push(u);
                }
            }
        }
        seen.len() == vs.len()
    }
    let mut out = BTreeSet::new();
    let n = g.num_vertices() as u32;
    let mut subset: Vec<u32> = Vec::new();
    fn rec(
        g: &Graph,
        k: usize,
        start: u32,
        n: u32,
        subset: &mut Vec<u32>,
        out: &mut BTreeSet<BTreeSet<u32>>,
        connected: &dyn Fn(&Graph, &[u32]) -> bool,
    ) {
        if subset.len() == k {
            if connected(g, subset) {
                out.insert(subset.iter().copied().collect());
            }
            return;
        }
        for v in start..n {
            subset.push(v);
            rec(g, k, v + 1, n, subset, out, connected);
            subset.pop();
        }
    }
    rec(g, k, 0, n, &mut subset, &mut out, &connected);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vertex-induced enumeration produces every connected induced
    /// subgraph exactly once.
    #[test]
    fn vertex_induced_complete_and_unique(g in arb_graph(), k in 2usize..5) {
        let subs = run(&g, Box::new(VertexInducedEnumerator::new()), k);
        let sets: Vec<BTreeSet<u32>> =
            subs.iter().map(|(vs, _)| vs.iter().copied().collect()).collect();
        let unique: BTreeSet<BTreeSet<u32>> = sets.iter().cloned().collect();
        prop_assert_eq!(unique.len(), sets.len(), "duplicate enumeration");
        prop_assert_eq!(unique, oracle_connected_vertex_sets(&g, k));
    }

    /// Edge-induced enumeration is unique and every result is connected
    /// with exactly k edges.
    #[test]
    fn edge_induced_unique(g in arb_graph(), k in 1usize..4) {
        let subs = run(&g, Box::new(EdgeInducedEnumerator::new()), k);
        let sets: Vec<BTreeSet<u32>> =
            subs.iter().map(|(_, es)| es.iter().copied().collect()).collect();
        let unique: BTreeSet<BTreeSet<u32>> = sets.iter().cloned().collect();
        prop_assert_eq!(unique.len(), sets.len(), "duplicate enumeration");
        for (_, es) in &subs {
            prop_assert_eq!(es.len(), k);
        }
    }

    /// KClist lists exactly the k-cliques found by filtering the generic
    /// vertex-induced enumeration.
    #[test]
    fn kclist_agrees_with_generic(g in arb_graph(), k in 2usize..5) {
        let kclist = run(&g, Box::new(KClistEnumerator::new(&g)), k);
        let generic: Vec<_> = run(&g, Box::new(VertexInducedEnumerator::new()), k)
            .into_iter()
            .filter(|(_, es)| es.len() == k * (k - 1) / 2)
            .collect();
        prop_assert_eq!(kclist.len(), generic.len());
        let a: BTreeSet<BTreeSet<u32>> =
            kclist.iter().map(|(vs, _)| vs.iter().copied().collect()).collect();
        let b: BTreeSet<BTreeSet<u32>> =
            generic.iter().map(|(vs, _)| vs.iter().copied().collect()).collect();
        prop_assert_eq!(a, b);
    }

    /// Pattern-induced triangle matching agrees with clique filtering, and
    /// each triangle is matched exactly once.
    #[test]
    fn pattern_triangles_agree(g in arb_graph()) {
        let plan = Arc::new(ExplorationPlan::new(&Pattern::clique(3)));
        let matches = run(&g, Box::new(PatternEnumerator::new(plan, false, false)), 3);
        let sets: BTreeSet<BTreeSet<u32>> =
            matches.iter().map(|(vs, _)| vs.iter().copied().collect()).collect();
        prop_assert_eq!(sets.len(), matches.len(), "duplicate matches");
        let cliques: BTreeSet<BTreeSet<u32>> = run(&g, Box::new(VertexInducedEnumerator::new()), 3)
            .into_iter()
            .filter(|(_, es)| es.len() == 3)
            .map(|(vs, _)| vs.into_iter().collect())
            .collect();
        prop_assert_eq!(sets, cliques);
    }

    /// Pattern matching without symmetry breaking overcounts by exactly
    /// |Aut(P)| per match.
    #[test]
    fn symmetry_breaking_factor(g in arb_graph()) {
        let p = Pattern::clique(3);
        let with = run(
            &g,
            Box::new(PatternEnumerator::new(Arc::new(ExplorationPlan::new(&p)), false, false)),
            3,
        )
        .len();
        let without = run(
            &g,
            Box::new(PatternEnumerator::new(
                Arc::new(ExplorationPlan::without_symmetry(&p)),
                false,
                false,
            )),
            3,
        )
        .len();
        prop_assert_eq!(without, with * 6);
    }

    /// Stolen-prefix rebuild: continuing enumeration from a rebuilt state
    /// yields the same completions as continuing in place.
    #[test]
    fn rebuild_equivalence(g in arb_graph()) {
        let mut en: Box<dyn SubgraphEnumerator> = Box::new(VertexInducedEnumerator::new());
        let mut sg = Subgraph::new(&g);
        let mut exts = Vec::new();
        en.compute_extensions(&g, &sg, &mut exts);
        if exts.is_empty() { return Ok(()); }
        en.extend(&g, &mut sg, exts[exts.len() / 2]);
        let prefix = sg.vertices().iter().map(|&v| v as u64).collect::<Vec<u64>>();

        // Continue in place.
        let mut in_place = Vec::new();
        let mut exts2 = Vec::new();
        en.compute_extensions(&g, &sg, &mut exts2);
        for w in exts2 {
            en.extend(&g, &mut sg, w);
            in_place.push(sg.snapshot());
            en.retract(&g, &mut sg);
        }

        // Rebuild on a fresh enumerator (thief side).
        let mut en2: Box<dyn SubgraphEnumerator> = Box::new(VertexInducedEnumerator::new());
        let mut sg2 = Subgraph::new(&g);
        en2.rebuild(&g, &mut sg2, &prefix);
        let mut stolen = Vec::new();
        let mut exts3 = Vec::new();
        en2.compute_extensions(&g, &sg2, &mut exts3);
        for w in exts3 {
            en2.extend(&g, &mut sg2, w);
            stolen.push(sg2.snapshot());
            en2.retract(&g, &mut sg2);
        }
        prop_assert_eq!(in_place, stolen);
    }

    /// Push/pop round trips leave the subgraph in its prior state for all
    /// three growth modes.
    #[test]
    fn push_pop_roundtrip(g in arb_graph()) {
        let mut sg = Subgraph::new(&g);
        if g.num_edges() == 0 { return Ok(()); }
        sg.push_edge(&g, 0);
        let snap = sg.snapshot();
        if g.num_edges() > 1 {
            sg.push_edge(&g, 1);
            sg.pop_edge();
        }
        prop_assert_eq!(sg.snapshot(), snap);
    }
}

/// Labeled pattern matching against an oracle that checks all injective
/// assignments.
#[test]
fn labeled_pattern_matching_oracle() {
    // Build a labeled graph and a labeled path query; compare against a
    // brute-force matcher.
    let mut b = GraphBuilder::new();
    for l in [0u32, 1, 0, 1, 0] {
        b.add_vertex(Label(l));
    }
    for &(u, v, l) in &[
        (0u32, 1u32, 0u32),
        (1, 2, 1),
        (2, 3, 0),
        (3, 4, 1),
        (0, 4, 0),
        (1, 3, 0),
    ] {
        b.add_edge(VertexId(u), VertexId(v), Label(l)).unwrap();
    }
    let g = b.build();
    // Query: path 0 -1- 1 with vertex labels [0, 1] and edge label 0.
    let q = Pattern::new(vec![0, 1], vec![(0, 1, 0)]);
    let plan = Arc::new(ExplorationPlan::new(&q));
    let matches = run(&g, Box::new(PatternEnumerator::new(plan, true, true)), 2);
    // Oracle: ordered pairs (a, b) with labels (0, 1), adjacent with edge
    // label 0 — symmetry breaking on an asymmetric (labeled) pattern keeps
    // all distinct assignments, but pattern vertices are distinguishable so
    // each edge maps once.
    let mut expect = 0;
    for a in g.vertices() {
        for bb in g.vertices() {
            if a == bb {
                continue;
            }
            if g.vertex_label(a) == Label(0) && g.vertex_label(bb) == Label(1) {
                if let Some(e) = g.edge_between(a, bb) {
                    if g.edge_label(e) == Label(0) {
                        expect += 1;
                    }
                }
            }
        }
    }
    assert_eq!(matches.len(), expect);
}
