//! Property tests: canonical codes are isomorphism invariants.

use fractal_pattern::canon::{are_isomorphic, canonical_code, canonical_form};
use fractal_pattern::Pattern;
use proptest::prelude::*;

/// Strategy: a random connected-ish labeled pattern on up to 6 vertices.
/// (Canonicalization does not require connectivity, so we keep whatever
/// comes out.)
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (2usize..=6).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        let edge_bits = proptest::collection::vec(any::<bool>(), max_edges);
        let edge_labels = proptest::collection::vec(0u32..3, max_edges);
        let vlabels = proptest::collection::vec(0u32..3, n);
        (Just(n), vlabels, edge_bits, edge_labels).prop_map(|(n, vl, bits, els)| {
            let mut edges = Vec::new();
            let mut idx = 0;
            for u in 0..n as u8 {
                for v in (u + 1)..n as u8 {
                    if bits[idx] {
                        edges.push((u, v, els[idx]));
                    }
                    idx += 1;
                }
            }
            Pattern::new(vl, edges)
        })
    })
}

fn arb_perm(n: usize) -> impl Strategy<Value = Vec<u8>> {
    Just((0..n as u8).collect::<Vec<u8>>()).prop_shuffle()
}

proptest! {
    /// The canonical code is invariant under any vertex relabeling.
    #[test]
    fn code_invariant(p in arb_pattern(), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut perm: Vec<u8> = (0..p.num_vertices() as u8).collect();
        perm.shuffle(&mut rng);
        let q = p.permuted(&perm);
        prop_assert_eq!(canonical_code(&p), canonical_code(&q));
        prop_assert!(are_isomorphic(&p, &q));
    }

    /// The canonical permutation really maps the pattern onto the decoded
    /// canonical pattern.
    #[test]
    fn perm_consistent(p in arb_pattern()) {
        let f = canonical_form(&p);
        let q = p.permuted(&f.perm);
        prop_assert_eq!(q, f.code.to_pattern());
    }

    /// Codes with different edge counts or vertex counts never collide, and
    /// decoding a code re-encodes to itself (codes are in canonical form).
    #[test]
    fn code_idempotent(p in arb_pattern()) {
        let code = canonical_code(&p);
        prop_assert_eq!(canonical_code(&code.to_pattern()), code);
    }

    /// Automorphism count divides n! and symmetry conditions pick exactly
    /// one representative of each automorphism class of assignments onto a
    /// small universe.
    #[test]
    fn automorphism_group_divides_factorial(p in arb_pattern()) {
        let auts = fractal_pattern::autom::automorphisms(&p);
        let n = p.num_vertices();
        let fact: usize = (1..=n).product();
        prop_assert!(!auts.is_empty());
        prop_assert_eq!(fact % auts.len(), 0, "lagrange: {} auts, {}!", auts.len(), n);
    }

    /// A permuted pattern has an automorphism group of the same size.
    #[test]
    fn group_size_invariant(p in arb_pattern(), perm_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<u8> = (0..p.num_vertices() as u8).collect();
        perm.shuffle(&mut rng);
        let q = p.permuted(&perm);
        prop_assert_eq!(
            fractal_pattern::autom::automorphisms(&p).len(),
            fractal_pattern::autom::automorphisms(&q).len()
        );
    }
}

// Keep arb_perm referenced (documented strategy for external users).
#[test]
fn perm_strategy_smoke() {
    let mut runner = proptest::test_runner::TestRunner::default();
    let tree = arb_perm(5).new_tree(&mut runner).unwrap();
    let v = proptest::strategy::ValueTree::current(&tree);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
}
