//! The [`Pattern`] type: a small labeled graph template.

use fractal_graph::{Graph, Label, VertexId};

/// Maximum number of vertices in a pattern. Patterns are subgraph templates
/// (motifs, queries, FSM candidates), which in practice have well under this
/// many vertices; the bound lets adjacency live in per-vertex `u32` bitmasks.
pub const MAX_PATTERN_VERTICES: usize = 32;

/// A small labeled undirected graph used as a subgraph template.
///
/// Vertices are indexed `0..n`. Adjacency is stored both as an edge list
/// (sorted, `u < v`) and per-vertex bitmasks for O(1) adjacency tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    vertex_labels: Vec<u32>,
    /// Sorted `(u, v, edge_label)` triples with `u < v`.
    edges: Vec<(u8, u8, u32)>,
    /// `adj[v]` has bit `u` set iff `{u, v}` is an edge.
    adj: Vec<u32>,
}

impl Pattern {
    /// Builds a pattern from explicit vertex labels and `(u, v, label)`
    /// edges. Panics on self-loops, duplicate edges, out-of-range endpoints
    /// or more than [`MAX_PATTERN_VERTICES`] vertices.
    pub fn new(vertex_labels: Vec<u32>, mut edges: Vec<(u8, u8, u32)>) -> Self {
        let n = vertex_labels.len();
        assert!(n <= MAX_PATTERN_VERTICES, "pattern too large");
        let mut adj = vec![0u32; n];
        for e in &mut edges {
            assert!(e.0 != e.1, "self-loop in pattern");
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
            assert!((e.1 as usize) < n, "pattern edge endpoint out of range");
        }
        edges.sort_unstable();
        for w in edges.windows(2) {
            assert!(
                (w[0].0, w[0].1) != (w[1].0, w[1].1),
                "duplicate edge in pattern"
            );
        }
        for &(u, v, _) in &edges {
            adj[u as usize] |= 1 << v;
            adj[v as usize] |= 1 << u;
        }
        Pattern {
            vertex_labels,
            edges,
            adj,
        }
    }

    /// An unlabeled pattern (all labels zero) from an edge list over `n`
    /// vertices.
    pub fn unlabeled(n: usize, edges: &[(u8, u8)]) -> Self {
        Pattern::new(vec![0; n], edges.iter().map(|&(u, v)| (u, v, 0)).collect())
    }

    /// The pattern of the subgraph induced in `g` by `vertices` (all edges
    /// of `g` between them). `use_vlabels` / `use_elabels` control whether
    /// labels participate (motif counting conventionally ignores them).
    pub fn from_vertex_induced(
        g: &Graph,
        vertices: &[u32],
        use_vlabels: bool,
        use_elabels: bool,
    ) -> Self {
        let n = vertices.len();
        assert!(n <= MAX_PATTERN_VERTICES, "pattern too large");
        let vertex_labels = vertices
            .iter()
            .map(|&v| {
                if use_vlabels {
                    g.vertex_label(VertexId(v)).raw()
                } else {
                    0
                }
            })
            .collect();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(e) = g.edge_between(VertexId(vertices[i]), VertexId(vertices[j])) {
                    let l = if use_elabels {
                        g.edge_label(e).raw()
                    } else {
                        0
                    };
                    edges.push((i as u8, j as u8, l));
                }
            }
        }
        Pattern::new(vertex_labels, edges)
    }

    /// The pattern of the edge-induced subgraph of `g` given by `edge_ids`.
    /// Pattern vertex `i` corresponds to the `i`-th distinct endpoint in
    /// first-appearance order; the returned map gives, for each pattern
    /// vertex, the original graph vertex.
    pub fn from_edge_induced(
        g: &Graph,
        edge_ids: &[u32],
        use_vlabels: bool,
        use_elabels: bool,
    ) -> (Self, Vec<u32>) {
        let mut vmap: Vec<u32> = Vec::new();
        let local = |v: u32, vmap: &mut Vec<u32>| -> u8 {
            match vmap.iter().position(|&x| x == v) {
                Some(i) => i as u8,
                None => {
                    vmap.push(v);
                    (vmap.len() - 1) as u8
                }
            }
        };
        let mut edges = Vec::with_capacity(edge_ids.len());
        for &e in edge_ids {
            let (s, d) = g.edge_endpoints(fractal_graph::EdgeId(e));
            let ls = local(s.raw(), &mut vmap);
            let ld = local(d.raw(), &mut vmap);
            let l = if use_elabels {
                g.edge_label(fractal_graph::EdgeId(e)).raw()
            } else {
                0
            };
            edges.push((ls, ld, l));
        }
        let vertex_labels = vmap
            .iter()
            .map(|&v| {
                if use_vlabels {
                    g.vertex_label(VertexId(v)).raw()
                } else {
                    0
                }
            })
            .collect();
        (Pattern::new(vertex_labels, edges), vmap)
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of vertex `v`.
    #[inline(always)]
    pub fn vertex_label(&self, v: usize) -> u32 {
        self.vertex_labels[v]
    }

    /// Sorted `(u, v, label)` edges with `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(u8, u8, u32)] {
        &self.edges
    }

    /// Whether `u` and `v` are adjacent.
    #[inline(always)]
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        (self.adj[v] >> u) & 1 == 1
    }

    /// Adjacency bitmask of `v` (bit `u` set iff adjacent).
    #[inline(always)]
    pub fn adj_mask(&self, v: usize) -> u32 {
        self.adj[v]
    }

    /// Label of the edge between `u` and `v`, if adjacent.
    pub fn edge_label(&self, u: usize, v: usize) -> Option<u32> {
        let (a, b) = (u.min(v) as u8, u.max(v) as u8);
        self.edges
            .binary_search_by(|probe| (probe.0, probe.1).cmp(&(a, b)))
            .ok()
            .map(|i| self.edges[i].2)
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count_ones() as usize
    }

    /// Whether the pattern is connected (the model mines connected
    /// subgraphs only).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        let mut seen = 1u32;
        let mut frontier = 1u32;
        while frontier != 0 {
            let mut next = 0u32;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v] & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen.count_ones() as usize == n
    }

    /// Connected components, each as a sorted list of vertex ids. A
    /// connected pattern yields one component holding every vertex; the
    /// decomposition planner and the component-product automorphism count
    /// rely on this for disconnected sub-patterns.
    pub fn components(&self) -> Vec<Vec<u8>> {
        let n = self.num_vertices();
        let mut assigned = 0u32;
        let mut out = Vec::new();
        for s in 0..n {
            if assigned >> s & 1 == 1 {
                continue;
            }
            let mut comp = 1u32 << s;
            let mut frontier = comp;
            while frontier != 0 {
                let mut next = 0u32;
                let mut f = frontier;
                while f != 0 {
                    let v = f.trailing_zeros() as usize;
                    f &= f - 1;
                    next |= self.adj[v] & !comp;
                }
                comp |= next;
                frontier = next;
            }
            assigned |= comp;
            let mut verts = Vec::with_capacity(comp.count_ones() as usize);
            let mut c = comp;
            while c != 0 {
                verts.push(c.trailing_zeros() as u8);
                c &= c - 1;
            }
            out.push(verts);
        }
        out
    }

    /// The sub-pattern induced on `vertices`: position `i` of the slice
    /// becomes vertex `i` of the result, keeping labels and every edge of
    /// `self` between selected vertices. Panics on out-of-range or
    /// duplicated entries (via [`Pattern::new`]'s edge checks).
    pub fn induced_on(&self, vertices: &[u8]) -> Pattern {
        let labels = vertices
            .iter()
            .map(|&v| self.vertex_labels[v as usize])
            .collect();
        let mut edges = Vec::new();
        for (i, &u) in vertices.iter().enumerate() {
            for (j, &v) in vertices.iter().enumerate().skip(i + 1) {
                if self.adjacent(u as usize, v as usize) {
                    let l = self.edge_label(u as usize, v as usize).unwrap();
                    edges.push((i as u8, j as u8, l));
                }
            }
        }
        Pattern::new(labels, edges)
    }

    /// Whether this pattern is a clique.
    pub fn is_clique(&self) -> bool {
        let n = self.num_vertices();
        self.num_edges() == n * (n - 1) / 2
    }

    /// Relabels vertices by permutation `perm` (`perm[old] = new`),
    /// producing an isomorphic pattern.
    pub fn permuted(&self, perm: &[u8]) -> Pattern {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n);
        let mut labels = vec![0u32; n];
        for (old, &new) in perm.iter().enumerate() {
            labels[new as usize] = self.vertex_labels[old];
        }
        let edges = self
            .edges
            .iter()
            .map(|&(u, v, l)| (perm[u as usize], perm[v as usize], l))
            .collect();
        Pattern::new(labels, edges)
    }

    /// Convenience: the complete pattern (clique) on `k` unlabeled vertices.
    pub fn clique(k: usize) -> Pattern {
        let mut edges = Vec::new();
        for u in 0..k as u8 {
            for v in (u + 1)..k as u8 {
                edges.push((u, v));
            }
        }
        Pattern::unlabeled(k, &edges)
    }

    /// Convenience: the path pattern on `k` unlabeled vertices.
    pub fn path(k: usize) -> Pattern {
        let edges: Vec<(u8, u8)> = (1..k as u8).map(|v| (v - 1, v)).collect();
        Pattern::unlabeled(k, &edges)
    }

    /// Convenience: the cycle pattern on `k ≥ 3` unlabeled vertices.
    pub fn cycle(k: usize) -> Pattern {
        assert!(k >= 3);
        let mut edges: Vec<(u8, u8)> = (1..k as u8).map(|v| (v - 1, v)).collect();
        edges.push((0, k as u8 - 1));
        Pattern::unlabeled(k, &edges)
    }

    /// Convenience: the star pattern with `k` leaves (center is vertex 0).
    pub fn star(k: usize) -> Pattern {
        let edges: Vec<(u8, u8)> = (1..=k as u8).map(|v| (0, v)).collect();
        Pattern::unlabeled(k + 1, &edges)
    }

    /// The label of vertex `v` as a [`Label`] (graph-side type).
    pub fn vertex_label_t(&self, v: usize) -> Label {
        Label(self.vertex_labels[v])
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P(n={},", self.num_vertices())?;
        for (i, l) in self.vertex_labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ";")?;
        for (i, &(u, v, l)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{u}-{v}:{l}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::graph_from_edges;

    #[test]
    fn construction_normalizes_edges() {
        let p = Pattern::new(vec![0, 1, 2], vec![(2, 0, 5), (1, 2, 3)]);
        assert_eq!(p.edges(), &[(0, 2, 5), (1, 2, 3)]);
        assert!(p.adjacent(0, 2));
        assert!(p.adjacent(2, 0));
        assert!(!p.adjacent(0, 1));
        assert_eq!(p.edge_label(2, 0), Some(5));
        assert_eq!(p.edge_label(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Pattern::new(vec![0, 0], vec![(1, 1, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        Pattern::new(vec![0, 0], vec![(0, 1, 0), (1, 0, 3)]);
    }

    #[test]
    fn connectivity() {
        assert!(Pattern::path(4).is_connected());
        assert!(Pattern::clique(5).is_connected());
        assert!(!Pattern::new(vec![0, 0, 0], vec![(0, 1, 0)]).is_connected());
        assert!(Pattern::unlabeled(1, &[]).is_connected());
    }

    #[test]
    fn clique_shapes() {
        assert!(Pattern::clique(4).is_clique());
        assert!(!Pattern::cycle(4).is_clique());
        assert_eq!(Pattern::star(3).degree(0), 3);
        assert_eq!(Pattern::cycle(5).num_edges(), 5);
    }

    #[test]
    fn components_partition_vertices() {
        // Connected: one component with everything.
        assert_eq!(Pattern::clique(4).components(), vec![vec![0, 1, 2, 3]]);
        // Two disjoint edges plus an isolated vertex.
        let p = Pattern::unlabeled(5, &[(0, 3), (1, 4)]);
        let comps = p.components();
        assert_eq!(comps, vec![vec![0, 3], vec![1, 4], vec![2]]);
        // Empty pattern: no components.
        assert!(Pattern::unlabeled(0, &[]).components().is_empty());
    }

    #[test]
    fn induced_on_remaps_edges_and_labels() {
        let p = Pattern::new(
            vec![7, 8, 9, 10],
            vec![(0, 1, 1), (1, 2, 2), (0, 2, 3), (2, 3, 4)],
        );
        // Take the triangle in reversed order: new 0 = old 2, new 2 = old 0.
        let q = p.induced_on(&[2, 1, 0]);
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.vertex_label(0), 9);
        assert_eq!(q.vertex_label(2), 7);
        assert_eq!(q.edge_label(0, 1), Some(2));
        assert_eq!(q.edge_label(0, 2), Some(3));
    }

    #[test]
    fn from_vertex_induced_captures_all_edges() {
        // Triangle 0-1-2 plus pendant 3 on 2.
        let g = graph_from_edges(&[7, 8, 9, 7], &[(0, 1, 1), (1, 2, 2), (0, 2, 3), (2, 3, 4)]);
        let p = Pattern::from_vertex_induced(&g, &[0, 1, 2], true, true);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.vertex_label(0), 7);
        assert_eq!(p.edge_label(0, 1), Some(1));
        // Unlabeled view.
        let pu = Pattern::from_vertex_induced(&g, &[0, 1, 2], false, false);
        assert_eq!(pu.vertex_label(0), 0);
        assert_eq!(pu.edge_label(0, 1), Some(0));
    }

    #[test]
    fn from_edge_induced_maps_endpoints() {
        let g = graph_from_edges(&[7, 8, 9], &[(0, 1, 1), (1, 2, 2)]);
        // Take only edge 1 (between graph vertices 1 and 2).
        let (p, vmap) = Pattern::from_edge_induced(&g, &[1], true, true);
        assert_eq!(p.num_vertices(), 2);
        assert_eq!(p.num_edges(), 1);
        assert_eq!(vmap, vec![1, 2]);
        assert_eq!(p.vertex_label(0), 8);
        assert_eq!(p.edge_label(0, 1), Some(2));
    }

    #[test]
    fn permuted_is_isomorphic_structure() {
        let p = Pattern::new(vec![5, 6, 7], vec![(0, 1, 1), (1, 2, 2)]);
        let q = p.permuted(&[2, 1, 0]);
        assert_eq!(q.vertex_label(2), 5);
        assert_eq!(q.edge_label(1, 2), Some(1));
        assert_eq!(q.edge_label(0, 1), Some(2));
    }

    #[test]
    fn display_is_stable() {
        let p = Pattern::new(vec![1, 2], vec![(0, 1, 3)]);
        assert_eq!(p.to_string(), "P(n=2,1,2;0-1:3)");
    }
}
