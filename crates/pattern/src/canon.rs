//! Canonical labeling of patterns.
//!
//! Two patterns are isomorphic iff their canonical codes are equal (the
//! paper's `ρ(S)` function, §2.1). The algorithm is a practical canonical
//! labeling in the nauty/bliss family, sized for subgraph templates:
//!
//! 1. **Color refinement** (1-WL): vertices start colored by
//!    `(vertex label, degree)` and are iteratively split by the multiset of
//!    `(edge label, neighbor color)` pairs until stable. Color ids are
//!    assigned by sorting explicit signature vectors, so they are
//!    isomorphism-invariant by construction.
//! 2. **Branch and bound** over orderings that respect the refined color
//!    cells, minimizing a fixed adjacency encoding. The minimal encoding is
//!    the canonical code; the ordering that produced it is the canonical
//!    permutation.
//!
//! The canonical permutation is what lets FSM map an embedding's vertices
//! onto canonical pattern positions for minimum-image support counting.

use crate::Pattern;
use std::collections::HashMap;

/// An isomorphism-invariant encoding of a pattern.
///
/// Layout: `[n, vlabel(0..n) in canonical order, column(1), column(2), …]`
/// where `column(j)` holds, for `i < j`, `edge_label + 1` when canonical
/// vertices `i` and `j` are adjacent and `0` otherwise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode(pub Vec<u32>);

impl CanonicalCode {
    /// Number of vertices of the encoded pattern.
    pub fn num_vertices(&self) -> usize {
        self.0[0] as usize
    }

    /// Reconstructs the pattern this code encodes (canonical vertex order).
    pub fn to_pattern(&self) -> Pattern {
        let n = self.num_vertices();
        let labels = self.0[1..1 + n].to_vec();
        let mut edges = Vec::new();
        let mut idx = 1 + n;
        for j in 1..n {
            for i in 0..j {
                let cell = self.0[idx];
                idx += 1;
                if cell != 0 {
                    edges.push((i as u8, j as u8, cell - 1));
                }
            }
        }
        Pattern::new(labels, edges)
    }
}

impl std::fmt::Display for CanonicalCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C[")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]")
    }
}

/// A canonical code together with the permutation that produced it:
/// `perm[original_vertex] = canonical_position`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// The canonical code.
    pub code: CanonicalCode,
    /// Maps each original pattern vertex to its canonical position.
    pub perm: Vec<u8>,
}

/// Runs color refinement; returns one dense, isomorphism-invariant color
/// per vertex (equal colors ⇒ indistinguishable by 1-WL).
pub fn refine_colors(p: &Pattern) -> Vec<u32> {
    let n = p.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Round 0: (label, degree) signatures.
    let mut sigs: Vec<Vec<u32>> = (0..n)
        .map(|v| vec![p.vertex_label(v), p.degree(v) as u32])
        .collect();
    let mut colors = dense_ids(&sigs);
    loop {
        let num_colors = 1 + *colors.iter().max().unwrap() as usize;
        if num_colors == n {
            break;
        }
        for v in 0..n {
            let mut nbr_sig: Vec<(u32, u32)> = Vec::with_capacity(p.degree(v));
            for (u, &cu) in colors.iter().enumerate() {
                if p.adjacent(u, v) {
                    nbr_sig.push((p.edge_label(u, v).unwrap_or(0), cu));
                }
            }
            nbr_sig.sort_unstable();
            let mut s = Vec::with_capacity(1 + 2 * nbr_sig.len());
            s.push(colors[v]);
            for (el, c) in nbr_sig {
                s.push(el);
                s.push(c);
            }
            sigs[v] = s;
        }
        let new_colors = dense_ids(&sigs);
        let new_num = 1 + *new_colors.iter().max().unwrap() as usize;
        let stable = new_num == num_colors;
        colors = new_colors;
        if stable {
            break;
        }
    }
    colors
}

/// Assigns dense ids `0..k` to signature vectors by lexicographic order.
fn dense_ids(sigs: &[Vec<u32>]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..sigs.len()).collect();
    order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
    let mut ids = vec![0u32; sigs.len()];
    let mut next = 0u32;
    for w in 0..order.len() {
        if w > 0 && sigs[order[w]] != sigs[order[w - 1]] {
            next += 1;
        }
        ids[order[w]] = next;
    }
    ids
}

/// State for the branch-and-bound canonical ordering search.
struct Search<'a> {
    p: &'a Pattern,
    /// Cell id (refined color) of each vertex.
    colors: Vec<u32>,
    /// Candidate ordering being built: `slot[pos] = original vertex`.
    slot: Vec<u8>,
    used: u32,
    /// Current code prefix (shares layout with `CanonicalCode`).
    cur: Vec<u32>,
    /// Best complete code so far and its ordering.
    best: Option<(Vec<u32>, Vec<u8>)>,
}

impl Search<'_> {
    fn run(&mut self) {
        let n = self.p.num_vertices();
        let pos = self.slot.len();
        if pos == n {
            let better = match &self.best {
                None => true,
                Some((b, _)) => self.cur < *b,
            };
            if better {
                self.best = Some((self.cur.clone(), self.slot.clone()));
            }
            return;
        }
        // Candidates: unused vertices of the smallest eligible cell. All
        // positions in `pos..` must follow cell order, so the next vertex
        // must belong to the minimum color among unused vertices.
        let mut min_color = u32::MAX;
        for v in 0..n {
            if self.used >> v & 1 == 0 {
                min_color = min_color.min(self.colors[v]);
            }
        }
        for v in 0..n {
            if self.used >> v & 1 == 1 || self.colors[v] != min_color {
                continue;
            }
            // Append column for position `pos`: vertex label cell was fixed
            // by cell order; adjacency entries vs. earlier positions.
            let checkpoint = self.cur.len();
            for i in 0..pos {
                let u = self.slot[i] as usize;
                let entry = if self.p.adjacent(u, v) {
                    self.p.edge_label(u, v).unwrap_or(0) + 1
                } else {
                    0
                };
                self.cur.push(entry);
            }
            // Prune: compare the appended region against the best code.
            let prune = match &self.best {
                Some((b, _)) => {
                    let region = &self.cur[..];
                    let bregion = &b[..region.len().min(b.len())];
                    region > bregion
                }
                None => false,
            };
            if !prune {
                self.slot.push(v as u8);
                self.used |= 1 << v;
                self.run();
                self.used &= !(1 << v);
                self.slot.pop();
            }
            self.cur.truncate(checkpoint);
        }
    }
}

/// Computes the canonical form (code + permutation) of `p`.
pub fn canonical_form(p: &Pattern) -> CanonicalForm {
    let n = p.num_vertices();
    if n == 0 {
        return CanonicalForm {
            code: CanonicalCode(vec![0]),
            perm: Vec::new(),
        };
    }
    let colors = refine_colors(p);
    // Header: n then vertex labels in cell order. Labels are constant per
    // cell (cells refine the label partition), so the header is fixed.
    let mut header = Vec::with_capacity(1 + n);
    header.push(n as u32);
    let mut by_color: Vec<usize> = (0..n).collect();
    by_color.sort_by_key(|&v| (colors[v], v));
    for &v in &by_color {
        header.push(p.vertex_label(v));
    }
    let mut search = Search {
        p,
        colors,
        slot: Vec::with_capacity(n),
        used: 0,
        cur: header,
        best: None,
    };
    search.run();
    let (code, slots) = search.best.expect("canonical search found no ordering");
    let mut perm = vec![0u8; n];
    for (pos, &v) in slots.iter().enumerate() {
        perm[v as usize] = pos as u8;
    }
    CanonicalForm {
        code: CanonicalCode(code),
        perm,
    }
}

/// Computes just the canonical code of `p`.
pub fn canonical_code(p: &Pattern) -> CanonicalCode {
    canonical_form(p).code
}

/// Whether `p` and `q` are isomorphic (Definition 3), via code equality.
pub fn are_isomorphic(p: &Pattern, q: &Pattern) -> bool {
    if p.num_vertices() != q.num_vertices() || p.num_edges() != q.num_edges() {
        return false;
    }
    canonical_code(p) == canonical_code(q)
}

/// A memoizing cache from raw patterns to canonical forms.
///
/// Subgraph enumeration produces the same few motif shapes over and over in
/// different raw vertex orders; the number of distinct raw `Pattern` keys is
/// bounded by (shapes × orderings), so a plain map is effective and the hot
/// path becomes a single hash lookup.
#[derive(Debug, Default)]
pub struct CodeCache {
    map: HashMap<Pattern, std::sync::Arc<CanonicalForm>>,
    hits: u64,
    misses: u64,
}

impl CodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical form of `p`, computing and caching on miss.
    pub fn canonical_form(&mut self, p: &Pattern) -> std::sync::Arc<CanonicalForm> {
        if let Some(f) = self.map.get(p) {
            self.hits += 1;
            return f.clone();
        }
        self.misses += 1;
        let f = std::sync::Arc::new(canonical_form(p));
        self.map.insert(p.clone(), f.clone());
        f
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct raw patterns cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_distinguishes_degrees() {
        // Path 0-1-2: endpoints share a color, middle differs.
        let p = Pattern::path(3);
        let c = refine_colors(&p);
        assert_eq!(c[0], c[2]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn refinement_respects_labels() {
        let p = Pattern::new(vec![0, 1], vec![(0, 1, 0)]);
        let c = refine_colors(&p);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn code_invariant_under_permutation() {
        let p = Pattern::new(
            vec![0, 1, 0, 1],
            vec![(0, 1, 1), (1, 2, 0), (2, 3, 1), (0, 3, 0)],
        );
        let base = canonical_code(&p);
        // All 24 permutations give the same code.
        let perms4: Vec<Vec<u8>> = permutations(4);
        for perm in perms4 {
            let q = p.permuted(&perm);
            assert_eq!(canonical_code(&q), base, "perm {perm:?}");
        }
    }

    #[test]
    fn code_distinguishes_non_isomorphic() {
        assert_ne!(
            canonical_code(&Pattern::path(4)),
            canonical_code(&Pattern::star(3))
        );
        assert_ne!(
            canonical_code(&Pattern::cycle(4)),
            canonical_code(&Pattern::path(4))
        );
        assert_ne!(
            canonical_code(&Pattern::clique(4)),
            canonical_code(&Pattern::cycle(4))
        );
        // Same topology, different labels.
        let a = Pattern::new(vec![0, 0], vec![(0, 1, 0)]);
        let b = Pattern::new(vec![0, 1], vec![(0, 1, 0)]);
        let c = Pattern::new(vec![0, 0], vec![(0, 1, 1)]);
        assert_ne!(canonical_code(&a), canonical_code(&b));
        assert_ne!(canonical_code(&a), canonical_code(&c));
    }

    #[test]
    fn canonical_perm_maps_onto_code_pattern() {
        let p = Pattern::new(vec![3, 1, 2], vec![(0, 1, 7), (1, 2, 8)]);
        let f = canonical_form(&p);
        // Applying the permutation to p must reproduce the decoded pattern.
        let q = p.permuted(&f.perm);
        assert_eq!(q, f.code.to_pattern());
    }

    #[test]
    fn code_roundtrips_via_to_pattern() {
        for p in [
            Pattern::clique(4),
            Pattern::cycle(5),
            Pattern::star(3),
            Pattern::new(vec![1, 2, 3], vec![(0, 1, 4), (1, 2, 5), (0, 2, 6)]),
        ] {
            let code = canonical_code(&p);
            assert_eq!(canonical_code(&code.to_pattern()), code);
        }
    }

    #[test]
    fn isomorphism_check() {
        let p = Pattern::unlabeled(4, &[(0, 1), (1, 2), (2, 3)]);
        let q = Pattern::unlabeled(4, &[(2, 0), (0, 3), (3, 1)]);
        assert!(are_isomorphic(&p, &q));
        assert!(!are_isomorphic(&p, &Pattern::star(3)));
    }

    #[test]
    fn motif_shape_counts_k4() {
        // There are exactly 6 connected unlabeled graphs on 4 vertices.
        use std::collections::HashSet;
        let mut shapes: HashSet<CanonicalCode> = HashSet::new();
        // Enumerate all graphs on 4 vertices by edge bitmask.
        let pairs = [(0u8, 1u8), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for mask in 0u32..64 {
            let edges: Vec<(u8, u8)> = pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let p = Pattern::unlabeled(4, &edges);
            if p.is_connected() {
                shapes.insert(canonical_code(&p));
            }
        }
        assert_eq!(shapes.len(), 6);
    }

    #[test]
    fn disconnected_codes_are_permutation_invariant() {
        // The decomposition planner canonicalizes disconnected
        // sub-patterns; the branch-and-bound search must stay invariant and
        // round-trippable there too.
        let shapes = [
            Pattern::unlabeled(4, &[(0, 1), (2, 3)]),         // 2 edges
            Pattern::unlabeled(4, &[(0, 1), (1, 2), (0, 2)]), // K3 + K1
            Pattern::unlabeled(5, &[(0, 1), (2, 3), (3, 4)]), // edge + P3
            Pattern::new(vec![0, 1, 0, 1], vec![(0, 1, 2), (2, 3, 2)]),
        ];
        for p in &shapes {
            let base = canonical_code(p);
            for perm in permutations(p.num_vertices()) {
                assert_eq!(canonical_code(&p.permuted(&perm)), base, "perm {perm:?}");
            }
            assert_eq!(canonical_code(&base.to_pattern()), base);
        }
    }

    #[test]
    fn disconnected_codes_distinguish_shapes() {
        // All of these have 4 vertices and ≤ 3 edges; none may collide.
        let shapes = [
            Pattern::unlabeled(4, &[(0, 1), (2, 3)]),         // 2K2
            Pattern::unlabeled(4, &[(0, 1), (1, 2)]),         // P3 + K1
            Pattern::unlabeled(4, &[(0, 1), (1, 2), (0, 2)]), // K3 + K1
            Pattern::unlabeled(4, &[(0, 1), (1, 2), (2, 3)]), // P4 (connected)
            Pattern::unlabeled(4, &[(0, 1)]),                 // K2 + 2K1
        ];
        for (i, a) in shapes.iter().enumerate() {
            for (j, b) in shapes.iter().enumerate() {
                assert_eq!(canonical_code(a) == canonical_code(b), i == j, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cache_hits() {
        let mut cache = CodeCache::new();
        let p = Pattern::clique(3);
        let a = cache.canonical_form(&p);
        let b = cache.canonical_form(&p);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn empty_pattern() {
        let f = canonical_form(&Pattern::unlabeled(0, &[]));
        assert_eq!(f.code.num_vertices(), 0);
        assert!(f.perm.is_empty());
    }

    /// All permutations of 0..n (test helper).
    pub(super) fn permutations(n: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur: Vec<u8> = Vec::new();
        fn rec(n: usize, cur: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
            if cur.len() == n {
                out.push(cur.clone());
                return;
            }
            for v in 0..n as u8 {
                if !cur.contains(&v) {
                    cur.push(v);
                    rec(n, cur, out);
                    cur.pop();
                }
            }
        }
        rec(n, &mut cur, &mut out);
        out
    }
}
