//! Single-root execution of compiled counting plans.
//!
//! [`PlanExecutor`] evaluates every node of a [`CountingPlan`] for one root
//! vertex: direct nodes run a symmetry-broken rooted DFS whose candidate
//! sets come from the PR-2 intersection kernels
//! ([`fractal_graph::kernels`]), product nodes combine already-evaluated
//! children with the inclusion–exclusion corrections. Because nodes are in
//! topological order, one linear pass suffices per root.
//!
//! Per-root evaluation is what lets the engine distribute this exactly like
//! enumeration jobs: each root vertex is one work unit, node values are
//! additive over roots, and a worker's kernel counters drain into the same
//! `fractal-metrics/1` fields the enumerator uses.

use fractal_graph::kernels::{intersect, intersect_above, seek_above, seek_below, KernelCounters};
use fractal_graph::{Graph, VertexId};

use crate::planner::{CountingPlan, PlanKind};
use crate::{CanonicalCode, ExplorationPlan, Pattern};

/// Evaluates a compiled counting plan one root vertex at a time.
pub struct PlanExecutor<'a> {
    g: &'a Graph,
    plan: &'a CountingPlan,
    /// Per-node value for the current root (scratch, overwritten per root).
    vals: Vec<i128>,
    /// One candidate buffer per DFS depth.
    bufs: Vec<Vec<u32>>,
    scratch: Vec<u32>,
    matched: Vec<u32>,
    counters: KernelCounters,
    ec: u64,
}

impl<'a> PlanExecutor<'a> {
    /// Prepares an executor for `plan` over `g`.
    pub fn new(g: &'a Graph, plan: &'a CountingPlan) -> Self {
        let max_len = plan.nodes.iter().map(|n| n.rooted.len()).max().unwrap_or(1);
        PlanExecutor {
            g,
            plan,
            vals: vec![0; plan.nodes.len()],
            bufs: vec![Vec::new(); max_len],
            scratch: Vec::new(),
            matched: Vec::with_capacity(max_len),
            counters: KernelCounters::default(),
            ec: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &'a CountingPlan {
        self.plan
    }

    /// Evaluates every node for root `v` and adds the per-node values into
    /// `acc` (length = number of plan nodes). Summing `acc` over all graph
    /// vertices yields the totals [`CountingPlan::finalize`] expects.
    pub fn eval_root(&mut self, v: u32, acc: &mut [i128]) {
        debug_assert_eq!(acc.len(), self.plan.nodes.len());
        for (i, slot) in acc.iter_mut().enumerate() {
            let val = match &self.plan.nodes[i].kind {
                PlanKind::Direct { plan, stab_size } => {
                    let count = rooted_count(
                        self.g,
                        plan,
                        v,
                        &mut self.matched,
                        &mut self.bufs,
                        &mut self.scratch,
                        &mut self.counters,
                        &mut self.ec,
                    );
                    count as i128 * *stab_size as i128
                }
                PlanKind::Product {
                    left,
                    right,
                    corrections,
                } => {
                    let mut val = self.vals[*left] * self.vals[*right];
                    for &(m, node) in corrections {
                        val -= m as i128 * self.vals[node];
                    }
                    debug_assert!(val >= 0, "per-root embedding count is non-negative");
                    val
                }
            };
            self.vals[i] = val;
            *slot += val;
        }
    }

    /// Drains the kernel counters accumulated since the last take.
    pub fn take_counters(&mut self) -> KernelCounters {
        self.counters.take()
    }

    /// Drains the extension-candidate count (one per accepted DFS
    /// candidate) accumulated since the last take.
    pub fn take_ec(&mut self) -> u64 {
        std::mem::take(&mut self.ec)
    }
}

/// Rooted symmetry-broken DFS: the number of injective embeddings of
/// `plan.pattern()` with position 0 pinned to `root`, restricted to the
/// plan's symmetry-condition representatives.
#[allow(clippy::too_many_arguments)]
fn rooted_count(
    g: &Graph,
    plan: &ExplorationPlan,
    root: u32,
    matched: &mut Vec<u32>,
    bufs: &mut [Vec<u32>],
    scratch: &mut Vec<u32>,
    c: &mut KernelCounters,
    ec: &mut u64,
) -> u64 {
    matched.clear();
    matched.push(root);
    if plan.len() == 1 {
        *ec += 1;
        return 1;
    }
    dfs(g, plan, 1, matched, &mut bufs[1..], scratch, c, ec)
}

/// One DFS level: `bufs[0]` is this position's candidate buffer, deeper
/// positions use the tail.
#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    plan: &ExplorationPlan,
    pos: usize,
    matched: &mut Vec<u32>,
    bufs: &mut [Vec<u32>],
    scratch: &mut Vec<u32>,
    c: &mut KernelCounters,
    ec: &mut u64,
) -> u64 {
    let lo = plan
        .must_be_greater_than(pos)
        .iter()
        .map(|&p| matched[p as usize])
        .max();
    let hi = plan
        .must_be_less_than(pos)
        .iter()
        .map(|&p| matched[p as usize])
        .min();
    let bes = plan.back_edges(pos);
    debug_assert!(!bes.is_empty(), "orders are connected");
    let last = pos + 1 == plan.len();

    let (head, tail) = bufs.split_at_mut(1);
    let cands: &[u32] = if bes.len() == 1 {
        // Single back edge: the neighbor slice itself, bound-trimmed with
        // zero copies.
        let mut slice = g.neighbors(VertexId(matched[bes[0].0 as usize]));
        if let Some(lo) = lo {
            slice = seek_above(slice, lo);
        }
        if let Some(hi) = hi {
            slice = seek_below(slice, hi);
        }
        slice
    } else {
        // Fold the back-edge neighborhoods through the adaptive kernels.
        let buf = &mut head[0];
        let a = g.neighbors(VertexId(matched[bes[0].0 as usize]));
        let b = g.neighbors(VertexId(matched[bes[1].0 as usize]));
        match lo {
            Some(lo) => intersect_above(a, b, lo, buf, c),
            None => intersect(a, b, buf, c),
        }
        for &(bp, _) in &bes[2..] {
            let nbrs = g.neighbors(VertexId(matched[bp as usize]));
            intersect(buf, nbrs, scratch, c);
            std::mem::swap(buf, scratch);
        }
        if let Some(hi) = hi {
            let keep = seek_below(buf, hi).len();
            buf.truncate(keep);
        }
        buf
    };

    let mut count = 0u64;
    for &cand in cands.iter() {
        if matched.contains(&cand) {
            continue; // injectivity
        }
        *ec += 1;
        if last {
            count += 1;
        } else {
            matched.push(cand);
            count += dfs(g, plan, pos + 1, matched, tail, scratch, c, ec);
            matched.pop();
        }
    }
    count
}

/// Evaluates `plan` over every vertex of `g` single-threaded, returning the
/// per-node totals plus the drained kernel counters and extension count.
/// The engine's parallel path (`fractal-core::plan_run`) partitions the
/// same loop over root words instead.
pub fn count_all_roots(g: &Graph, plan: &CountingPlan) -> (Vec<i128>, KernelCounters, u64) {
    let mut exec = PlanExecutor::new(g, plan);
    let mut acc = vec![0i128; plan.nodes.len()];
    for v in 0..g.num_vertices() as u32 {
        exec.eval_root(v, &mut acc);
    }
    (acc, exec.take_counters(), exec.take_ec())
}

/// Decomposed induced `k`-motif counting (single-threaded convenience):
/// plans against `g`'s statistics, evaluates every root, and finalizes.
/// Bit-identical to the enumerator's motif map on every input.
pub fn motifs_decomposed(g: &Graph, k: usize) -> Vec<(CanonicalCode, u64)> {
    let plan = CountingPlan::plan_motifs(k, crate::planner::GraphStats::of(g));
    let (totals, _, _) = count_all_roots(g, &plan);
    plan.finalize(&totals)
}

/// Decomposed non-induced count of one connected unlabeled pattern
/// (single-threaded convenience). Matches the enumerator's symmetry-broken
/// match count.
pub fn count_pattern_decomposed(g: &Graph, p: &Pattern) -> u64 {
    let plan = CountingPlan::plan_pattern(p, crate::planner::GraphStats::of(g));
    let (totals, _, _) = count_all_roots(g, &plan);
    plan.finalize(&totals)[0].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonical_code;
    use crate::decompose::connected_shapes;
    use fractal_graph::builder::graph_from_edges;

    fn complete_graph(n: u32) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v, 0));
            }
        }
        graph_from_edges(&vec![0; n as usize], &edges)
    }

    fn path_graph(n: u32) -> Graph {
        let edges: Vec<(u32, u32, u32)> = (1..n).map(|v| (v - 1, v, 0)).collect();
        graph_from_edges(&vec![0; n as usize], &edges)
    }

    #[test]
    fn triangles_in_k4() {
        assert_eq!(
            count_pattern_decomposed(&complete_graph(4), &Pattern::clique(3)),
            4
        );
        assert_eq!(
            count_pattern_decomposed(&complete_graph(5), &Pattern::clique(3)),
            10
        );
        assert_eq!(
            count_pattern_decomposed(&complete_graph(5), &Pattern::clique(4)),
            5
        );
    }

    #[test]
    fn paths_and_stars() {
        // Path graph 0-1-2-3: two P3 subgraphs, one P4.
        let g = path_graph(4);
        assert_eq!(count_pattern_decomposed(&g, &Pattern::path(3)), 2);
        assert_eq!(count_pattern_decomposed(&g, &Pattern::path(4)), 1);
        assert_eq!(count_pattern_decomposed(&g, &Pattern::star(3)), 0);
        // Star graph: center 0 with 3 leaves.
        let s = graph_from_edges(&[0, 0, 0, 0], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        assert_eq!(count_pattern_decomposed(&s, &Pattern::star(3)), 1);
        assert_eq!(count_pattern_decomposed(&s, &Pattern::path(3)), 3);
    }

    #[test]
    fn motif_maps_omit_zero_shapes() {
        // K4: only the triangle motif appears at k = 3.
        let m = motifs_decomposed(&complete_graph(4), 3);
        assert_eq!(m, vec![(canonical_code(&Pattern::clique(3)), 4)]);
        // Path 0-1-2-3: only the open wedge.
        let m = motifs_decomposed(&path_graph(4), 3);
        assert_eq!(m, vec![(canonical_code(&Pattern::path(3)), 2)]);
    }

    #[test]
    fn kernel_and_ec_counters_accumulate() {
        let g = complete_graph(6);
        let plan = CountingPlan::plan_pattern(&Pattern::clique(4), crate::GraphStats::of(&g));
        let (_, kc, ec) = count_all_roots(&g, &plan);
        assert!(kc.calls() > 0, "clique counting intersects");
        assert!(ec > 0);
    }

    /// Deterministic LCG graph for brute-force cross-checks.
    fn lcg_graph(n: u32, seed: u64, density_pct: u64) -> Graph {
        let mut edges = Vec::new();
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for u in 0..n {
            for v in (u + 1)..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (s >> 33) % 100 < density_pct {
                    edges.push((u, v, 0));
                }
            }
        }
        graph_from_edges(&vec![0; n as usize], &edges)
    }

    /// Brute-force N_sub: injective homomorphisms / |Aut|.
    fn brute_count(g: &Graph, p: &Pattern) -> u64 {
        let mut homs = 0u64;
        let mut map: Vec<u32> = Vec::new();
        fn rec(g: &Graph, p: &Pattern, map: &mut Vec<u32>, homs: &mut u64) {
            let pos = map.len();
            if pos == p.num_vertices() {
                *homs += 1;
                return;
            }
            for v in 0..g.num_vertices() as u32 {
                if map.contains(&v) {
                    continue;
                }
                let ok = (0..pos)
                    .all(|u| !p.adjacent(u, pos) || g.are_adjacent(VertexId(map[u]), VertexId(v)));
                if ok {
                    map.push(v);
                    rec(g, p, map, homs);
                    map.pop();
                }
            }
        }
        rec(g, p, &mut map, &mut homs);
        homs / crate::autom::automorphisms(p).len() as u64
    }

    #[test]
    fn decomposed_counts_match_brute_force() {
        for (seed, density) in [(1u64, 40), (5, 65)] {
            let g = lcg_graph(9, seed, density);
            for k in 2..=4usize {
                for shape in connected_shapes(k) {
                    assert_eq!(
                        count_pattern_decomposed(&g, &shape),
                        brute_count(&g, &shape),
                        "seed={seed} shape={shape}"
                    );
                }
            }
        }
    }
}
