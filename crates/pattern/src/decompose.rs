//! Pattern decomposition for the counting planner.
//!
//! The decomposed counting path (DwarvesGraph-style, see DESIGN.md §14)
//! counts a connected pattern `H` per *root* vertex: `emb_r(H)[v]` is the
//! number of injective embeddings mapping the root to graph vertex `v`. Two
//! identities make sub-pattern reuse possible:
//!
//! 1. **Vertex identification at a cut root.** If removing the root splits
//!    `H` into sides `H1`, `H2` (both keeping the root), then for every `v`
//!
//!    ```text
//!    emb_r(H1)[v] · emb_r(H2)[v] = Σ_μ emb_r(H_μ)[v]
//!    ```
//!
//!    summed over *all* partial injections `μ` from `H1`'s non-root vertices
//!    to `H2`'s (including the empty one, whose quotient is `H` itself). So
//!    `emb_r(H)[v]` is the product minus the non-empty overlap terms — each
//!    a strictly smaller connected rooted pattern ([`overlap_terms`]).
//!
//! 2. **Möbius inversion over edge-supersets.** Non-induced subgraph counts
//!    `N_sub` convert to induced motif counts `N_ind` by back-substitution
//!    over the same-size connected shapes, densest first ([`MotifBasis`]).
//!
//! Both identities are exact over the integers, so the decomposed counts are
//! bit-identical to the enumerator's (asserted by the parity oracle tests in
//! `crates/apps`).

use std::collections::BTreeMap;

use crate::canon::canonical_code;
use crate::{CanonicalCode, Pattern};

/// Sentinel added to the root's vertex label when computing a rooted
/// canonical key, forcing canonicalization to map roots to roots. Real
/// labels are far below this.
pub const ROOT_MARK: u32 = 1 << 30;

/// A connected pattern with a distinguished root vertex. The planner counts
/// rooted patterns per graph vertex and only ever decomposes *at the root*
/// (never re-rooting), which keeps every value additive over a root-word
/// partitioning of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedPattern {
    pub pattern: Pattern,
    pub root: u8,
}

impl RootedPattern {
    /// Roots `pattern` at `root`. Panics if the pattern is empty,
    /// disconnected, or the root is out of range — decomposition only ever
    /// produces connected rooted pieces.
    pub fn new(pattern: Pattern, root: u8) -> Self {
        assert!(
            (root as usize) < pattern.num_vertices(),
            "root out of range"
        );
        assert!(pattern.is_connected(), "rooted pattern must be connected");
        RootedPattern { pattern, root }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.pattern.num_vertices()
    }

    /// Never true (construction rejects empty patterns).
    pub fn is_empty(&self) -> bool {
        self.pattern.num_vertices() == 0
    }

    /// Canonical key of the rooted-isomorphism class: the root's label is
    /// offset by [`ROOT_MARK`] and the marked pattern canonicalized, so two
    /// rooted patterns share a key iff an isomorphism maps root to root.
    pub fn key(&self) -> CanonicalCode {
        let n = self.pattern.num_vertices();
        let mut labels: Vec<u32> = (0..n).map(|v| self.pattern.vertex_label(v)).collect();
        assert!(
            labels[self.root as usize] < ROOT_MARK,
            "vertex label too large"
        );
        labels[self.root as usize] += ROOT_MARK;
        canonical_code(&Pattern::new(labels, self.pattern.edges().to_vec()))
    }
}

impl std::fmt::Display for RootedPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.pattern, self.root)
    }
}

/// Connected components of `p` with vertex `root` removed, each as a sorted
/// vertex list (root excluded). More than one component means `root` is a
/// cut vertex and the pattern can be split there.
pub fn components_without(p: &Pattern, root: u8) -> Vec<Vec<u8>> {
    let n = p.num_vertices();
    let root_bit = 1u32 << root;
    let mut assigned = root_bit;
    let mut out = Vec::new();
    for s in 0..n {
        if assigned >> s & 1 == 1 {
            continue;
        }
        let mut comp = 1u32 << s;
        let mut frontier = comp;
        while frontier != 0 {
            let mut next = 0u32;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= p.adj_mask(v) & !comp & !root_bit;
            }
            comp |= next;
            frontier = next;
        }
        assigned |= comp;
        let mut verts = Vec::with_capacity(comp.count_ones() as usize);
        let mut c = comp;
        while c != 0 {
            verts.push(c.trailing_zeros() as u8);
            c &= c - 1;
        }
        out.push(verts);
    }
    out
}

/// Splits `rp` at its root if the root is a cut vertex: side 1 is the root
/// plus the first component of `rp.pattern − root`, side 2 the root plus
/// everything else. Both sides are rooted at vertex 0 (the shared root) and
/// are connected by construction. Returns `None` when the root is not a cut
/// vertex (single component — the pattern must be counted directly).
pub fn split_at_root(rp: &RootedPattern) -> Option<(RootedPattern, RootedPattern)> {
    let comps = components_without(&rp.pattern, rp.root);
    if comps.len() < 2 {
        return None;
    }
    let mut side1 = vec![rp.root];
    side1.extend_from_slice(&comps[0]);
    let mut side2 = vec![rp.root];
    for c in &comps[1..] {
        side2.extend_from_slice(c);
    }
    let p1 = rp.pattern.induced_on(&side1);
    let p2 = rp.pattern.induced_on(&side2);
    Some((RootedPattern::new(p1, 0), RootedPattern::new(p2, 0)))
}

/// The correction terms of the vertex-identification identity: for each
/// *non-empty* partial injection `μ` from `h1`'s non-root vertices into
/// `h2`'s (label-respecting, edge-label-consistent), the quotient pattern
/// obtained by gluing `h1` onto `h2` along `root ∪ μ`. Terms are grouped by
/// rooted canonical key; the multiplicity counts how many `μ` produce each
/// class. Every quotient is connected, strictly smaller than
/// `h1.len() + h2.len() − 1`, and rooted at the shared root, so recursive
/// decomposition terminates.
pub fn overlap_terms(h1: &RootedPattern, h2: &RootedPattern) -> Vec<(RootedPattern, u64)> {
    assert_eq!(
        h1.pattern.vertex_label(h1.root as usize),
        h2.pattern.vertex_label(h2.root as usize),
        "sides must agree on the root label"
    );
    let others1: Vec<u8> = (0..h1.len() as u8).filter(|&v| v != h1.root).collect();
    let others2: Vec<u8> = (0..h2.len() as u8).filter(|&v| v != h2.root).collect();

    let mut terms: Vec<(RootedPattern, u64)> = Vec::new();
    let mut keys: Vec<CanonicalCode> = Vec::new();
    // mu[i] = Some(h2 vertex) if others1[i] is identified, else None.
    let mut mu: Vec<Option<u8>> = vec![None; others1.len()];
    let mut used2: u32 = 0;
    enumerate_injections(
        h1,
        h2,
        &others1,
        &others2,
        0,
        &mut mu,
        &mut used2,
        &mut |mu| {
            if mu.iter().all(|m| m.is_none()) {
                return; // μ = ∅ is the pattern itself, not a correction.
            }
            if let Some(q) = quotient(h1, h2, &others1, mu) {
                let key = q.key();
                match keys.iter().position(|k| *k == key) {
                    Some(i) => terms[i].1 += 1,
                    None => {
                        keys.push(key);
                        terms.push((q, 1));
                    }
                }
            }
        },
    );
    terms
}

#[allow(clippy::too_many_arguments)]
fn enumerate_injections(
    h1: &RootedPattern,
    h2: &RootedPattern,
    others1: &[u8],
    others2: &[u8],
    i: usize,
    mu: &mut Vec<Option<u8>>,
    used2: &mut u32,
    f: &mut impl FnMut(&[Option<u8>]),
) {
    if i == others1.len() {
        f(mu);
        return;
    }
    // Leave others1[i] unidentified.
    mu[i] = None;
    enumerate_injections(h1, h2, others1, others2, i + 1, mu, used2, f);
    // Or identify it with any unused, like-labeled h2 vertex.
    let l1 = h1.pattern.vertex_label(others1[i] as usize);
    for &w in others2 {
        if *used2 >> w & 1 == 1 || h2.pattern.vertex_label(w as usize) != l1 {
            continue;
        }
        mu[i] = Some(w);
        *used2 |= 1 << w;
        enumerate_injections(h1, h2, others1, others2, i + 1, mu, used2, f);
        *used2 &= !(1 << w);
    }
    mu[i] = None;
}

/// The quotient of gluing `h1` onto `h2` along the root and `μ`: `h2`'s
/// vertex ids are kept (root included), unidentified `h1` vertices are
/// appended. Parallel edges collapse; `None` if edge labels conflict on a
/// collapsed pair (such overlaps admit no embedding in a simple labeled
/// graph).
fn quotient(
    h1: &RootedPattern,
    h2: &RootedPattern,
    others1: &[u8],
    mu: &[Option<u8>],
) -> Option<RootedPattern> {
    let n2 = h2.len();
    // map1[v] = quotient id of h1 vertex v.
    let mut map1 = vec![u8::MAX; h1.len()];
    map1[h1.root as usize] = h2.root;
    let mut labels: Vec<u32> = (0..n2).map(|v| h2.pattern.vertex_label(v)).collect();
    let mut next = n2 as u8;
    for (i, &v) in others1.iter().enumerate() {
        match mu[i] {
            Some(w) => map1[v as usize] = w,
            None => {
                map1[v as usize] = next;
                labels.push(h1.pattern.vertex_label(v as usize));
                next += 1;
            }
        }
    }
    let mut edges: BTreeMap<(u8, u8), u32> = h2
        .pattern
        .edges()
        .iter()
        .map(|&(u, v, l)| ((u, v), l))
        .collect();
    for &(u, v, l) in h1.pattern.edges() {
        let (a, b) = (map1[u as usize], map1[v as usize]);
        debug_assert_ne!(a, b, "quotient map is injective on each side");
        let key = (a.min(b), a.max(b));
        match edges.get(&key) {
            Some(&l2) if l2 != l => return None, // edge-label conflict
            _ => {
                edges.insert(key, l);
            }
        }
    }
    let edge_list: Vec<(u8, u8, u32)> = edges.into_iter().map(|((u, v), l)| (u, v, l)).collect();
    Some(RootedPattern::new(Pattern::new(labels, edge_list), h2.root))
}

/// Every connected unlabeled shape on `k` vertices, one representative per
/// isomorphism class, ordered densest first (ties broken deterministically
/// by enumeration order). Counts are 1, 1, 2, 6, 21 for k = 1..5.
pub fn connected_shapes(k: usize) -> Vec<Pattern> {
    assert!((1..=8).contains(&k), "shape enumeration supports 1 ≤ k ≤ 8");
    let mut pairs: Vec<(u8, u8)> = Vec::new();
    for u in 0..k as u8 {
        for v in (u + 1)..k as u8 {
            pairs.push((u, v));
        }
    }
    let mut codes: Vec<CanonicalCode> = Vec::new();
    let mut shapes: Vec<Pattern> = Vec::new();
    for mask in 0u64..(1 << pairs.len()) {
        let edges: Vec<(u8, u8)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let p = Pattern::unlabeled(k, &edges);
        if !p.is_connected() {
            continue;
        }
        let code = canonical_code(&p);
        if !codes.contains(&code) {
            codes.push(code);
            shapes.push(p);
        }
    }
    shapes.sort_by_key(|p| std::cmp::Reverse(p.num_edges()));
    shapes
}

/// The Möbius basis converting non-induced subgraph counts into induced
/// motif counts over the connected `k`-vertex shapes.
///
/// With shapes ordered densest first, `N_sub(Q_i) = Σ_j a_ij · N_ind(Q_j)`
/// where `a_ij` counts the connected spanning subgraphs of `Q_j` isomorphic
/// to `Q_i` — a lower-triangular system with unit diagonal (`a_ij = 0`
/// unless `Q_j` has at least as many edges as `Q_i`), solved by forward
/// substitution in [`MotifBasis::induced_from_subgraph`].
#[derive(Debug, Clone)]
pub struct MotifBasis {
    k: usize,
    shapes: Vec<Pattern>,
    codes: Vec<CanonicalCode>,
    /// `coeffs[i][j]` = number of connected spanning subgraphs of
    /// `shapes[j]` isomorphic to `shapes[i]`.
    coeffs: Vec<Vec<u64>>,
}

impl MotifBasis {
    /// Builds the basis for `k`-vertex motifs by enumerating the connected
    /// spanning edge-subsets of every shape.
    pub fn new(k: usize) -> Self {
        let shapes = connected_shapes(k);
        let codes: Vec<CanonicalCode> = shapes.iter().map(canonical_code).collect();
        let m = shapes.len();
        let mut coeffs = vec![vec![0u64; m]; m];
        for (j, p) in shapes.iter().enumerate() {
            let edges = p.edges();
            for mask in 0u64..(1 << edges.len()) {
                let sub: Vec<(u8, u8, u32)> = edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &e)| e)
                    .collect();
                let q = Pattern::new(vec![0; k], sub);
                if !q.is_connected() {
                    continue;
                }
                let code = canonical_code(&q);
                let i = codes
                    .iter()
                    .position(|c| *c == code)
                    .expect("spanning connected subgraph must be a known shape");
                coeffs[i][j] += 1;
            }
        }
        for (i, row) in coeffs.iter().enumerate() {
            debug_assert_eq!(row[i], 1, "diagonal must be the identity subgraph");
            debug_assert!(
                row[i + 1..].iter().all(|&c| c == 0),
                "matrix must be lower-triangular densest-first"
            );
        }
        MotifBasis {
            k,
            shapes,
            codes,
            coeffs,
        }
    }

    /// Motif size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The shapes, densest first.
    pub fn shapes(&self) -> &[Pattern] {
        &self.shapes
    }

    /// Canonical codes aligned with [`MotifBasis::shapes`].
    pub fn codes(&self) -> &[CanonicalCode] {
        &self.codes
    }

    /// The Möbius coefficient `a(Q_i, Q_j)`.
    pub fn coeff(&self, i: usize, j: usize) -> u64 {
        self.coeffs[i][j]
    }

    /// Number of non-zero off-diagonal coefficients — the inclusion–
    /// exclusion terms the back-substitution applies.
    pub fn ie_terms(&self) -> u64 {
        let mut n = 0;
        for (i, row) in self.coeffs.iter().enumerate() {
            n += row[..i].iter().filter(|&&c| c != 0).count() as u64;
        }
        n
    }

    /// Converts non-induced subgraph counts (aligned with
    /// [`MotifBasis::shapes`]) into induced motif counts by forward
    /// substitution. Panics if the inputs are inconsistent (a negative
    /// intermediate means `subs` did not come from one graph).
    pub fn induced_from_subgraph(&self, subs: &[u64]) -> Vec<u64> {
        let m = self.shapes.len();
        assert_eq!(subs.len(), m);
        let mut ind = vec![0i128; m];
        for i in 0..m {
            let mut v = subs[i] as i128;
            for (coef, prior) in self.coeffs[i].iter().zip(&ind[..i]) {
                v -= *coef as i128 * *prior;
            }
            assert!(v >= 0, "inconsistent subgraph counts at shape {i}");
            ind[i] = v;
        }
        ind.into_iter().map(|v| v as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autom::automorphisms;

    fn edge_rooted() -> RootedPattern {
        RootedPattern::new(Pattern::path(2), 0)
    }

    #[test]
    fn connected_shape_counts() {
        assert_eq!(connected_shapes(1).len(), 1);
        assert_eq!(connected_shapes(2).len(), 1);
        assert_eq!(connected_shapes(3).len(), 2);
        assert_eq!(connected_shapes(4).len(), 6);
        assert_eq!(connected_shapes(5).len(), 21);
        // Densest first: the clique leads.
        for k in 2..=5 {
            assert!(connected_shapes(k)[0].is_clique());
        }
    }

    #[test]
    fn rooted_keys_distinguish_roots_and_ignore_labeling() {
        let end = RootedPattern::new(Pattern::path(3), 0);
        let center = RootedPattern::new(Pattern::path(3), 1);
        assert_ne!(end.key(), center.key());
        // Other end of the path: same rooted class as vertex 0.
        let other_end = RootedPattern::new(Pattern::path(3), 2);
        assert_eq!(end.key(), other_end.key());
        // Relabeled copy keeps the key.
        let relabeled = RootedPattern::new(Pattern::path(3).permuted(&[2, 0, 1]), 1);
        assert_eq!(end.key(), relabeled.key());
    }

    #[test]
    fn components_without_root() {
        // Path 0-1-2: removing the center splits it.
        let p = Pattern::path(3);
        assert_eq!(components_without(&p, 1), vec![vec![0], vec![2]]);
        assert_eq!(components_without(&p, 0), vec![vec![1, 2]]);
        // Triangle: no cut vertex.
        assert_eq!(components_without(&Pattern::clique(3), 0).len(), 1);
    }

    #[test]
    fn split_at_cut_root() {
        let center = RootedPattern::new(Pattern::path(3), 1);
        let (a, b) = split_at_root(&center).expect("center of a path is a cut vertex");
        assert_eq!(a.key(), edge_rooted().key());
        assert_eq!(b.key(), edge_rooted().key());
        // Star with 3 leaves splits into an edge and a 2-leaf star.
        let star = RootedPattern::new(Pattern::star(3), 0);
        let (a, b) = split_at_root(&star).unwrap();
        assert_eq!(a.len() + b.len(), star.len() + 1);
        assert_eq!(a.key(), edge_rooted().key());
        assert_eq!(b.key(), RootedPattern::new(Pattern::path(3), 1).key());
        // Non-cut roots do not split.
        assert!(split_at_root(&RootedPattern::new(Pattern::clique(3), 0)).is_none());
        assert!(split_at_root(&RootedPattern::new(Pattern::path(3), 0)).is_none());
    }

    #[test]
    fn overlap_terms_path3_at_center() {
        // emb_center(P3)[v] = d(v)² − d(v): one correction term, the edge.
        let terms = overlap_terms(&edge_rooted(), &edge_rooted());
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, 1);
        assert_eq!(terms[0].0.key(), edge_rooted().key());
    }

    #[test]
    fn overlap_terms_star3_at_center() {
        // emb(star3)[v] = d · d(d−1) − 2 · d(d−1) = d(d−1)(d−2):
        // both injections of the lone edge leaf collapse onto a star2 leaf.
        let star2 = RootedPattern::new(Pattern::unlabeled(3, &[(0, 1), (0, 2)]), 0);
        let terms = overlap_terms(&edge_rooted(), &star2);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, 2);
        assert_eq!(terms[0].0.key(), star2.key());
    }

    #[test]
    fn overlap_terms_two_paths_at_ends() {
        // Two P3s glued at an end: 6 non-empty injections over 5 rooted
        // classes (tadpole appears twice); every quotient is connected and
        // smaller than the 5-vertex join.
        let p3 = RootedPattern::new(Pattern::path(3), 0);
        let terms = overlap_terms(&p3, &p3);
        assert_eq!(terms.iter().map(|&(_, m)| m).sum::<u64>(), 6);
        assert_eq!(terms.len(), 5);
        for (q, _) in &terms {
            assert!(q.pattern.is_connected());
            assert!(q.len() < 5);
            assert_eq!(q.root, 0);
        }
        let mult: Vec<u64> = terms.iter().map(|&(_, m)| m).collect();
        assert_eq!(mult.iter().filter(|&&m| m == 2).count(), 1);
    }

    #[test]
    fn overlap_respects_vertex_labels() {
        // Leaves with different labels cannot be identified: no terms.
        let a = RootedPattern::new(Pattern::new(vec![5, 7], vec![(0, 1, 0)]), 0);
        let b = RootedPattern::new(Pattern::new(vec![5, 8], vec![(0, 1, 0)]), 0);
        assert!(overlap_terms(&a, &b).is_empty());
        // Same labels: the single collapse term comes back.
        let c = RootedPattern::new(Pattern::new(vec![5, 7], vec![(0, 1, 0)]), 0);
        assert_eq!(overlap_terms(&a, &c).len(), 1);
    }

    #[test]
    fn overlap_edge_label_conflicts_drop_terms() {
        // Identifying the leaves would merge edges labeled 1 and 2: no term.
        let a = RootedPattern::new(Pattern::new(vec![0, 0], vec![(0, 1, 1)]), 0);
        let b = RootedPattern::new(Pattern::new(vec![0, 0], vec![(0, 1, 2)]), 0);
        assert!(overlap_terms(&a, &b).is_empty());
    }

    #[test]
    fn mobius_matrix_k3() {
        // Shapes densest first: [K3, P3]; a(P3, K3) = 3 spanning paths.
        let basis = MotifBasis::new(3);
        assert_eq!(basis.shapes().len(), 2);
        assert!(basis.shapes()[0].is_clique());
        assert_eq!(basis.coeff(0, 0), 1);
        assert_eq!(basis.coeff(1, 1), 1);
        assert_eq!(basis.coeff(1, 0), 3);
        assert_eq!(basis.ie_terms(), 1);
        // N_ind(P3) = N_sub(P3) − 3·N_ind(K3).
        assert_eq!(basis.induced_from_subgraph(&[4, 20]), vec![4, 8]);
    }

    /// Deterministic pseudo-random adjacency matrix (LCG, no external rand).
    fn test_graph(n: usize, seed: u64, density_pct: u64) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; n]; n];
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for u in 0..n {
            for v in (u + 1)..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (s >> 33) % 100 < density_pct {
                    adj[u][v] = true;
                    adj[v][u] = true;
                }
            }
        }
        adj
    }

    /// Brute-force induced motif counts: classify the induced subgraph of
    /// every k-subset.
    fn brute_induced(adj: &[Vec<bool>], basis: &MotifBasis) -> Vec<u64> {
        let n = adj.len();
        let k = basis.k();
        let mut counts = vec![0u64; basis.shapes().len()];
        let mut subset: Vec<usize> = Vec::new();
        fn rec(
            start: usize,
            n: usize,
            k: usize,
            subset: &mut Vec<usize>,
            adj: &[Vec<bool>],
            basis: &MotifBasis,
            counts: &mut [u64],
        ) {
            if subset.len() == k {
                let mut edges = Vec::new();
                for i in 0..k {
                    for j in (i + 1)..k {
                        if adj[subset[i]][subset[j]] {
                            edges.push((i as u8, j as u8));
                        }
                    }
                }
                let p = Pattern::unlabeled(k, &edges);
                if p.is_connected() {
                    let code = canonical_code(&p);
                    let i = basis.codes().iter().position(|c| *c == code).unwrap();
                    counts[i] += 1;
                }
                return;
            }
            for v in start..n {
                subset.push(v);
                rec(v + 1, n, k, subset, adj, basis, counts);
                subset.pop();
            }
        }
        rec(0, n, k, &mut subset, adj, basis, &mut counts);
        counts
    }

    /// Brute-force non-induced subgraph counts: injective homomorphisms
    /// divided by the automorphism group order.
    fn brute_subgraph(adj: &[Vec<bool>], basis: &MotifBasis) -> Vec<u64> {
        let n = adj.len();
        basis
            .shapes()
            .iter()
            .map(|shape| {
                let mut homs = 0u64;
                let mut map: Vec<usize> = Vec::new();
                let mut used = vec![false; n];
                fn rec(
                    shape: &Pattern,
                    adj: &[Vec<bool>],
                    map: &mut Vec<usize>,
                    used: &mut [bool],
                    homs: &mut u64,
                ) {
                    let pos = map.len();
                    if pos == shape.num_vertices() {
                        *homs += 1;
                        return;
                    }
                    for g in 0..adj.len() {
                        if used[g] {
                            continue;
                        }
                        let ok = (0..pos).all(|u| !shape.adjacent(u, pos) || adj[map[u]][g]);
                        if ok {
                            used[g] = true;
                            map.push(g);
                            rec(shape, adj, map, used, homs);
                            map.pop();
                            used[g] = false;
                        }
                    }
                }
                rec(shape, adj, &mut map, &mut used, &mut homs);
                let aut = automorphisms(shape).len() as u64;
                assert_eq!(homs % aut, 0, "homs divisible by |Aut|");
                homs / aut
            })
            .collect()
    }

    #[test]
    fn mobius_inversion_matches_brute_force() {
        // Independent cross-check of the whole matrix: on pseudo-random
        // graphs, forward substitution over brute-force N_sub must equal
        // brute-force N_ind for k = 3 and 4.
        for k in [3usize, 4] {
            let basis = MotifBasis::new(k);
            for (seed, density) in [(1u64, 55), (2, 35), (7, 75)] {
                let adj = test_graph(8, seed, density);
                let subs = brute_subgraph(&adj, &basis);
                let inds = brute_induced(&adj, &basis);
                assert_eq!(
                    basis.induced_from_subgraph(&subs),
                    inds,
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn mobius_inversion_matches_brute_force_k5() {
        let basis = MotifBasis::new(5);
        assert_eq!(basis.shapes().len(), 21);
        let adj = test_graph(9, 3, 50);
        let subs = brute_subgraph(&adj, &basis);
        let inds = brute_induced(&adj, &basis);
        assert_eq!(basis.induced_from_subgraph(&subs), inds);
    }
}
