//! Symmetry breaking for pattern-induced matching (Grochow–Kellis [24]).
//!
//! Pattern-induced extension (§3, Fig. 1) matches a user query pattern
//! directly. Without care, a pattern with non-trivial automorphisms is
//! matched once per automorphism. The fix from Grochow & Kellis: impose a
//! set of `match[a] < match[b]` order conditions on the matched graph
//! vertices such that exactly one embedding per automorphism class
//! satisfies them all.

use crate::autom::{automorphisms, orbit, stabilizer};
use crate::Pattern;

/// A set of `match[a] < match[b]` conditions over pattern vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryConditions {
    /// Pairs `(a, b)` requiring the graph vertex matched to pattern vertex
    /// `a` to be smaller than the one matched to `b`.
    pub less_than: Vec<(u8, u8)>,
}

impl SymmetryConditions {
    /// Derives the conditions for `p` by iteratively fixing the smallest
    /// vertex of a non-trivial orbit and descending into its stabilizer.
    pub fn for_pattern(p: &Pattern) -> Self {
        Self::for_group(p.num_vertices(), automorphisms(p))
    }

    /// Derives conditions for an arbitrary permutation group over `n`
    /// vertices (the Grochow–Kellis loop is valid for any subgroup, not
    /// just the full automorphism group): exactly one member of each
    /// group-orbit of injective assignments satisfies them. The planner
    /// uses this with the *stabilizer* of a rooted pattern's root, whose
    /// conditions then never constrain the root itself.
    pub fn for_group(n: usize, group: Vec<Vec<u8>>) -> Self {
        let mut group = group;
        let mut less_than = Vec::new();
        while group.len() > 1 {
            // Smallest vertex with a non-trivial orbit.
            let mut fixed = None;
            for v in 0..n {
                let o = orbit(&group, v);
                if o.len() > 1 {
                    fixed = Some((v, o));
                    break;
                }
            }
            let (v, o) = fixed.expect("non-trivial group must move some vertex");
            for &u in &o {
                if u as usize != v {
                    less_than.push((v as u8, u));
                }
            }
            group = stabilizer(&group, v);
        }
        SymmetryConditions { less_than }
    }

    /// No conditions (used to measure redundancy without symmetry breaking).
    pub fn none() -> Self {
        SymmetryConditions {
            less_than: Vec::new(),
        }
    }

    /// Whether a complete assignment `m` (graph vertex matched to each
    /// pattern vertex) satisfies every condition.
    pub fn check(&self, m: &[u32]) -> bool {
        self.less_than
            .iter()
            .all(|&(a, b)| m[a as usize] < m[b as usize])
    }

    /// Number of conditions.
    pub fn len(&self) -> usize {
        self.less_than.len()
    }

    /// Whether there are no conditions.
    pub fn is_empty(&self) -> bool {
        self.less_than.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: over all injective assignments of `n` pattern
    /// vertices onto `0..universe` graph ids that are automorphic images of
    /// each other, exactly one satisfies the conditions.
    fn assert_one_per_class(p: &Pattern) {
        let conds = SymmetryConditions::for_pattern(p);
        let auts = automorphisms(p);
        let n = p.num_vertices();
        let universe = n + 2;
        // Enumerate all injective assignments m: pattern -> universe.
        let mut assignment = vec![u32::MAX; n];
        let mut used = vec![false; universe];
        fn rec(
            pos: usize,
            n: usize,
            universe: usize,
            assignment: &mut Vec<u32>,
            used: &mut Vec<bool>,
            all: &mut Vec<Vec<u32>>,
        ) {
            if pos == n {
                all.push(assignment.clone());
                return;
            }
            for g in 0..universe {
                if !used[g] {
                    used[g] = true;
                    assignment[pos] = g as u32;
                    rec(pos + 1, n, universe, assignment, used, all);
                    used[g] = false;
                }
            }
        }
        let mut all = Vec::new();
        rec(0, n, universe, &mut assignment, &mut used, &mut all);
        // Group assignments into automorphism classes: m ~ m' iff there is
        // an automorphism σ with m'[v] = m[σ(v)] for all v.
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for m in &all {
            if seen.contains(m) {
                continue;
            }
            let mut class = Vec::new();
            for a in &auts {
                let img: Vec<u32> = (0..n).map(|v| m[a[v] as usize]).collect();
                class.push(img);
            }
            class.sort();
            class.dedup();
            let satisfying = class.iter().filter(|mm| conds.check(mm)).count();
            assert_eq!(
                satisfying, 1,
                "pattern {p}, class of {m:?}: {satisfying} satisfy"
            );
            for mm in class {
                seen.insert(mm);
            }
        }
    }

    #[test]
    fn triangle_conditions_total_order() {
        let c = SymmetryConditions::for_pattern(&Pattern::clique(3));
        assert_eq!(c.len(), 3);
        assert!(c.check(&[1, 5, 9]));
        assert!(!c.check(&[5, 1, 9]));
    }

    #[test]
    fn asymmetric_pattern_no_conditions() {
        let p = Pattern::new(vec![0, 1, 2], vec![(0, 1, 0), (1, 2, 0)]);
        assert!(SymmetryConditions::for_pattern(&p).is_empty());
    }

    #[test]
    fn exactly_one_representative_clique() {
        assert_one_per_class(&Pattern::clique(3));
        assert_one_per_class(&Pattern::clique(4));
    }

    #[test]
    fn exactly_one_representative_path_star_cycle() {
        assert_one_per_class(&Pattern::path(3));
        assert_one_per_class(&Pattern::path(4));
        assert_one_per_class(&Pattern::star(3));
        assert_one_per_class(&Pattern::cycle(4));
        assert_one_per_class(&Pattern::cycle(5));
    }

    #[test]
    fn exactly_one_representative_labeled() {
        let p = Pattern::new(vec![1, 0, 0], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        assert_one_per_class(&p);
        // Square with alternating labels: automorphisms are label-preserving.
        let q = Pattern::new(
            vec![0, 1, 0, 1],
            vec![(0, 1, 0), (1, 2, 0), (2, 3, 0), (0, 3, 0)],
        );
        assert_one_per_class(&q);
    }

    /// Like [`assert_one_per_class`] but for an explicit subgroup: each
    /// subgroup-orbit of injective assignments has exactly one
    /// representative satisfying the derived conditions.
    fn assert_one_per_subgroup_class(n: usize, group: &[Vec<u8>]) {
        let conds = SymmetryConditions::for_group(n, group.to_vec());
        let universe = n + 2;
        let mut all: Vec<Vec<u32>> = Vec::new();
        let mut assignment = vec![u32::MAX; n];
        let mut used = vec![false; universe];
        fn rec(
            pos: usize,
            n: usize,
            universe: usize,
            assignment: &mut Vec<u32>,
            used: &mut Vec<bool>,
            all: &mut Vec<Vec<u32>>,
        ) {
            if pos == n {
                all.push(assignment.clone());
                return;
            }
            for g in 0..universe {
                if !used[g] {
                    used[g] = true;
                    assignment[pos] = g as u32;
                    rec(pos + 1, n, universe, assignment, used, all);
                    used[g] = false;
                }
            }
        }
        rec(0, n, universe, &mut assignment, &mut used, &mut all);
        use std::collections::HashSet;
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        for m in &all {
            if seen.contains(m) {
                continue;
            }
            let mut class = Vec::new();
            for a in group {
                let img: Vec<u32> = (0..n).map(|v| m[a[v] as usize]).collect();
                class.push(img);
            }
            class.sort();
            class.dedup();
            let satisfying = class.iter().filter(|mm| conds.check(mm)).count();
            assert_eq!(satisfying, 1, "class of {m:?}: {satisfying} satisfy");
            for mm in class {
                seen.insert(mm);
            }
        }
    }

    #[test]
    fn subgroup_conditions_fix_one_per_stabilizer_orbit() {
        use crate::autom::stabilizer;
        // Root stabilizers: the subgroup the rooted planner breaks by.
        for (p, root) in [
            (Pattern::clique(4), 0usize),
            (Pattern::star(3), 0),
            (Pattern::cycle(4), 1),
            (Pattern::path(4), 1),
        ] {
            let stab = stabilizer(&automorphisms(&p), root);
            let conds = SymmetryConditions::for_group(p.num_vertices(), stab.clone());
            // The root is fixed by the whole subgroup, so no condition may
            // mention it.
            for &(a, b) in &conds.less_than {
                assert_ne!(a as usize, root, "{p} root {root}");
                assert_ne!(b as usize, root, "{p} root {root}");
            }
            assert_one_per_subgroup_class(p.num_vertices(), &stab);
        }
    }

    #[test]
    fn exactly_one_representative_diamond() {
        // K4 minus one edge ("diamond").
        let p = Pattern::unlabeled(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_one_per_class(&p);
    }
}
