//! Automorphism-group enumeration for patterns.
//!
//! An automorphism is an isomorphism from a pattern to itself. The
//! enumeration backtracks over candidate images constrained by the refined
//! colors of [`crate::canon::refine_colors`] (automorphisms can only map
//! within refinement cells), checking adjacency and edge labels against the
//! already-assigned prefix. Patterns here are subgraph templates (≲ 10
//! vertices), so explicit enumeration is cheap — and the symmetry-breaking
//! derivation (Grochow–Kellis) needs the explicit group anyway.

use crate::canon::refine_colors;
use crate::Pattern;

/// All automorphisms of `p`, each as `perm[v] = image of v`. The identity
/// is always included; the result is never empty.
pub fn automorphisms(p: &Pattern) -> Vec<Vec<u8>> {
    let n = p.num_vertices();
    if n == 0 {
        return vec![Vec::new()];
    }
    let colors = refine_colors(p);
    let mut out = Vec::new();
    let mut perm: Vec<u8> = Vec::with_capacity(n);
    let mut used: u32 = 0;
    backtrack(p, &colors, &mut perm, &mut used, &mut out);
    debug_assert!(out
        .iter()
        .any(|a| a.iter().enumerate().all(|(i, &v)| i == v as usize)));
    out
}

fn backtrack(
    p: &Pattern,
    colors: &[u32],
    perm: &mut Vec<u8>,
    used: &mut u32,
    out: &mut Vec<Vec<u8>>,
) {
    let n = p.num_vertices();
    let v = perm.len();
    if v == n {
        out.push(perm.clone());
        return;
    }
    for img in 0..n {
        if *used >> img & 1 == 1 || colors[img] != colors[v] {
            continue;
        }
        // Check consistency with the assigned prefix.
        let mut ok = p.vertex_label(img) == p.vertex_label(v);
        for (u, &pu) in perm.iter().enumerate() {
            if !ok {
                break;
            }
            let adj = p.adjacent(u, v);
            let adj_img = p.adjacent(pu as usize, img);
            ok = adj == adj_img && (!adj || p.edge_label(u, v) == p.edge_label(pu as usize, img));
        }
        if ok {
            perm.push(img as u8);
            *used |= 1 << img;
            backtrack(p, colors, perm, used, out);
            *used &= !(1 << img);
            perm.pop();
        }
    }
}

/// The order of the automorphism group of `p`, computed per connected
/// component: the group of a disconnected pattern is the direct product of
/// each component's group, extended by the wreath-product permutations of
/// mutually isomorphic components, so
///
/// ```text
/// |Aut(p)| = Π over isomorphism classes  |Aut(rep)|^m · m!
/// ```
///
/// where `m` is the class multiplicity. For connected patterns this is just
/// `automorphisms(p).len()`; for disconnected sub-patterns (which the
/// decomposition planner produces) the product form avoids enumerating the
/// cross-component permutations explicitly and is validated against the
/// enumerated group in the tests.
pub fn automorphism_count(p: &Pattern) -> u64 {
    let comps = p.components();
    if comps.len() <= 1 {
        return automorphisms(p).len() as u64;
    }
    // (canonical code, |Aut(representative)|, multiplicity) per class.
    let mut classes: Vec<(crate::CanonicalCode, u64, u64)> = Vec::new();
    for comp in &comps {
        let sub = p.induced_on(comp);
        let code = crate::canon::canonical_code(&sub);
        match classes.iter_mut().find(|(c, _, _)| *c == code) {
            Some((_, _, m)) => *m += 1,
            None => {
                let aut = automorphisms(&sub).len() as u64;
                classes.push((code, aut, 1));
            }
        }
    }
    classes
        .iter()
        .map(|&(_, aut, m)| aut.pow(m as u32) * factorial(m))
        .product()
}

fn factorial(m: u64) -> u64 {
    (2..=m).product::<u64>().max(1)
}

/// The orbit of vertex `v` under the group `auts`: the sorted set of images
/// of `v`.
pub fn orbit(auts: &[Vec<u8>], v: usize) -> Vec<u8> {
    let mut o: Vec<u8> = auts.iter().map(|a| a[v]).collect();
    o.sort_unstable();
    o.dedup();
    o
}

/// The stabilizer subgroup fixing vertex `v`.
pub fn stabilizer(auts: &[Vec<u8>], v: usize) -> Vec<Vec<u8>> {
    auts.iter()
        .filter(|a| a[v] as usize == v)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_six_automorphisms() {
        assert_eq!(automorphisms(&Pattern::clique(3)).len(), 6);
    }

    #[test]
    fn clique_group_sizes() {
        assert_eq!(automorphisms(&Pattern::clique(4)).len(), 24);
        assert_eq!(automorphisms(&Pattern::clique(5)).len(), 120);
    }

    #[test]
    fn path_has_reversal_only() {
        let auts = automorphisms(&Pattern::path(4));
        assert_eq!(auts.len(), 2);
        assert!(auts.contains(&vec![3, 2, 1, 0]));
    }

    #[test]
    fn cycle_group_is_dihedral() {
        // |Aut(C_5)| = 2 * 5.
        assert_eq!(automorphisms(&Pattern::cycle(5)).len(), 10);
    }

    #[test]
    fn star_group_permutes_leaves() {
        // Star with 4 leaves: 4! leaf permutations.
        assert_eq!(automorphisms(&Pattern::star(4)).len(), 24);
    }

    #[test]
    fn labels_restrict_group() {
        // Triangle with one distinct vertex label: only the swap of the two
        // like-labeled vertices survives (plus identity).
        let p = Pattern::new(vec![1, 0, 0], vec![(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        assert_eq!(automorphisms(&p).len(), 2);
        // Distinct edge label breaks symmetry too.
        let q = Pattern::new(vec![0, 0, 0], vec![(0, 1, 9), (1, 2, 0), (0, 2, 0)]);
        assert_eq!(automorphisms(&q).len(), 2);
    }

    #[test]
    fn orbits_and_stabilizers() {
        let auts = automorphisms(&Pattern::clique(3));
        assert_eq!(orbit(&auts, 0), vec![0, 1, 2]);
        let stab = stabilizer(&auts, 0);
        assert_eq!(stab.len(), 2);
        assert_eq!(orbit(&stab, 1), vec![1, 2]);
    }

    #[test]
    fn asymmetric_pattern_trivial_group() {
        // A path with distinct labels has only the identity.
        let p = Pattern::new(vec![0, 1, 2], vec![(0, 1, 0), (1, 2, 0)]);
        assert_eq!(automorphisms(&p).len(), 1);
    }

    #[test]
    fn disconnected_group_is_component_product() {
        // Two disjoint edges: each edge flips (2·2) and the edges swap (2!)
        // -> 8. The enumerated group and the product formula must agree.
        let two_edges = Pattern::unlabeled(4, &[(0, 1), (2, 3)]);
        assert_eq!(automorphisms(&two_edges).len(), 8);
        assert_eq!(automorphism_count(&two_edges), 8);

        // Triangle plus isolated vertex: 6·1.
        let k3_k1 = Pattern::unlabeled(4, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(automorphism_count(&k3_k1), 6);
        assert_eq!(
            automorphisms(&k3_k1).len() as u64,
            automorphism_count(&k3_k1)
        );

        // Three isolated vertices: S_3.
        let bare = Pattern::unlabeled(3, &[]);
        assert_eq!(automorphism_count(&bare), 6);

        // Edge + path3: non-isomorphic components, no cross swap: 2·2.
        let mixed = Pattern::unlabeled(5, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(automorphism_count(&mixed), 4);
        assert_eq!(
            automorphisms(&mixed).len() as u64,
            automorphism_count(&mixed)
        );

        // Labels block the component swap: two edges, one labeled.
        let labeled = Pattern::new(vec![1, 1, 0, 0], vec![(0, 1, 0), (2, 3, 0)]);
        assert_eq!(automorphism_count(&labeled), 4);
        assert_eq!(
            automorphisms(&labeled).len() as u64,
            automorphism_count(&labeled)
        );
    }

    #[test]
    fn product_formula_matches_enumeration_on_random_patterns() {
        // Cross-validate the component-product count against the enumerated
        // group on every 5-vertex pattern over a fixed edge menu (includes
        // many disconnected shapes).
        let pairs = [(0u8, 1u8), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)];
        for mask in 0u32..64 {
            let edges: Vec<(u8, u8)> = pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let p = Pattern::unlabeled(5, &edges);
            assert_eq!(
                automorphisms(&p).len() as u64,
                automorphism_count(&p),
                "mask {mask:#x}: {p}"
            );
        }
    }

    #[test]
    fn group_closure_property() {
        // Composition of any two automorphisms is an automorphism.
        let p = Pattern::cycle(4);
        let auts = automorphisms(&p);
        for a in &auts {
            for b in &auts {
                let comp: Vec<u8> = (0..4).map(|v| a[b[v] as usize]).collect();
                assert!(auts.contains(&comp));
            }
        }
    }
}
