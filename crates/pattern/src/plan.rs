//! Matching orders for pattern-induced extension.
//!
//! An [`ExplorationPlan`] fixes the order in which the vertices of a query
//! pattern are matched against the input graph. The order is *connected*
//! (every vertex after the first has at least one earlier neighbor in the
//! pattern), so candidates for position `i` always come from the adjacency
//! of an already-matched vertex — the pattern-induced extension of Fig. 1.
//! Symmetry-breaking conditions are pre-translated to per-position
//! `<`/`>` checks against earlier matches.

use crate::symmetry::SymmetryConditions;
use crate::Pattern;

/// A compiled matching order for a query pattern.
#[derive(Debug, Clone)]
pub struct ExplorationPlan {
    pattern: Pattern,
    /// `order[pos]` = pattern vertex matched at position `pos`.
    order: Vec<u8>,
    /// `pos_of[v]` = position at which pattern vertex `v` is matched.
    pos_of: Vec<u8>,
    /// Vertex label required at each position.
    labels: Vec<u32>,
    /// For each position, `(earlier_position, edge_label)` pairs: the
    /// candidate must be adjacent (with that edge label) to each of them.
    back_edges: Vec<Vec<(u8, u32)>>,
    /// For each position, earlier positions whose match must be **greater**
    /// than the candidate (candidate < match[p]).
    must_be_less_than: Vec<Vec<u8>>,
    /// For each position, earlier positions whose match must be **smaller**
    /// than the candidate (candidate > match[p]).
    must_be_greater_than: Vec<Vec<u8>>,
    /// Positions at which earlier matched vertices must NOT be adjacent to
    /// the candidate are implied by induced matching; pattern-induced
    /// matching in the paper is *not* induced, so non-edges are not checked.
    conditions: SymmetryConditions,
}

impl ExplorationPlan {
    /// Compiles a plan for `pattern` with Grochow–Kellis symmetry breaking.
    ///
    /// Panics if the pattern is empty or disconnected (the model mines
    /// connected subgraphs only).
    pub fn new(pattern: &Pattern) -> Self {
        Self::with_conditions(pattern, SymmetryConditions::for_pattern(pattern))
    }

    /// Compiles a plan without symmetry breaking; every automorphic image
    /// of each match is enumerated. Useful for testing and for measuring
    /// the cost of redundancy.
    pub fn without_symmetry(pattern: &Pattern) -> Self {
        Self::with_conditions(pattern, SymmetryConditions::none())
    }

    fn with_conditions(pattern: &Pattern, conditions: SymmetryConditions) -> Self {
        let n = pattern.num_vertices();
        assert!(n > 0, "cannot plan an empty pattern");
        assert!(pattern.is_connected(), "query pattern must be connected");
        Self::build(pattern, Self::greedy_order(pattern), conditions)
    }

    /// Compiles a plan with an explicit matching order (the planner's cost
    /// model picks orders itself instead of relying on the greedy default).
    ///
    /// Panics if `order` is not a permutation of the pattern vertices or is
    /// not connected (every position after the first must have an earlier
    /// pattern neighbor).
    pub fn with_order(pattern: &Pattern, order: Vec<u8>, conditions: SymmetryConditions) -> Self {
        let n = pattern.num_vertices();
        assert!(n > 0, "cannot plan an empty pattern");
        assert_eq!(order.len(), n, "order must cover every pattern vertex");
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(
                (v as usize) < n && !seen[v as usize],
                "order must be a permutation"
            );
            seen[v as usize] = true;
        }
        for pos in 1..n {
            assert!(
                order[..pos]
                    .iter()
                    .any(|&u| pattern.adjacent(u as usize, order[pos] as usize)),
                "matching order must be connected (position {pos} has no earlier neighbor)"
            );
        }
        Self::build(pattern, order, conditions)
    }

    /// Greedy order: start at the max-degree vertex, then repeatedly take
    /// the vertex with the most already-ordered neighbors (ties: higher
    /// degree, then smaller id). More constrained positions come earlier,
    /// which shrinks the candidate sets.
    fn greedy_order(pattern: &Pattern) -> Vec<u8> {
        let n = pattern.num_vertices();
        let mut order: Vec<u8> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let first = (0..n)
            .max_by_key(|&v| (pattern.degree(v), std::cmp::Reverse(v)))
            .unwrap();
        order.push(first as u8);
        placed[first] = true;
        while order.len() < n {
            let next = (0..n)
                .filter(|&v| !placed[v])
                .max_by_key(|&v| {
                    let matched_nbrs = order
                        .iter()
                        .filter(|&&u| pattern.adjacent(u as usize, v))
                        .count();
                    (matched_nbrs, pattern.degree(v), std::cmp::Reverse(v))
                })
                .unwrap();
            debug_assert!(
                order.iter().any(|&u| pattern.adjacent(u as usize, next)),
                "connected pattern must always offer an attached vertex"
            );
            order.push(next as u8);
            placed[next] = true;
        }
        order
    }

    fn build(pattern: &Pattern, order: Vec<u8>, conditions: SymmetryConditions) -> Self {
        let n = pattern.num_vertices();
        let mut pos_of = vec![0u8; n];
        for (pos, &v) in order.iter().enumerate() {
            pos_of[v as usize] = pos as u8;
        }
        let labels = order
            .iter()
            .map(|&v| pattern.vertex_label(v as usize))
            .collect();
        let mut back_edges: Vec<Vec<(u8, u32)>> = vec![Vec::new(); n];
        for (pos, &v) in order.iter().enumerate() {
            for (epos, &u) in order[..pos].iter().enumerate() {
                if pattern.adjacent(u as usize, v as usize) {
                    let l = pattern.edge_label(u as usize, v as usize).unwrap();
                    back_edges[pos].push((epos as u8, l));
                }
            }
        }
        let mut must_be_less_than: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut must_be_greater_than: Vec<Vec<u8>> = vec![Vec::new(); n];
        for &(a, b) in &conditions.less_than {
            let (pa, pb) = (pos_of[a as usize], pos_of[b as usize]);
            if pa < pb {
                // match[a] already fixed; candidate at pb must be greater.
                must_be_greater_than[pb as usize].push(pa);
            } else {
                // candidate at pa must be smaller than match at pb.
                must_be_less_than[pa as usize].push(pb);
            }
        }

        ExplorationPlan {
            pattern: pattern.clone(),
            order,
            pos_of,
            labels,
            back_edges,
            must_be_less_than,
            must_be_greater_than,
            conditions,
        }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of positions (= pattern vertices).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan is empty (never true: construction rejects empty
    /// patterns).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Pattern vertex matched at `pos`.
    #[inline(always)]
    pub fn vertex_at(&self, pos: usize) -> u8 {
        self.order[pos]
    }

    /// Position of pattern vertex `v`.
    #[inline(always)]
    pub fn position_of(&self, v: usize) -> u8 {
        self.pos_of[v]
    }

    /// Required vertex label at `pos`.
    #[inline(always)]
    pub fn label_at(&self, pos: usize) -> u32 {
        self.labels[pos]
    }

    /// `(earlier_position, edge_label)` adjacency constraints at `pos`.
    /// Non-empty for every `pos ≥ 1`.
    #[inline(always)]
    pub fn back_edges(&self, pos: usize) -> &[(u8, u32)] {
        &self.back_edges[pos]
    }

    /// Earlier positions whose match must exceed the candidate at `pos`.
    #[inline(always)]
    pub fn must_be_less_than(&self, pos: usize) -> &[u8] {
        &self.must_be_less_than[pos]
    }

    /// Earlier positions whose match must be below the candidate at `pos`.
    #[inline(always)]
    pub fn must_be_greater_than(&self, pos: usize) -> &[u8] {
        &self.must_be_greater_than[pos]
    }

    /// The symmetry conditions the plan encodes.
    pub fn conditions(&self) -> &SymmetryConditions {
        &self.conditions
    }

    /// Reorders a complete match (indexed by position) into pattern-vertex
    /// order: `out[v] = matched graph vertex of pattern vertex v`.
    pub fn match_by_pattern_vertex(&self, by_pos: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; by_pos.len()];
        for (pos, &g) in by_pos.iter().enumerate() {
            out[self.order[pos] as usize] = g;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_connected() {
        for p in [
            Pattern::path(5),
            Pattern::cycle(6),
            Pattern::star(4),
            Pattern::clique(4),
        ] {
            let plan = ExplorationPlan::new(&p);
            assert_eq!(plan.len(), p.num_vertices());
            for pos in 1..plan.len() {
                assert!(
                    !plan.back_edges(pos).is_empty(),
                    "position {pos} of {p} has no back edge"
                );
            }
        }
    }

    #[test]
    fn star_starts_at_center() {
        let plan = ExplorationPlan::new(&Pattern::star(4));
        assert_eq!(plan.vertex_at(0), 0);
        // Every leaf connects straight back to position 0.
        for pos in 1..plan.len() {
            assert_eq!(plan.back_edges(pos), &[(0, 0)]);
        }
    }

    #[test]
    fn back_edges_carry_labels() {
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1, 7), (1, 2, 8), (0, 2, 9)]);
        let plan = ExplorationPlan::new(&p);
        let labels: Vec<u32> = plan.back_edges(2).iter().map(|&(_, l)| l).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&7) || labels.contains(&8) || labels.contains(&9));
    }

    #[test]
    fn conditions_translate_to_position_checks() {
        let plan = ExplorationPlan::new(&Pattern::clique(3));
        // Triangle: 3 total-order conditions distributed over positions.
        let total: usize = (0..3)
            .map(|p| plan.must_be_less_than(p).len() + plan.must_be_greater_than(p).len())
            .sum();
        assert_eq!(total, 3);
        // Position 0 can never carry a check (nothing earlier).
        assert!(plan.must_be_less_than(0).is_empty());
        assert!(plan.must_be_greater_than(0).is_empty());
    }

    #[test]
    fn match_reordering_roundtrip() {
        let p = Pattern::path(3);
        let plan = ExplorationPlan::new(&p);
        let by_pos = vec![10, 20, 30];
        let by_vertex = plan.match_by_pattern_vertex(&by_pos);
        for pos in 0..3 {
            assert_eq!(by_vertex[plan.vertex_at(pos) as usize], by_pos[pos]);
        }
    }

    #[test]
    fn without_symmetry_has_no_checks() {
        let plan = ExplorationPlan::without_symmetry(&Pattern::clique(4));
        for pos in 0..4 {
            assert!(plan.must_be_less_than(pos).is_empty());
            assert!(plan.must_be_greater_than(pos).is_empty());
        }
    }

    #[test]
    fn explicit_order_is_honored() {
        let p = Pattern::path(4); // 0-1-2-3
        let order = vec![1u8, 2, 3, 0];
        let plan = ExplorationPlan::with_order(&p, order.clone(), SymmetryConditions::none());
        for (pos, &v) in order.iter().enumerate() {
            assert_eq!(plan.vertex_at(pos), v);
            assert_eq!(plan.position_of(v as usize), pos as u8);
        }
        // Back edges follow the explicit order: pos 1 (vertex 2) attaches to
        // pos 0 (vertex 1); pos 3 (vertex 0) attaches to pos 0 (vertex 1).
        assert_eq!(plan.back_edges(1), &[(0, 0)]);
        assert_eq!(plan.back_edges(3), &[(0, 0)]);
    }

    #[test]
    fn explicit_order_translates_conditions() {
        // Triangle with root 0 fixed: stabilizer swaps {1,2}, giving the
        // single condition 1 < 2. Root-first order keeps position 0 clean.
        use crate::autom::{automorphisms, stabilizer};
        let p = Pattern::clique(3);
        let stab = stabilizer(&automorphisms(&p), 0);
        let conds = SymmetryConditions::for_group(3, stab);
        let plan = ExplorationPlan::with_order(&p, vec![0, 1, 2], conds);
        assert!(plan.must_be_less_than(0).is_empty());
        assert!(plan.must_be_greater_than(0).is_empty());
        let total: usize = (0..3)
            .map(|pos| plan.must_be_less_than(pos).len() + plan.must_be_greater_than(pos).len())
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn explicit_order_rejects_duplicates() {
        ExplorationPlan::with_order(&Pattern::path(3), vec![0, 0, 1], SymmetryConditions::none());
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn explicit_order_rejects_disconnected_order() {
        // 0-1-2-3 path: order 0,3 is disconnected at position 1.
        ExplorationPlan::with_order(
            &Pattern::path(4),
            vec![0, 3, 1, 2],
            SymmetryConditions::none(),
        );
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let p = Pattern::new(vec![0, 0, 0], vec![(0, 1, 0)]);
        ExplorationPlan::new(&p);
    }
}
