//! Cost-modelled compilation of decomposed counting plans.
//!
//! [`CountingPlan`] is the plan IR of DESIGN.md §14: a topologically ordered
//! DAG of rooted sub-patterns ([`PlanNode`]) in which each node is either
//! counted *directly* (a symmetry-broken rooted DFS compiled to an
//! [`ExplorationPlan`] whose matching order a degree-statistics cost model
//! picks) or as a *product* of two smaller nodes sharing the root, minus the
//! vertex-identification overlap terms of
//! [`crate::decompose::overlap_terms`]. Nodes are memoized by rooted
//! canonical key, so the 21 five-vertex motif shapes share one small DAG.
//!
//! Every node value is a per-root-vertex count, which is what makes the
//! plan executable under the engine's root-word partitioning: a worker sums
//! node values over its slice of roots and the driver adds slices.

use std::collections::HashMap;

use fractal_graph::Graph;

use crate::autom::{automorphism_count, automorphisms, orbit, stabilizer};
use crate::canon::canonical_code;
use crate::decompose::{overlap_terms, split_at_root, MotifBasis, RootedPattern};
use crate::symmetry::SymmetryConditions;
use crate::{CanonicalCode, ExplorationPlan, Pattern};

/// Degree statistics of the input graph feeding the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// `|V(G)|`.
    pub vertices: u64,
    /// `|E(G)|` (undirected).
    pub edges: u64,
    /// Maximum degree.
    pub max_degree: u64,
}

impl GraphStats {
    /// Measures `g`.
    pub fn of(g: &Graph) -> Self {
        GraphStats {
            vertices: g.num_vertices() as u64,
            edges: g.num_edges() as u64,
            max_degree: g.max_degree() as u64,
        }
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / self.vertices as f64
        }
    }

    /// Probability two random distinct vertices are adjacent.
    fn selectivity(&self) -> f64 {
        if self.vertices < 2 {
            return 1.0;
        }
        (self.avg_degree() / (self.vertices as f64 - 1.0)).clamp(1e-12, 1.0)
    }
}

/// How one plan node is computed.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Symmetry-broken rooted DFS over the intersection kernels.
    Direct {
        /// The compiled matching order (root at position 0). Boxed: a full
        /// exploration plan dwarfs the two-index `Product` variant, and
        /// plans live in a `Vec<PlanNode>` where the large variant would
        /// pad every element.
        plan: Box<ExplorationPlan>,
        /// `|Stab_Aut(root)|`: the conditioned DFS counts one embedding per
        /// stabilizer orbit, so its count times this is `emb_r`.
        stab_size: u64,
    },
    /// Product of two smaller nodes sharing the root, minus overlap terms.
    Product {
        /// Node index of the first side.
        left: usize,
        /// Node index of the second side.
        right: usize,
        /// `(multiplicity, node)` inclusion–exclusion corrections.
        corrections: Vec<(u64, usize)>,
    },
}

/// One memoized rooted sub-pattern of the plan DAG.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The rooted pattern this node counts (per root vertex).
    pub rooted: RootedPattern,
    /// How it is computed.
    pub kind: PlanKind,
    /// Modelled cost of evaluating this node for one root (children
    /// excluded — they are shared and counted once in the plan total).
    pub est_cost: f64,
}

/// One requested count: the unrooted shape, the node whose per-root values
/// sum to `emb(shape)`, and the automorphism correction.
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// Canonical code of the (unrooted) shape.
    pub code: CanonicalCode,
    /// Index of the node counting it.
    pub node: usize,
    /// `|Aut(shape)|`; `N_sub = emb / aut` exactly.
    pub aut: u64,
    /// The root the planner chose for the shape.
    pub root: u8,
}

/// Planner activity counters surfaced through `fractal-metrics/1`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlannerCounters {
    /// Direct nodes compiled to an exploration plan.
    pub plans_compiled: u64,
    /// Total rooted sub-patterns in the plan DAG.
    pub subpatterns_counted: u64,
    /// Inclusion–exclusion terms: product-node corrections plus non-zero
    /// off-diagonal Möbius coefficients.
    pub ie_terms: u64,
}

/// A compiled decomposed counting plan.
#[derive(Debug, Clone)]
pub struct CountingPlan {
    /// Nodes in topological order (children strictly before parents).
    pub nodes: Vec<PlanNode>,
    /// Requested shape counts; for motif plans these align with
    /// `basis.shapes()`.
    pub outputs: Vec<PlanOutput>,
    /// Möbius basis for induced-motif finalization (`None` for single
    /// pattern plans, which report non-induced counts).
    pub basis: Option<MotifBasis>,
    /// Pattern size.
    pub k: usize,
    /// The statistics the plan was costed against.
    pub stats: GraphStats,
}

struct PlanBuilder {
    stats: GraphStats,
    nodes: Vec<PlanNode>,
    memo: HashMap<CanonicalCode, usize>,
}

impl PlanBuilder {
    fn new(stats: GraphStats) -> Self {
        PlanBuilder {
            stats,
            nodes: Vec::new(),
            memo: HashMap::new(),
        }
    }

    /// Returns the node index counting `rooted`, building it (children
    /// first) if it is not memoized yet.
    fn node_for(&mut self, rooted: RootedPattern) -> usize {
        let key = rooted.key();
        if let Some(&i) = self.memo.get(&key) {
            return i;
        }
        let kind = match split_at_root(&rooted) {
            Some((h1, h2)) => {
                let corrections: Vec<(u64, usize)> = overlap_terms(&h1, &h2)
                    .into_iter()
                    .map(|(q, m)| (m, self.node_for(q)))
                    .collect();
                let left = self.node_for(h1);
                let right = self.node_for(h2);
                PlanKind::Product {
                    left,
                    right,
                    corrections,
                }
            }
            None => self.direct(&rooted),
        };
        let est_cost = match &kind {
            PlanKind::Direct { plan, .. } => direct_cost(plan, &self.stats),
            PlanKind::Product { corrections, .. } => 2.0 + corrections.len() as f64,
        };
        let i = self.nodes.len();
        self.nodes.push(PlanNode {
            rooted,
            kind,
            est_cost,
        });
        self.memo.insert(key, i);
        i
    }

    /// Compiles a direct rooted DFS: root-stabilizer symmetry breaking and
    /// the cheapest connected root-first matching order under the cost
    /// model (exhaustive for small patterns, greedy attachment otherwise).
    fn direct(&self, rooted: &RootedPattern) -> PlanKind {
        let p = &rooted.pattern;
        let n = p.num_vertices();
        let auts = automorphisms(p);
        let stab = stabilizer(&auts, rooted.root as usize);
        let stab_size = stab.len() as u64;
        let conditions = SymmetryConditions::for_group(n, stab);
        let mut best: Option<(f64, ExplorationPlan)> = None;
        for order in root_first_orders(p, rooted.root) {
            let plan = ExplorationPlan::with_order(p, order, conditions.clone());
            let cost = direct_cost(&plan, &self.stats);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, plan));
            }
        }
        let (_, plan) = best.expect("connected pattern always admits a root-first order");
        PlanKind::Direct {
            plan: Box::new(plan),
            stab_size,
        }
    }
}

/// Connected matching orders starting at `root`: all of them for patterns
/// small enough to enumerate, otherwise the single greedy max-attachment
/// order.
fn root_first_orders(p: &Pattern, root: u8) -> Vec<Vec<u8>> {
    let n = p.num_vertices();
    if n > 8 {
        // Greedy: most already-ordered neighbors, ties by degree then id.
        let mut order = vec![root];
        let mut placed = vec![false; n];
        placed[root as usize] = true;
        while order.len() < n {
            let next = (0..n)
                .filter(|&v| !placed[v])
                .max_by_key(|&v| {
                    let nbrs = order.iter().filter(|&&u| p.adjacent(u as usize, v)).count();
                    (nbrs, p.degree(v), std::cmp::Reverse(v))
                })
                .unwrap();
            order.push(next as u8);
            placed[next] = true;
        }
        return vec![order];
    }
    let mut out = Vec::new();
    let mut order = vec![root];
    let mut used = 1u32 << root;
    fn rec(p: &Pattern, order: &mut Vec<u8>, used: &mut u32, out: &mut Vec<Vec<u8>>) {
        let n = p.num_vertices();
        if order.len() == n {
            out.push(order.clone());
            return;
        }
        for v in 0..n as u8 {
            if *used >> v & 1 == 1 {
                continue;
            }
            if order.iter().any(|&u| p.adjacent(u as usize, v as usize)) {
                order.push(v);
                *used |= 1 << v;
                rec(p, order, used, out);
                *used &= !(1 << v);
                order.pop();
            }
        }
    }
    rec(p, &mut order, &mut used, &mut out);
    out
}

/// Modelled per-root cost of a direct rooted DFS: candidate-set sizes decay
/// with each extra back edge by the graph's edge selectivity, and each
/// back-edge intersection scans an average adjacency list.
fn direct_cost(plan: &ExplorationPlan, stats: &GraphStats) -> f64 {
    let d = stats.avg_degree().max(1.0);
    let sel = stats.selectivity();
    let mut frontier = 1.0f64; // expected partial matches at this depth
    let mut cost = 1.0f64;
    for pos in 1..plan.len() {
        let backs = plan.back_edges(pos).len().max(1);
        cost += frontier * backs as f64 * d;
        let cand = d * sel.powi(backs as i32 - 1);
        frontier *= cand.max(1e-9);
    }
    cost
}

/// Whether the planner supports `p` (the compiled executor matches
/// structure only; labeled patterns stay on the enumerator).
pub fn is_unlabeled(p: &Pattern) -> bool {
    (0..p.num_vertices()).all(|v| p.vertex_label(v) == 0)
        && p.edges().iter().all(|&(_, _, l)| l == 0)
}

impl CountingPlan {
    /// Plans induced `k`-motif counting: one output per connected
    /// `k`-vertex shape, aligned with the Möbius basis, finalized to
    /// induced counts by [`CountingPlan::finalize`].
    pub fn plan_motifs(k: usize, stats: GraphStats) -> Self {
        assert!((1..=5).contains(&k), "motif planning supports 1 ≤ k ≤ 5");
        let basis = MotifBasis::new(k);
        let mut builder = PlanBuilder::new(stats);
        let outputs: Vec<PlanOutput> = basis
            .shapes()
            .iter()
            .map(|shape| output_for(&mut builder, shape))
            .collect();
        CountingPlan {
            nodes: builder.nodes,
            outputs,
            basis: Some(basis),
            k,
            stats,
        }
    }

    /// Plans non-induced counting of a single connected unlabeled pattern
    /// (the subgraph-count `N_sub`, matching the enumerator's
    /// symmetry-broken match count).
    pub fn plan_pattern(p: &Pattern, stats: GraphStats) -> Self {
        assert!(
            p.is_connected(),
            "decomposed counting needs a connected pattern"
        );
        assert!(is_unlabeled(p), "decomposed counting is unlabeled-only");
        let mut builder = PlanBuilder::new(stats);
        let output = output_for(&mut builder, p);
        CountingPlan {
            nodes: builder.nodes,
            outputs: vec![output],
            basis: None,
            k: p.num_vertices(),
            stats,
        }
    }

    /// Planner activity counters for `fractal-metrics/1`.
    pub fn counters(&self) -> PlannerCounters {
        let mut c = PlannerCounters {
            subpatterns_counted: self.nodes.len() as u64,
            ..Default::default()
        };
        for node in &self.nodes {
            match &node.kind {
                PlanKind::Direct { .. } => c.plans_compiled += 1,
                PlanKind::Product { corrections, .. } => c.ie_terms += corrections.len() as u64,
            }
        }
        if let Some(basis) = &self.basis {
            c.ie_terms += basis.ie_terms();
        }
        c
    }

    /// Total modelled per-root cost (each shared node counted once).
    pub fn total_cost(&self) -> f64 {
        self.nodes.iter().map(|n| n.est_cost).sum()
    }

    /// Converts per-root node totals (summed over every graph vertex) into
    /// final `(shape code, count)` pairs: automorphism-corrected, and for
    /// motif plans Möbius-inverted to induced counts with zero-count shapes
    /// omitted (bit-parity with the enumerator's sparse map).
    pub fn finalize(&self, totals: &[i128]) -> Vec<(CanonicalCode, u64)> {
        assert_eq!(totals.len(), self.nodes.len());
        let subs: Vec<u64> = self
            .outputs
            .iter()
            .map(|o| {
                let emb = totals[o.node];
                assert!(emb >= 0, "embedding total must be non-negative");
                let emb = emb as u128;
                assert_eq!(
                    emb % o.aut as u128,
                    0,
                    "emb({:?}) must be divisible by |Aut| = {}",
                    o.code,
                    o.aut
                );
                u64::try_from(emb / o.aut as u128).expect("count fits u64")
            })
            .collect();
        match &self.basis {
            Some(basis) => {
                let inds = basis.induced_from_subgraph(&subs);
                self.outputs
                    .iter()
                    .zip(inds)
                    .filter(|(_, n)| *n != 0)
                    .map(|(o, n)| (o.code.clone(), n))
                    .collect()
            }
            None => self
                .outputs
                .iter()
                .zip(subs)
                .map(|(o, n)| (o.code.clone(), n))
                .collect(),
        }
    }

    /// Human-readable description of the plan (the `fractal plan` verb).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "counting plan: k={} outputs={} nodes={} est_cost/root={:.1}",
            self.k,
            self.outputs.len(),
            self.nodes.len(),
            self.total_cost()
        );
        let _ = writeln!(
            s,
            "graph stats: |V|={} |E|={} avg_deg={:.2} max_deg={}",
            self.stats.vertices,
            self.stats.edges,
            self.stats.avg_degree(),
            self.stats.max_degree
        );
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                PlanKind::Direct { plan, stab_size } => {
                    let order: Vec<String> = (0..plan.len())
                        .map(|pos| plan.vertex_at(pos).to_string())
                        .collect();
                    let _ = writeln!(
                        s,
                        "  node {i}: {} direct order=[{}] conds={} stab={} cost={:.1}",
                        node.rooted,
                        order.join(","),
                        plan.conditions().len(),
                        stab_size,
                        node.est_cost
                    );
                }
                PlanKind::Product {
                    left,
                    right,
                    corrections,
                } => {
                    let corr: Vec<String> = corrections
                        .iter()
                        .map(|(m, n)| format!("{m}·node{n}"))
                        .collect();
                    let _ = writeln!(
                        s,
                        "  node {i}: {} = node{left} × node{right} − ({})",
                        node.rooted,
                        if corr.is_empty() {
                            "0".to_string()
                        } else {
                            corr.join(" + ")
                        }
                    );
                }
            }
        }
        for o in &self.outputs {
            let _ = writeln!(
                s,
                "  output: node {} root {} |Aut|={} ({} vertices)",
                o.node,
                o.root,
                o.aut,
                self.nodes[o.node].rooted.len()
            );
        }
        let c = self.counters();
        let _ = writeln!(
            s,
            "counters: plans_compiled={} subpatterns_counted={} ie_terms={}",
            c.plans_compiled, c.subpatterns_counted, c.ie_terms
        );
        s
    }
}

/// Chooses the cheapest root for `shape` (one candidate per automorphism
/// orbit, each costed with a throwaway builder) and registers the rooted
/// shape with `builder`.
fn output_for(builder: &mut PlanBuilder, shape: &Pattern) -> PlanOutput {
    let auts = automorphisms(shape);
    let n = shape.num_vertices();
    let mut best: Option<(f64, u8)> = None;
    for v in 0..n {
        if orbit(&auts, v)[0] as usize != v {
            continue; // one representative per orbit
        }
        let mut probe = PlanBuilder::new(builder.stats);
        probe.node_for(RootedPattern::new(shape.clone(), v as u8));
        let cost: f64 = probe.nodes.iter().map(|n| n.est_cost).sum();
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, v as u8));
        }
    }
    let (_, root) = best.expect("pattern has at least one vertex");
    let node = builder.node_for(RootedPattern::new(shape.clone(), root));
    PlanOutput {
        code: canonical_code(shape),
        node,
        aut: automorphism_count(shape),
        root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> GraphStats {
        GraphStats {
            vertices: 1000,
            edges: 15000,
            max_degree: 120,
        }
    }

    #[test]
    fn plan_pattern_triangle_is_single_direct() {
        let plan = CountingPlan::plan_pattern(&Pattern::clique(3), stats());
        assert_eq!(plan.nodes.len(), 1);
        assert!(matches!(
            plan.nodes[0].kind,
            PlanKind::Direct { stab_size: 2, .. }
        ));
        let c = plan.counters();
        assert_eq!(c.plans_compiled, 1);
        assert_eq!(c.subpatterns_counted, 1);
        assert_eq!(c.ie_terms, 0);
    }

    #[test]
    fn plan_pattern_star_decomposes() {
        // Star3 rooted at the center: a product node over edge × star2 with
        // one grouped correction.
        let plan = CountingPlan::plan_pattern(&Pattern::star(3), stats());
        let top = plan.outputs[0].node;
        match &plan.nodes[top].kind {
            PlanKind::Product {
                left,
                right,
                corrections,
            } => {
                assert_ne!(left, right);
                assert_eq!(corrections.len(), 1);
                assert_eq!(corrections[0].0, 2);
            }
            k => panic!("expected product at the star root, got {k:?}"),
        }
        // Children come before parents.
        for (i, node) in plan.nodes.iter().enumerate() {
            if let PlanKind::Product {
                left,
                right,
                corrections,
            } = &node.kind
            {
                assert!(*left < i && *right < i);
                assert!(corrections.iter().all(|&(_, n)| n < i));
            }
        }
    }

    #[test]
    fn motif_plan_shares_nodes_across_shapes() {
        let plan = CountingPlan::plan_motifs(5, stats());
        assert_eq!(plan.outputs.len(), 21);
        // The DAG shares sub-patterns: far fewer nodes than 21 shapes would
        // need unshared, and every output resolves in range.
        assert!(plan.nodes.len() >= 21);
        for o in &plan.outputs {
            assert!(o.node < plan.nodes.len());
            assert!(o.aut >= 1);
        }
        let c = plan.counters();
        assert_eq!(c.subpatterns_counted, plan.nodes.len() as u64);
        assert!(c.plans_compiled > 0);
        assert!(c.ie_terms > 0);
        // Dense shapes (clique) stay direct; at least one sparse shape
        // (e.g. the 5-star) decomposes.
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(n.kind, PlanKind::Product { .. })));
    }

    #[test]
    fn cost_model_prefers_constrained_orders() {
        // For the diamond (K4 minus an edge) rooted at a degree-3 vertex,
        // every returned order is connected and root-first.
        let p = Pattern::unlabeled(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let orders = root_first_orders(&p, 0);
        assert!(!orders.is_empty());
        for order in &orders {
            assert_eq!(order[0], 0);
            for pos in 1..order.len() {
                assert!(order[..pos]
                    .iter()
                    .any(|&u| p.adjacent(u as usize, order[pos] as usize)));
            }
        }
        // Denser graphs raise every direct cost.
        let sparse = GraphStats {
            vertices: 1000,
            edges: 2000,
            max_degree: 10,
        };
        let dense = GraphStats {
            vertices: 1000,
            edges: 50000,
            max_degree: 400,
        };
        let ps = CountingPlan::plan_pattern(&p, sparse).total_cost();
        let pd = CountingPlan::plan_pattern(&p, dense).total_cost();
        assert!(pd > ps);
    }

    #[test]
    fn finalize_divides_by_automorphisms() {
        // Triangle plan: emb = 6·N_sub.
        let plan = CountingPlan::plan_pattern(&Pattern::clique(3), stats());
        let mut totals = vec![0i128; plan.nodes.len()];
        totals[plan.outputs[0].node] = 6 * 7;
        let out = plan.finalize(&totals);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 7);
    }

    #[test]
    fn labeled_patterns_are_rejected() {
        assert!(!is_unlabeled(&Pattern::new(vec![1, 0], vec![(0, 1, 0)])));
        assert!(!is_unlabeled(&Pattern::new(vec![0, 0], vec![(0, 1, 3)])));
        assert!(is_unlabeled(&Pattern::clique(3)));
    }
}
