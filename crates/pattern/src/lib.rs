//! # fractal-pattern
//!
//! Patterns, canonical labeling, isomorphism and symmetry breaking.
//!
//! A *pattern* (§2.1) is the template of a subgraph: two subgraphs have the
//! same pattern iff they are isomorphic. The paper canonicalizes patterns
//! with the gSpan DFS-code algorithm [62]; this crate implements an
//! equivalent canonical labeling — color refinement (1-WL) followed by a
//! branch-and-bound search over refinement-consistent orderings — which
//! likewise produces a total, isomorphism-invariant code (and, unlike a bare
//! code, also reports the canonical vertex permutation that FSM's
//! minimum-image support needs).
//!
//! Modules:
//!
//! - [`pattern`] — the [`Pattern`] type and constructors from graph slices,
//! - [`canon`] — canonical codes ([`CanonicalCode`]) and permutations,
//! - [`autom`] — automorphism-group enumeration,
//! - [`symmetry`] — Grochow–Kellis symmetry-breaking conditions [24],
//! - [`plan`] — connected matching orders for pattern-induced extension,
//! - [`decompose`] — rooted pattern decomposition and the Möbius motif
//!   basis (DwarvesGraph-style counting, DESIGN.md §14),
//! - [`planner`] — cost-modelled compilation of counting plans,
//! - [`exec`] — single-root execution of compiled plans over the
//!   intersection kernels.

pub mod autom;
pub mod canon;
pub mod decompose;
pub mod exec;
pub mod pattern;
pub mod plan;
pub mod planner;
pub mod symmetry;

pub use canon::CanonicalCode;
pub use decompose::{MotifBasis, RootedPattern};
pub use exec::PlanExecutor;
pub use pattern::Pattern;
pub use plan::ExplorationPlan;
pub use planner::{CountingPlan, GraphStats, PlannerCounters};
pub use symmetry::SymmetryConditions;
