//! # fractal-pattern
//!
//! Patterns, canonical labeling, isomorphism and symmetry breaking.
//!
//! A *pattern* (§2.1) is the template of a subgraph: two subgraphs have the
//! same pattern iff they are isomorphic. The paper canonicalizes patterns
//! with the gSpan DFS-code algorithm [62]; this crate implements an
//! equivalent canonical labeling — color refinement (1-WL) followed by a
//! branch-and-bound search over refinement-consistent orderings — which
//! likewise produces a total, isomorphism-invariant code (and, unlike a bare
//! code, also reports the canonical vertex permutation that FSM's
//! minimum-image support needs).
//!
//! Modules:
//!
//! - [`pattern`] — the [`Pattern`] type and constructors from graph slices,
//! - [`canon`] — canonical codes ([`CanonicalCode`]) and permutations,
//! - [`autom`] — automorphism-group enumeration,
//! - [`symmetry`] — Grochow–Kellis symmetry-breaking conditions [24],
//! - [`plan`] — connected matching orders for pattern-induced extension.

pub mod autom;
pub mod canon;
pub mod pattern;
pub mod plan;
pub mod symmetry;

pub use canon::CanonicalCode;
pub use pattern::Pattern;
pub use plan::ExplorationPlan;
pub use symmetry::SymmetryConditions;
