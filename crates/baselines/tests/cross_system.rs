//! Cross-system agreement: every baseline must produce the same answers
//! as the Fractal implementation before any of them is timed against it
//! (the harness relies on this).

use fractal_baselines::bfs_engine::{self, BfsConfig};
use fractal_baselines::{mr, scalemine, seed, single_thread, Budget};
use fractal_core::FractalContext;
use fractal_pattern::CanonicalCode;
use fractal_runtime::ClusterConfig;
use std::collections::HashMap;

fn ctx() -> FractalContext {
    FractalContext::new(ClusterConfig::local(2, 2))
}

#[test]
fn motifs_agree_across_all_systems() {
    let g = fractal_graph::gen::mico_like(180, 3, 51);
    let fg = ctx().fractal_graph(g.clone());
    let fractal = fractal_apps::motifs::motifs(&fg, 3);
    let bfs = bfs_engine::motifs_bfs(&g, 3, &BfsConfig::new(2), false).unwrap();
    let mrsub = mr::mrsub_motifs(&g, 3, 2, Budget::unlimited()).unwrap();
    let gtries = single_thread::gtries_motifs(&g, 3);
    assert_eq!(fractal, bfs);
    assert_eq!(fractal, mrsub);
    assert_eq!(fractal, gtries);
}

#[test]
fn cliques_agree_across_all_systems() {
    let g = fractal_graph::gen::youtube_like(220, 2, 52);
    let fg = ctx().fractal_graph(g.clone());
    for k in 3..=4 {
        let fractal = fractal_apps::cliques::count(&fg, k);
        let kclist_frac = fractal_apps::cliques::count_kclist(&fg, k);
        let bfs = bfs_engine::cliques_bfs(&g, k, &BfsConfig::new(2)).unwrap();
        let qk = mr::qkcount_cliques(&g, k, 2, Budget::unlimited()).unwrap();
        let st_gtries = single_thread::gtries_cliques(&g, k);
        let st_kclist = single_thread::kclist_cliques(&g, k);
        assert_eq!(fractal, kclist_frac, "k={k}");
        assert_eq!(fractal, bfs, "k={k}");
        assert_eq!(fractal, qk, "k={k}");
        assert_eq!(fractal, st_gtries, "k={k}");
        assert_eq!(fractal, st_kclist, "k={k}");
    }
}

#[test]
fn triangles_agree_everywhere() {
    let g = fractal_graph::gen::orkut_like(200, 53);
    let fg = ctx().fractal_graph(g.clone());
    let fractal = fractal_apps::cliques::triangles(&fg);
    assert_eq!(fractal, single_thread::node_iterator_triangles(&g));
    assert_eq!(
        fractal,
        single_thread::graphframes_triangles(&g, Budget::unlimited()).unwrap()
    );
    assert_eq!(
        fractal,
        seed::seed_count(
            &g,
            &fractal_pattern::Pattern::clique(3),
            Budget::unlimited()
        )
        .unwrap()
    );
}

#[test]
fn queries_agree_across_systems() {
    let g = fractal_graph::gen::patents_like(150, 1, 54);
    let fg = ctx().fractal_graph(g.clone());
    for (name, q) in fractal_apps::query::evaluation_queries() {
        if q.num_edges() > 5 {
            // The edge-heavy queries are exactly where the BFS baseline
            // blows up (the paper's OOM rows); the harness runs them under
            // a budget, the test sticks to the tractable ones.
            continue;
        }
        let fractal = fractal_apps::query::count_matches(&fg, &q);
        let seed_n = seed::seed_count(&g, &q, Budget::unlimited()).unwrap();
        let st = single_thread::query_single(&g, &q);
        let bfs = bfs_engine::query_bfs(&g, &q, &BfsConfig::new(2)).unwrap();
        assert_eq!(fractal, seed_n, "{name} fractal vs seed");
        assert_eq!(fractal, st, "{name} fractal vs single-thread");
        assert_eq!(fractal, bfs, "{name} fractal vs bfs");
    }
}

#[test]
fn fsm_frequent_sets_agree() {
    let g = fractal_graph::gen::patents_like(90, 3, 55);
    let fg = ctx().fractal_graph(g.clone());
    let min_sup = 12;
    let fractal: HashMap<CanonicalCode, u64> =
        fractal_apps::fsm::frequent_map(&fractal_apps::fsm::fsm(&fg, min_sup, 2));
    let bfs: HashMap<CanonicalCode, u64> = bfs_engine::fsm_bfs(&g, min_sup, 2, &BfsConfig::new(2))
        .unwrap()
        .into_iter()
        .collect();
    let grami: HashMap<CanonicalCode, u64> = single_thread::grami_fsm(&g, min_sup, 2)
        .into_iter()
        .collect();
    let sm: HashMap<CanonicalCode, u64> =
        scalemine::scalemine_fsm(&g, min_sup, 2, 2, 8, Budget::unlimited())
            .unwrap()
            .into_iter()
            .collect();
    // Exact systems agree on sets AND supports.
    assert_eq!(fractal, bfs);
    assert_eq!(fractal, grami);
    // ScaleMine agrees on the set (counts are approximate).
    let a: std::collections::BTreeSet<_> = fractal.keys().collect();
    let b: std::collections::BTreeSet<_> = sm.keys().collect();
    assert_eq!(a, b);
}
