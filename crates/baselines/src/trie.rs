//! A prefix forest over word sequences — the ODAG stand-in.
//!
//! Arabesque compresses the embeddings stored between BFS levels into
//! per-pattern ODAGs. This forest provides the same essential behaviour:
//! embeddings sharing a prefix share storage, the structure reports its
//! exact resident size, and iteration re-materializes every sequence.
//!
//! Insertion uses a hash index over `(parent, word)` edges; once a level
//! is fully built the index is dropped ([`PrefixForest::seal`]) and the
//! resident state between BFS steps is only the node pool and leaf list —
//! mirroring how ODAGs are finalized before being shipped/stored.

use std::collections::HashMap;

/// A node-compressed set of equal-length `u32` sequences.
#[derive(Debug, Default)]
pub struct PrefixForest {
    /// Flat node pool: `(word, parent_index)`; parent `u32::MAX` = root.
    nodes: Vec<(u32, u32)>,
    /// Indices of nodes that terminate a stored sequence.
    leaves: Vec<u32>,
    /// Build-time child lookup; dropped by [`seal`](Self::seal).
    index: Option<HashMap<(u32, u32), u32>>,
    len: usize,
}

impl PrefixForest {
    /// An empty forest.
    pub fn new() -> Self {
        PrefixForest {
            nodes: Vec::new(),
            leaves: Vec::new(),
            index: Some(HashMap::new()),
            len: 0,
        }
    }

    /// Inserts a sequence (duplicates allowed; each insert adds a leaf).
    /// Panics after [`seal`](Self::seal).
    pub fn insert(&mut self, seq: &[u32]) {
        let index = self.index.as_mut().expect("insert after seal");
        let mut parent = u32::MAX;
        for &w in seq {
            let next_id = self.nodes.len() as u32;
            let node = *index.entry((parent, w)).or_insert_with(|| {
                // Deferred push below keeps the borrow checker happy.
                next_id
            });
            if node == next_id && self.nodes.len() as u32 == next_id {
                self.nodes.push((w, parent));
            }
            parent = node;
        }
        debug_assert_ne!(parent, u32::MAX, "empty sequence");
        self.leaves.push(parent);
        self.len += 1;
    }

    /// Drops the build index; the forest becomes read-only and its
    /// resident size shrinks to the node pool + leaves.
    pub fn seal(&mut self) {
        self.index = None;
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct trie nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Exact resident bytes (sealed: node pool + leaf list; unsealed: plus
    /// the build index).
    pub fn resident_bytes(&self) -> usize {
        let base = self.nodes.len() * 8 + self.leaves.len() * 4;
        match &self.index {
            Some(ix) => base + ix.len() * 16,
            None => base,
        }
    }

    /// Re-materializes every stored sequence (in leaf insertion order).
    pub fn iter_sequences(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        self.leaves.iter().map(|&leaf| {
            let mut seq = Vec::new();
            let mut cur = leaf;
            while cur != u32::MAX {
                let (w, parent) = self.nodes[cur as usize];
                seq.push(w);
                cur = parent;
            }
            seq.reverse();
            seq
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let mut f = PrefixForest::new();
        f.insert(&[1, 2, 3]);
        f.insert(&[1, 2, 4]);
        f.insert(&[5, 6, 7]);
        assert_eq!(f.len(), 3);
        let seqs: Vec<Vec<u32>> = f.iter_sequences().collect();
        assert_eq!(seqs, vec![vec![1, 2, 3], vec![1, 2, 4], vec![5, 6, 7]]);
        // Prefix [1,2] shared: 7 nodes, not 9.
        assert_eq!(f.num_nodes(), 7);
    }

    #[test]
    fn sealed_forest_is_compact_and_still_iterates() {
        let mut f = PrefixForest::new();
        let mut flat_bytes = 0usize;
        for a in 0..20u32 {
            for b in 0..20u32 {
                f.insert(&[0, 1, a + 2, b + 30]);
                flat_bytes += 24 + 4 * 4; // Vec header + 4 words, as the flat store pays
            }
        }
        assert_eq!(f.len(), 400);
        let unsealed = f.resident_bytes();
        f.seal();
        let sealed = f.resident_bytes();
        assert!(sealed < unsealed);
        assert!(
            sealed < flat_bytes,
            "sealed trie {sealed} >= flat {flat_bytes}"
        );
        assert_eq!(f.iter_sequences().count(), 400);
    }

    #[test]
    #[should_panic(expected = "insert after seal")]
    fn insert_after_seal_panics() {
        let mut f = PrefixForest::new();
        f.insert(&[1]);
        f.seal();
        f.insert(&[2]);
    }

    #[test]
    fn duplicates_both_materialize() {
        let mut f = PrefixForest::new();
        f.insert(&[1, 2]);
        f.insert(&[1, 2]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.iter_sequences().count(), 2);
    }
}
