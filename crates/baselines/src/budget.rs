//! Memory/time budgets and run outcomes.
//!
//! The paper reports baseline failures as first-class results: MRSUB and
//! GraphFrames "often ran out of memory", Arabesque fails on the larger
//! queries, keyword search without reduction "did not terminate within a
//! time limit of four hours". Budgets make those outcomes reproducible.

use std::time::{Duration, Instant};

/// A memory/time budget for a baseline run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum tracked intermediate state, in bytes.
    pub max_state_bytes: u64,
    /// Maximum wall-clock duration.
    pub max_elapsed: Duration,
}

impl Budget {
    /// A budget that never trips (for correctness tests).
    pub fn unlimited() -> Self {
        Budget {
            max_state_bytes: u64::MAX,
            max_elapsed: Duration::from_secs(u64::MAX / 2),
        }
    }

    /// A budget with the given limits.
    pub fn new(max_state_bytes: u64, max_elapsed: Duration) -> Self {
        Budget {
            max_state_bytes,
            max_elapsed,
        }
    }
}

/// Statistics of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Peak tracked intermediate state, in bytes.
    pub peak_state_bytes: u64,
    /// Stored items (embeddings / rows) at the largest level.
    pub peak_items: u64,
    /// Bytes moved through simulated shuffles (MR baselines).
    pub shuffled_bytes: u64,
}

/// The outcome of a budgeted run.
#[derive(Debug, Clone)]
pub enum Outcome<T> {
    /// Completed within budget.
    Ok(T, RunStats),
    /// Exceeded the memory budget ("OOM" in the paper's figures).
    Oom(RunStats),
    /// Exceeded the time budget.
    Timeout(RunStats),
}

impl<T> Outcome<T> {
    /// The value, panicking on OOM/timeout (tests).
    pub fn unwrap(self) -> T {
        match self {
            Outcome::Ok(v, _) => v,
            Outcome::Oom(s) => panic!("baseline ran out of memory: {s:?}"),
            Outcome::Timeout(s) => panic!("baseline timed out: {s:?}"),
        }
    }

    /// The value and stats, panicking on failure.
    pub fn unwrap_with_stats(self) -> (T, RunStats) {
        match self {
            Outcome::Ok(v, s) => (v, s),
            Outcome::Oom(s) => panic!("baseline ran out of memory: {s:?}"),
            Outcome::Timeout(s) => panic!("baseline timed out: {s:?}"),
        }
    }

    /// Whether the run completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok(..))
    }

    /// The stats regardless of outcome.
    pub fn stats(&self) -> &RunStats {
        match self {
            Outcome::Ok(_, s) | Outcome::Oom(s) | Outcome::Timeout(s) => s,
        }
    }

    /// A short status label for harness tables.
    pub fn status(&self) -> &'static str {
        match self {
            Outcome::Ok(..) => "ok",
            Outcome::Oom(_) => "OOM",
            Outcome::Timeout(_) => "TIMEOUT",
        }
    }
}

/// Tracks a run against its budget.
#[derive(Debug)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    stats: RunStats,
}

impl BudgetTracker {
    /// Starts tracking.
    pub fn start(budget: Budget) -> Self {
        BudgetTracker {
            budget,
            started: Instant::now(),
            stats: RunStats::default(),
        }
    }

    /// Records the current state size; returns `false` when the memory
    /// budget is exceeded.
    pub fn track_state(&mut self, bytes: u64, items: u64) -> bool {
        self.stats.peak_state_bytes = self.stats.peak_state_bytes.max(bytes);
        self.stats.peak_items = self.stats.peak_items.max(items);
        bytes <= self.budget.max_state_bytes
    }

    /// Adds shuffled bytes (MR baselines).
    pub fn add_shuffle(&mut self, bytes: u64) {
        self.stats.shuffled_bytes += bytes;
    }

    /// Whether the time budget is exceeded.
    pub fn timed_out(&self) -> bool {
        self.started.elapsed() > self.budget.max_elapsed
    }

    /// Finishes, producing final stats.
    pub fn finish(mut self) -> RunStats {
        self.stats.elapsed = self.started.elapsed();
        self.stats
    }

    /// Finishes as OOM.
    pub fn finish_oom<T>(self) -> Outcome<T> {
        let stats = self.finish();
        Outcome::Oom(stats)
    }

    /// Finishes as timeout.
    pub fn finish_timeout<T>(self) -> Outcome<T> {
        let stats = self.finish();
        Outcome::Timeout(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_flags_oom() {
        let mut t = BudgetTracker::start(Budget::new(100, Duration::from_secs(60)));
        assert!(t.track_state(50, 1));
        assert!(!t.track_state(200, 2));
        let stats = t.finish();
        assert_eq!(stats.peak_state_bytes, 200);
        assert_eq!(stats.peak_items, 2);
    }

    #[test]
    fn tracker_flags_timeout() {
        let t = BudgetTracker::start(Budget::new(u64::MAX, Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.timed_out());
    }

    #[test]
    fn outcome_accessors() {
        let ok: Outcome<u32> = Outcome::Ok(5, RunStats::default());
        assert!(ok.is_ok());
        assert_eq!(ok.status(), "ok");
        assert_eq!(ok.unwrap(), 5);
        let oom: Outcome<u32> = Outcome::Oom(RunStats::default());
        assert_eq!(oom.status(), "OOM");
        assert!(!oom.is_ok());
    }
}
