//! MapReduce-style baselines: MRSUB-like motif counting [47] and
//! QKCount-like clique counting [19].
//!
//! Both proceed in rounds; every round materializes the full set of
//! partial embeddings and **shuffles** it — serializing each embedding and
//! hash-partitioning the bytes — before the next round begins. The
//! shuffle doubles the resident state (embeddings + partition buffers)
//! and adds byte-copy work, which is why MRSUB trails every other system
//! in Fig. 11 and "ran out of memory in one instance".

use crate::budget::{Budget, BudgetTracker, Outcome};
use fractal_check::facade::{AtomicBool, AtomicU64, Ordering};
use fractal_enum::canonical::canonical_vertex_extension;
use fractal_graph::{Graph, VertexId};
use fractal_pattern::canon::CodeCache;
use fractal_pattern::{CanonicalCode, Pattern};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Simulates one shuffle: serialize embeddings into `partitions` buffers
/// by hash; returns (buffers, shuffled bytes).
fn shuffle(embeddings: &[Vec<u32>], partitions: usize) -> (Vec<Vec<u8>>, u64) {
    let mut buffers: Vec<Vec<u8>> = vec![Vec::new(); partitions.max(1)];
    let mut total = 0u64;
    for emb in embeddings {
        let mut h = DefaultHasher::new();
        emb.hash(&mut h);
        let p = (h.finish() as usize) % buffers.len();
        let buf = &mut buffers[p];
        buf.extend_from_slice(&(emb.len() as u32).to_le_bytes());
        for &w in emb {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        total += 4 + 4 * emb.len() as u64;
    }
    (buffers, total)
}

fn deserialize_all(buffers: &[Vec<u8>]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for buf in buffers {
        let mut i = 0usize;
        while i < buf.len() {
            let len = u32::from_le_bytes(buf[i..i + 4].try_into().unwrap()) as usize;
            i += 4;
            let mut emb = Vec::with_capacity(len);
            for _ in 0..len {
                emb.push(u32::from_le_bytes(buf[i..i + 4].try_into().unwrap()));
                i += 4;
            }
            out.push(emb);
        }
    }
    out
}

/// One expansion round over partitioned embeddings, in parallel.
fn expand_round(
    g: &Graph,
    embeddings: Vec<Vec<u32>>,
    threads: usize,
    cliques_only: bool,
    max_bytes: u64,
    produced_bytes: &AtomicU64,
) -> Option<Vec<Vec<u32>>> {
    let chunk = embeddings.len().div_ceil(threads.max(1)).max(1);
    let chunks: Vec<&[Vec<u32>]> = embeddings.chunks(chunk).collect();
    let abort = AtomicBool::new(false);
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let abort = &abort;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut cands: Vec<u32> = Vec::new();
                    let mut reported_len = 0usize;
                    for emb in chunk {
                        // ordering: Relaxed — abort is a liveness-only flag; a
                        // slightly stale read just delays the early exit.
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        cands.clear();
                        for &v in emb.iter() {
                            for &u in g.neighbors(VertexId(v)) {
                                if !emb.contains(&u) {
                                    cands.push(u);
                                }
                            }
                        }
                        cands.sort_unstable();
                        cands.dedup();
                        for &u in &cands {
                            if !canonical_vertex_extension(g, emb, u) {
                                continue;
                            }
                            if cliques_only
                                && !emb
                                    .iter()
                                    .all(|&v| g.are_adjacent(VertexId(v), VertexId(u)))
                            {
                                continue;
                            }
                            let mut next = Vec::with_capacity(emb.len() + 1);
                            next.extend_from_slice(emb);
                            next.push(u);
                            local.push(next);
                        }
                        if local.len() - reported_len >= 1024 {
                            let delta: u64 = local[reported_len..]
                                .iter()
                                .map(|e: &Vec<u32>| 24 + 4 * e.capacity() as u64)
                                .sum();
                            // ordering: Relaxed — budget check only needs the
                            // fetch_add to be atomic; overshoot by one chunk is fine.
                            if produced_bytes.fetch_add(delta, Ordering::Relaxed) + delta
                                > max_bytes
                            {
                                // ordering: Relaxed — flag only gates early exit.
                                abort.store(true, Ordering::Relaxed);
                            }
                            reported_len = local.len();
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            out.append(&mut h.join().expect("mr worker panicked"));
        }
    });
    // ordering: Relaxed — read after the parallel scope joined.
    if abort.load(Ordering::Relaxed) {
        None
    } else {
        Some(out)
    }
}

fn run_rounds(
    g: &Graph,
    k: usize,
    threads: usize,
    cliques_only: bool,
    budget: Budget,
) -> Outcome<Vec<Vec<u32>>> {
    let mut tracker = BudgetTracker::start(budget);
    let mut embeddings: Vec<Vec<u32>> = (0..g.num_vertices() as u32).map(|v| vec![v]).collect();
    for _round in 1..k {
        if tracker.timed_out() {
            return tracker.finish_timeout();
        }
        let produced = AtomicU64::new(0);
        let Some(next) = expand_round(
            g,
            embeddings,
            threads,
            cliques_only,
            budget.max_state_bytes,
            &produced,
        ) else {
            // ordering: Relaxed — diagnostic read after the producing scope joined.
            tracker.track_state(produced.load(Ordering::Relaxed), 0);
            return tracker.finish_oom();
        };
        embeddings = next;
        // Shuffle: serialize + partition; both representations are alive.
        let (buffers, moved) = shuffle(&embeddings, threads.max(2));
        tracker.add_shuffle(moved);
        let emb_bytes: usize = embeddings.iter().map(|e| 24 + 4 * e.capacity()).sum();
        let buf_bytes: usize = buffers.iter().map(|b| b.capacity()).sum();
        if !tracker.track_state((emb_bytes + buf_bytes) as u64, embeddings.len() as u64) {
            return tracker.finish_oom();
        }
        // The next round reads the shuffled copy (as reducers would).
        embeddings = deserialize_all(&buffers);
        if embeddings.is_empty() {
            break;
        }
    }
    let stats = tracker.finish();
    Outcome::Ok(embeddings, stats)
}

/// MRSUB-like motif counting: `k-1` map/shuffle rounds, patterns counted
/// in the final reduce.
pub fn mrsub_motifs(
    g: &Graph,
    k: usize,
    threads: usize,
    budget: Budget,
) -> Outcome<HashMap<CanonicalCode, u64>> {
    match run_rounds(g, k, threads, false, budget) {
        Outcome::Ok(embeddings, stats) => {
            let mut cache = CodeCache::new();
            let mut counts: HashMap<CanonicalCode, u64> = HashMap::new();
            for emb in &embeddings {
                let p = Pattern::from_vertex_induced(g, emb, false, false);
                *counts
                    .entry(cache.canonical_form(&p).code.clone())
                    .or_insert(0) += 1;
            }
            Outcome::Ok(counts, stats)
        }
        Outcome::Oom(s) => Outcome::Oom(s),
        Outcome::Timeout(s) => Outcome::Timeout(s),
    }
}

/// QKCount-like clique counting: rounds keep only clique-extending
/// embeddings but still pay the full shuffle.
pub fn qkcount_cliques(g: &Graph, k: usize, threads: usize, budget: Budget) -> Outcome<u64> {
    match run_rounds(g, k, threads, true, budget) {
        Outcome::Ok(embeddings, stats) => Outcome::Ok(embeddings.len() as u64, stats),
        Outcome::Oom(s) => Outcome::Oom(s),
        Outcome::Timeout(s) => Outcome::Timeout(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::gen;

    #[test]
    fn shuffle_roundtrip() {
        let embs = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let (buffers, moved) = shuffle(&embs, 3);
        assert_eq!(moved, 3 * (4 + 12));
        let mut back = deserialize_all(&buffers);
        back.sort();
        let mut orig = embs.clone();
        orig.sort();
        assert_eq!(back, orig);
    }

    #[test]
    fn motif_counts_match_reference() {
        let g = gen::mico_like(120, 2, 3);
        let mr = mrsub_motifs(&g, 3, 2, Budget::unlimited()).unwrap();
        let reference =
            crate::bfs_engine::motifs_bfs(&g, 3, &crate::bfs_engine::BfsConfig::new(2), false)
                .unwrap();
        assert_eq!(mr, reference);
    }

    #[test]
    fn clique_counts_match() {
        let g = gen::complete(7);
        assert_eq!(qkcount_cliques(&g, 4, 2, Budget::unlimited()).unwrap(), 35);
    }

    #[test]
    fn shuffles_tracked_and_oom_possible() {
        let g = gen::mico_like(150, 2, 5);
        let (_, stats) = mrsub_motifs(&g, 3, 2, Budget::unlimited()).unwrap_with_stats();
        assert!(stats.shuffled_bytes > 0);
        let tight = Budget::new(5_000, std::time::Duration::from_secs(60));
        assert_eq!(mrsub_motifs(&g, 4, 2, tight).status(), "OOM");
    }
}
