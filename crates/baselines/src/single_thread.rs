//! Efficient single-thread baselines for the COST analysis (§5.2.4,
//! Fig. 18 and Fig. 20b): "the number of execution threads a system needs
//! to outperform an efficient single-thread implementation" [38].
//!
//! These are deliberately lean: tight DFS loops, no runtime, no queues, no
//! stealing — the strongest sequential opponents we can field.

use crate::budget::{Budget, BudgetTracker, Outcome};
use fractal_graph::{Graph, VertexId};
use fractal_pattern::canon::CodeCache;
use fractal_pattern::{CanonicalCode, ExplorationPlan, Pattern};
use std::collections::HashMap;

/// Gtries-like motif counting [46]: single-thread canonical DFS with a
/// pattern-code memo cache.
pub fn gtries_motifs(g: &Graph, k: usize) -> HashMap<CanonicalCode, u64> {
    let mut counts: HashMap<CanonicalCode, u64> = HashMap::new();
    let mut cache = CodeCache::new();
    let mut prefix: Vec<u32> = Vec::with_capacity(k);
    let mut cand_stack: Vec<Vec<u32>> = Vec::new();

    fn rec(
        g: &Graph,
        k: usize,
        prefix: &mut Vec<u32>,
        cand_stack: &mut Vec<Vec<u32>>,
        cache: &mut CodeCache,
        counts: &mut HashMap<CanonicalCode, u64>,
    ) {
        if prefix.len() == k {
            let p = Pattern::from_vertex_induced(g, prefix, false, false);
            *counts
                .entry(cache.canonical_form(&p).code.clone())
                .or_insert(0) += 1;
            return;
        }
        let cands: Vec<u32> = if prefix.is_empty() {
            (0..g.num_vertices() as u32).collect()
        } else {
            let mut c: Vec<u32> = prefix
                .iter()
                .flat_map(|&v| g.neighbors(VertexId(v)).iter().copied())
                .filter(|&u| !prefix.contains(&u))
                .collect();
            c.sort_unstable();
            c.dedup();
            c.retain(|&u| fractal_enum::canonical::canonical_vertex_extension(g, prefix, u));
            c
        };
        cand_stack.push(cands);
        let cands = cand_stack.last().unwrap().clone();
        for u in cands {
            prefix.push(u);
            rec(g, k, prefix, cand_stack, cache, counts);
            prefix.pop();
        }
        cand_stack.pop();
    }
    rec(g, k, &mut prefix, &mut cand_stack, &mut cache, &mut counts);
    counts
}

/// Gtries-like clique counting: ordered expansion where every candidate
/// must be adjacent to the whole prefix and larger than the last vertex.
pub fn gtries_cliques(g: &Graph, k: usize) -> u64 {
    fn rec(g: &Graph, k: usize, prefix: &mut Vec<u32>, count: &mut u64) {
        if prefix.len() == k {
            *count += 1;
            return;
        }
        let last = *prefix.last().unwrap();
        // Neighbors of the last vertex, greater than it, adjacent to all.
        let nbrs = g.neighbors(VertexId(last));
        let start = nbrs.partition_point(|&u| u <= last);
        for &u in &nbrs[start..] {
            if prefix[..prefix.len() - 1]
                .iter()
                .all(|&v| g.are_adjacent(VertexId(v), VertexId(u)))
            {
                prefix.push(u);
                rec(g, k, prefix, count);
                prefix.pop();
            }
        }
    }
    let mut count = 0;
    let mut prefix = Vec::with_capacity(k);
    for v in 0..g.num_vertices() as u32 {
        prefix.push(v);
        rec(g, k, &mut prefix, &mut count);
        prefix.pop();
    }
    count
}

/// Single-thread KClist [12]: degree-ordered DAG + candidate-set
/// intersections (Fig. 20b's clique baseline).
pub fn kclist_cliques(g: &Graph, k: usize) -> u64 {
    let n = g.num_vertices();
    let mut dag: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let dv = g.degree(VertexId(v));
        for &u in g.neighbors(VertexId(v)) {
            if (dv, v) < (g.degree(VertexId(u)), u) {
                dag[v as usize].push(u);
            }
        }
    }
    fn rec(dag: &[Vec<u32>], cands: &[u32], depth: usize, count: &mut u64) {
        if depth == 0 {
            *count += cands.len() as u64;
            return;
        }
        for &v in cands {
            let next: Vec<u32> = cands
                .iter()
                .copied()
                .filter(|&u| dag[v as usize].binary_search(&u).is_ok())
                .collect();
            if next.len() >= depth - 1 {
                rec(dag, &next, depth - 1, count);
            }
        }
    }
    if k == 0 {
        return 0;
    }
    if k == 1 {
        return n as u64;
    }
    let mut count = 0;
    for v in 0..n as u32 {
        rec(&dag, &dag[v as usize], k - 2, &mut count);
    }
    count
}

/// Neo4j-like triangle counting: node-iterator with sorted-adjacency
/// intersections (the Appendix C single-thread triangle baseline).
pub fn node_iterator_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    let mut buf: Vec<u32> = Vec::new();
    for e in g.edges() {
        let (a, b) = g.edge_endpoints(e);
        count += g
            .intersect_neighbors(a, b, &mut buf)
            .checked_sub(0)
            .unwrap() as u64;
    }
    // Each triangle counted once per edge.
    count / 3
}

/// GraphFrames-like triangle counting [13]: relational self-joins that
/// materialize every wedge before closing it — the memory profile that
/// makes GraphFrames "often run out of memory" (Fig. 12/20a).
pub fn graphframes_triangles(g: &Graph, budget: Budget) -> Outcome<u64> {
    let mut tracker = BudgetTracker::start(budget);
    // Edge table with src < dst.
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|e| {
            let (a, b) = g.edge_endpoints(e);
            (a.raw(), b.raw())
        })
        .collect();
    // Join edges(a,b) x edges(b,c): materialize all wedges a<b<c.
    let mut by_src: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in &edges {
        by_src.entry(a).or_default().push(b);
    }
    let mut wedges: Vec<(u32, u32, u32)> = Vec::new();
    for &(a, b) in &edges {
        if let Some(cs) = by_src.get(&b) {
            for &c in cs {
                wedges.push((a, b, c));
            }
        }
        if wedges.len().is_multiple_of(4096) {
            let bytes = (wedges.capacity() * 12 + edges.len() * 8) as u64;
            if !tracker.track_state(bytes, wedges.len() as u64) {
                return tracker.finish_oom();
            }
            if tracker.timed_out() {
                return tracker.finish_timeout();
            }
        }
    }
    let bytes = (wedges.capacity() * 12 + edges.len() * 8) as u64;
    if !tracker.track_state(bytes, wedges.len() as u64) {
        return tracker.finish_oom();
    }
    // Close wedges with a hash probe.
    let edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let count = wedges
        .iter()
        .filter(|&&(a, _, c)| edge_set.contains(&(a.min(c), a.max(c))))
        .count() as u64;
    let stats = tracker.finish();
    Outcome::Ok(count, stats)
}

/// GraMi-like FSM [17]: single-thread pattern growth with exact MNI
/// evaluation (no early termination — exact supports).
pub fn grami_fsm(g: &Graph, min_support: u64, max_edges: usize) -> Vec<(CanonicalCode, u64)> {
    crate::pattern_growth::pattern_growth_fsm(g, min_support, max_edges, None)
}

/// Single-thread subgraph query matcher (the Fig. 18 q2/q3 baseline):
/// symmetry-broken backtracking, unlabeled topology matching.
pub fn query_single(g: &Graph, query: &Pattern) -> u64 {
    // Rebuild the query with all-zero labels so the label checks pass on
    // any single-label graph.
    let unl = Pattern::unlabeled(
        query.num_vertices(),
        &query
            .edges()
            .iter()
            .map(|&(u, v, _)| (u, v))
            .collect::<Vec<_>>(),
    );
    let plan = ExplorationPlan::new(&unl);
    let mut count = 0u64;
    crate::pattern_growth::match_pattern(g, &plan, &mut |_| {
        count += 1;
        true
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;

    #[test]
    fn motifs_match_bfs_reference() {
        let g = gen::mico_like(120, 2, 3);
        let st = gtries_motifs(&g, 3);
        let bfs =
            crate::bfs_engine::motifs_bfs(&g, 3, &crate::bfs_engine::BfsConfig::new(2), false)
                .unwrap();
        assert_eq!(st, bfs);
    }

    #[test]
    fn clique_counters_agree() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(40, 200, 1, seed);
            for k in 3..=5 {
                let a = gtries_cliques(&g, k);
                let b = kclist_cliques(&g, k);
                assert_eq!(a, b, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn triangles_on_known_graphs() {
        assert_eq!(node_iterator_triangles(&gen::complete(5)), 10);
        assert_eq!(node_iterator_triangles(&gen::cycle(6)), 0);
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(node_iterator_triangles(&g), 1);
        assert_eq!(graphframes_triangles(&g, Budget::unlimited()).unwrap(), 1);
        assert_eq!(
            graphframes_triangles(&gen::complete(5), Budget::unlimited()).unwrap(),
            10
        );
    }

    #[test]
    fn graphframes_oom_on_tight_budget() {
        let g = gen::orkut_like(300, 3);
        let tight = Budget::new(10_000, std::time::Duration::from_secs(60));
        assert_eq!(graphframes_triangles(&g, tight).status(), "OOM");
    }

    #[test]
    fn grami_matches_bfs_fsm() {
        let g = gen::patents_like(80, 3, 7);
        let a: std::collections::HashMap<_, _> = grami_fsm(&g, 10, 2).into_iter().collect();
        let b: std::collections::HashMap<_, _> =
            crate::bfs_engine::fsm_bfs(&g, 10, 2, &crate::bfs_engine::BfsConfig::new(2))
                .unwrap()
                .into_iter()
                .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn query_single_counts_squares() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(query_single(&g, &Pattern::cycle(4)), 1);
        assert_eq!(query_single(&g, &Pattern::clique(3)), 2);
    }
}
