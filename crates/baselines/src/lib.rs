//! # fractal-baselines
//!
//! Reimplementations of the systems the paper evaluates Fractal against
//! (§5, Appendix C). These are *algorithmic analogs* (see DESIGN.md,
//! Substitutions): each implements the paradigm that drives the original
//! system's performance profile, so the comparisons reproduce the paper's
//! *shapes* — who wins where, which baselines exhaust memory, how costs
//! grow with subgraph size — rather than absolute numbers.
//!
//! - [`bfs_engine`] — an Arabesque-like [53] general-purpose GPM engine:
//!   BFS level-synchronous enumeration with **stored** embeddings between
//!   levels (optionally compressed into per-pattern prefix tries, standing
//!   in for ODAGs), exact intermediate-state accounting, and memory/time
//!   budgets so out-of-memory and timeout outcomes are first-class.
//! - [`mr`] — MapReduce-style kernels: MRSUB-like motif counting [47] and
//!   QKCount-like clique counting [19], with per-round shuffle
//!   materialization.
//! - [`seed`] — a SEED-like join-based subgraph lister [33]: decompose the
//!   query into clique/edge units, hash-join matches, symmetry-break at
//!   the end.
//! - [`scalemine`] — a ScaleMine-like two-phase FSM [1]: sampling-based
//!   support estimation, then task-parallel exact mining with early
//!   termination (approximate reported counts, exact frequent set).
//! - [`single_thread`] — efficient single-thread baselines for the COST
//!   analysis (Fig. 18/20b): Gtries-like motif/clique counting [46],
//!   GraMi-like FSM [17], single-thread KClist [12], a Neo4j-like
//!   node-iterator triangle counter and a GraphFrames-like join triangle
//!   counter [13].
//! - [`gminer`] — a G-Miner-like coarse-task engine [10]: global task
//!   queue, no subtree sharing (the §7 related-work comparison point).
//! - [`pattern_growth`] — shared pattern-growth candidate generation and
//!   exact MNI support used by the FSM baselines.

pub mod bfs_engine;
pub mod budget;
pub mod gminer;
pub mod mr;
pub mod pattern_growth;
pub mod scalemine;
pub mod seed;
pub mod single_thread;
pub mod trie;

pub use budget::{Budget, Outcome, RunStats};
