//! The Arabesque-like BFS engine [53].
//!
//! First-generation general-purpose GPM systems enumerate level by level:
//! all embeddings of size `k` are **materialized and stored** between
//! synchronization steps, then expanded in parallel into the size-`k+1`
//! set. Load is balanced at each step boundary (embeddings are re-chunked
//! across threads), but the stored state grows with the combinatorial
//! explosion — the exact failure mode Fractal's from-scratch DFS design
//! eliminates (§4.1, Table 2).
//!
//! Storage is either flat embedding arrays or a prefix forest
//! ([`crate::trie::PrefixForest`]) standing in for Arabesque's ODAGs.

use crate::budget::{Budget, BudgetTracker, Outcome};
use crate::trie::PrefixForest;
use fractal_check::facade::{AtomicBool, AtomicU64, Ordering};
use fractal_enum::canonical::{canonical_edge_extension, canonical_vertex_extension};
use fractal_graph::{EdgeId, Graph, VertexId};
use fractal_pattern::canon::CodeCache;
use fractal_pattern::{CanonicalCode, Pattern};
use std::collections::{HashMap, HashSet};

/// How embeddings are stored between levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Plain embedding arrays.
    Flat,
    /// Prefix-shared (ODAG-like) storage.
    Odag,
}

/// Growth mode of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    VertexInduced,
    EdgeInduced,
}

/// The stored embedding set of one level.
struct LevelStore {
    storage: Storage,
    flat: Vec<Vec<u32>>,
    trie: PrefixForest,
}

impl LevelStore {
    fn new(storage: Storage) -> Self {
        LevelStore {
            storage,
            flat: Vec::new(),
            trie: PrefixForest::new(),
        }
    }

    fn insert(&mut self, seq: &[u32]) {
        match self.storage {
            Storage::Flat => self.flat.push(seq.to_vec()),
            Storage::Odag => self.trie.insert(seq),
        }
    }

    /// Finalizes the level (drops ODAG build scaffolding) before its
    /// resident size is charged as stored state.
    fn seal(&mut self) {
        if self.storage == Storage::Odag {
            self.trie.seal();
        }
    }

    fn len(&self) -> usize {
        match self.storage {
            Storage::Flat => self.flat.len(),
            Storage::Odag => self.trie.len(),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self.storage {
            Storage::Flat => self
                .flat
                .iter()
                .map(|e| 24 + e.capacity() * 4)
                .sum::<usize>(),
            Storage::Odag => self.trie.resident_bytes(),
        }
    }

    fn materialize(&self) -> Vec<Vec<u32>> {
        match self.storage {
            Storage::Flat => self.flat.clone(),
            Storage::Odag => self.trie.iter_sequences().collect(),
        }
    }
}

/// The engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct BfsConfig {
    /// Parallel expansion threads.
    pub threads: usize,
    /// Embedding storage flavour.
    pub storage: Storage,
    /// Memory/time budget.
    pub budget: Budget,
}

impl BfsConfig {
    /// A config with the given thread count, ODAG storage and no budget.
    pub fn new(threads: usize) -> Self {
        BfsConfig {
            threads: threads.max(1),
            storage: Storage::Odag,
            budget: Budget::unlimited(),
        }
    }

    /// Overrides the storage flavour.
    pub fn with_storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Overrides the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Expands one level in parallel; `keep` prunes new embeddings.
///
/// The memory budget is enforced *during* expansion (not only at the
/// level barrier): a single level of an exploding query can otherwise
/// outgrow physical memory before any check runs. Returns `None` when the
/// budget tripped mid-expansion.
fn expand_level(
    g: &Graph,
    mode: Mode,
    current: &[Vec<u32>],
    threads: usize,
    keep: &(dyn Fn(&[u32]) -> bool + Sync),
    max_bytes: u64,
    produced_bytes: &AtomicU64,
) -> Option<Vec<Vec<u32>>> {
    let chunk = current.len().div_ceil(threads.max(1)).max(1);
    let chunks: Vec<&[Vec<u32>]> = current.chunks(chunk).collect();
    let abort = AtomicBool::new(false);
    let mut out: Vec<Vec<u32>> = Vec::new();
    std::thread::scope(|s| {
        let abort = &abort;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let mut local: Vec<Vec<u32>> = Vec::new();
                    let mut cands: Vec<u32> = Vec::new();
                    let mut reported_len = 0usize;
                    for emb in chunk {
                        // ordering: Relaxed — abort is a liveness-only flag; a
                        // slightly stale read just delays the early exit.
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        cands.clear();
                        match mode {
                            Mode::VertexInduced => {
                                for &v in emb.iter() {
                                    for &u in g.neighbors(VertexId(v)) {
                                        if !emb.contains(&u) {
                                            cands.push(u);
                                        }
                                    }
                                }
                                cands.sort_unstable();
                                cands.dedup();
                                for &u in &cands {
                                    if canonical_vertex_extension(g, emb, u) {
                                        let mut next = Vec::with_capacity(emb.len() + 1);
                                        next.extend_from_slice(emb);
                                        next.push(u);
                                        if keep(&next) {
                                            local.push(next);
                                        }
                                    }
                                }
                            }
                            Mode::EdgeInduced => {
                                let mut verts: Vec<u32> = Vec::new();
                                for &e in emb.iter() {
                                    let (a, b) = g.edge_endpoints(EdgeId(e));
                                    verts.push(a.raw());
                                    verts.push(b.raw());
                                }
                                verts.sort_unstable();
                                verts.dedup();
                                for &v in &verts {
                                    for &e in g.incident_edges(VertexId(v)) {
                                        if !emb.contains(&e) {
                                            cands.push(e);
                                        }
                                    }
                                }
                                cands.sort_unstable();
                                cands.dedup();
                                for &e in &cands {
                                    if canonical_edge_extension(g, emb, e) {
                                        let mut next = Vec::with_capacity(emb.len() + 1);
                                        next.extend_from_slice(emb);
                                        next.push(e);
                                        if keep(&next) {
                                            local.push(next);
                                        }
                                    }
                                }
                            }
                        }
                        // Charge produced bytes as we go; trip the abort
                        // flag the moment the level alone exceeds budget.
                        if local.len() - reported_len >= 1024 {
                            let delta: u64 = local[reported_len..]
                                .iter()
                                .map(|e| 24 + 4 * e.capacity() as u64)
                                .sum();
                            // ordering: Relaxed — budget check only needs the
                            // fetch_add to be atomic; overshoot by one chunk is fine.
                            if produced_bytes.fetch_add(delta, Ordering::Relaxed) + delta
                                > max_bytes
                            {
                                // ordering: Relaxed — flag only gates early exit.
                                abort.store(true, Ordering::Relaxed);
                            }
                            reported_len = local.len();
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            out.append(&mut h.join().expect("bfs worker panicked"));
        }
    });
    // ordering: Relaxed — read after the parallel scope joined.
    if abort.load(Ordering::Relaxed) {
        None
    } else {
        Some(out)
    }
}

/// The pattern of a vertex-induced embedding.
fn vertex_pattern(g: &Graph, emb: &[u32], use_labels: bool) -> Pattern {
    Pattern::from_vertex_induced(g, emb, use_labels, use_labels)
}

/// Generic BFS run: grow to `depth`, pruning with `keep`, folding each
/// final embedding with `fold`. Returns the fold accumulator.
#[allow(clippy::too_many_arguments)]
fn run_bfs<T: Send>(
    g: &Graph,
    mode: Mode,
    depth: usize,
    cfg: &BfsConfig,
    keep: &(dyn Fn(&[u32]) -> bool + Sync),
    roots: Vec<Vec<u32>>,
    mut fold: impl FnMut(&[u32], &mut T),
    mut acc: T,
) -> Outcome<T> {
    let mut tracker = BudgetTracker::start(cfg.budget);
    let mut store = LevelStore::new(cfg.storage);
    for r in &roots {
        if keep(r) {
            store.insert(r);
        }
    }
    store.seal();
    if !tracker.track_state(store.resident_bytes() as u64, store.len() as u64) {
        return tracker.finish_oom();
    }
    for _level in 1..depth {
        if tracker.timed_out() {
            return tracker.finish_timeout();
        }
        let current = store.materialize();
        let produced = AtomicU64::new(0);
        let Some(next) = expand_level(
            g,
            mode,
            &current,
            cfg.threads,
            keep,
            cfg.budget.max_state_bytes,
            &produced,
        ) else {
            // ordering: Relaxed — diagnostic read after the producing scope joined.
            tracker.track_state(produced.load(Ordering::Relaxed), 0);
            return tracker.finish_oom();
        };
        let mut new_store = LevelStore::new(cfg.storage);
        for e in &next {
            new_store.insert(e);
        }
        new_store.seal();
        // Both levels are alive during the swap, as in a real BFS system.
        let both = (store.resident_bytes() + new_store.resident_bytes()) as u64;
        let items = new_store.len() as u64;
        store = new_store;
        if !tracker.track_state(both, items) {
            return tracker.finish_oom();
        }
        if store.len() == 0 {
            break;
        }
    }
    for emb in store.materialize() {
        fold(&emb, &mut acc);
    }
    let stats = tracker.finish();
    Outcome::Ok(acc, stats)
}

/// Arabesque-like motif counting: vertex-induced BFS to `k`, patterns
/// aggregated at the final level.
pub fn motifs_bfs(
    g: &Graph,
    k: usize,
    cfg: &BfsConfig,
    use_labels: bool,
) -> Outcome<HashMap<CanonicalCode, u64>> {
    let roots: Vec<Vec<u32>> = (0..g.num_vertices() as u32).map(|v| vec![v]).collect();
    let mut cache = CodeCache::new();
    run_bfs(
        g,
        Mode::VertexInduced,
        k,
        cfg,
        &|_| true,
        roots,
        move |emb, acc: &mut HashMap<CanonicalCode, u64>| {
            let p = vertex_pattern(g, emb, use_labels);
            let code = cache.canonical_form(&p).code.clone();
            *acc.entry(code).or_insert(0) += 1;
        },
        HashMap::new(),
    )
}

/// Arabesque-like clique counting: vertex-induced BFS with the clique
/// filter applied at every level.
pub fn cliques_bfs(g: &Graph, k: usize, cfg: &BfsConfig) -> Outcome<u64> {
    let roots: Vec<Vec<u32>> = (0..g.num_vertices() as u32).map(|v| vec![v]).collect();
    let is_clique = |emb: &[u32]| -> bool {
        let last = *emb.last().unwrap();
        emb[..emb.len() - 1]
            .iter()
            .all(|&v| g.are_adjacent(VertexId(v), VertexId(last)))
    };
    run_bfs(
        g,
        Mode::VertexInduced,
        k,
        cfg,
        &is_clique,
        roots,
        |_emb, acc: &mut u64| *acc += 1,
        0,
    )
}

/// Arabesque-like subgraph querying: edge-induced BFS to `|E(q)|` with
/// coarse per-level pruning, isomorphism check at the end. This is the
/// configuration that exhausts memory on edge-heavy queries (Fig. 15).
pub fn query_bfs(g: &Graph, query: &Pattern, cfg: &BfsConfig) -> Outcome<u64> {
    let qn = query.num_vertices();
    let qmax_deg = (0..qn).map(|v| query.degree(v)).max().unwrap_or(0);
    let target = fractal_pattern::canon::canonical_code(query);
    let roots: Vec<Vec<u32>> = (0..g.num_edges() as u32).map(|e| vec![e]).collect();
    let prune = move |emb: &[u32]| -> bool {
        // Vertex count and degree bounds must stay within the query's.
        let mut verts: Vec<u32> = Vec::with_capacity(emb.len() * 2);
        for &e in emb {
            let (a, b) = g.edge_endpoints(EdgeId(e));
            verts.push(a.raw());
            verts.push(b.raw());
        }
        verts.sort_unstable();
        verts.dedup();
        if verts.len() > qn {
            return false;
        }
        let mut deg_ok = true;
        for &v in &verts {
            let d = emb
                .iter()
                .filter(|&&e| {
                    let (a, b) = g.edge_endpoints(EdgeId(e));
                    a.raw() == v || b.raw() == v
                })
                .count();
            if d > qmax_deg {
                deg_ok = false;
                break;
            }
        }
        deg_ok
    };
    let mut cache = CodeCache::new();
    run_bfs(
        g,
        Mode::EdgeInduced,
        query.num_edges(),
        cfg,
        &prune,
        roots,
        move |emb, acc: &mut u64| {
            let (p, _) = Pattern::from_edge_induced(g, emb, false, false);
            if cache.canonical_form(&p).code == target {
                *acc += 1;
            }
        },
        0u64,
    )
}

/// Exact minimum-image support of a set of edge-induced embeddings,
/// grouped by canonical pattern (shared with the FSM baselines).
pub fn group_supports(
    g: &Graph,
    embeddings: &[Vec<u32>],
) -> HashMap<CanonicalCode, (u64, Vec<HashSet<u32>>)> {
    let mut cache = CodeCache::new();
    let mut orbit_cache: HashMap<CanonicalCode, Vec<u8>> = HashMap::new();
    let mut out: HashMap<CanonicalCode, (u64, Vec<HashSet<u32>>)> = HashMap::new();
    for emb in embeddings {
        let (p, vmap) = Pattern::from_edge_induced(g, emb, true, true);
        let form = cache.canonical_form(&p);
        let reps = orbit_cache.entry(form.code.clone()).or_insert_with(|| {
            let pat = form.code.to_pattern();
            let auts = fractal_pattern::autom::automorphisms(&pat);
            (0..pat.num_vertices())
                .map(|v| fractal_pattern::autom::orbit(&auts, v)[0])
                .collect()
        });
        let entry = out
            .entry(form.code.clone())
            .or_insert_with(|| (0, vec![HashSet::new(); p.num_vertices()]));
        entry.0 += 1;
        for (i, &v) in vmap.iter().enumerate() {
            let pos = form.perm[i] as usize;
            entry.1[reps[pos] as usize].insert(v);
        }
    }
    out
}

/// The support of grouped domains: min over non-empty domains.
pub fn min_image_support(domains: &[HashSet<u32>]) -> u64 {
    domains
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| d.len() as u64)
        .min()
        .unwrap_or(0)
}

/// Arabesque-like FSM: level-synchronous edge-induced growth; after each
/// level, patterns below `min_support` are pruned and only embeddings of
/// frequent patterns are kept for the next level.
pub fn fsm_bfs(
    g: &Graph,
    min_support: u64,
    max_edges: usize,
    cfg: &BfsConfig,
) -> Outcome<Vec<(CanonicalCode, u64)>> {
    let mut tracker = BudgetTracker::start(cfg.budget);
    let mut frequent: Vec<(CanonicalCode, u64)> = Vec::new();
    let mut current: Vec<Vec<u32>> = (0..g.num_edges() as u32).map(|e| vec![e]).collect();
    for _size in 1..=max_edges {
        if tracker.timed_out() {
            return tracker.finish_timeout();
        }
        let groups = group_supports(g, &current);
        let mut keep_codes: HashSet<CanonicalCode> = HashSet::new();
        for (code, (_, domains)) in &groups {
            let sup = min_image_support(domains);
            if sup >= min_support {
                keep_codes.insert(code.clone());
                frequent.push((code.clone(), sup));
            }
        }
        // Keep only embeddings of frequent patterns (stored state!).
        let mut cache = CodeCache::new();
        current.retain(|emb| {
            let (p, _) = Pattern::from_edge_induced(g, emb, true, true);
            keep_codes.contains(&cache.canonical_form(&p).code)
        });
        let store_bytes: usize = current.iter().map(|e| 24 + e.capacity() * 4).sum();
        if !tracker.track_state(store_bytes as u64, current.len() as u64) {
            return tracker.finish_oom();
        }
        if current.is_empty() {
            break;
        }
        let produced = AtomicU64::new(0);
        let Some(next) = expand_level(
            g,
            Mode::EdgeInduced,
            &current,
            cfg.threads,
            &|_| true,
            cfg.budget.max_state_bytes,
            &produced,
        ) else {
            // ordering: Relaxed — diagnostic read after the producing scope joined.
            tracker.track_state(produced.load(Ordering::Relaxed), 0);
            return tracker.finish_oom();
        };
        current = next;
        let next_bytes: usize = current.iter().map(|e| 24 + e.capacity() * 4).sum();
        if !tracker.track_state((store_bytes + next_bytes) as u64, current.len() as u64) {
            return tracker.finish_oom();
        }
    }
    let stats = tracker.finish();
    Outcome::Ok(frequent, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;
    use std::time::Duration;

    fn cfg() -> BfsConfig {
        BfsConfig::new(2).with_storage(Storage::Flat)
    }

    #[test]
    fn motifs_on_triangle_tail() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let m = motifs_bfs(&g, 3, &cfg(), false).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.values().sum::<u64>(), 3);
    }

    #[test]
    fn cliques_on_k6() {
        let g = gen::complete(6);
        assert_eq!(cliques_bfs(&g, 3, &cfg()).unwrap(), 20);
        assert_eq!(cliques_bfs(&g, 4, &cfg()).unwrap(), 15);
    }

    #[test]
    fn odag_storage_same_results_less_memory() {
        let g = gen::mico_like(150, 2, 7);
        let flat = motifs_bfs(&g, 3, &BfsConfig::new(2).with_storage(Storage::Flat), false);
        let odag = motifs_bfs(&g, 3, &BfsConfig::new(2).with_storage(Storage::Odag), false);
        let (fm, fs) = flat.unwrap_with_stats();
        let (om, os) = odag.unwrap_with_stats();
        assert_eq!(fm, om);
        assert!(
            os.peak_state_bytes < fs.peak_state_bytes,
            "odag {} >= flat {}",
            os.peak_state_bytes,
            fs.peak_state_bytes
        );
    }

    #[test]
    fn memory_budget_trips_oom() {
        let g = gen::mico_like(200, 2, 9);
        let tight = BfsConfig::new(2).with_budget(Budget::new(10_000, Duration::from_secs(60)));
        let out = motifs_bfs(&g, 4, &tight, false);
        assert_eq!(out.status(), "OOM");
        assert!(out.stats().peak_state_bytes > 10_000);
    }

    #[test]
    fn query_bfs_counts_squares() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        let q = Pattern::cycle(4);
        assert_eq!(query_bfs(&g, &q, &cfg()).unwrap(), 1);
        let tri = Pattern::clique(3);
        assert_eq!(query_bfs(&g, &tri, &cfg()).unwrap(), 2);
    }

    #[test]
    fn fsm_bfs_on_k4() {
        let g = gen::complete(4);
        let freq = fsm_bfs(&g, 4, 2, &cfg()).unwrap();
        // Single edge pattern (support 4) and the 2-edge path (support 4).
        assert_eq!(freq.len(), 2);
        for (_, sup) in &freq {
            assert_eq!(*sup, 4);
        }
    }

    #[test]
    fn memory_grows_with_level() {
        let g = gen::mico_like(200, 2, 3);
        let (_, s3) = motifs_bfs(&g, 3, &cfg(), false).unwrap_with_stats();
        let (_, s4) = motifs_bfs(&g, 4, &cfg(), false).unwrap_with_stats();
        assert!(
            s4.peak_state_bytes > 2 * s3.peak_state_bytes,
            "BFS state should explode with depth: {} vs {}",
            s4.peak_state_bytes,
            s3.peak_state_bytes
        );
    }
}
