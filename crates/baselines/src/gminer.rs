//! A G-Miner-like task-oriented GPM engine [10] (§7 related work).
//!
//! G-Miner processes GPM workloads as a pool of **coarse-grained tasks**
//! (one per seed vertex/edge) drained by a thread pool from a global
//! queue. Unlike Fractal there is no fine-grained sharing of a task's
//! sub-tree: once a thread picks a seed, it owns the seed's entire
//! enumeration subtree. On skewed (scale-free) inputs the largest seed
//! task dominates the makespan — the behaviour Fractal's
//! enumerator-level stealing removes. The global queue also serializes
//! task handoff, a contention point the hierarchical design avoids.

use crate::budget::{Budget, BudgetTracker, Outcome};
use fractal_check::facade::Mutex;
use fractal_check::facade::{AtomicU64, Ordering};
use fractal_enum::canonical::canonical_vertex_extension;
use fractal_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Per-run statistics: per-thread busy nanoseconds (for imbalance) plus
/// the task-count histogram.
#[derive(Debug, Clone, Default)]
pub struct GminerStats {
    /// Busy time per worker thread, nanoseconds.
    pub thread_busy_ns: Vec<u64>,
    /// Number of seed tasks each thread processed.
    pub thread_tasks: Vec<u64>,
}

impl GminerStats {
    /// Coefficient of variation of per-thread busy time.
    pub fn imbalance(&self) -> f64 {
        let n = self.thread_busy_ns.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.thread_busy_ns.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .thread_busy_ns
            .iter()
            .map(|&t| (t as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// Counts connected induced `k`-vertex subgraphs (optionally cliques
/// only) with the coarse task model: one task per seed vertex, global
/// queue, no subtree sharing.
pub fn gminer_count(
    g: &Graph,
    k: usize,
    cliques_only: bool,
    threads: usize,
    budget: Budget,
) -> Outcome<(u64, GminerStats)> {
    let tracker = BudgetTracker::start(budget);
    let queue: Mutex<VecDeque<u32>> = Mutex::new((0..g.num_vertices() as u32).collect());
    let total = AtomicU64::new(0);
    let threads = threads.max(1);
    let mut stats = GminerStats {
        thread_busy_ns: vec![0; threads],
        thread_tasks: vec![0; threads],
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let total = &total;
                s.spawn(move || {
                    let mut busy = 0u64;
                    let mut tasks = 0u64;
                    let mut prefix: Vec<u32> = Vec::with_capacity(k);
                    loop {
                        let seed = {
                            let mut q = queue.lock();
                            q.pop_front()
                        };
                        let Some(seed) = seed else { break };
                        let t0 = std::time::Instant::now();
                        prefix.clear();
                        prefix.push(seed);
                        let mut local = 0u64;
                        dfs(g, k, cliques_only, &mut prefix, &mut local);
                        // ordering: Relaxed — per-thread subtotal; fetch_add
                        // atomicity suffices, total is read after join.
                        total.fetch_add(local, Ordering::Relaxed);
                        busy += t0.elapsed().as_nanos() as u64;
                        tasks += 1;
                    }
                    (busy, tasks)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (busy, tasks) = h.join().expect("gminer worker panicked");
            stats.thread_busy_ns[i] = busy;
            stats.thread_tasks[i] = tasks;
        }
    });

    let run = tracker.finish();
    // ordering: Relaxed — read after the parallel scope joined.
    let mut out = Outcome::Ok((total.load(Ordering::Relaxed), stats), run);
    if let Outcome::Ok(_, s) = &mut out {
        // The coarse model holds only the DFS stack: tiny state.
        s.peak_state_bytes = (k * 4) as u64;
    }
    out
}

fn dfs(g: &Graph, k: usize, cliques_only: bool, prefix: &mut Vec<u32>, count: &mut u64) {
    if prefix.len() == k {
        *count += 1;
        return;
    }
    let mut cands: Vec<u32> = prefix
        .iter()
        .flat_map(|&v| g.neighbors(VertexId(v)).iter().copied())
        .filter(|u| !prefix.contains(u))
        .collect();
    cands.sort_unstable();
    cands.dedup();
    for u in cands {
        if !canonical_vertex_extension(g, prefix, u) {
            continue;
        }
        if cliques_only
            && !prefix
                .iter()
                .all(|&v| g.are_adjacent(VertexId(v), VertexId(u)))
        {
            continue;
        }
        prefix.push(u);
        dfs(g, k, cliques_only, prefix, count);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::gen;

    #[test]
    fn counts_match_reference() {
        let g = gen::mico_like(150, 2, 3);
        let (n, _) = gminer_count(&g, 3, false, 2, Budget::unlimited()).unwrap();
        let reference = crate::single_thread::gtries_motifs(&g, 3)
            .values()
            .sum::<u64>();
        assert_eq!(n, reference);
    }

    #[test]
    fn clique_counts_match() {
        let g = gen::complete(7);
        let (n, _) = gminer_count(&g, 4, true, 3, Budget::unlimited()).unwrap();
        assert_eq!(n, 35);
    }

    #[test]
    fn coarse_tasks_skew_on_hub_graphs() {
        // A hub-dominated graph: the hub's seed task dwarfs the others, so
        // per-thread busy times diverge (no subtree sharing).
        let g = gen::barabasi_albert(800, 6, 1, 1, 7);
        let (_, stats) = gminer_count(&g, 4, false, 4, Budget::unlimited()).unwrap();
        assert_eq!(stats.thread_busy_ns.len(), 4);
        assert!(stats.thread_tasks.iter().sum::<u64>() == 800);
        // Imbalance exists; the exact value is machine-dependent, just
        // assert the statistic is computed.
        let _ = stats.imbalance();
    }
}
