//! The ScaleMine-like two-phase FSM baseline [1].
//!
//! ScaleMine first runs an **approximation phase**: sampled subgraph
//! probes estimate which patterns are likely frequent and how expensive
//! each is to evaluate; the estimates then drive static task placement in
//! the **exact phase**, which confirms the frequent set with early
//! termination (so reported supports are approximate while the *set* of
//! frequent patterns is exact — exactly what §5.1 describes).
//!
//! Phase 1's cost is why ScaleMine loses to Fractal "when there is less
//! overall work": the sampling pass is paid regardless of how small the
//! mining task turns out to be.

use crate::budget::{Budget, BudgetTracker, Outcome};
use crate::pattern_growth::{
    children, label_universe, match_pattern, mni_support, single_edge_patterns,
};
use fractal_check::facade::{AtomicUsize, Mutex, Ordering};
use fractal_graph::{Graph, VertexId};
use fractal_pattern::canon::CodeCache;
use fractal_pattern::{CanonicalCode, ExplorationPlan, Pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Result of the sampling phase: per-pattern estimated cost (embedding
/// probes until exhaustion or sample cap).
#[derive(Debug, Clone)]
pub struct LoadEstimate {
    /// Estimated number of embeddings (scaled from the sample).
    pub est_embeddings: f64,
}

/// Phase 1: estimates a pattern's embedding count by sampling random
/// starts and counting matches reachable from them, scaled to the full
/// graph. The probe count is the knob that makes phase 1 expensive.
pub fn estimate_load(g: &Graph, pattern: &Pattern, probes: usize, seed: u64) -> LoadEstimate {
    let plan = ExplorationPlan::new(pattern);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_vertices().max(1);
    let mut sampled = 0u64;
    let mut hits = 0u64;
    for _ in 0..probes {
        let start = rng.gen_range(0..n) as u32;
        sampled += 1;
        if g.vertex_label(VertexId(start)).raw() != plan.label_at(0) {
            continue;
        }
        // Count matches rooted at the sampled vertex (bounded walk).
        let mut local = 0u64;
        let mut budget = 200u64;
        match_pattern_rooted(g, &plan, start, &mut |_| {
            local += 1;
            budget -= 1;
            budget > 0
        });
        hits += local;
    }
    LoadEstimate {
        est_embeddings: hits as f64 * n as f64 / sampled.max(1) as f64,
    }
}

/// Matches the plan with position 0 pinned to `root`.
fn match_pattern_rooted(
    g: &Graph,
    plan: &ExplorationPlan,
    root: u32,
    cb: &mut dyn FnMut(&[u32]) -> bool,
) {
    // Reuse the generic matcher by filtering on the first position.
    match_pattern(g, plan, &mut |m| {
        if m[0] != root {
            return true; // skip, keep searching
        }
        cb(m)
    });
}

/// The two-phase FSM. `probes` controls phase-1 effort; `threads` the
/// phase-2 parallelism.
pub fn scalemine_fsm(
    g: &Graph,
    min_support: u64,
    max_edges: usize,
    threads: usize,
    probes: usize,
    budget: Budget,
) -> Outcome<Vec<(CanonicalCode, u64)>> {
    let mut tracker = BudgetTracker::start(budget);
    let (vl, el) = label_universe(g);
    let mut out: Vec<(CanonicalCode, u64)> = Vec::new();
    let mut cache = CodeCache::new();

    let mut frontier: Vec<Pattern> = single_edge_patterns(g)
        .into_iter()
        .map(|c| c.to_pattern())
        .collect();
    let mut seed = 0u64;

    for _size in 1..=max_edges {
        if tracker.timed_out() {
            return tracker.finish_timeout();
        }
        // Phase 1: estimate per-candidate load (the expensive sampling
        // pass).
        let estimates: Vec<LoadEstimate> = frontier
            .iter()
            .map(|p| {
                seed += 1;
                estimate_load(g, p, probes, seed)
            })
            .collect();
        // Order tasks by estimated load, largest first (LPT placement),
        // then evaluate in parallel with early termination at the
        // threshold.
        let mut order: Vec<usize> = (0..frontier.len()).collect();
        order.sort_by(|&a, &b| {
            estimates[b]
                .est_embeddings
                .partial_cmp(&estimates[a].est_embeddings)
                .unwrap()
        });
        let results: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let next_task = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads.max(1) {
                s.spawn(|| loop {
                    // ordering: Relaxed — task claims need only RMW
                    // atomicity (each index handed out once); results
                    // synchronize through the mutex and the scope join.
                    let t = next_task.fetch_add(1, Ordering::Relaxed);
                    if t >= order.len() {
                        return;
                    }
                    let idx = order[t];
                    let sup = mni_support(g, &frontier[idx], Some(min_support));
                    results.lock().push((idx, sup));
                });
            }
        });
        let results = results.into_inner();
        // Track phase-2 state: per-task domains are bounded by the early
        // termination; account for the estimates table + result rows.
        let state = (frontier.len() * 64 + results.len() * 16) as u64;
        if !tracker.track_state(state, results.len() as u64) {
            return tracker.finish_oom();
        }
        let mut next_frontier: Vec<Pattern> = Vec::new();
        let mut seen: HashSet<CanonicalCode> = HashSet::new();
        for (idx, sup) in results {
            if sup >= min_support {
                let p = &frontier[idx];
                out.push((cache.canonical_form(p).code.clone(), sup));
                for child in children(p, &vl, &el) {
                    let code = cache.canonical_form(&child).code.clone();
                    if seen.insert(code) {
                        next_frontier.push(child);
                    }
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    let stats = tracker.finish();
    Outcome::Ok(out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::gen;

    #[test]
    fn estimates_scale_with_density() {
        let sparse = gen::path(50);
        let dense = gen::complete(20);
        let edge = Pattern::unlabeled(2, &[(0, 1)]);
        let es = estimate_load(&sparse, &edge, 30, 1);
        let ed = estimate_load(&dense, &edge, 30, 1);
        assert!(ed.est_embeddings > es.est_embeddings);
    }

    #[test]
    fn frequent_set_matches_exact_baseline() {
        let g = gen::patents_like(100, 3, 41);
        let exact = crate::pattern_growth::pattern_growth_fsm(&g, 10, 2, None);
        let scalemine = scalemine_fsm(&g, 10, 2, 2, 10, Budget::unlimited()).unwrap();
        let a: HashSet<&CanonicalCode> = exact.iter().map(|(c, _)| c).collect();
        let b: HashSet<&CanonicalCode> = scalemine.iter().map(|(c, _)| c).collect();
        assert_eq!(a, b, "frequent sets must agree");
        // Counts are approximate: capped at the threshold.
        for (_, sup) in &scalemine {
            assert!(*sup >= 10 || scalemine.is_empty());
        }
    }

    #[test]
    fn impossible_threshold_yields_empty() {
        let g = gen::complete(4);
        let r = scalemine_fsm(&g, 1000, 3, 2, 5, Budget::unlimited()).unwrap();
        assert!(r.is_empty());
    }
}
