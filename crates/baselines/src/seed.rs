//! The SEED-like join-based subgraph lister [33].
//!
//! SEED "computes larger subgraphs by joining smaller ones": the query is
//! decomposed into *units* (cliques and edges), each unit's matches are
//! materialized, and units are hash-joined on their shared query vertices.
//! Clique-shaped queries collapse to a single unit and are extremely fast
//! (why SEED wins q1/q4/q5 and the overlap-friendly q7 in Fig. 15), while
//! path/cycle-shaped queries materialize large intermediates — memory the
//! budget tracker charges faithfully.

use crate::budget::{Budget, BudgetTracker, Outcome};
use fractal_graph::{Graph, VertexId};
use fractal_pattern::{Pattern, SymmetryConditions};
use std::collections::HashMap;

/// One decomposition unit: the query vertices it covers.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Query vertex ids covered by this unit.
    pub vertices: Vec<u8>,
    /// Whether the unit is a clique over those vertices (else a single
    /// edge).
    pub is_clique: bool,
}

/// A left-deep join plan over units.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Units in join order (first = largest).
    pub units: Vec<Unit>,
}

/// Greedy decomposition: repeatedly take the largest clique of uncovered
/// query edges (≥ 3 vertices), then cover the remaining edges as edge
/// units.
pub fn plan(query: &Pattern) -> JoinPlan {
    let n = query.num_vertices();
    let mut covered: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut units: Vec<Unit> = Vec::new();
    loop {
        // Find the largest clique whose edges are not all covered.
        let mut best: Option<Vec<u8>> = None;
        for mask in 1u32..(1 << n) {
            let vs: Vec<u8> = (0..n as u8).filter(|&v| mask >> v & 1 == 1).collect();
            if vs.len() < 3 {
                continue;
            }
            let is_clique = vs.iter().enumerate().all(|(i, &u)| {
                vs[i + 1..]
                    .iter()
                    .all(|&v| query.adjacent(u as usize, v as usize))
            });
            if !is_clique {
                continue;
            }
            let covers_new = vs.iter().enumerate().any(|(i, &u)| {
                vs[i + 1..]
                    .iter()
                    .any(|&v| !covered[u as usize][v as usize])
            });
            if covers_new && best.as_ref().is_none_or(|b| vs.len() > b.len()) {
                best = Some(vs);
            }
        }
        match best {
            Some(vs) => {
                for (i, &u) in vs.iter().enumerate() {
                    for &v in &vs[i + 1..] {
                        covered[u as usize][v as usize] = true;
                        covered[v as usize][u as usize] = true;
                    }
                }
                units.push(Unit {
                    vertices: vs,
                    is_clique: true,
                });
            }
            None => break,
        }
    }
    for &(u, v, _) in query.edges() {
        if !covered[u as usize][v as usize] {
            units.push(Unit {
                vertices: vec![u, v],
                is_clique: false,
            });
        }
    }
    // Join order: largest unit first, then units sharing vertices with the
    // joined prefix (connected order), preferring larger units.
    units.sort_by_key(|u| std::cmp::Reverse(u.vertices.len()));
    let mut ordered: Vec<Unit> = Vec::new();
    let mut in_prefix = vec![false; n];
    while !units.is_empty() {
        let pos = units
            .iter()
            .position(|u| ordered.is_empty() || u.vertices.iter().any(|&v| in_prefix[v as usize]))
            .unwrap_or(0);
        let u = units.remove(pos);
        for &v in &u.vertices {
            in_prefix[v as usize] = true;
        }
        ordered.push(u);
    }
    JoinPlan { units: ordered }
}

/// Lists all k-cliques of `g` as sorted vertex arrays (the unit matcher's
/// clique engine: out-neighborhood intersection, each clique once).
pub fn list_cliques(g: &Graph, k: usize) -> Vec<Vec<u32>> {
    let n = g.num_vertices();
    let mut dag: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let dv = g.degree(VertexId(v));
        for &u in g.neighbors(VertexId(v)) {
            if (dv, v) < (g.degree(VertexId(u)), u) {
                dag[v as usize].push(u);
            }
        }
    }
    let mut out = Vec::new();
    let mut prefix: Vec<u32> = Vec::new();
    fn rec(
        dag: &[Vec<u32>],
        cands: &[u32],
        k: usize,
        prefix: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if prefix.len() == k {
            out.push(prefix.clone());
            return;
        }
        for &v in cands {
            let next: Vec<u32> = cands
                .iter()
                .copied()
                .filter(|&u| dag[v as usize].binary_search(&u).is_ok())
                .collect();
            prefix.push(v);
            rec(dag, &next, k, prefix, out);
            prefix.pop();
        }
    }
    let all: Vec<u32> = (0..n as u32).collect();
    rec(&dag, &all, k, &mut prefix, &mut out);
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(n: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for v in 0..n {
            if !cur.contains(&v) {
                cur.push(v);
                rec(n, cur, out);
                cur.pop();
            }
        }
    }
    rec(n, &mut cur, &mut out);
    out
}

/// Counts instances of `query` in `g` by unit decomposition + hash joins.
/// Unlabeled matching (the Fig. 15 queries are topology-only).
pub fn seed_count(g: &Graph, query: &Pattern, budget: Budget) -> Outcome<u64> {
    let mut tracker = BudgetTracker::start(budget);
    let jp = plan(query);
    let conds = SymmetryConditions::for_pattern(query);
    let n = query.num_vertices();

    // Fast path: the whole query is one clique unit — list cliques
    // directly, one row per instance (this is SEED's clique advantage).
    if jp.units.len() == 1 && jp.units[0].is_clique && jp.units[0].vertices.len() == n {
        let cliques = list_cliques(g, n);
        let bytes = (cliques.len() * (24 + 4 * n)) as u64;
        if !tracker.track_state(bytes, cliques.len() as u64) {
            return tracker.finish_oom();
        }
        let count = cliques.len() as u64;
        let stats = tracker.finish();
        return Outcome::Ok(count, stats);
    }

    // General path: materialize each unit's assignments and hash-join.
    // A row assigns graph vertices to the query vertices covered so far.
    let mut covered: Vec<u8> = Vec::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (ui, unit) in jp.units.iter().enumerate() {
        if tracker.timed_out() {
            return tracker.finish_timeout();
        }
        // Materialize the unit's assignment rows (all orderings).
        let mut unit_rows: Vec<Vec<u32>> = Vec::new();
        if unit.is_clique {
            let k = unit.vertices.len();
            let perms = permutations(k);
            for clique in list_cliques(g, k) {
                for perm in &perms {
                    unit_rows.push(perm.iter().map(|&i| clique[i]).collect());
                }
            }
        } else {
            for e in g.edges() {
                let (a, b) = g.edge_endpoints(e);
                unit_rows.push(vec![a.raw(), b.raw()]);
                unit_rows.push(vec![b.raw(), a.raw()]);
            }
        }
        let unit_bytes = unit_rows.len() * (24 + 4 * unit.vertices.len());
        if !tracker.track_state(unit_bytes as u64, unit_rows.len() as u64) {
            return tracker.finish_oom();
        }

        if ui == 0 {
            covered = unit.vertices.clone();
            rows = unit_rows;
        } else {
            // Join on shared query vertices.
            let shared: Vec<u8> = unit
                .vertices
                .iter()
                .copied()
                .filter(|v| covered.contains(v))
                .collect();
            let fresh: Vec<u8> = unit
                .vertices
                .iter()
                .copied()
                .filter(|v| !covered.contains(v))
                .collect();
            // Hash the unit rows by their shared-vertex values.
            let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
            for (i, r) in unit_rows.iter().enumerate() {
                let key: Vec<u32> = shared
                    .iter()
                    .map(|v| r[unit.vertices.iter().position(|x| x == v).unwrap()])
                    .collect();
                index.entry(key).or_default().push(i);
            }
            let mut joined: Vec<Vec<u32>> = Vec::new();
            let mut next_check = 65_536usize;
            for row in &rows {
                // Joins can explode within a single unit; keep the budget
                // honest mid-join rather than only at unit barriers.
                if joined.len() >= next_check {
                    let bytes = joined.len() * (24 + 4 * (covered.len() + 1));
                    if !tracker.track_state(bytes as u64, joined.len() as u64) {
                        return tracker.finish_oom();
                    }
                    if tracker.timed_out() {
                        return tracker.finish_timeout();
                    }
                    next_check = joined.len() + 65_536;
                }
                let key: Vec<u32> = shared
                    .iter()
                    .map(|v| row[covered.iter().position(|x| x == v).unwrap()])
                    .collect();
                if let Some(matches) = index.get(&key) {
                    'probe: for &i in matches {
                        let ur = &unit_rows[i];
                        let mut merged = row.clone();
                        for &fv in &fresh {
                            let gv = ur[unit.vertices.iter().position(|x| *x == fv).unwrap()];
                            // Injectivity.
                            if merged.contains(&gv) {
                                continue 'probe;
                            }
                            merged.push(gv);
                        }
                        joined.push(merged);
                    }
                }
            }
            for &fv in &fresh {
                covered.push(fv);
            }
            rows = joined;
        }
        let rows_bytes: usize = rows.len() * (24 + 4 * covered.len());
        if !tracker.track_state((rows_bytes + unit_bytes) as u64, rows.len() as u64) {
            return tracker.finish_oom();
        }
    }

    // Verify edges not implied by the units (none — units cover all query
    // edges), check symmetry conditions to count each instance once.
    let mut count = 0u64;
    for row in &rows {
        // Reorder into query-vertex order.
        let mut byv = vec![0u32; n];
        for (i, &qv) in covered.iter().enumerate() {
            byv[qv as usize] = row[i];
        }
        if conds.check(&byv) {
            count += 1;
        }
    }
    let stats = tracker.finish();
    Outcome::Ok(count, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_graph::gen;

    #[test]
    fn plan_for_clique_is_single_unit() {
        let jp = plan(&Pattern::clique(4));
        assert_eq!(jp.units.len(), 1);
        assert!(jp.units[0].is_clique);
        assert_eq!(jp.units[0].vertices.len(), 4);
    }

    #[test]
    fn plan_for_square_is_edges() {
        let jp = plan(&Pattern::cycle(4));
        assert_eq!(jp.units.len(), 4);
        assert!(jp.units.iter().all(|u| !u.is_clique));
    }

    #[test]
    fn plan_for_near5clique_uses_overlapping_cliques() {
        let q = {
            let mut edges = Vec::new();
            for u in 0..5u8 {
                for v in (u + 1)..5 {
                    if (u, v) != (3, 4) {
                        edges.push((u, v));
                    }
                }
            }
            Pattern::unlabeled(5, &edges)
        };
        let jp = plan(&q);
        // Two K4 units cover everything.
        assert_eq!(jp.units.len(), 2);
        assert!(jp
            .units
            .iter()
            .all(|u| u.is_clique && u.vertices.len() == 4));
    }

    #[test]
    fn clique_counts_direct() {
        let g = gen::complete(6);
        assert_eq!(
            seed_count(&g, &Pattern::clique(3), Budget::unlimited()).unwrap(),
            20
        );
        assert_eq!(
            seed_count(&g, &Pattern::clique(4), Budget::unlimited()).unwrap(),
            15
        );
    }

    #[test]
    fn square_count_on_known_graph() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(
            seed_count(&g, &Pattern::cycle(4), Budget::unlimited()).unwrap(),
            1
        );
    }

    #[test]
    fn diamond_join_count() {
        // Diamond query on the same graph: 1 instance.
        let q = Pattern::unlabeled(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
        assert_eq!(seed_count(&g, &q, Budget::unlimited()).unwrap(), 1);
    }

    #[test]
    fn list_cliques_matches_binomials() {
        let g = gen::complete(5);
        assert_eq!(list_cliques(&g, 3).len(), 10);
        for c in list_cliques(&g, 3) {
            assert!(c.windows(2).all(|w| w[0] != w[1]));
        }
    }

    #[test]
    fn near5clique_count_in_k5() {
        let q = {
            let mut edges = Vec::new();
            for u in 0..5u8 {
                for v in (u + 1)..5 {
                    if (u, v) != (3, 4) {
                        edges.push((u, v));
                    }
                }
            }
            Pattern::unlabeled(5, &edges)
        };
        let g = gen::complete(5);
        assert_eq!(seed_count(&g, &q, Budget::unlimited()).unwrap(), 10);
    }
}
