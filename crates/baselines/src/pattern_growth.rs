//! Pattern-growth utilities shared by the FSM baselines (ScaleMine-like,
//! GraMi-like): candidate generation by single-edge pattern extension and
//! exact minimum-image (MNI) support evaluation via pattern matching.

use fractal_graph::{Graph, VertexId};
use fractal_pattern::canon::{canonical_form, CodeCache};
use fractal_pattern::{CanonicalCode, ExplorationPlan, Pattern};
use std::collections::HashSet;

/// All distinct single-edge patterns present in `g`:
/// `(vlabel_a — elabel — vlabel_b)`.
pub fn single_edge_patterns(g: &Graph) -> Vec<CanonicalCode> {
    let mut cache = CodeCache::new();
    let mut out: HashSet<CanonicalCode> = HashSet::new();
    for e in g.edges() {
        let (a, b) = g.edge_endpoints(e);
        let p = Pattern::new(
            vec![g.vertex_label(a).raw(), g.vertex_label(b).raw()],
            vec![(0, 1, g.edge_label(e).raw())],
        );
        out.insert(cache.canonical_form(&p).code.clone());
    }
    out.into_iter().collect()
}

/// All canonically-distinct `(k+1)`-edge extensions of `p`: an edge
/// between two existing non-adjacent vertices, or an edge to a fresh
/// vertex, over the given label universes.
pub fn children(p: &Pattern, vertex_labels: &[u32], edge_labels: &[u32]) -> Vec<Pattern> {
    let n = p.num_vertices();
    let mut cache = CodeCache::new();
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut out = Vec::new();
    let mut push = |cand: Pattern, seen: &mut HashSet<CanonicalCode>, out: &mut Vec<Pattern>| {
        let code = cache.canonical_form(&cand).code.clone();
        if seen.insert(code) {
            out.push(cand);
        }
    };
    // Close an open pair.
    for u in 0..n {
        for v in (u + 1)..n {
            if !p.adjacent(u, v) {
                for &el in edge_labels {
                    let mut edges = p.edges().to_vec();
                    edges.push((u as u8, v as u8, el));
                    let labels = (0..n).map(|w| p.vertex_label(w)).collect();
                    push(Pattern::new(labels, edges), &mut seen, &mut out);
                }
            }
        }
    }
    // Grow a fresh vertex.
    for u in 0..n {
        for &vl in vertex_labels {
            for &el in edge_labels {
                let mut edges = p.edges().to_vec();
                edges.push((u as u8, n as u8, el));
                let mut labels: Vec<u32> = (0..n).map(|w| p.vertex_label(w)).collect();
                labels.push(vl);
                push(Pattern::new(labels, edges), &mut seen, &mut out);
            }
        }
    }
    out
}

/// Label universes of a graph: distinct vertex labels and edge labels.
pub fn label_universe(g: &Graph) -> (Vec<u32>, Vec<u32>) {
    let mut vl: HashSet<u32> = HashSet::new();
    let mut el: HashSet<u32> = HashSet::new();
    for v in g.vertices() {
        vl.insert(g.vertex_label(v).raw());
    }
    for e in g.edges() {
        el.insert(g.edge_label(e).raw());
    }
    let mut vl: Vec<u32> = vl.into_iter().collect();
    let mut el: Vec<u32> = el.into_iter().collect();
    vl.sort_unstable();
    el.sort_unstable();
    (vl, el)
}

/// Single-thread pattern matcher: invokes `cb` with each complete match
/// (graph vertex per plan position); `cb` returning `false` aborts the
/// search. Labels are always matched. Returns whether the search ran to
/// completion (`false` = aborted).
pub fn match_pattern(
    g: &Graph,
    plan: &ExplorationPlan,
    cb: &mut dyn FnMut(&[u32]) -> bool,
) -> bool {
    let mut matched: Vec<u32> = Vec::with_capacity(plan.len());
    fn rec(
        g: &Graph,
        plan: &ExplorationPlan,
        matched: &mut Vec<u32>,
        cb: &mut dyn FnMut(&[u32]) -> bool,
    ) -> bool {
        let pos = matched.len();
        if pos == plan.len() {
            return cb(matched);
        }
        if pos == 0 {
            for v in 0..g.num_vertices() as u32 {
                if g.vertex_label(VertexId(v)).raw() != plan.label_at(0) {
                    continue;
                }
                matched.push(v);
                if !rec(g, plan, matched, cb) {
                    return false;
                }
                matched.pop();
            }
            return true;
        }
        let back = plan.back_edges(pos);
        let anchor = back
            .iter()
            .map(|&(p, _)| matched[p as usize])
            .min_by_key(|&v| g.degree(VertexId(v)))
            .unwrap();
        'cand: for &cand in g.neighbors(VertexId(anchor)) {
            if matched.contains(&cand) {
                continue;
            }
            if g.vertex_label(VertexId(cand)).raw() != plan.label_at(pos) {
                continue;
            }
            for &(epos, el) in back {
                match g.edge_between(VertexId(matched[epos as usize]), VertexId(cand)) {
                    Some(e) if g.edge_label(e).raw() == el => {}
                    _ => continue 'cand,
                }
            }
            for &q in plan.must_be_less_than(pos) {
                if cand >= matched[q as usize] {
                    continue 'cand;
                }
            }
            for &q in plan.must_be_greater_than(pos) {
                if cand <= matched[q as usize] {
                    continue 'cand;
                }
            }
            matched.push(cand);
            if !rec(g, plan, matched, cb) {
                return false;
            }
            matched.pop();
        }
        true
    }
    rec(g, plan, &mut matched, cb)
}

/// Exact (or capped) minimum-image support of `pattern` in `g`.
///
/// With `cap = Some(t)`, the search stops as soon as every orbit domain
/// reaches `t` and reports `t` — the ScaleMine-style early termination
/// that makes reported counts approximate while keeping the frequent /
/// infrequent decision exact.
pub fn mni_support(g: &Graph, pattern: &Pattern, cap: Option<u64>) -> u64 {
    let plan = ExplorationPlan::new(pattern);
    let form = canonical_form(pattern);
    let auts = fractal_pattern::autom::automorphisms(&form.code.to_pattern());
    let reps: Vec<u8> = (0..pattern.num_vertices())
        .map(|v| fractal_pattern::autom::orbit(&auts, v)[0])
        .collect();
    let mut domains: Vec<HashSet<u32>> = vec![HashSet::new(); pattern.num_vertices()];
    let completed = match_pattern(g, &plan, &mut |m| {
        // m is ordered by plan position; map to pattern vertices, then to
        // canonical positions, then fold into orbit representatives.
        for (pos, &mv) in m.iter().enumerate() {
            let pattern_vertex = plan.vertex_at(pos) as usize;
            let canon_pos = form.perm[pattern_vertex] as usize;
            domains[reps[canon_pos] as usize].insert(mv);
        }
        if let Some(t) = cap {
            let done = domains
                .iter()
                .filter(|d| !d.is_empty())
                .all(|d| d.len() as u64 >= t)
                && domains.iter().any(|d| !d.is_empty());
            !done
        } else {
            true
        }
    });
    let sup = domains
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| d.len() as u64)
        .min()
        .unwrap_or(0);
    if !completed {
        cap.expect("aborted only under a cap").min(sup)
    } else {
        sup
    }
}

/// The full exact pattern-growth FSM (the GraMi-like baseline): BFS over
/// the pattern lattice with exact MNI evaluation per candidate.
pub fn pattern_growth_fsm(
    g: &Graph,
    min_support: u64,
    max_edges: usize,
    cap: Option<u64>,
) -> Vec<(CanonicalCode, u64)> {
    let (vl, el) = label_universe(g);
    let mut cache = CodeCache::new();
    let mut out: Vec<(CanonicalCode, u64)> = Vec::new();
    let mut frontier: Vec<Pattern> = single_edge_patterns(g)
        .into_iter()
        .map(|c| c.to_pattern())
        .collect();
    for _size in 1..=max_edges {
        let mut next: Vec<Pattern> = Vec::new();
        let mut seen: HashSet<CanonicalCode> = HashSet::new();
        for p in &frontier {
            let sup = mni_support(g, p, cap);
            if sup >= min_support {
                out.push((cache.canonical_form(p).code.clone(), sup));
                for child in children(p, &vl, &el) {
                    let code = cache.canonical_form(&child).code.clone();
                    if seen.insert(code) {
                        next.push(child);
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::graph_from_edges;
    use fractal_graph::gen;

    #[test]
    fn single_edge_patterns_dedup() {
        let g = graph_from_edges(&[0, 1, 0, 1], &[(0, 1, 0), (2, 3, 0), (0, 3, 1)]);
        let pats = single_edge_patterns(&g);
        // (0)-0-(1) twice -> once; (0)-1-(1) once. Total 2.
        assert_eq!(pats.len(), 2);
    }

    #[test]
    fn children_counts() {
        // Single unlabeled edge: close nothing (complete), grow 2
        // (symmetric ends collapse to one canonical form... they do not:
        // growing from either end is isomorphic -> 1 pattern).
        let p = Pattern::unlabeled(2, &[(0, 1)]);
        let kids = children(&p, &[0], &[0]);
        assert_eq!(kids.len(), 1); // the 3-vertex path
        let path3 = &kids[0];
        let kids2 = children(path3, &[0], &[0]);
        // From a path of 2 edges: close the triangle, grow at an end
        // (4-path), grow at the middle (star). All distinct -> 3.
        assert_eq!(kids2.len(), 3);
    }

    #[test]
    fn matcher_counts_triangles_once() {
        let g = gen::complete(4);
        let plan = ExplorationPlan::new(&Pattern::clique(3));
        let mut count = 0;
        match_pattern(&g, &plan, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 4); // C(4,3)
    }

    #[test]
    fn mni_support_on_complete_graph() {
        let g = gen::complete(4);
        // Single edge: every vertex appears at both positions -> support 4.
        let edge = Pattern::unlabeled(2, &[(0, 1)]);
        assert_eq!(mni_support(&g, &edge, None), 4);
        // Triangle: support 4 as well.
        assert_eq!(mni_support(&g, &Pattern::clique(3), None), 4);
    }

    #[test]
    fn capped_support_stops_early() {
        let g = gen::complete(8);
        let edge = Pattern::unlabeled(2, &[(0, 1)]);
        assert_eq!(mni_support(&g, &edge, Some(3)), 3);
        assert_eq!(mni_support(&g, &edge, None), 8);
    }

    #[test]
    fn fsm_on_k4_matches_expectation() {
        let g = gen::complete(4);
        let freq = pattern_growth_fsm(&g, 4, 2, None);
        // Size 1: the edge (support 4). Size 2: the 2-path (support 4).
        assert_eq!(freq.len(), 2);
        assert!(freq.iter().all(|(_, s)| *s == 4));
    }
}
