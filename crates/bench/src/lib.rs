//! # fractal-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§5, Appendix C), shared dataset registry, table printing
//! and CSV output. The `repro` binary dispatches to these modules; the
//! criterion benches under `benches/` cover the same kernels at micro
//! scale.
//!
//! Shapes, not absolute numbers, are the reproduction target: the
//! original ran on a 10-machine cluster against JVM systems; this
//! workspace simulates the cluster in-process and reimplements the
//! baselines as algorithmic analogs (see DESIGN.md).

pub mod datasets;
pub mod experiments;
pub mod table;

use std::time::{Duration, Instant};

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Formats a duration as seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats bytes as mebibytes with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}
