//! The reproduction harness.
//!
//! ```text
//! repro <experiment|all> [--scale tiny|small|paper] [--out DIR]
//! ```
//!
//! Experiments (one per table/figure of the paper; see DESIGN.md):
//! fig8 fig11 fig12 fig13 fig15 fig16 fig17 fig18 fig19 fig20a fig20b
//! table2 memest reduction-ec ws-overhead

use fractal_bench::datasets::Scale;
use fractal_bench::experiments;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes tiny|small|paper"));
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| die("--out takes a dir")));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        usage();
        std::process::exit(2);
    }
    std::fs::create_dir_all(&out_dir).ok();
    let list: Vec<&str> = if targets.iter().any(|t| t == "all") {
        experiments::ALL.to_vec()
    } else {
        targets.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "fractal repro — scale {:?}, output {}\n",
        scale,
        out_dir.display()
    );
    let t0 = std::time::Instant::now();
    for id in list {
        let started = std::time::Instant::now();
        if !experiments::run(id, scale, &out_dir) {
            eprintln!("unknown experiment {id:?}; known: {:?}", experiments::ALL);
            std::process::exit(2);
        }
        println!("[{id} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    println!("all done in {:.1}s", t0.elapsed().as_secs_f64());
}

fn usage() {
    println!(
        "usage: repro <experiment|all>... [--scale tiny|small|paper] [--out DIR]\n\
         experiments: {}",
        experiments::ALL.join(" ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
