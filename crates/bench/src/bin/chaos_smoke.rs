//! CI chaos gate: runs the three acceptance workloads (motif counting,
//! KClist clique counting, FSM) under every fault kind of the chaos
//! matrix — worker kill, unit panic, dropped steal requests, corrupted
//! stolen units — across many injection seeds, and asserts every result
//! is **bit-identical** to the fault-free run.
//!
//! A final *self-test* leg re-runs the worker-kill scenario with recovery
//! deliberately sabotaged (`FaultConfig::with_sabotaged_recovery`): units
//! are accounted but never re-executed. The gate demands that this leg
//! *fails* its own exactness check — proving the harness actually detects
//! a broken recovery path, not just the absence of crashes.
//!
//! A `cluster-kill` leg runs the motif workload on a real 3-process local
//! cluster (crates/net) and SIGKILLs one worker process mid-round — the
//! process-level analogue of the in-process `worker-kill` fault — and
//! demands the driver's orphan/recovery path still yields bit-identical
//! results.
//!
//! Emits a `fractal-chaos-smoke/1` JSON summary and exits nonzero on any
//! violation.
//!
//! Usage: `chaos_smoke [--seeds <n>] [--out <path>]` (default: 6 seeds,
//! stdout).

use fractal_apps::{cliques, fsm, motifs};
use fractal_core::{FractalContext, FractalGraph};
use fractal_graph::{gen, Graph};
use fractal_net::{run_cluster, AppSpec, ChaosKill, DriverConfig, LocalCluster};
use fractal_runtime::{ClusterConfig, FaultConfig, FaultStats};
use std::fmt::Write as _;
use std::process::Command;

const MOTIF_K: usize = 3;
const CLIQUE_K: usize = 4;
const FSM_SUPPORT: u64 = 12;
const FSM_EDGES: usize = 2;

fn fg_of(g: &Graph, cfg: ClusterConfig) -> FractalGraph {
    FractalContext::new(cfg).fractal_graph(g.clone())
}

/// Two workers × two cores: the smallest shape where every fault kind is
/// meaningful (a kill needs a survivor, external steals need two workers).
fn base_cfg() -> ClusterConfig {
    ClusterConfig::local(2, 2).with_latency_us(0)
}

/// The chaos matrix's fault kinds (see EXPERIMENTS.md). `panic_depth` 1 is
/// the depth every dispatched unit registers; the low kill threshold kills
/// the worker while it still owns unfinished root-partition work.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "worker-kill",
            FaultConfig::worker_kill(seed, 1).with_kill_after_units(2),
        ),
        ("unit-panic", FaultConfig::unit_panic(seed, 1)),
        ("steal-drop", FaultConfig::steal_drop(seed)),
        ("corrupt-unit", FaultConfig::corrupt_unit(seed)),
    ]
}

/// One workload: a fault-free reference fingerprint plus a runner that
/// re-computes the fingerprint and recovery counters under a fault plan.
/// Fingerprints fold every result element (keys and values), so a single
/// lost or double-counted subgraph anywhere changes them.
struct Workload {
    name: &'static str,
    graph: Graph,
    run: fn(&FractalGraph) -> (u64, FaultStats),
}

fn fingerprint(items: impl IntoIterator<Item = u64>) -> u64 {
    // FNV-1a over the sorted element stream: order-independent input is
    // sorted first so the fingerprint is deterministic across schedules.
    let mut v: Vec<u64> = items.into_iter().collect();
    v.sort_unstable();
    let mut h: u64 = 0xcbf29ce484222325;
    for x in v {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn sum_faults(reports: &[fractal_runtime::JobReport]) -> FaultStats {
    let mut s = FaultStats::default();
    for r in reports {
        s.faults_injected += r.faults.faults_injected;
        s.units_retried += r.faults.units_retried;
        s.units_reexecuted += r.faults.units_reexecuted;
        s.watchdog_trips += r.faults.watchdog_trips;
        s.recovery_ns += r.faults.recovery_ns;
        s.units_lost += r.faults.units_lost;
    }
    s
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "motifs_k3",
            graph: gen::mico_like(220, 4, 7),
            run: |fg| {
                let (hist, report) = motifs::motifs_with_report(fg, MOTIF_K, false);
                let fp = fingerprint(
                    hist.iter()
                        .map(|(code, &n)| fingerprint(code.0.iter().map(|&b| b as u64)) ^ n),
                );
                (fp, sum_faults(&report.steps))
            },
        },
        Workload {
            name: "kclist_k4",
            graph: gen::mico_like(250, 4, 11),
            run: |fg| {
                let (count, report) = cliques::count_kclist_with_report(fg, CLIQUE_K);
                (count, sum_faults(&report.steps))
            },
        },
        Workload {
            name: "fsm",
            graph: gen::patents_like(110, 4, 23),
            run: |fg| {
                let result = fsm::fsm(fg, FSM_SUPPORT, FSM_EDGES);
                let fp = fingerprint(
                    fsm::frequent_map(&result)
                        .iter()
                        .map(|(code, &sup)| fingerprint(code.0.iter().map(|&b| b as u64)) ^ sup),
                );
                let reports: Vec<_> = result.reports.into_iter().flat_map(|r| r.steps).collect();
                (fp, sum_faults(&reports))
            },
        },
    ]
}

/// Hidden worker mode: `chaos_smoke __worker` re-executed by
/// [`cluster_kill`] turns this process into a fractal-net worker. Prints
/// the `LISTENING <addr>` line [`LocalCluster::spawn_with`] waits for.
fn cluster_worker_main() -> ! {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    println!("LISTENING {}", listener.local_addr().expect("addr"));
    std::io::stdout().flush().expect("flush stdout");
    let _ = fractal_net::serve(&listener, 2);
    std::process::exit(0);
}

/// Runs the motif workload on a real 3-process cluster, SIGKILLing worker
/// `seed % 3` once it has made progress in round 0. Returns the result
/// fingerprint plus (deaths, orphaned words, recovery assigns).
fn cluster_kill(seed: u64) -> Result<(u64, u64, u64, u64), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let lc = LocalCluster::spawn_with(3, |_| {
        let mut cmd = Command::new(&exe);
        cmd.arg("__worker");
        cmd
    })
    .map_err(|e| format!("spawn workers: {e}"))?;
    let streams = lc.connect().map_err(|e| format!("connect: {e}"))?;
    let names = (0..3).map(|i| format!("chaos{i}")).collect();
    let mut config = DriverConfig::new(
        AppSpec::Motifs {
            k: MOTIF_K as u32,
            use_labels: false,
            decomposed: false,
        },
        gen::mico_like(220, 4, 7),
    );
    let target = (seed as usize) % 3;
    config.chaos_kill = Some(ChaosKill {
        target,
        kill: lc.kill_fn(target),
    });
    let result = run_cluster(streams, names, config).map_err(|e| format!("cluster run: {e}"))?;
    let fp = fingerprint(
        result
            .motifs
            .iter()
            .map(|(code, &n)| fingerprint(code.0.iter().map(|&b| b as u64)) ^ n),
    );
    Ok((
        fp,
        result.deaths,
        result.orphaned_words,
        result.recovery_assigns,
    ))
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("__worker") {
        cluster_worker_main();
    }
    let mut out_path: Option<String> = None;
    let mut num_seeds: u64 = 6;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out requires a path")),
            "--seeds" => {
                num_seeds = args
                    .next()
                    .expect("--seeds requires a count")
                    .parse()
                    .expect("--seeds requires an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos_smoke [--seeds <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let mut json = String::with_capacity(4096);
    json.push_str("{\n  \"schema\": \"fractal-chaos-smoke/1\",\n");
    let _ = writeln!(json, "  \"seeds\": {num_seeds},");
    json.push_str("  \"scenarios\": [\n");

    let mut failures: Vec<String> = Vec::new();
    let mut first = true;

    for wl in workloads() {
        let (want, base_faults) = (wl.run)(&fg_of(&wl.graph, base_cfg()));
        if base_faults != FaultStats::default() {
            failures.push(format!(
                "{}: fault-free run reported nonzero recovery counters: {base_faults:?}",
                wl.name
            ));
        }
        for seed in 1..=num_seeds {
            for (kind, plan) in fault_plans(seed) {
                let fg = fg_of(&wl.graph, base_cfg().with_faults(plan));
                let (got, faults) = (wl.run)(&fg);
                let exact = got == want;
                if !exact {
                    failures.push(format!(
                        "{} under {kind} seed {seed}: result diverged \
                         (got {got:#x}, want {want:#x}; {faults:?})",
                        wl.name
                    ));
                }
                if faults.units_lost != 0 {
                    failures.push(format!(
                        "{} under {kind} seed {seed}: {} units lost",
                        wl.name, faults.units_lost
                    ));
                }
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"workload\": \"{}\", \"fault\": \"{kind}\", \"seed\": {seed}, \
                     \"exact\": {exact}, \"faults_injected\": {}, \"units_retried\": {}, \
                     \"units_reexecuted\": {}, \"watchdog_trips\": {}, \"units_lost\": {}}}",
                    wl.name,
                    faults.faults_injected,
                    faults.units_retried,
                    faults.units_reexecuted,
                    faults.watchdog_trips,
                    faults.units_lost,
                );
            }
        }
    }

    // Real-process leg: same motif workload, but the kill is an actual
    // SIGKILL of one worker process in a 3-process TCP cluster. Exactness
    // here proves the driver's orphan/recovery path end-to-end, not just
    // the in-process simulation. One run per seed, rotating the victim.
    {
        let wl = &workloads()[0];
        let (want, _) = (wl.run)(&fg_of(&wl.graph, base_cfg()));
        for seed in 1..=num_seeds {
            let (exact, deaths, orphaned, recoveries) = match cluster_kill(seed) {
                Ok((got, deaths, orphaned, recoveries)) => {
                    if got != want {
                        failures.push(format!(
                            "{} under cluster-kill seed {seed}: result diverged \
                             (got {got:#x}, want {want:#x})",
                            wl.name
                        ));
                    }
                    if deaths == 0 {
                        failures.push(format!(
                            "{} under cluster-kill seed {seed}: no worker died — \
                             the process kill never fired",
                            wl.name
                        ));
                    }
                    (got == want, deaths, orphaned, recoveries)
                }
                Err(e) => {
                    failures.push(format!("{} under cluster-kill seed {seed}: {e}", wl.name));
                    (false, 0, 0, 0)
                }
            };
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"workload\": \"{}\", \"fault\": \"cluster-kill\", \"seed\": {seed}, \
                 \"exact\": {exact}, \"faults_injected\": {deaths}, \"units_retried\": {orphaned}, \
                 \"units_reexecuted\": {recoveries}, \"watchdog_trips\": {deaths}, \
                 \"units_lost\": 0}}",
                wl.name,
            );
        }
    }

    // Self-test: with recovery sabotaged the gate MUST observe a failure —
    // lost units on every seed, and a diverged result on at least one
    // (each lost unit contributes zero-or-more results, so divergence is
    // only guaranteed across the seed set, not per seed).
    let wl = &workloads()[0];
    let (want, _) = (wl.run)(&fg_of(&wl.graph, base_cfg()));
    let mut sabotage_lost = true;
    let mut sabotage_diverged = false;
    for seed in 1..=num_seeds {
        let plan = FaultConfig::worker_kill(seed, 1)
            .with_kill_after_units(2)
            .with_sabotaged_recovery();
        let fg = fg_of(&wl.graph, base_cfg().with_faults(plan));
        let (got, faults) = (wl.run)(&fg);
        sabotage_lost &= faults.units_lost > 0;
        sabotage_diverged |= got != want;
    }
    if !sabotage_lost {
        failures.push(
            "self-test: sabotaged recovery lost no units — the kill scenario is not \
             exercising recovery at all"
                .to_string(),
        );
    }
    if !sabotage_diverged {
        failures.push(
            "self-test: sabotaged recovery still produced exact results on every seed — \
             the exactness check cannot detect broken recovery"
                .to_string(),
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"self_test\": {{\"units_lost_every_seed\": {sabotage_lost}, \
         \"diverged_some_seed\": {sabotage_diverged}}},\n  \"failures\": ["
    );
    for (i, f) in failures.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    \"{}\"",
            if i == 0 { "" } else { "," },
            f.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    json.push_str(if failures.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });

    match out_path {
        Some(p) => std::fs::write(&p, &json).unwrap_or_else(|e| panic!("write {p}: {e}")),
        None => print!("{json}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("chaos violation: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "chaos gate: all scenarios exact across {num_seeds} seeds; self-test detected sabotage"
    );
}
