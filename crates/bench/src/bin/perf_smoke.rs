//! CI perf-smoke probe: runs the kernel-gated workloads (KClist clique
//! counting and generic motif enumeration) on a fixed Mico-like graph, plus
//! the depth-bound 5-motif benchmark through *both* execution paths
//! (enumerate vs. decomposed planner) on a sparser Patents-like graph, and
//! emits their **work counters** as one JSON document.
//!
//! Two legs:
//!
//! * `deterministic` — one worker, two cores, work stealing disabled. Every
//!   counter here (result count, extension cost, units, kernel-path call
//!   mix, elements scanned) is a pure function of the code, so the CI gate
//!   compares them against the checked-in baseline with zero or tight
//!   tolerances. Wall-clock times are included for humans but never gated.
//! * `parallel` — two workers × two cores with full hierarchical work
//!   stealing. Scheduling-dependent metrics (steals, imbalance,
//!   utilization) land here and are gated only by loose absolute bounds.
//!
//! Usage: `perf_smoke [--out <path>]` (default: stdout).

use fractal_apps::planned::PlanMode;
use fractal_core::{ExecutionReport, FractalContext, FractalGraph};
use fractal_graph::gen;
use fractal_runtime::{ClusterConfig, WsMode};
use std::fmt::Write as _;

const VERTICES: usize = 700;
const LABELS: u32 = 4;
const SEED: u64 = 42;
const CLIQUE_K: usize = 4;
const MOTIF_K: usize = 3;
// The 5-motif pair runs on a sparser citation-shaped graph: depth-5
// enumeration on the dense Mico-like instance would dominate CI wall-clock,
// while this size keeps the enumerate leg measurable and the decomposed leg
// clearly ahead of it.
const MOTIF_K5: usize = 5;
const K5_VERTICES: usize = 220;

fn fractal_graph(config: ClusterConfig) -> FractalGraph {
    let fc = FractalContext::new(config);
    fc.fractal_graph(gen::mico_like(VERTICES, LABELS, SEED))
}

fn k5_fractal_graph(config: ClusterConfig) -> FractalGraph {
    let fc = FractalContext::new(config);
    fc.fractal_graph(gen::patents_like(K5_VERTICES, LABELS, SEED))
}

/// Deterministic work counters of one workload run (single step).
fn work_counters(name: &str, count: u64, report: &ExecutionReport, out: &mut String) {
    let step = &report.steps[0];
    let units: u64 = step.cores.iter().map(|(_, s)| s.units).sum();
    let (km, kg, kb, ks) = step.kernel_totals();
    let _ = write!(
        out,
        "    \"{name}\": {{\n      \"count\": {count},\n      \"total_ec\": {},\n      \
         \"total_units\": {units},\n      \"kernel_merge\": {km},\n      \
         \"kernel_gallop\": {kg},\n      \"kernel_bitset\": {kb},\n      \
         \"kernel_scanned\": {ks},\n      \"arena_peak_bytes\": {},\n      \
         \"plans_compiled\": {},\n      \"subpatterns_counted\": {},\n      \
         \"ie_terms\": {},\n      \"elapsed_ms\": {:.3}\n    }}",
        step.total_ec(),
        step.arena_peak_bytes(),
        step.planner.plans_compiled,
        step.planner.subpatterns_counted,
        step.planner.ie_terms,
        report.elapsed.as_secs_f64() * 1e3,
    );
}

/// Scheduling-dependent balance metrics of one workload run.
fn balance_counters(name: &str, count: u64, report: &ExecutionReport, out: &mut String) {
    let step = &report.steps[0];
    let (int_steals, ext_steals) = step.steals();
    let _ = write!(
        out,
        "    \"{name}\": {{\n      \"count\": {count},\n      \
         \"internal_steals\": {int_steals},\n      \"external_steals\": {ext_steals},\n      \
         \"imbalance\": {:.6},\n      \"utilization\": {:.6},\n      \
         \"steal_overhead\": {:.6},\n      \"elapsed_ms\": {:.3}\n    }}",
        step.imbalance(),
        step.utilization(),
        step.steal_overhead(),
        report.elapsed.as_secs_f64() * 1e3,
    );
}

/// Recovery counters summed over all steps of the given reports. Both
/// perf-smoke legs run fault-free, so the CI gate asserts every one of
/// these is zero — any nonzero value means the fault machinery leaked into
/// the fault-free hot path (spurious retries, watchdog trips, …).
/// `net_units` rides along for the same reason: a single-process run has
/// no network substrate attached, so any externally pulled unit means the
/// cluster hooks leaked into plain execution.
fn fault_counters(reports: &[&ExecutionReport], out: &mut String) {
    let mut sum = fractal_runtime::FaultStats::default();
    let mut net_units = 0u64;
    for r in reports {
        for step in &r.steps {
            sum.faults_injected += step.faults.faults_injected;
            sum.units_retried += step.faults.units_retried;
            sum.units_reexecuted += step.faults.units_reexecuted;
            sum.watchdog_trips += step.faults.watchdog_trips;
            sum.recovery_ns += step.faults.recovery_ns;
            sum.units_lost += step.faults.units_lost;
            sum.tap_drained += step.faults.tap_drained;
            sum.jobs_admitted += step.faults.jobs_admitted;
            sum.jobs_rejected += step.faults.jobs_rejected;
            sum.snapshot_evictions += step.faults.snapshot_evictions;
            sum.journal_replayed += step.faults.journal_replayed;
            sum.resumed_jobs += step.faults.resumed_jobs;
            sum.link_faults_injected += step.faults.link_faults_injected;
            sum.client_reconnects += step.faults.client_reconnects;
            net_units += step.net_units();
        }
    }
    let _ = write!(
        out,
        "    \"faults\": {{\n      \"faults_injected\": {},\n      \"units_retried\": {},\n      \
         \"units_reexecuted\": {},\n      \"watchdog_trips\": {},\n      \
         \"recovery_ns\": {},\n      \"units_lost\": {},\n      \"tap_drained\": {},\n      \
         \"net_units\": {},\n      \
         \"jobs_admitted\": {},\n      \"jobs_rejected\": {},\n      \
         \"snapshot_evictions\": {},\n      \"journal_replayed\": {},\n      \
         \"resumed_jobs\": {},\n      \"link_faults_injected\": {},\n      \
         \"client_reconnects\": {}\n    }}",
        sum.faults_injected,
        sum.units_retried,
        sum.units_reexecuted,
        sum.watchdog_trips,
        sum.recovery_ns,
        sum.units_lost,
        sum.tap_drained,
        net_units,
        sum.jobs_admitted,
        sum.jobs_rejected,
        sum.snapshot_evictions,
        sum.journal_replayed,
        sum.resumed_jobs,
        sum.link_faults_injected,
        sum.client_reconnects,
    );
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out requires a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_smoke [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    // Deterministic leg: no stealing, fixed root striding.
    let det = fractal_graph(ClusterConfig::local(1, 2).with_ws(WsMode::Disabled));
    let (cliques, clique_report) = fractal_apps::cliques::count_kclist_with_report(&det, CLIQUE_K);
    let (motif_hist, motif_report) = fractal_apps::motifs::motifs_with_report(&det, MOTIF_K, false);
    let motif_total: u64 = motif_hist.values().sum();

    // Depth-bound 5-motif benchmark: the same task through both execution
    // paths. Bit-identity between the histograms is asserted here so a
    // planner regression fails the smoke run itself, before the gate.
    let k5 = k5_fractal_graph(ClusterConfig::local(1, 2).with_ws(WsMode::Disabled));
    let (k5_enum_hist, k5_enum_report, _) =
        fractal_apps::planned::motifs_planned(&k5, MOTIF_K5, false, PlanMode::Enumerate);
    let (k5_dec_hist, k5_dec_report, _) =
        fractal_apps::planned::motifs_planned(&k5, MOTIF_K5, false, PlanMode::Decomposed);
    assert_eq!(
        k5_enum_hist, k5_dec_hist,
        "decomposed 5-motif counts must be bit-identical to the enumerator"
    );
    let k5_total: u64 = k5_enum_hist.values().sum();

    // Parallel leg: full hierarchical work stealing across two workers.
    let par = fractal_graph(ClusterConfig::local(2, 2));
    let (par_cliques, par_report) = fractal_apps::cliques::count_kclist_with_report(&par, CLIQUE_K);
    assert_eq!(par_cliques, cliques, "parallel leg must count identically");

    let mut json = String::with_capacity(2048);
    json.push_str("{\n  \"schema\": \"fractal-perf-smoke/1\",\n");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"generator\": \"mico_like\", \"vertices\": {VERTICES}, \
         \"labels\": {LABELS}, \"seed\": {SEED}}},"
    );
    let _ = writeln!(
        json,
        "  \"graph_k5\": {{\"generator\": \"patents_like\", \"vertices\": {K5_VERTICES}, \
         \"labels\": {LABELS}, \"seed\": {SEED}}},"
    );
    json.push_str("  \"deterministic\": {\n");
    work_counters(
        &format!("kclist_k{CLIQUE_K}"),
        cliques,
        &clique_report,
        &mut json,
    );
    json.push_str(",\n");
    work_counters(
        &format!("motifs_k{MOTIF_K}"),
        motif_total,
        &motif_report,
        &mut json,
    );
    json.push_str(",\n");
    work_counters(
        &format!("motifs_k{MOTIF_K5}_enumerate"),
        k5_total,
        &k5_enum_report,
        &mut json,
    );
    json.push_str(",\n");
    work_counters(
        &format!("motifs_k{MOTIF_K5}_decomposed"),
        k5_total,
        &k5_dec_report,
        &mut json,
    );
    json.push_str(",\n");
    fault_counters(
        &[
            &clique_report,
            &motif_report,
            &k5_enum_report,
            &k5_dec_report,
        ],
        &mut json,
    );
    json.push_str("\n  },\n  \"parallel\": {\n");
    balance_counters(
        &format!("kclist_k{CLIQUE_K}"),
        par_cliques,
        &par_report,
        &mut json,
    );
    json.push_str(",\n");
    fault_counters(&[&par_report], &mut json);
    json.push_str("\n  }\n}\n");

    match out_path {
        Some(p) => std::fs::write(&p, &json).unwrap_or_else(|e| panic!("write {p}: {e}")),
        None => print!("{json}"),
    }
}
