//! Comparative performance experiments (§5.1): Figs. 11, 12, 13, 15 and
//! the Appendix C triangle benchmark (Fig. 20a).

use super::{baseline_budget, default_cluster};
use crate::datasets::{self, Scale};
use crate::row;
use crate::table::Table;
use crate::{secs, timed};
use fractal_baselines::bfs_engine::{self, BfsConfig};
use fractal_baselines::{mr, scalemine, seed, single_thread, Outcome};
use fractal_core::FractalContext;
use std::path::Path;

fn fctx() -> FractalContext {
    FractalContext::new(default_cluster())
}

fn outcome_cell<T>(out: &Outcome<T>, elapsed_of_ok: std::time::Duration) -> String {
    match out {
        Outcome::Ok(..) => secs(elapsed_of_ok),
        other => other.status().to_string(),
    }
}

/// Fig. 11: Motifs runtime on Mico-SL and Youtube-SL — Fractal vs the
/// Arabesque-like BFS engine vs the MRSUB-like MR kernel.
///
/// Paper shape: Arabesque wins the smallest task (Fractal pays work
/// stealing setup), Fractal wins as k or the graph grows, MRSUB trails
/// everywhere and can OOM.
pub fn fig11(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 11 — Motifs runtime (s)",
        &[
            "graph",
            "k",
            "fractal",
            "arabesque-like",
            "mrsub-like",
            "agree",
        ],
    );
    let budget = baseline_budget(scale);
    for (gname, g) in [
        ("mico-sl", datasets::mico_sl(scale)),
        ("youtube-sl", datasets::youtube_sl(scale)),
    ] {
        let fg = fctx().fractal_graph(g.clone());
        // k = 5 multiplies the subgraph count by orders of magnitude
        // (the paper's point); reserve it for --scale paper runs.
        let kmax = if scale == Scale::Paper && gname == "mico-sl" {
            5
        } else {
            4
        };
        for k in 3..=kmax {
            let (fr, ft) = timed(|| fractal_apps::motifs::motifs(&fg, k));
            let (ar, at) = timed(|| {
                bfs_engine::motifs_bfs(&g, k, &BfsConfig::new(8).with_budget(budget), false)
            });
            let (mrr, mt) = timed(|| mr::mrsub_motifs(&g, k, 8, budget));
            let agree = match (&ar, &mrr) {
                (Outcome::Ok(a, _), Outcome::Ok(m, _)) => *a == fr && *m == fr,
                (Outcome::Ok(a, _), _) => *a == fr,
                _ => true,
            };
            t.row(row![
                gname,
                k,
                secs(ft),
                outcome_cell(&ar, at),
                outcome_cell(&mrr, mt),
                agree
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig11.csv")).ok();
}

/// Fig. 12: Cliques runtime on Mico-SL and Youtube-SL — Fractal vs
/// Arabesque-like vs QKCount-like; GraphFrames-like is triangles-only and
/// memory-hungry (often OOM in the paper).
pub fn fig12(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 12 — Cliques runtime (s); arab-state shows the stored-embedding growth \
         that drives the paper-scale gap",
        &[
            "graph",
            "k",
            "fractal",
            "arabesque-like",
            "arab-state(MiB)",
            "qkcount-like",
            "graphframes-like",
            "agree",
        ],
    );
    let budget = baseline_budget(scale);
    for (gname, g) in [
        ("mico-sl", datasets::mico_sl(scale)),
        ("youtube-sl", datasets::youtube_sl(scale)),
    ] {
        let fg = fctx().fractal_graph(g.clone());
        for k in 3..=6 {
            let (fr, ft) = timed(|| fractal_apps::cliques::count(&fg, k));
            let (ar, at) =
                timed(|| bfs_engine::cliques_bfs(&g, k, &BfsConfig::new(8).with_budget(budget)));
            let (qk, qt) = timed(|| mr::qkcount_cliques(&g, k, 8, budget));
            let gf_cell = if k == 3 {
                let (gf, gt) = timed(|| single_thread::graphframes_triangles(&g, budget));
                outcome_cell(&gf, gt)
            } else {
                "n/a".to_string()
            };
            let agree = match (&ar, &qk) {
                (Outcome::Ok(a, _), Outcome::Ok(q, _)) => *a == fr && *q == fr,
                _ => true,
            };
            let arab_state = crate::mib(ar.stats().peak_state_bytes);
            t.row(row![
                gname,
                k,
                secs(ft),
                outcome_cell(&ar, at),
                arab_state,
                outcome_cell(&qk, qt),
                gf_cell,
                agree
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig12.csv")).ok();
}

/// Fig. 13: FSM runtime vs minimum support on Mico-ML and Patents-ML —
/// Fractal vs Arabesque-like vs ScaleMine-like (approximate counts).
pub fn fig13(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 13 — FSM runtime (s), max 3 edges",
        &[
            "graph",
            "support",
            "fractal",
            "arabesque-like",
            "scalemine-like",
            "frequent",
        ],
    );
    let budget = baseline_budget(scale);
    let max_edges = 3;
    for (gname, g, supports) in [
        (
            "mico-ml",
            datasets::mico_ml(scale),
            supports_for(scale, true),
        ),
        (
            "patents-ml",
            datasets::patents_ml(scale),
            supports_for(scale, false),
        ),
    ] {
        let fg = fctx().fractal_graph(g.clone());
        for sup in supports {
            let (fr, ft) = timed(|| fractal_apps::fsm::fsm(&fg, sup, max_edges));
            let (ar, at) = timed(|| {
                bfs_engine::fsm_bfs(&g, sup, max_edges, &BfsConfig::new(8).with_budget(budget))
            });
            let (sm, st) = timed(|| scalemine::scalemine_fsm(&g, sup, max_edges, 8, 40, budget));
            t.row(row![
                gname,
                sup,
                secs(ft),
                outcome_cell(&ar, at),
                outcome_cell(&sm, st),
                fr.frequent.len()
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig13.csv")).ok();
}

fn supports_for(scale: Scale, dense: bool) -> Vec<u64> {
    let base = match scale {
        Scale::Tiny => 30,
        Scale::Small => 120,
        Scale::Paper => 300,
    };
    if dense {
        vec![base, base * 2, base * 3]
    } else {
        vec![base / 2, base, base * 2]
    }
}

/// Fig. 15: Subgraph querying q1–q8 on Patents-SL and Youtube-SL —
/// Fractal vs SEED-like vs Arabesque-like.
///
/// Paper shape: SEED wins clique-shaped queries (single-unit plans),
/// Fractal wins or ties elsewhere; Arabesque OOMs on edge-heavy queries.
pub fn fig15(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 15 — Subgraph querying runtime (s)",
        &[
            "graph",
            "query",
            "fractal",
            "seed-like",
            "arabesque-like",
            "matches",
        ],
    );
    let budget = baseline_budget(scale);
    for (gname, g) in [
        ("patents-sl", datasets::patents_sl(scale)),
        ("youtube-sl", datasets::youtube_sl(scale)),
    ] {
        let fg = fctx().fractal_graph(g.clone());
        for (qname, q) in fractal_apps::query::evaluation_queries() {
            let (fr, ft) = timed(|| fractal_apps::query::count_matches(&fg, &q));
            let (se, st) = timed(|| seed::seed_count(&g, &q, budget));
            let (ar, at) =
                timed(|| bfs_engine::query_bfs(&g, &q, &BfsConfig::new(8).with_budget(budget)));
            if let Outcome::Ok(n, _) = &se {
                assert_eq!(*n, fr, "{gname}/{qname}: seed disagrees");
            }
            if let Outcome::Ok(n, _) = &ar {
                assert_eq!(*n, fr, "{gname}/{qname}: bfs disagrees");
            }
            t.row(row![
                gname,
                qname,
                secs(ft),
                outcome_cell(&se, st),
                outcome_cell(&ar, at),
                fr
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig15.csv")).ok();
}

/// Fig. 20a: Triangle counting across graphs — Fractal vs Arabesque-like
/// vs GraphFrames-like vs a GraphX-like MR kernel.
pub fn fig20a(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 20a — Triangles runtime (s)",
        &[
            "graph",
            "fractal",
            "arabesque-like",
            "graphframes-like",
            "graphx-like",
            "triangles",
        ],
    );
    let budget = baseline_budget(scale);
    for (gname, g) in [
        ("mico-sl", datasets::mico_sl(scale)),
        ("patents-sl", datasets::patents_sl(scale)),
        ("youtube-sl", datasets::youtube_sl(scale)),
        ("orkut-like", datasets::orkut(scale)),
    ] {
        let fg = fctx().fractal_graph(g.clone());
        let (fr, ft) = timed(|| fractal_apps::cliques::triangles(&fg));
        let (ar, at) =
            timed(|| bfs_engine::cliques_bfs(&g, 3, &BfsConfig::new(8).with_budget(budget)));
        let (gf, gt) = timed(|| single_thread::graphframes_triangles(&g, budget));
        let (gx, xt) = timed(|| mr::qkcount_cliques(&g, 3, 8, budget));
        t.row(row![
            gname,
            secs(ft),
            outcome_cell(&ar, at),
            outcome_cell(&gf, gt),
            outcome_cell(&gx, xt),
            fr
        ]);
    }
    t.print();
    t.write_csv(out_dir.join("fig20a.csv")).ok();
}
