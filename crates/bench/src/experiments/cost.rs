//! COST analysis (§5.2.4, Fig. 18 and Fig. 20b) and strong scalability
//! (Fig. 19).
//!
//! COST [38] = number of threads a parallel system needs to beat an
//! efficient single-thread implementation. The paper measures 2–4 threads
//! for most kernels, blowing up on short tasks where setup overheads
//! dominate.

use crate::datasets::{self, Scale};
use crate::row;
use crate::table::Table;
use crate::{secs, timed};
use fractal_baselines::single_thread;
use fractal_core::FractalContext;
use fractal_runtime::ClusterConfig;
use std::path::Path;
use std::time::Duration;

/// Sweeps Fractal thread counts until it beats `baseline`; returns
/// `(cost_threads, fractal_time_at_cost)`.
fn cost_sweep(
    baseline: Duration,
    mut run: impl FnMut(usize) -> Duration,
) -> (Option<usize>, Duration) {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Sweeping past the host's parallelism cannot help; on a single-core
    // host the sweep degenerates entirely, so probe just enough points to
    // report the (flat) shape.
    let points: &[usize] = if host == 1 {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 6, 8, 12, 16]
    };
    let mut best = Duration::MAX;
    for &threads in points {
        if threads > 2 * host {
            break;
        }
        let t = run(threads);
        best = best.min(t);
        if t < baseline {
            return (Some(threads), t);
        }
    }
    (None, best)
}

fn cluster(threads: usize) -> ClusterConfig {
    // Single simulated machine: COST measures thread scaling.
    ClusterConfig::local(1, threads)
}

/// Fig. 18: COST of motifs, cliques, FSM and two queries against the
/// Gtries-like / GraMi-like single-thread baselines.
pub fn fig18(scale: Scale, out_dir: &Path) {
    print_parallelism_note();
    let mut t = Table::new(
        "Fig 18 — COST: threads to beat a single-thread baseline",
        &["kernel", "baseline(s)", "COST", "fractal(s)@COST"],
    );

    // Motifs on Mico-like.
    let gm = datasets::mico_sl(scale);
    let (st, st_t) = timed(|| single_thread::gtries_motifs(&gm, 4));
    let (cost, ft) = cost_sweep(st_t, |threads| {
        let fg = FractalContext::new(cluster(threads)).fractal_graph(gm.clone());
        let (m, d) = timed(|| fractal_apps::motifs::motifs(&fg, 4));
        assert_eq!(m, st, "motif counts disagree");
        d
    });
    t.row(row![
        "motifs k=4 (vs gtries-like)",
        secs(st_t),
        fmt_cost(cost),
        secs(ft)
    ]);

    // Cliques on Youtube-like.
    let gy = datasets::youtube_sl(scale);
    let (stc, stc_t) = timed(|| single_thread::gtries_cliques(&gy, 4));
    let (cost, ft) = cost_sweep(stc_t, |threads| {
        let fg = FractalContext::new(cluster(threads)).fractal_graph(gy.clone());
        let (c, d) = timed(|| fractal_apps::cliques::count(&fg, 4));
        assert_eq!(c, stc, "clique counts disagree");
        d
    });
    t.row(row![
        "cliques k=4 (vs gtries-like)",
        secs(stc_t),
        fmt_cost(cost),
        secs(ft)
    ]);

    // FSM on Patents-like.
    let gp = datasets::patents_ml(scale);
    let support = match scale {
        Scale::Tiny => 25,
        Scale::Small => 100,
        Scale::Paper => 250,
    };
    let (stf, stf_t) = timed(|| single_thread::grami_fsm(&gp, support, 2));
    let (cost, ft) = cost_sweep(stf_t, |threads| {
        let fg = FractalContext::new(cluster(threads)).fractal_graph(gp.clone());
        let (r, d) = timed(|| fractal_apps::fsm::fsm(&fg, support, 2));
        assert_eq!(r.frequent.len(), stf.len(), "frequent sets disagree");
        d
    });
    t.row(row![
        "fsm (vs grami-like)",
        secs(stf_t),
        fmt_cost(cost),
        secs(ft)
    ]);

    // Queries q2, q3 on Patents-like.
    let gq = datasets::patents_sl(scale);
    for (qname, q) in fractal_apps::query::evaluation_queries()
        .into_iter()
        .filter(|(n, _)| *n == "q2" || *n == "q3")
    {
        let (stq, stq_t) = timed(|| single_thread::query_single(&gq, &q));
        let (cost, ft) = cost_sweep(stq_t, |threads| {
            let fg = FractalContext::new(cluster(threads)).fractal_graph(gq.clone());
            let (c, d) = timed(|| fractal_apps::query::count_matches(&fg, &q));
            assert_eq!(c, stq, "{qname} counts disagree");
            d
        });
        t.row(row![
            format!("query {qname} (vs single-thread)"),
            secs(stq_t),
            fmt_cost(cost),
            secs(ft)
        ]);
    }

    t.print();
    t.write_csv(out_dir.join("fig18.csv")).ok();
}

/// Thread-scaling shapes require real hardware parallelism; on a
/// single-CPU host the sweep degenerates (threads serialize) and the
/// balance statistics of Fig. 16 are the meaningful signal instead.
fn print_parallelism_note() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("[host parallelism: {cores} hardware threads]");
    if cores < 4 {
        println!("[note: <4 hardware threads — COST/efficiency columns will degenerate]");
    }
}

fn fmt_cost(c: Option<usize>) -> String {
    match c {
        Some(n) => n.to_string(),
        None => ">16".to_string(),
    }
}

/// Fig. 20b: COST of the optimized (KClist-enumerator) cliques and of
/// triangles against the single-thread KClist / Neo4j-like baselines.
pub fn fig20b(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Fig 20b — COST of optimized cliques and triangles",
        &["kernel", "baseline(s)", "COST", "fractal(s)@COST"],
    );
    let gm = datasets::mico_sl(scale);
    let (stk, stk_t) = timed(|| single_thread::kclist_cliques(&gm, 5));
    let (cost, ft) = cost_sweep(stk_t, |threads| {
        let fg = FractalContext::new(cluster(threads)).fractal_graph(gm.clone());
        let (c, d) = timed(|| fractal_apps::cliques::count_kclist(&fg, 5));
        assert_eq!(c, stk, "kclist counts disagree");
        d
    });
    t.row(row![
        "cliques k=5 kclist (vs kclist)",
        secs(stk_t),
        fmt_cost(cost),
        secs(ft)
    ]);

    let go = datasets::orkut(scale);
    let (stt, stt_t) = timed(|| single_thread::node_iterator_triangles(&go));
    let (cost, ft) = cost_sweep(stt_t, |threads| {
        let fg = FractalContext::new(cluster(threads)).fractal_graph(go.clone());
        let (c, d) = timed(|| fractal_apps::cliques::count_kclist(&fg, 3));
        assert_eq!(c, stt, "triangle counts disagree");
        d
    });
    t.row(row![
        "triangles orkut (vs neo4j-like)",
        secs(stt_t),
        fmt_cost(cost),
        secs(ft)
    ]);

    t.print();
    t.write_csv(out_dir.join("fig20b.csv")).ok();
}

/// Fig. 19: strong scalability — runtime and parallel efficiency as cores
/// grow, for the four most time-consuming kernels.
pub fn fig19(scale: Scale, out_dir: &Path) {
    print_parallelism_note();
    let mut t = Table::new(
        "Fig 19 — Strong scalability (runtime s / parallel efficiency)",
        &[
            "kernel", "cores=1", "cores=2", "cores=4", "cores=8", "eff@8",
        ],
    );
    let support = match scale {
        Scale::Tiny => 25,
        Scale::Small => 100,
        Scale::Paper => 250,
    };
    let gm = datasets::mico_sl(scale);
    let gy = datasets::youtube_sl(scale);
    let gp = datasets::patents_ml(scale);
    let gq = datasets::youtube_sl(scale);
    let q6 = fractal_apps::query::house();

    type Kernel<'a> = (&'a str, Box<dyn Fn(usize) -> Duration + 'a>);
    let kernels: Vec<Kernel> = vec![
        (
            "motifs k=4 mico",
            Box::new(|cores| {
                let fg = FractalContext::new(split_cluster(cores)).fractal_graph(gm.clone());
                timed(|| fractal_apps::motifs::motifs(&fg, 4)).1
            }),
        ),
        (
            "cliques k=4 youtube",
            Box::new(|cores| {
                let fg = FractalContext::new(split_cluster(cores)).fractal_graph(gy.clone());
                timed(|| fractal_apps::cliques::count(&fg, 4)).1
            }),
        ),
        (
            "fsm patents",
            Box::new(|cores| {
                let fg = FractalContext::new(split_cluster(cores)).fractal_graph(gp.clone());
                timed(|| fractal_apps::fsm::fsm(&fg, support, 2)).1
            }),
        ),
        (
            "query q6 youtube",
            Box::new(|cores| {
                let fg = FractalContext::new(split_cluster(cores)).fractal_graph(gq.clone());
                timed(|| fractal_apps::query::count_matches(&fg, &q6)).1
            }),
        ),
    ];
    for (name, run) in kernels {
        let times: Vec<Duration> = [1usize, 2, 4, 8].iter().map(|&c| run(c)).collect();
        let eff = times[0].as_secs_f64() / (8.0 * times[3].as_secs_f64().max(1e-9));
        t.row(row![
            name,
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            secs(times[3]),
            format!("{:.0}%", eff * 100.0)
        ]);
    }
    t.print();
    t.write_csv(out_dir.join("fig19.csv")).ok();
}

/// Splits `cores` across up to two simulated workers (mirroring the
/// paper's multi-machine sweep).
fn split_cluster(cores: usize) -> ClusterConfig {
    if cores <= 2 {
        ClusterConfig::local(1, cores)
    } else {
        ClusterConfig::local(2, cores / 2)
    }
}
