//! Graph reduction experiments: Fig. 17 (keyword search with/without the
//! reduced graph, core sweep) and the §4.3/§6 extension-cost numbers.

use crate::datasets::{self, Scale};
use crate::row;
use crate::table::Table;
use crate::{secs, timed};
use fractal_core::FractalContext;
use fractal_graph::bitset::Bitset;
use fractal_runtime::ClusterConfig;
use std::path::Path;

/// The four evaluation keyword queries (the paper's Q1–Q4 name movie
/// keywords; the synthetic vocabulary is `kw<rank>` with zipfian
/// frequency, so low ranks are common words and high ranks rare ones).
fn queries() -> Vec<(&'static str, Vec<&'static str>)> {
    // Selective queries: like the paper's (movie keywords such as "mel
    // gibson"), the terms are rare-to-moderate vocabulary ranks — a query
    // of only the most common words would keep most of the graph and
    // neutralize the reduction.
    vec![
        ("Q1", vec!["kw18", "kw35", "kw52"]),
        ("Q2", vec!["kw44", "kw71", "kw23"]),
        ("Q3", vec!["kw27", "kw58", "kw90", "kw36"]),
        ("Q4", vec!["kw31", "kw66", "kw104"]),
    ]
}

/// Fig. 17: keyword-search runtime with and without graph reduction as
/// the number of cores grows (one to two orders of magnitude improvement
/// in the paper).
pub fn fig17(scale: Scale, out_dir: &Path) {
    let g = datasets::wikidata(scale);
    let mut t = Table::new(
        "Fig 17 — Keyword search: graph reduction x cores (runtime s)",
        &[
            "query",
            "cores",
            "no-reduction",
            "with-reduction",
            "speedup",
            "results",
        ],
    );
    for (qname, words) in queries() {
        for cores in [1usize, 2, 4, 8] {
            let ctx = FractalContext::new(ClusterConfig::local(cores.min(2), cores.div_ceil(2)));
            let fg = ctx.fractal_graph(g.clone());
            let (plain, pt) = timed(|| {
                fractal_apps::keyword::keyword_search_str(&fg, &words, false).expect("known kw")
            });
            let (red, rt) = timed(|| {
                fractal_apps::keyword::keyword_search_str(&fg, &words, true).expect("known kw")
            });
            assert_eq!(
                plain.subgraphs.len(),
                red.subgraphs.len(),
                "{qname}: reduction changed the result set"
            );
            let speedup = pt.as_secs_f64() / rt.as_secs_f64().max(1e-9);
            t.row(row![
                qname,
                cores,
                secs(pt),
                secs(rt),
                format!("{speedup:.1}x"),
                red.subgraphs.len()
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig17.csv")).ok();
}

/// §4.3 motivating numbers and the §6 counter-example:
///
/// * keyword queries: % vertices/edges removed by the reduction and the
///   extension-cost (EC) reduction it buys;
/// * cliques: reducing Mico to the vertices/edges participating in
///   k-cliques shrinks the graph but leaves EC (and so runtime)
///   essentially unchanged — reduction only pays when the subgraphs of
///   interest are localized.
pub fn reduction_ec(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "§4.3/§6 — Graph reduction: input and extension-cost reduction",
        &[
            "workload",
            "V-reduction",
            "E-reduction",
            "EC-before",
            "EC-after",
            "EC-reduction",
        ],
    );
    // Keyword searches on the Wikidata-like graph.
    let g = datasets::wikidata(scale);
    let ctx = FractalContext::new(super::default_cluster());
    let fg = ctx.fractal_graph(g.clone());
    for (qname, words) in queries().into_iter().take(2) {
        let plain = fractal_apps::keyword::keyword_search_str(&fg, &words, false).unwrap();
        let red = fractal_apps::keyword::keyword_search_str(&fg, &words, true).unwrap();
        let vred = 1.0 - red.reduced_vertices as f64 / g.num_vertices() as f64;
        let ered = 1.0 - red.reduced_edges as f64 / g.num_edges() as f64;
        let ec_b = plain.report.total_ec();
        let ec_a = red.report.total_ec();
        t.row(row![
            format!("keyword {qname}"),
            format!("{:.1}%", vred * 100.0),
            format!("{:.1}%", ered * 100.0),
            ec_b,
            ec_a,
            format!("{:.1}%", (1.0 - ec_a as f64 / ec_b.max(1) as f64) * 100.0)
        ]);
    }
    // Clique counter-example on Mico-like: reduce to elements in >= 1
    // k-clique; EC stays (§6: "the extension cost remains unchanged").
    let k = 4;
    let gm = datasets::mico_sl(scale);
    let fgm = ctx.fractal_graph(gm.clone());
    let (count_before, report_before) = fractal_apps::cliques::count_with_report(&fgm, k);
    // Participation of k-cliques.
    let tracked = fractal_apps::cliques::cliques_fractoid(&fgm, k).execute_tracking_participation();
    let part = tracked.participation.expect("tracking enabled");
    let vmask: Bitset = part.vertices;
    let emask: Bitset = part.edges;
    let vred = 1.0 - vmask.count() as f64 / gm.num_vertices() as f64;
    let ered = 1.0 - emask.count() as f64 / gm.num_edges() as f64;
    let reduced = fgm.wrap_reduced(gm.reduce(&vmask, &emask));
    let (count_after, report_after) = fractal_apps::cliques::count_with_report(&reduced, k);
    assert_eq!(count_before, count_after, "reduction changed clique count");
    let (ec_b, ec_a) = (report_before.total_ec(), report_after.total_ec());
    t.row(row![
        format!("cliques k={k} (counter-example)"),
        format!("{:.1}%", vred * 100.0),
        format!("{:.1}%", ered * 100.0),
        ec_b,
        ec_a,
        format!("{:.1}%", (1.0 - ec_a as f64 / ec_b.max(1) as f64) * 100.0)
    ]);
    t.print();
    t.write_csv(out_dir.join("reduction-ec.csv")).ok();
}
