//! Drill-down experiments: Fig. 8 (utilization without balancing),
//! Fig. 16 (hierarchical work stealing), Table 2 (memory per worker), the
//! §4.1 memory motivating example and the §6 work-stealing overhead.

use super::default_cluster;
use crate::datasets::{self, Scale};
use crate::row;
use crate::table::Table;
use crate::{mib, secs, timed};
use fractal_baselines::bfs_engine::{self, BfsConfig, Storage};
use fractal_core::FractalContext;
use fractal_runtime::{ClusterConfig, WsMode};
use std::path::Path;

/// Fig. 8: CPU utilization over time with work stealing disabled —
/// 4-cliques on one worker, skew leaves cores idle while stragglers run.
pub fn fig8(scale: Scale, out_dir: &Path) {
    let g = datasets::mico_sl(scale);
    let mut t = Table::new(
        "Fig 8 — CPU utilization without balancing (4-cliques, 1 worker x 8 cores)",
        &["time-bucket", "disabled", "internal+external"],
    );
    let mut timelines = Vec::new();
    for mode in [WsMode::Disabled, WsMode::Both] {
        let ctx = FractalContext::new(ClusterConfig::local(1, 8).with_ws(mode));
        let fg = ctx.fractal_graph(g.clone());
        let (_, report) = fractal_apps::cliques::count_with_report(&fg, 4);
        let tl: Vec<f64> = report
            .steps
            .first()
            .map(|s| s.utilization_timeline(10))
            .unwrap_or_default();
        timelines.push(tl);
    }
    for i in 0..10 {
        t.row(row![
            format!("{}%", (i + 1) * 10),
            format!("{:.2}", timelines[0].get(i).copied().unwrap_or(0.0)),
            format!("{:.2}", timelines[1].get(i).copied().unwrap_or(0.0))
        ]);
    }
    t.print();
    let d_avg = timelines[0].iter().sum::<f64>() / 10.0;
    let b_avg = timelines[1].iter().sum::<f64>() / 10.0;
    println!("mean utilization: disabled {d_avg:.2}, both {b_avg:.2}\n");
    t.write_csv(out_dir.join("fig8.csv")).ok();
}

/// Fig. 16: the four work-stealing configurations on multi-step FSM —
/// per-step per-core busy times. Expected ordering of balance quality:
/// Internal+External ≥ External ≥ Internal > Disabled, with External
/// paying communication.
pub fn fig16(scale: Scale, out_dir: &Path) {
    let g = datasets::patents_ml(scale);
    let support = match scale {
        Scale::Tiny => 25,
        Scale::Small => 100,
        Scale::Paper => 250,
    };
    let mut t = Table::new(
        "Fig 16 — Work stealing drilldown (FSM, 2 workers x 4 cores)",
        &[
            "config",
            "step",
            "task-times(s)",
            "imbalance-cv",
            "steals(int/ext)",
            "wall(s)",
        ],
    );
    for (cname, mode) in [
        ("1.disabled", WsMode::Disabled),
        ("2.internal", WsMode::InternalOnly),
        ("3.external", WsMode::ExternalOnly),
        ("4.int+ext", WsMode::Both),
    ] {
        let ctx = FractalContext::new(ClusterConfig::local(2, 4).with_ws(mode));
        let fg = ctx.fractal_graph(g.clone());
        let result = fractal_apps::fsm::fsm(&fg, support, 3);
        for (i, report) in result.reports.iter().enumerate() {
            for (si, step) in report.steps.iter().enumerate() {
                let times = step
                    .task_times()
                    .iter()
                    .map(|t| format!("{t:.2}"))
                    .collect::<Vec<_>>()
                    .join("/");
                let (int, ext) = step.steals();
                t.row(row![
                    cname,
                    format!("{i}.{si}"),
                    times,
                    format!("{:.3}", step.imbalance()),
                    format!("{int}/{ext}"),
                    secs(step.elapsed)
                ]);
            }
        }
    }
    t.print();
    t.write_csv(out_dir.join("fig16.csv")).ok();
}

/// Table 2: memory per worker — Fractal's flat from-scratch footprint vs
/// the BFS engine's stored state growing with depth.
pub fn table2(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "Table 2 — Intermediate state per worker (MiB)",
        &["app", "graph", "k", "arabesque-like", "fractal", "ratio"],
    );
    let cases: Vec<(&str, fractal_graph::Graph, Vec<usize>)> = vec![
        ("cliques", datasets::youtube_ml(scale), vec![3, 4, 5, 6]),
        ("motifs", datasets::mico_ml(scale), vec![3, 4]),
    ];
    for (app, g, ks) in cases {
        let ctx = FractalContext::new(default_cluster());
        let fg = ctx.fractal_graph(g.clone());
        for k in ks {
            let (frac_mem, arab_mem) = if app == "cliques" {
                let (_, report) = fractal_apps::cliques::count_with_report(&fg, k);
                let arab =
                    bfs_engine::cliques_bfs(&g, k, &BfsConfig::new(8).with_storage(Storage::Odag));
                (
                    report.peak_worker_state_bytes(),
                    arab.stats().peak_state_bytes,
                )
            } else {
                let (_, report) = fractal_apps::motifs::motifs_with_report(&fg, k, true);
                let arab = bfs_engine::motifs_bfs(
                    &g,
                    k,
                    &BfsConfig::new(8).with_storage(Storage::Odag),
                    true,
                );
                (
                    report.peak_worker_state_bytes(),
                    arab.stats().peak_state_bytes,
                )
            };
            // The BFS engine's store is global; per-worker = half on our
            // 2-worker reference cluster.
            let arab_per_worker = arab_mem / 2;
            let ratio = arab_per_worker as f64 / frac_mem.max(1) as f64;
            t.row(row![
                app,
                if app == "cliques" {
                    "youtube-ml"
                } else {
                    "mico-ml"
                },
                k,
                mib(arab_per_worker),
                mib(frac_mem),
                format!("{ratio:.1}x")
            ]);
        }
    }
    t.print();
    t.write_csv(out_dir.join("table2.csv")).ok();
}

/// §4.1 motivating example: bytes needed to store all vertex-induced
/// subgraphs (vertices only, no overhead), as the paper estimates for
/// Mico.
pub fn memest(scale: Scale, out_dir: &Path) {
    let g = datasets::mico_sl(scale);
    let ctx = FractalContext::new(default_cluster());
    let fg = ctx.fractal_graph(g.clone());
    let mut t = Table::new(
        "§4.1 — Memory to store all vertex-induced subgraphs of Mico-like",
        &["k", "subgraphs", "bytes = n*k*4", "human", "method"],
    );
    let mut counts = Vec::new();
    for k in 2..=4 {
        let (count, _) = timed(|| fractal_apps::motifs::total_subgraphs(&fg, k));
        counts.push(count);
        let bytes = count * k as u64 * 4;
        t.row(row![k, count, bytes, mib(bytes) + " MiB", "exact"]);
    }
    // k = 5 is estimated by the per-level growth factor — enumerating it
    // is exactly what the paper argues is infeasible.
    let growth = counts[2] as f64 / counts[1].max(1) as f64;
    let est5 = (counts[2] as f64 * growth) as u64;
    let bytes5 = est5 * 5 * 4;
    t.row(row![5, est5, bytes5, mib(bytes5) + " MiB", "estimated"]);
    t.print();
    t.write_csv(out_dir.join("memest.csv")).ok();
}

/// §6: work-stealing overhead — fraction of busy time spent in the steal
/// path (the paper measures ≈1%).
pub fn ws_overhead(scale: Scale, out_dir: &Path) {
    let mut t = Table::new(
        "§6 — Work stealing overhead (fraction of execution in steal path)",
        &["app", "graph", "overhead", "steals(int/ext)"],
    );
    let ctx = FractalContext::new(default_cluster());
    let runs: Vec<(&str, &str, fractal_core::ExecutionReport)> = vec![
        ("cliques k=4", "mico-sl", {
            let fg = ctx.fractal_graph(datasets::mico_sl(scale));
            fractal_apps::cliques::count_with_report(&fg, 4).1
        }),
        ("motifs k=3", "youtube-sl", {
            let fg = ctx.fractal_graph(datasets::youtube_sl(scale));
            fractal_apps::motifs::motifs_with_report(&fg, 3, false).1
        }),
        ("queries q3", "patents-sl", {
            let fg = ctx.fractal_graph(datasets::patents_sl(scale));
            fractal_apps::query::count_matches_with_report(&fg, &fractal_apps::query::diamond()).1
        }),
    ];
    for (app, gname, report) in runs {
        let overhead: f64 = report.steps.iter().map(|s| s.steal_overhead()).sum::<f64>()
            / report.steps.len().max(1) as f64;
        let (int, ext) = report.steals();
        t.row(row![
            app,
            gname,
            format!("{:.2}%", overhead * 100.0),
            format!("{int}/{ext}")
        ]);
    }
    t.print();
    t.write_csv(out_dir.join("ws-overhead.csv")).ok();
}
