//! One module per evaluation artifact; see DESIGN.md's per-experiment
//! index for the table/figure ↔ module mapping.

pub mod cost;
pub mod drilldown;
pub mod perf;
pub mod reduction;

use crate::datasets::Scale;
use std::path::Path;

/// All experiment ids, in the order `repro all` runs them.
pub const ALL: &[&str] = &[
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20a",
    "fig20b",
    "table2",
    "memest",
    "reduction-ec",
    "ws-overhead",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn run(id: &str, scale: Scale, out_dir: &Path) -> bool {
    match id {
        "fig8" => drilldown::fig8(scale, out_dir),
        "fig11" => perf::fig11(scale, out_dir),
        "fig12" => perf::fig12(scale, out_dir),
        "fig13" => perf::fig13(scale, out_dir),
        "fig15" => perf::fig15(scale, out_dir),
        "fig16" => drilldown::fig16(scale, out_dir),
        "fig17" => reduction::fig17(scale, out_dir),
        "fig18" => cost::fig18(scale, out_dir),
        "fig19" => cost::fig19(scale, out_dir),
        "fig20a" => perf::fig20a(scale, out_dir),
        "fig20b" => cost::fig20b(scale, out_dir),
        "table2" => drilldown::table2(scale, out_dir),
        "memest" => drilldown::memest(scale, out_dir),
        "reduction-ec" => reduction::reduction_ec(scale, out_dir),
        "ws-overhead" => drilldown::ws_overhead(scale, out_dir),
        _ => return false,
    }
    true
}

/// The default simulated cluster for comparative runs: 2 workers × 4
/// cores, full hierarchical work stealing.
pub fn default_cluster() -> fractal_runtime::ClusterConfig {
    fractal_runtime::ClusterConfig::local(2, 4)
}

/// A budget for baselines, scaled so failure modes (OOM/timeout) appear at
/// the paper's relative positions without stalling the harness.
pub fn baseline_budget(scale: Scale) -> fractal_baselines::Budget {
    use std::time::Duration;
    let (mb, secs) = match scale {
        Scale::Tiny => (96, 30),
        Scale::Small => (768, 120),
        Scale::Paper => (2048, 600),
    };
    fractal_baselines::Budget::new(mb * 1024 * 1024, Duration::from_secs(secs))
}
