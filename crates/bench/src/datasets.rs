//! The evaluation dataset registry (Table 1 stand-ins) at three scales.
//!
//! Each entry mirrors one of the paper's graphs in *shape* — degree skew,
//! relative density, label cardinality — scaled down so the full harness
//! completes in minutes (see DESIGN.md, Substitutions). `-SL` variants are
//! single-labeled, `-ML` multi-labeled, as in §5.

use fractal_graph::gen;
use fractal_graph::Graph;

/// Harness scale: controls dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI).
    Tiny,
    /// The default: minutes for the full harness.
    Small,
    /// Larger runs for more pronounced shapes.
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Paper => 10,
        }
    }
}

/// Mico-like co-authorship graph, single-labeled.
pub fn mico_sl(scale: Scale) -> Graph {
    gen::mico_like(400 * scale.factor(), 1, 0x41C0)
}

/// Mico-like, multi-labeled (29 labels, as the original).
pub fn mico_ml(scale: Scale) -> Graph {
    gen::mico_like(400 * scale.factor(), 29, 0x41C0)
}

/// Patents-like citation graph, single-labeled.
pub fn patents_sl(scale: Scale) -> Graph {
    gen::patents_like(800 * scale.factor(), 1, 0x9A7)
}

/// Patents-like, multi-labeled (37 labels).
pub fn patents_ml(scale: Scale) -> Graph {
    gen::patents_like(800 * scale.factor(), 37, 0x9A7)
}

/// Youtube-like related-videos graph, single-labeled.
pub fn youtube_sl(scale: Scale) -> Graph {
    gen::youtube_like(600 * scale.factor(), 1, 0x717)
}

/// Youtube-like, multi-labeled (80 labels).
pub fn youtube_ml(scale: Scale) -> Graph {
    gen::youtube_like(600 * scale.factor(), 80, 0x717)
}

/// Wikidata-like attributed knowledge graph (keywords on vertices/edges).
pub fn wikidata(scale: Scale) -> Graph {
    gen::wikidata_like(2500 * scale.factor(), 120 * scale.factor(), 0x3141)
}

/// Orkut-like dense friendship graph (Appendix C triangles).
pub fn orkut(scale: Scale) -> Graph {
    gen::orkut_like(300 * scale.factor(), 0x0DC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_tiny() {
        for g in [
            mico_sl(Scale::Tiny),
            mico_ml(Scale::Tiny),
            patents_sl(Scale::Tiny),
            patents_ml(Scale::Tiny),
            youtube_sl(Scale::Tiny),
            youtube_ml(Scale::Tiny),
            wikidata(Scale::Tiny),
            orkut(Scale::Tiny),
        ] {
            g.validate().unwrap();
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn scales_grow() {
        assert!(mico_sl(Scale::Small).num_vertices() > mico_sl(Scale::Tiny).num_vertices());
        assert!(wikidata(Scale::Small).num_edges() > wikidata(Scale::Tiny).num_edges());
    }

    #[test]
    fn label_cardinalities_differ() {
        assert_eq!(mico_sl(Scale::Tiny).num_vertex_labels(), 1);
        assert!(mico_ml(Scale::Tiny).num_vertex_labels() > 5);
    }
}
