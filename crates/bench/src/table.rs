//! Aligned-table printing and CSV output for the harness.

use std::io::Write;
use std::path::Path;

/// A results table: headers plus string rows.
#[derive(Debug, Default)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Convenience macro-free row builder from displayable values.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$(format!("{}", $v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(row!["a", 1]);
        t.row(row!["long-name", 1234]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(row![1, 2]);
        let dir = std::env::temp_dir().join("fractal_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
