//! A/B overhead check for the runtime flight recorder: the same motifs
//! job with tracing disabled (the default) and enabled. The recorder's
//! budget is ≤5% on the enabled side; the two benchmark ids print next
//! to each other so min/median are directly comparable, and the bench
//! asserts the ratio on medians as a coarse regression tripwire (with
//! generous slack, since shared CI machines are noisy).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractal_core::prelude::*;
use fractal_graph::gen;
use fractal_runtime::{ClusterConfig, TraceConfig};

const WORKERS: usize = 2;
const CORES: usize = 2;
const VERTICES: usize = 300;
const K: usize = 3;

fn run_motifs(trace: TraceConfig) -> u64 {
    let fc = FractalContext::new(ClusterConfig::local(WORKERS, CORES).with_trace(trace));
    let fg = fc.fractal_graph(gen::mico_like(VERTICES, 1, 7));
    fractal_apps::motifs::motifs(&fg, K).values().sum()
}

fn bench_flight_recorder_overhead(c: &mut Criterion) {
    // Sanity: both sides count the same motifs.
    let base = run_motifs(TraceConfig::default());
    assert_eq!(base, run_motifs(TraceConfig::enabled()));

    let mut g = c.benchmark_group("flight_recorder");
    g.sample_size(10);
    g.bench_function("motifs_k3/trace_off", |b| {
        b.iter(|| black_box(run_motifs(TraceConfig::default())))
    });
    g.bench_function("motifs_k3/trace_on", |b| {
        b.iter(|| black_box(run_motifs(TraceConfig::enabled())))
    });
    g.finish();

    let off = c.summaries[c.summaries.len() - 2].median().as_secs_f64();
    let on = c.summaries[c.summaries.len() - 1].median().as_secs_f64();
    let overhead = (on - off) / off * 100.0;
    println!("flight_recorder overhead: {overhead:+.2}% (target <= 5%)");
    // Tripwire, not the ≤5% acceptance bound itself: medians on loaded CI
    // runners jitter by more than the recorder costs, so only flag gross
    // regressions (e.g. a lock sneaking onto the hot path).
    assert!(
        overhead < 25.0,
        "flight recorder overhead {overhead:.2}% suggests a hot-path regression"
    );
}

criterion_group!(benches, bench_flight_recorder_overhead);
criterion_main!(benches);
