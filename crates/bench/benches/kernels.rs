//! A/B benchmark for the extension hot-path kernels (hybrid intersection +
//! candidate arenas) against faithful copies of the pre-kernel enumerators.
//!
//! The "legacy" enumerators below reproduce the previous implementations
//! exactly: merge-only intersection with per-level `Vec` candidate stacks
//! for KClist, and gather + sort + dedup neighbor unions for the generic
//! vertex-induced strategy. Both sides run end-to-end through the same
//! executor (`vfractoid_with`), so the measured delta is the kernel layer
//! itself. Counts are asserted bit-identical before timing, and a micro
//! A/B isolates the adaptive intersection against the old sorted merge.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractal_core::{FractalContext, FractalGraph};
use fractal_enum::canonical::canonical_vertex_extension;
use fractal_enum::kclist::CliqueDag;
use fractal_enum::{Subgraph, SubgraphEnumerator};
use fractal_graph::kernels::{intersect, merge_into, KernelCounters};
use fractal_graph::{gen, Graph, VertexId};
use fractal_runtime::ClusterConfig;
use std::sync::Arc;

const VERTICES: usize = 600;
const CLIQUE_K: usize = 4;
const MOTIF_K: usize = 3;

/// Pre-PR KClist enumerator: merge-only intersection, one owned `Vec` per
/// level with a spare-buffer pool.
struct LegacyKClistEnumerator {
    dag: Arc<CliqueDag>,
    cand_stack: Vec<Vec<u32>>,
    spare: Vec<Vec<u32>>,
}

impl LegacyKClistEnumerator {
    fn with_dag(dag: Arc<CliqueDag>) -> Self {
        LegacyKClistEnumerator {
            dag,
            cand_stack: Vec::new(),
            spare: Vec::new(),
        }
    }

    fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        out.clear();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

impl SubgraphEnumerator for LegacyKClistEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        if sg.num_vertices() == 0 {
            out.extend(0..g.num_vertices() as u64);
            return g.num_vertices() as u64;
        }
        let cands = self.cand_stack.last().expect("state out of sync");
        out.extend(cands.iter().map(|&v| v as u64));
        cands.len() as u64
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        let v = word as u32;
        let mut next = self.spare.pop().unwrap_or_default();
        match self.cand_stack.last() {
            None => {
                next.clear();
                next.extend_from_slice(self.dag.out(v));
            }
            Some(top) => Self::intersect_into(top, self.dag.out(v), &mut next),
        }
        self.cand_stack.push(next);
        sg.push_vertex_induced_scan(g, v);
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        let top = self.cand_stack.pop().expect("retract on empty state");
        self.spare.push(top);
        sg.pop_vertex_induced();
    }

    fn reset_state(&mut self, _g: &Graph) {
        while let Some(top) = self.cand_stack.pop() {
            self.spare.push(top);
        }
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(LegacyKClistEnumerator::with_dag(self.dag.clone()))
    }
}

/// Pre-PR vertex-induced enumerator: gather all prefix neighbors, then
/// sort + dedup the scratch buffer on every extension computation.
#[derive(Default)]
struct LegacyVertexInducedEnumerator {
    scratch: Vec<u32>,
}

impl SubgraphEnumerator for LegacyVertexInducedEnumerator {
    fn compute_extensions(&mut self, g: &Graph, sg: &Subgraph, out: &mut Vec<u64>) -> u64 {
        out.clear();
        if sg.num_vertices() == 0 {
            out.extend(0..g.num_vertices() as u64);
            return g.num_vertices() as u64;
        }
        self.scratch.clear();
        for &v in sg.vertices() {
            for &u in g.neighbors(VertexId(v)) {
                if !sg.has_vertex(u) {
                    self.scratch.push(u);
                }
            }
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let tests = self.scratch.len() as u64;
        for &u in &self.scratch {
            if canonical_vertex_extension(g, sg.vertices(), u) {
                out.push(u as u64);
            }
        }
        tests
    }

    fn extend(&mut self, g: &Graph, sg: &mut Subgraph, word: u64) {
        sg.push_vertex_induced_scan(g, word as u32);
    }

    fn retract(&mut self, _g: &Graph, sg: &mut Subgraph) {
        sg.pop_vertex_induced();
    }

    fn clone_boxed(&self) -> Box<dyn SubgraphEnumerator> {
        Box::new(LegacyVertexInducedEnumerator::default())
    }
}

fn make_fg() -> FractalGraph {
    let fc = FractalContext::new(ClusterConfig::local(1, 2));
    fc.fractal_graph(gen::mico_like(VERTICES, 1, 7))
}

/// Same graph bound to a pre-kernel-shaped engine (every level registered
/// stealable, terminal count leaves materialized) so the legacy side pays
/// the execution costs the old implementation actually paid.
fn make_fg_compat() -> FractalGraph {
    let fc = FractalContext::new(ClusterConfig::local(1, 2).with_engine_compat(true));
    fc.fractal_graph(gen::mico_like(VERTICES, 1, 7))
}

fn kclist_legacy(fg: &FractalGraph, k: usize) -> u64 {
    let dag = Arc::new(CliqueDag::build(fg.graph()));
    fg.vfractoid_with(move |_g| Box::new(LegacyKClistEnumerator::with_dag(dag.clone())))
        .expand(1)
        .explore(k)
        .count()
}

fn motifs_legacy(fg: &FractalGraph, k: usize) -> u64 {
    fg.vfractoid_with(|_g| Box::new(LegacyVertexInducedEnumerator::default()))
        .expand(k)
        .count()
}

fn speedup(c: &Criterion, label: &str) -> f64 {
    let legacy = c.summaries[c.summaries.len() - 2].median().as_secs_f64();
    let kernel = c.summaries[c.summaries.len() - 1].median().as_secs_f64();
    let ratio = legacy / kernel;
    println!("kernel speedup [{label}]: {ratio:.2}x (legacy {legacy:.4}s / kernels {kernel:.4}s)");
    ratio
}

fn bench_kernels_ab(c: &mut Criterion) {
    let fg = make_fg();
    let fg_legacy = make_fg_compat();

    // Counts must be bit-identical before any timing matters.
    let want_cliques = kclist_legacy(&fg_legacy, CLIQUE_K);
    assert_eq!(
        fractal_apps::cliques::count_kclist(&fg, CLIQUE_K),
        want_cliques
    );
    let want_motifs = motifs_legacy(&fg_legacy, MOTIF_K);
    assert_eq!(
        fractal_apps::motifs::total_subgraphs(&fg, MOTIF_K),
        want_motifs
    );

    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    g.bench_function("kclist_k4/legacy", |b| {
        b.iter(|| black_box(kclist_legacy(&fg_legacy, CLIQUE_K)))
    });
    g.bench_function("kclist_k4/kernels", |b| {
        b.iter(|| black_box(fractal_apps::cliques::count_kclist(&fg, CLIQUE_K)))
    });
    g.bench_function("motifs_k3/legacy", |b| {
        b.iter(|| black_box(motifs_legacy(&fg_legacy, MOTIF_K)))
    });
    g.bench_function("motifs_k3/kernels", |b| {
        b.iter(|| black_box(fractal_apps::motifs::total_subgraphs(&fg, MOTIF_K)))
    });
    g.finish();

    let motif_ratio = speedup(c, "motifs_k3");
    // Drop the motif summaries' offset: kclist pair sits 2 earlier.
    let legacy = c.summaries[c.summaries.len() - 4].median().as_secs_f64();
    let kernel = c.summaries[c.summaries.len() - 3].median().as_secs_f64();
    let clique_ratio = legacy / kernel;
    println!("kernel speedup [kclist_k4]: {clique_ratio:.2}x (legacy {legacy:.4}s / kernels {kernel:.4}s)");
    // Regression tripwire with slack for noisy shared runners; on a quiet
    // machine the ratios measure ~3.6x (motifs) and ~2.4x (kclist) — see
    // EXPERIMENTS.md.
    assert!(
        motif_ratio > 1.5 && clique_ratio > 1.2,
        "kernel paths regressed: motifs {motif_ratio:.2}x, kclist {clique_ratio:.2}x"
    );
}

fn bench_intersect_micro(c: &mut Criterion) {
    // Skewed adjacency: a hub list vs many short lists — the shape the
    // galloping path targets. Same merge-only loop the old KClist used.
    let hub: Vec<u32> = (0..20_000).map(|i| i * 3).collect();
    let smalls: Vec<Vec<u32>> = (0..64u32)
        .map(|s| {
            (0..200)
                .map(|i| (i * 97 + s * 13) % 60_000)
                .collect::<Vec<u32>>()
        })
        .map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let mut g = c.benchmark_group("intersect_micro");
    g.sample_size(20);
    g.bench_function("skewed/merge_only", |b| {
        let mut out = Vec::new();
        let mut cnt = KernelCounters::default();
        b.iter(|| {
            let mut total = 0usize;
            for s in &smalls {
                merge_into(s, &hub, &mut out, &mut cnt);
                total += out.len();
            }
            black_box(total)
        })
    });
    g.bench_function("skewed/adaptive", |b| {
        let mut out = Vec::new();
        let mut cnt = KernelCounters::default();
        b.iter(|| {
            let mut total = 0usize;
            for s in &smalls {
                intersect(s, &hub, &mut out, &mut cnt);
                total += out.len();
            }
            black_box(total)
        })
    });
    g.finish();
    speedup(c, "intersect_micro/skewed");
}

criterion_group!(benches, bench_kernels_ab, bench_intersect_micro);
criterion_main!(benches);
