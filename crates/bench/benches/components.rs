//! Criterion microbenchmarks for the performance-critical components:
//! canonicality checks, pattern canonicalization, extension queues,
//! subgraph push/pop and neighborhood intersection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractal_enum::canonical::canonical_vertex_extension;
use fractal_enum::{ExtensionQueue, Subgraph};
use fractal_graph::{gen, VertexId};
use fractal_pattern::canon::{canonical_form, CodeCache};
use fractal_pattern::Pattern;

fn bench_canonical_check(c: &mut Criterion) {
    let g = gen::mico_like(2000, 1, 7);
    let prefix: Vec<u32> = {
        // A real connected prefix: greedily walk neighbors.
        let mut p = vec![0u32];
        while p.len() < 4 {
            let last = *p.last().unwrap();
            let next = g
                .neighbors(VertexId(last))
                .iter()
                .copied()
                .find(|u| !p.contains(u))
                .unwrap();
            p.push(next);
        }
        p
    };
    c.bench_function("canonical_vertex_extension/k4", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for u in 0..64u32 {
                acc += canonical_vertex_extension(&g, black_box(&prefix), u) as u32;
            }
            acc
        })
    });
}

fn bench_pattern_canon(c: &mut Criterion) {
    let patterns: Vec<Pattern> = vec![
        Pattern::clique(4),
        Pattern::cycle(5),
        Pattern::unlabeled(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]),
    ];
    c.bench_function("canonical_form/5v", |b| {
        b.iter(|| {
            for p in &patterns {
                black_box(canonical_form(p));
            }
        })
    });
    c.bench_function("canonical_form_cached/5v", |b| {
        let mut cache = CodeCache::new();
        b.iter(|| {
            for p in &patterns {
                black_box(cache.canonical_form(p));
            }
        })
    });
}

fn bench_extension_queue(c: &mut Criterion) {
    c.bench_function("extension_queue/claim_1k", |b| {
        b.iter_with_setup(
            || ExtensionQueue::new((0..1024).collect()),
            |q| {
                let mut acc = 0u64;
                while let Some(w) = q.claim() {
                    acc += w;
                }
                acc
            },
        )
    });
}

fn bench_subgraph_push_pop(c: &mut Criterion) {
    let g = gen::complete(16);
    c.bench_function("subgraph/push_pop_vertex_induced", |b| {
        let mut sg = Subgraph::new(&g);
        b.iter(|| {
            for v in 0..8u64 {
                sg.push_vertex_induced(&g, v as u32);
            }
            for _ in 0..8 {
                sg.pop_vertex_induced();
            }
        })
    });
}

fn bench_intersection(c: &mut Criterion) {
    let g = gen::orkut_like(2000, 3);
    let hub = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(VertexId(v)))
        .unwrap();
    let other = g.neighbors(VertexId(hub))[0];
    c.bench_function("graph/intersect_neighbors_hub", |b| {
        let mut buf = Vec::new();
        b.iter(|| g.intersect_neighbors(VertexId(hub), VertexId(other), black_box(&mut buf)))
    });
}

criterion_group!(
    benches,
    bench_canonical_check,
    bench_pattern_canon,
    bench_extension_queue,
    bench_subgraph_push_pop,
    bench_intersection
);
criterion_main!(benches);
