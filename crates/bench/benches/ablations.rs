//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * work-stealing mode (off / internal / external / both),
//! * simulated network latency for external steals,
//! * BFS baseline storage flavour (flat vs ODAG-like),
//! * generic vs KClist clique enumeration,
//! * sampling keep-probability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fractal_baselines::bfs_engine::{self, BfsConfig, Storage};
use fractal_core::FractalContext;
use fractal_enum::{SamplingEnumerator, VertexInducedEnumerator};
use fractal_runtime::{ClusterConfig, WsMode};

fn bench_ws_modes(c: &mut Criterion) {
    let g = fractal_graph::gen::barabasi_albert(600, 6, 1, 1, 3);
    let mut group = c.benchmark_group("ablation_ws_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("disabled", WsMode::Disabled),
        ("internal", WsMode::InternalOnly),
        ("external", WsMode::ExternalOnly),
        ("both", WsMode::Both),
    ] {
        group.bench_function(name, |b| {
            let fg = FractalContext::new(ClusterConfig::local(2, 2).with_ws(mode))
                .fractal_graph(g.clone());
            b.iter(|| fractal_apps::cliques::count(&fg, 4))
        });
    }
    group.finish();
}

fn bench_latency(c: &mut Criterion) {
    let g = fractal_graph::gen::barabasi_albert(500, 6, 1, 1, 5);
    let mut group = c.benchmark_group("ablation_net_latency");
    group.sample_size(10);
    for us in [0u64, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(us), &us, |b, &us| {
            let cfg = ClusterConfig::local(2, 2)
                .with_ws(WsMode::ExternalOnly)
                .with_latency_us(us);
            let fg = FractalContext::new(cfg).fractal_graph(g.clone());
            b.iter(|| fractal_apps::cliques::count(&fg, 4))
        });
    }
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let g = fractal_graph::gen::mico_like(300, 1, 7);
    let mut group = c.benchmark_group("ablation_bfs_storage");
    group.sample_size(10);
    for (name, storage) in [("flat", Storage::Flat), ("odag", Storage::Odag)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                bfs_engine::motifs_bfs(&g, 3, &BfsConfig::new(2).with_storage(storage), false)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_clique_enumerators(c: &mut Criterion) {
    let g = fractal_graph::gen::youtube_like(500, 1, 9);
    let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g);
    let mut group = c.benchmark_group("ablation_clique_enumerator");
    group.sample_size(10);
    group.bench_function("generic_filtered", |b| {
        b.iter(|| fractal_apps::cliques::count(&fg, 4))
    });
    group.bench_function("kclist", |b| {
        b.iter(|| fractal_apps::cliques::count_kclist(&fg, 4))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let g = fractal_graph::gen::youtube_like(600, 1, 11);
    let fg = FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g);
    let mut group = c.benchmark_group("ablation_sampling_p");
    group.sample_size(10);
    for p in [1.0f64, 0.5, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                fg.vfractoid_with(move |_| {
                    Box::new(SamplingEnumerator::new(
                        Box::new(VertexInducedEnumerator::new()),
                        p,
                        7,
                    ))
                })
                .expand(4)
                .count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ws_modes,
    bench_latency,
    bench_storage,
    bench_clique_enumerators,
    bench_sampling
);
criterion_main!(benches);
