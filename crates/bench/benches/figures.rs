//! Criterion benches mirroring the paper's figures at micro scale: one
//! bench per evaluation kernel (motifs, cliques generic + KClist, FSM,
//! querying, keyword search, triangles) plus Fractal-vs-baseline pairs.
//! The full-size reproduction lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fractal_baselines::bfs_engine::{self, BfsConfig};
use fractal_baselines::single_thread;
use fractal_core::FractalContext;
use fractal_runtime::ClusterConfig;

fn ctx() -> FractalContext {
    FractalContext::new(ClusterConfig::local(1, 4))
}

/// Fig. 11 shape: motifs, Fractal vs the BFS engine.
fn bench_motifs(c: &mut Criterion) {
    let g = fractal_graph::gen::mico_like(400, 1, 7);
    let fg = ctx().fractal_graph(g.clone());
    let mut group = c.benchmark_group("fig11_motifs_k3");
    group.sample_size(10);
    group.bench_function("fractal", |b| {
        b.iter(|| fractal_apps::motifs::motifs(&fg, 3))
    });
    group.bench_function("arabesque_like", |b| {
        b.iter(|| bfs_engine::motifs_bfs(&g, 3, &BfsConfig::new(4), false).unwrap())
    });
    group.finish();
}

/// Fig. 12/20b shape: cliques, generic vs KClist vs single-thread.
fn bench_cliques(c: &mut Criterion) {
    let g = fractal_graph::gen::youtube_like(500, 1, 9);
    let fg = ctx().fractal_graph(g.clone());
    let mut group = c.benchmark_group("fig12_cliques_k4");
    group.sample_size(10);
    group.bench_function("fractal", |b| {
        b.iter(|| fractal_apps::cliques::count(&fg, 4))
    });
    group.bench_function("fractal_kclist", |b| {
        b.iter(|| fractal_apps::cliques::count_kclist(&fg, 4))
    });
    group.bench_function("kclist_single_thread", |b| {
        b.iter(|| single_thread::kclist_cliques(&g, 4))
    });
    group.finish();
}

/// Fig. 13 shape: FSM across supports.
fn bench_fsm(c: &mut Criterion) {
    let g = fractal_graph::gen::patents_like(300, 5, 11);
    let fg = ctx().fractal_graph(g.clone());
    let mut group = c.benchmark_group("fig13_fsm");
    group.sample_size(10);
    for support in [20u64, 40] {
        group.bench_with_input(BenchmarkId::new("fractal", support), &support, |b, &s| {
            b.iter(|| fractal_apps::fsm::fsm(&fg, s, 2))
        });
    }
    group.finish();
}

/// Fig. 15 shape: one easy and one hard query.
fn bench_query(c: &mut Criterion) {
    let g = fractal_graph::gen::patents_like(500, 1, 13);
    let fg = ctx().fractal_graph(g.clone());
    let queries = fractal_apps::query::evaluation_queries();
    let mut group = c.benchmark_group("fig15_query");
    group.sample_size(10);
    for (name, q) in queries
        .into_iter()
        .filter(|(n, _)| *n == "q1" || *n == "q3")
    {
        group.bench_function(name, |b| {
            b.iter(|| fractal_apps::query::count_matches(&fg, &q))
        });
    }
    group.finish();
}

/// Fig. 17 shape: keyword search with and without graph reduction.
fn bench_keyword(c: &mut Criterion) {
    let g = fractal_graph::gen::wikidata_like(3000, 200, 15);
    let fg = ctx().fractal_graph(g);
    let words = ["kw0", "kw5"];
    let mut group = c.benchmark_group("fig17_keyword");
    group.sample_size(10);
    group.bench_function("no_reduction", |b| {
        b.iter(|| fractal_apps::keyword::keyword_search_str(&fg, &words, false).unwrap())
    });
    group.bench_function("with_reduction", |b| {
        b.iter(|| fractal_apps::keyword::keyword_search_str(&fg, &words, true).unwrap())
    });
    group.finish();
}

/// Fig. 20a shape: triangles across engines.
fn bench_triangles(c: &mut Criterion) {
    let g = fractal_graph::gen::orkut_like(400, 17);
    let fg = ctx().fractal_graph(g.clone());
    let mut group = c.benchmark_group("fig20a_triangles");
    group.sample_size(10);
    group.bench_function("fractal", |b| {
        b.iter(|| fractal_apps::cliques::triangles(&fg))
    });
    group.bench_function("node_iterator", |b| {
        b.iter(|| single_thread::node_iterator_triangles(&g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_motifs,
    bench_cliques,
    bench_fsm,
    bench_query,
    bench_keyword,
    bench_triangles
);
criterion_main!(benches);
