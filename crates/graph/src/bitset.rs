//! A plain fixed-capacity bitset over `u64` words.
//!
//! Used for O(1) membership tests in the enumeration hot path (subgraph
//! membership) and for the vertex/edge masks of graph reduction.

/// Fixed-capacity bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// All-zeros bitset with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitset with capacity for `len` bits.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// Bit capacity.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Tests bit `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Clears all bits (keeps capacity).
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Resident bytes of the word array.
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 3);
        b.clear_all();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn full_respects_tail() {
        let b = Bitset::full(70);
        assert_eq!(b.count(), 70);
        assert!(b.get(69));
        let b64 = Bitset::full(64);
        assert_eq!(b64.count(), 64);
    }

    #[test]
    fn union_and_iter() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        a.set(1);
        a.set(70);
        b.set(2);
        b.set(70);
        a.union_with(&b);
        let ones: Vec<usize> = a.iter_ones().collect();
        assert_eq!(ones, vec![1, 2, 70]);
    }
}
