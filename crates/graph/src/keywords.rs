//! Keyword (attribute) support for attributed graphs.
//!
//! The keyword-search workload (§2.2, Listing 4) operates on graphs whose
//! vertices and edges carry *sets* of keywords — the paper's label map
//! `f_L : V(G) ∪ E(G) → P(L(G))`. Keywords are interned into dense
//! [`KeywordId`]s through a [`KeywordTable`]; per-element sets are stored in
//! a flattened CSR-like [`KeywordSets`] with each set sorted for O(log s)
//! membership tests.

use crate::KeywordId;
use std::collections::HashMap;

/// Bidirectional dictionary interning keyword strings to dense ids.
#[derive(Debug, Clone, Default)]
pub struct KeywordTable {
    by_name: HashMap<String, KeywordId>,
    names: Vec<String>,
}

impl KeywordTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> KeywordId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = KeywordId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned keyword.
    pub fn get(&self, name: &str) -> Option<KeywordId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`.
    pub fn name(&self, id: KeywordId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct keywords.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Flattened storage of one sorted keyword set per element (vertex or edge).
#[derive(Debug, Clone)]
pub struct KeywordSets {
    offsets: Vec<u32>,
    flat: Vec<KeywordId>,
}

impl KeywordSets {
    /// Builds from per-element sets; each inner set is sorted + deduped.
    pub fn from_sets(mut sets: Vec<Vec<KeywordId>>) -> Self {
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        let mut flat = Vec::new();
        offsets.push(0u32);
        for set in &mut sets {
            set.sort_unstable();
            set.dedup();
            flat.extend_from_slice(set);
            debug_assert!(flat.len() <= u32::MAX as usize);
            offsets.push(flat.len() as u32);
        }
        KeywordSets { offsets, flat }
    }

    /// The sorted keyword set of element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[KeywordId] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether element `i` carries keyword `k`.
    #[inline]
    pub fn contains(&self, i: usize, k: KeywordId) -> bool {
        self.get(i).binary_search(&k).is_ok()
    }

    /// Bytes resident in the flattened arrays.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.flat.len() * 4
    }
}

/// Inverted index: keyword → sorted list of element ids (edges, typically)
/// that carry it. This is the index the keyword-search application of
/// Listing 4 takes as input.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<u32>>,
}

impl InvertedIndex {
    /// Builds an inverted index over `num_keywords` keywords from the given
    /// per-element keyword sets.
    pub fn build(num_keywords: usize, sets: &KeywordSets) -> Self {
        let mut postings = vec![Vec::new(); num_keywords];
        for i in 0..sets.len() {
            for &k in sets.get(i) {
                postings[k.index()].push(i as u32);
            }
        }
        InvertedIndex { postings }
    }

    /// Sorted element ids carrying keyword `k`.
    #[inline]
    pub fn postings(&self, k: KeywordId) -> &[u32] {
        &self.postings[k.index()]
    }

    /// Whether element `doc` carries keyword `k` (the Listing 4
    /// `containsDoc` check).
    #[inline]
    pub fn contains_doc(&self, k: KeywordId, doc: u32) -> bool {
        self.postings(k).binary_search(&doc).is_ok()
    }

    /// Number of keywords indexed.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut t = KeywordTable::new();
        let a = t.intern("paris");
        let b = t.intern("revolution");
        assert_eq!(t.intern("paris"), a);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "paris");
        assert_eq!(t.get("revolution"), Some(b));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sets_sorted_and_deduped() {
        let sets = KeywordSets::from_sets(vec![
            vec![KeywordId(3), KeywordId(1), KeywordId(3)],
            vec![],
            vec![KeywordId(0)],
        ]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.get(0), &[KeywordId(1), KeywordId(3)]);
        assert!(sets.get(1).is_empty());
        assert!(sets.contains(0, KeywordId(3)));
        assert!(!sets.contains(0, KeywordId(0)));
        assert!(sets.contains(2, KeywordId(0)));
    }

    #[test]
    fn inverted_index_postings() {
        let sets = KeywordSets::from_sets(vec![
            vec![KeywordId(0), KeywordId(2)],
            vec![KeywordId(2)],
            vec![KeywordId(1)],
        ]);
        let idx = InvertedIndex::build(3, &sets);
        assert_eq!(idx.postings(KeywordId(2)), &[0, 1]);
        assert_eq!(idx.postings(KeywordId(1)), &[2]);
        assert!(idx.contains_doc(KeywordId(0), 0));
        assert!(!idx.contains_doc(KeywordId(0), 1));
        assert_eq!(idx.num_keywords(), 3);
    }
}
