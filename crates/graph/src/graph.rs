//! The immutable CSR graph used by every other crate in the workspace.

use crate::keywords::{KeywordSets, KeywordTable};
use crate::{EdgeId, KeywordId, Label, VertexId};

/// A resolved edge: its id, endpoints and label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Edge identifier.
    pub id: EdgeId,
    /// Smaller endpoint (edges are stored with `src < dst`).
    pub src: VertexId,
    /// Larger endpoint.
    pub dst: VertexId,
    /// Primary edge label.
    pub label: Label,
}

impl EdgeRef {
    /// The endpoint of this edge that is not `v`.
    ///
    /// Panics in debug builds if `v` is not an endpoint.
    #[inline]
    pub fn other(&self, v: VertexId) -> VertexId {
        debug_assert!(v == self.src || v == self.dst);
        if v == self.src {
            self.dst
        } else {
            self.src
        }
    }
}

/// An immutable, undirected, labeled graph in CSR form (paper Definition 1).
///
/// Construction goes through [`crate::GraphBuilder`], the loaders in
/// [`crate::io`] or the generators in [`crate::gen`]. Neighborhoods are
/// sorted by vertex id, which the enumeration layer relies on for
/// merge-intersections and binary-search edge lookups.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) offsets: Vec<u32>,
    pub(crate) nbr_vertices: Vec<u32>,
    pub(crate) nbr_edges: Vec<u32>,
    pub(crate) edge_src: Vec<u32>,
    pub(crate) edge_dst: Vec<u32>,
    pub(crate) vertex_labels: Vec<u32>,
    pub(crate) edge_labels: Vec<u32>,
    pub(crate) vertex_keywords: Option<KeywordSets>,
    pub(crate) edge_keywords: Option<KeywordSets>,
    pub(crate) keyword_table: Option<KeywordTable>,
    pub(crate) num_vertex_labels: u32,
    pub(crate) num_edge_labels: u32,
}

impl Graph {
    /// Number of vertices `|V(G)|`.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of undirected edges `|E(G)|`.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.edge_labels.len()
    }

    /// Number of distinct vertex labels (`max + 1`, labels are dense-ish).
    #[inline]
    pub fn num_vertex_labels(&self) -> u32 {
        self.num_vertex_labels
    }

    /// Number of distinct edge labels.
    #[inline]
    pub fn num_edge_labels(&self) -> u32 {
        self.num_edge_labels
    }

    /// Degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId::from_index(v)))
            .max()
            .unwrap_or(0)
    }

    /// Graph density `2|E| / (|V| (|V|-1))`.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices() as f64;
        if n < 2.0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / (n * (n - 1.0))
    }

    /// Sorted neighbor vertex ids of `v` as a raw `u32` slice.
    #[inline(always)]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        &self.nbr_vertices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Edge ids incident to `v`, parallel to [`Graph::neighbors`].
    #[inline(always)]
    pub fn incident_edges(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        &self.nbr_edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether `u` and `v` are adjacent (binary search over the smaller
    /// neighborhood).
    #[inline]
    pub fn are_adjacent(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The edge connecting `u` and `v`, if any.
    #[inline]
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(a);
        match nbrs.binary_search(&b.raw()) {
            Ok(pos) => Some(EdgeId(self.incident_edges(a)[pos])),
            Err(_) => None,
        }
    }

    /// Endpoints of edge `e`, with `src < dst`.
    #[inline(always)]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        (
            VertexId(self.edge_src[e.index()]),
            VertexId(self.edge_dst[e.index()]),
        )
    }

    /// Fully resolved view of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        EdgeRef {
            id: e,
            src: VertexId(self.edge_src[e.index()]),
            dst: VertexId(self.edge_dst[e.index()]),
            label: Label(self.edge_labels[e.index()]),
        }
    }

    /// Primary label of vertex `v`.
    #[inline(always)]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        Label(self.vertex_labels[v.index()])
    }

    /// Primary label of edge `e`.
    #[inline(always)]
    pub fn edge_label(&self, e: EdgeId) -> Label {
        Label(self.edge_labels[e.index()])
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Intersects the sorted neighborhoods of `u` and `v` into `out`
    /// (cleared first) through the adaptive kernel layer
    /// ([`crate::kernels::intersect`]). Returns the intersection size.
    ///
    /// This is the workhorse of clique kernels (node-iterator triangles,
    /// KClist DAG construction); it allocates nothing when `out` has
    /// capacity.
    pub fn intersect_neighbors(&self, u: VertexId, v: VertexId, out: &mut Vec<u32>) -> usize {
        let mut c = crate::kernels::KernelCounters::default();
        crate::kernels::intersect(self.neighbors(u), self.neighbors(v), out, &mut c);
        out.len()
    }

    /// Keyword set of vertex `v` (empty slice when the graph carries no
    /// keywords).
    #[inline]
    pub fn vertex_keywords(&self, v: VertexId) -> &[KeywordId] {
        match &self.vertex_keywords {
            Some(ks) => ks.get(v.index()),
            None => &[],
        }
    }

    /// Keyword set of edge `e` (empty slice when the graph carries no
    /// keywords).
    #[inline]
    pub fn edge_keywords(&self, e: EdgeId) -> &[KeywordId] {
        match &self.edge_keywords {
            Some(ks) => ks.get(e.index()),
            None => &[],
        }
    }

    /// The keyword dictionary, when this graph is attributed.
    #[inline]
    pub fn keyword_table(&self) -> Option<&KeywordTable> {
        self.keyword_table.as_ref()
    }

    /// Whether edge `e` carries keyword `k`.
    #[inline]
    pub fn edge_has_keyword(&self, e: EdgeId, k: KeywordId) -> bool {
        self.edge_keywords(e).binary_search(&k).is_ok()
    }

    /// Estimated resident size of the CSR structure in bytes (used by the
    /// memory-accounting experiments).
    pub fn resident_bytes(&self) -> usize {
        let base = self.offsets.len() * 4
            + self.nbr_vertices.len() * 4
            + self.nbr_edges.len() * 4
            + self.edge_src.len() * 4
            + self.edge_dst.len() * 4
            + self.vertex_labels.len() * 4
            + self.edge_labels.len() * 4;
        let kw = self
            .vertex_keywords
            .as_ref()
            .map_or(0, |k| k.resident_bytes())
            + self
                .edge_keywords
                .as_ref()
                .map_or(0, |k| k.resident_bytes());
        base + kw
    }

    /// Internal consistency checks; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let m = self.num_edges();
        if self.offsets.len() != n + 1 {
            return Err("offsets length mismatch".into());
        }
        if self.nbr_vertices.len() != 2 * m || self.nbr_edges.len() != 2 * m {
            return Err("csr arrays must have 2|E| entries".into());
        }
        for v in 0..n {
            let nbrs = self.neighbors(VertexId::from_index(v));
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("neighborhood of {v} not strictly sorted"));
            }
            for (pos, &u) in nbrs.iter().enumerate() {
                if u as usize >= n {
                    return Err(format!("neighbor {u} out of range"));
                }
                if u as usize == v {
                    return Err(format!("self-loop at {v}"));
                }
                let e = EdgeId(self.incident_edges(VertexId::from_index(v))[pos]);
                let (a, b) = self.edge_endpoints(e);
                if !(a.index() == v || b.index() == v) {
                    return Err(format!("edge {e} does not touch vertex {v}"));
                }
            }
        }
        for e in 0..m {
            if self.edge_src[e] >= self.edge_dst[e] {
                return Err(format!("edge {e} endpoints not ordered"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;
    use crate::{EdgeId, Label, VertexId};

    /// A 5-vertex house graph: square 0-1-2-3 plus roof vertex 4 on 2,3,
    /// and a diagonal 0-2.
    fn house() -> crate::Graph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(Label(i % 2));
        }
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (2, 4), (3, 4)] {
            b.add_edge(VertexId(u), VertexId(v), Label(0)).unwrap();
        }
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = house();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.degree(VertexId(2)), 4);
        assert_eq!(g.neighbors(VertexId(2)), &[0, 1, 3, 4]);
        assert_eq!(g.max_degree(), 4);
        assert!(g.density() > 0.0);
    }

    #[test]
    fn edge_lookup_both_directions() {
        let g = house();
        let e = g.edge_between(VertexId(3), VertexId(2)).unwrap();
        assert_eq!(g.edge_between(VertexId(2), VertexId(3)), Some(e));
        let (s, d) = g.edge_endpoints(e);
        assert_eq!((s, d), (VertexId(2), VertexId(3)));
        assert_eq!(g.edge_between(VertexId(1), VertexId(4)), None);
        assert!(g.are_adjacent(VertexId(0), VertexId(2)));
        assert!(!g.are_adjacent(VertexId(1), VertexId(3)));
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let g = house();
        let e = g.edge(g.edge_between(VertexId(0), VertexId(2)).unwrap());
        assert_eq!(e.other(VertexId(0)), VertexId(2));
        assert_eq!(e.other(VertexId(2)), VertexId(0));
    }

    #[test]
    fn neighborhood_intersection() {
        let g = house();
        let mut buf = Vec::new();
        // N(0) = {1,2,3}, N(2) = {0,1,3,4} -> {1,3}
        assert_eq!(g.intersect_neighbors(VertexId(0), VertexId(2), &mut buf), 2);
        assert_eq!(buf, vec![1, 3]);
        // Symmetric.
        assert_eq!(g.intersect_neighbors(VertexId(2), VertexId(0), &mut buf), 2);
        assert_eq!(buf, vec![1, 3]);
    }

    #[test]
    fn labels() {
        let g = house();
        assert_eq!(g.vertex_label(VertexId(1)), Label(1));
        assert_eq!(g.edge_label(EdgeId(0)), Label(0));
        assert_eq!(g.num_vertex_labels(), 2);
    }

    #[test]
    fn no_keywords_by_default() {
        let g = house();
        assert!(g.vertex_keywords(VertexId(0)).is_empty());
        assert!(g.edge_keywords(EdgeId(0)).is_empty());
        assert!(g.keyword_table().is_none());
    }

    #[test]
    fn resident_bytes_scale_with_size() {
        let g = house();
        assert!(g.resident_bytes() >= (g.num_vertices() + 4 * g.num_edges()) * 4);
    }
}
