//! Strongly-typed identifiers for graph elements.
//!
//! All ids are thin `u32` newtypes: dense, `Copy`, and cheap to pack into the
//! flat arrays the enumeration hot path works on. The `raw`/`index` accessors
//! keep conversions explicit at API boundaries while the hot loops operate on
//! `u32` slices directly.

/// Identifier of a vertex in a [`crate::Graph`]. Dense in `0..num_vertices`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

/// Identifier of an undirected edge in a [`crate::Graph`]. Dense in
/// `0..num_edges`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

/// Primary label of a vertex or edge (the paper's `L(G)` when each element
/// carries a single label; keyword sets extend this to the power-set map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

/// Interned keyword identifier, resolved through a
/// [`crate::keywords::KeywordTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeywordId(pub u32);

macro_rules! id_impls {
    ($t:ident) => {
        impl $t {
            /// The raw `u32` value.
            #[inline(always)]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The value as a `usize` array index.
            #[inline(always)]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the id from a `usize` index (debug-asserted to fit).
            #[inline(always)]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $t(i as u32)
            }
        }

        impl From<u32> for $t {
            #[inline(always)]
            fn from(v: u32) -> Self {
                $t(v)
            }
        }

        impl std::fmt::Display for $t {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_impls!(VertexId);
id_impls!(EdgeId);
id_impls!(Label);
id_impls!(KeywordId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = VertexId::from_index(3);
        let b = VertexId(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(b.raw(), 7);
        assert_eq!(VertexId::from(9).to_string(), "9");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Purely a compile-time property; keep a runtime witness for size.
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<Label>>(), 8);
    }
}
