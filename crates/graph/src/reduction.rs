//! Graph reduction (§4.3): materialize a reduced view of the input graph.
//!
//! Fractal lets the analyst (or the system, transparently) specify a reduced
//! graph `G_i` between fractal steps via vertex/edge filters — Fig. 10's
//! `vfilter` (R1) and `efilter` (R2) — or from the set of elements that
//! participated in the previous step's subgraphs (Equation 1). The reduced
//! graph is a fresh compact CSR with dense ids plus maps back to the
//! original ids so results are always reported in original-graph terms.

use crate::bitset::Bitset;
use crate::keywords::KeywordSets;
use crate::{EdgeId, Graph, VertexId};

/// A mask of vertices to keep.
pub type VertexMask = Bitset;
/// A mask of edges to keep.
pub type EdgeMask = Bitset;

/// A materialized reduced graph together with the id maps back to its
/// parent graph.
#[derive(Debug, Clone)]
pub struct ReducedGraph {
    /// The compact reduced graph (dense ids `0..n'`, `0..m'`).
    pub graph: Graph,
    /// `orig_vertices[v']` is the parent id of reduced vertex `v'`.
    pub orig_vertices: Vec<u32>,
    /// `orig_edges[e']` is the parent id of reduced edge `e'`.
    pub orig_edges: Vec<u32>,
}

impl ReducedGraph {
    /// Maps a reduced vertex id back to the parent graph.
    #[inline]
    pub fn to_orig_vertex(&self, v: VertexId) -> VertexId {
        VertexId(self.orig_vertices[v.index()])
    }

    /// Maps a reduced edge id back to the parent graph.
    #[inline]
    pub fn to_orig_edge(&self, e: EdgeId) -> EdgeId {
        EdgeId(self.orig_edges[e.index()])
    }

    /// Fraction of parent vertices removed, in `[0, 1]`.
    pub fn vertex_reduction(&self, parent: &Graph) -> f64 {
        if parent.num_vertices() == 0 {
            return 0.0;
        }
        1.0 - self.graph.num_vertices() as f64 / parent.num_vertices() as f64
    }

    /// Fraction of parent edges removed, in `[0, 1]`.
    pub fn edge_reduction(&self, parent: &Graph) -> f64 {
        if parent.num_edges() == 0 {
            return 0.0;
        }
        1.0 - self.graph.num_edges() as f64 / parent.num_edges() as f64
    }
}

impl Graph {
    /// Materializes the subgraph induced by `vmask` and `emask`: an edge
    /// survives iff its mask bit is set **and** both endpoints survive.
    /// Labels and keyword sets are carried over.
    pub fn reduce(&self, vmask: &VertexMask, emask: &EdgeMask) -> ReducedGraph {
        assert_eq!(
            vmask.len(),
            self.num_vertices(),
            "vertex mask size mismatch"
        );
        assert_eq!(emask.len(), self.num_edges(), "edge mask size mismatch");

        let mut new_id = vec![u32::MAX; self.num_vertices()];
        let mut orig_vertices = Vec::with_capacity(vmask.count());
        for v in vmask.iter_ones() {
            new_id[v] = orig_vertices.len() as u32;
            orig_vertices.push(v as u32);
        }

        let mut kept_edges: Vec<u32> = Vec::new();
        for e in emask.iter_ones() {
            let (s, d) = (self.edge_src[e] as usize, self.edge_dst[e] as usize);
            if new_id[s] != u32::MAX && new_id[d] != u32::MAX {
                kept_edges.push(e as u32);
            }
        }

        let n = orig_vertices.len();
        let m = kept_edges.len();
        // Dense edge renumbering: `edge_new[old] = new` for kept edges.
        let mut edge_new = vec![u32::MAX; self.num_edges()];
        let mut edge_src = vec![0u32; m];
        let mut edge_dst = vec![0u32; m];
        let mut edge_labels = vec![0u32; m];
        for (ne, &oe) in kept_edges.iter().enumerate() {
            edge_new[oe as usize] = ne as u32;
            let s = new_id[self.edge_src[oe as usize] as usize];
            let d = new_id[self.edge_dst[oe as usize] as usize];
            edge_src[ne] = s.min(d);
            edge_dst[ne] = s.max(d);
            edge_labels[ne] = self.edge_labels[oe as usize];
        }
        // Both renumberings above are monotone in the original ids, so
        // streaming each kept vertex's already-sorted CSR adjacency through
        // the map-probe kernel yields sorted reduced neighborhoods directly
        // — no per-neighborhood permutation sort needed.
        let mut kc = crate::kernels::KernelCounters::default();
        let mut offsets = vec![0u32; n + 1];
        let mut nbr_vertices: Vec<u32> = Vec::with_capacity(2 * m);
        let mut nbr_edges: Vec<u32> = Vec::with_capacity(2 * m);
        for (nv, &ov) in orig_vertices.iter().enumerate() {
            let (lo, hi) = (
                self.offsets[ov as usize] as usize,
                self.offsets[ov as usize + 1] as usize,
            );
            crate::kernels::retain_mapped(
                &self.nbr_vertices[lo..hi],
                &self.nbr_edges[lo..hi],
                &new_id,
                &edge_new,
                &mut nbr_vertices,
                &mut nbr_edges,
                &mut kc,
            );
            offsets[nv + 1] = nbr_vertices.len() as u32;
        }
        debug_assert_eq!(nbr_vertices.len(), 2 * m);

        let vertex_labels: Vec<u32> = orig_vertices
            .iter()
            .map(|&v| self.vertex_labels[v as usize])
            .collect();
        let vertex_keywords = self.vertex_keywords.as_ref().map(|ks| {
            KeywordSets::from_sets(
                orig_vertices
                    .iter()
                    .map(|&v| ks.get(v as usize).to_vec())
                    .collect(),
            )
        });
        let edge_keywords = self.edge_keywords.as_ref().map(|ks| {
            KeywordSets::from_sets(
                kept_edges
                    .iter()
                    .map(|&e| ks.get(e as usize).to_vec())
                    .collect(),
            )
        });

        let graph = Graph {
            offsets,
            nbr_vertices,
            nbr_edges,
            edge_src,
            edge_dst,
            vertex_labels,
            edge_labels,
            vertex_keywords,
            edge_keywords,
            keyword_table: self.keyword_table.clone(),
            num_vertex_labels: self.num_vertex_labels,
            num_edge_labels: self.num_edge_labels,
        };
        debug_assert!(graph.validate().is_ok());
        ReducedGraph {
            graph,
            orig_vertices,
            orig_edges: kept_edges,
        }
    }

    /// R1 (`vfilter`): keeps only vertices satisfying `f`, plus the edges
    /// between survivors.
    pub fn vfilter(&self, mut f: impl FnMut(VertexId, &Graph) -> bool) -> ReducedGraph {
        let mut vmask = Bitset::new(self.num_vertices());
        for v in self.vertices() {
            if f(v, self) {
                vmask.set(v.index());
            }
        }
        self.reduce(&vmask, &Bitset::full(self.num_edges()))
    }

    /// R2 (`efilter`): keeps only edges satisfying `f`; vertices that lose
    /// all incident edges are dropped too (they cannot participate in any
    /// connected subgraph of more than one vertex).
    pub fn efilter(&self, mut f: impl FnMut(EdgeId, &Graph) -> bool) -> ReducedGraph {
        let mut emask = Bitset::new(self.num_edges());
        let mut vmask = Bitset::new(self.num_vertices());
        for e in self.edges() {
            if f(e, self) {
                emask.set(e.index());
                let (s, d) = self.edge_endpoints(e);
                vmask.set(s.index());
                vmask.set(d.index());
            }
        }
        self.reduce(&vmask, &emask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::Label;

    fn diamond() -> Graph {
        // 0-1-2-3 cycle plus chord 1-3; labels 0,1,0,1.
        graph_from_edges(
            &[0, 1, 0, 1],
            &[(0, 1, 0), (1, 2, 1), (2, 3, 0), (0, 3, 1), (1, 3, 2)],
        )
    }

    #[test]
    fn vfilter_keeps_induced_edges() {
        let g = diamond();
        let r = g.vfilter(|v, g| g.vertex_label(v) == Label(1));
        // Vertices 1 and 3 survive; the only edge between them is 1-3.
        assert_eq!(r.graph.num_vertices(), 2);
        assert_eq!(r.graph.num_edges(), 1);
        assert_eq!(r.to_orig_vertex(VertexId(0)), VertexId(1));
        assert_eq!(r.to_orig_vertex(VertexId(1)), VertexId(3));
        let e = EdgeId(0);
        assert_eq!(g.edge_label(r.to_orig_edge(e)), Label(2));
        assert!((r.vertex_reduction(&g) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn efilter_drops_isolated_vertices() {
        let g = diamond();
        // Keep only the chord 1-3.
        let r = g.efilter(|e, g| g.edge_label(e) == Label(2));
        assert_eq!(r.graph.num_vertices(), 2);
        assert_eq!(r.graph.num_edges(), 1);
        assert!((r.edge_reduction(&g) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn reduce_full_masks_is_identity_shaped() {
        let g = diamond();
        let r = g.reduce(
            &Bitset::full(g.num_vertices()),
            &Bitset::full(g.num_edges()),
        );
        assert_eq!(r.graph.num_vertices(), g.num_vertices());
        assert_eq!(r.graph.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(r.graph.neighbors(v), g.neighbors(v));
            assert_eq!(r.graph.vertex_label(v), g.vertex_label(v));
        }
    }

    #[test]
    fn keywords_survive_reduction() {
        let mut b = crate::GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        let w = b.add_vertex(Label(1));
        let e1 = b.add_edge(u, v, Label(0)).unwrap();
        b.add_edge(v, w, Label(0)).unwrap();
        let k = b.intern_keyword("paris");
        b.add_edge_keyword(e1, k);
        b.add_vertex_keyword(u, k);
        let g = b.build();
        let r = g.vfilter(|x, g| g.vertex_label(x) == Label(0));
        assert_eq!(r.graph.num_vertices(), 2);
        assert_eq!(r.graph.num_edges(), 1);
        assert_eq!(r.graph.vertex_keywords(VertexId(0)), &[k]);
        assert_eq!(r.graph.edge_keywords(EdgeId(0)), &[k]);
        assert!(r.graph.keyword_table().is_some());
    }

    #[test]
    fn empty_masks_yield_empty_graph() {
        let g = diamond();
        let r = g.reduce(&Bitset::new(g.num_vertices()), &Bitset::new(g.num_edges()));
        assert_eq!(r.graph.num_vertices(), 0);
        assert_eq!(r.graph.num_edges(), 0);
    }
}
