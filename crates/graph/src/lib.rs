//! # fractal-graph
//!
//! The input-graph substrate of the fractal workspace.
//!
//! This crate implements the graph model of the paper's Definition 1: an
//! undirected graph without self-loops whose vertices and edges carry a
//! primary [`Label`] and, optionally, *sets of keywords* (the map
//! `f_L : V ∪ E → P(L)` used by the keyword-search workload).
//!
//! The main type is [`Graph`], an immutable CSR (compressed sparse row)
//! structure optimized for the access patterns of subgraph enumeration:
//! sorted neighborhood scans, O(log d) edge lookup between two vertices and
//! merge-based neighborhood intersection.
//!
//! Additional modules:
//!
//! - [`builder`] — mutable [`GraphBuilder`] that validates and freezes graphs,
//! - [`io`] — loaders/writers for the Arabesque adjacency-list format and a
//!   plain edge-list format,
//! - [`gen`] — deterministic synthetic generators shaped after the paper's
//!   evaluation datasets (Table 1),
//! - [`kernels`] — the extension hot-path intersection kernels (hybrid
//!   sorted-merge / galloping / bitset) and per-core candidate-set arenas,
//! - [`reduction`] — the graph-reduction optimization of §4.3 (`vfilter` /
//!   `efilter` and participation-driven reduction),
//! - [`keywords`] — interned keyword dictionary and per-element keyword sets.

pub mod bitset;
pub mod builder;
pub mod gen;
pub mod io;
pub mod kernels;
pub mod keywords;
pub mod reduction;

mod graph;
mod ids;

pub use bitset::Bitset;
pub use builder::{graph_from_edges, unlabeled_from_edges, GraphBuilder};
pub use graph::{EdgeRef, Graph};
pub use ids::{EdgeId, KeywordId, Label, VertexId};
pub use kernels::{ExtensionKernels, KernelCounters};
pub use keywords::KeywordTable;
pub use reduction::{EdgeMask, ReducedGraph, VertexMask};

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A self-loop `(v, v)` was supplied; the model forbids them (Def. 1).
    SelfLoop(u32),
    /// An endpoint referenced a vertex id that was never added.
    UnknownVertex(u32),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(u32, u32),
    /// An I/O error while reading or writing a graph file.
    Io(std::io::Error),
    /// A parse error: line number and description.
    Parse(usize, String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::UnknownVertex(v) => write!(f, "edge endpoint {v} is not a known vertex"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate undirected edge ({u}, {v})"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
