//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on Mico, Patents, Youtube, Wikidata and Orkut
//! (Table 1 / Appendix C). Those datasets are not redistributable here, so
//! each gets a *shape-matched* synthetic stand-in (see DESIGN.md,
//! Substitutions): a preferential-attachment core reproduces the scale-free
//! degree skew that drives GPM load imbalance, average degree and label
//! cardinality are scaled from the real graph, and the Wikidata stand-in
//! additionally carries zipfian keyword sets on vertices and edges.
//!
//! All generators are deterministic given their seed.

use crate::{Graph, GraphBuilder, Label, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf-like sampler over `0..n` with exponent `s`, backed by a precomputed
/// CDF (rand 0.8 has no zipf distribution in its core crate).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Erdős–Rényi G(n, m): `m` distinct undirected edges chosen uniformly,
/// with zipf(1.0) labels over `num_labels`.
pub fn erdos_renyi(n: usize, m: usize, num_labels: u32, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let label_dist = Zipf::new(num_labels.max(1) as usize, 1.0);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let l = label_dist.sample(&mut rng) as u32;
        b.add_vertex(Label(l));
    }
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        if b.add_edge_dedup(VertexId(u), VertexId(v), Label(0))
            .is_some()
        {
            added += 1;
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_attach` existing vertices chosen
/// proportionally to degree. Produces the scale-free skew that makes GPM
/// load balancing hard (§4.2). Vertex labels are zipf(1.0) over
/// `num_labels`; edge labels are zipf(1.2) over `num_edge_labels`.
pub fn barabasi_albert(
    n: usize,
    m_attach: usize,
    num_labels: u32,
    num_edge_labels: u32,
    seed: u64,
) -> Graph {
    let m_attach = m_attach.max(1);
    assert!(n > m_attach, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let vlabel_dist = Zipf::new(num_labels.max(1) as usize, 1.0);
    let elabel_dist = Zipf::new(num_edge_labels.max(1) as usize, 1.2);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    for _ in 0..n {
        let l = vlabel_dist.sample(&mut rng) as u32;
        b.add_vertex(Label(l));
    }
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    let seed_n = m_attach + 1;
    for u in 0..seed_n as u32 {
        for v in (u + 1)..seed_n as u32 {
            let l = elabel_dist.sample(&mut rng) as u32;
            if b.add_edge_dedup(VertexId(u), VertexId(v), Label(l))
                .is_some()
            {
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }
    for v in seed_n..n {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m_attach && guard < 50 * m_attach {
            guard += 1;
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target as usize == v {
                continue;
            }
            let l = elabel_dist.sample(&mut rng) as u32;
            if b.add_edge_dedup(VertexId(v as u32), VertexId(target), Label(l))
                .is_some()
            {
                endpoints.push(v as u32);
                endpoints.push(target);
                attached += 1;
            }
        }
    }
    b.build()
}

/// Mico-like graph: co-authorship shape — dense scale-free core, average
/// degree ≈ 21 in the original (100K vertices, 1.08M edges, 29 labels).
/// `n` scales the instance; labels default to 29.
pub fn mico_like(n: usize, num_labels: u32, seed: u64) -> Graph {
    barabasi_albert(n.max(16), 10, num_labels.max(1), 1, seed)
}

/// Patents-like graph: citation shape — sparser (avg degree ≈ 10), 37
/// labels in the original.
pub fn patents_like(n: usize, num_labels: u32, seed: u64) -> Graph {
    barabasi_albert(n.max(16), 5, num_labels.max(1), 1, seed)
}

/// Youtube-like graph: related-videos shape — avg degree ≈ 19, 80 labels
/// in the original.
pub fn youtube_like(n: usize, num_labels: u32, seed: u64) -> Graph {
    barabasi_albert(n.max(16), 9, num_labels.max(1), 1, seed)
}

/// Orkut-like graph: friendship shape — dense (avg degree ≈ 76 in the
/// original); used by the triangle-counting experiment (Appendix C). The
/// attachment count is capped to keep harness runs quick.
pub fn orkut_like(n: usize, seed: u64) -> Graph {
    barabasi_albert(n.max(32), 18, 1, 1, seed)
}

/// Wikidata-like attributed knowledge graph: very sparse (avg degree ≈ 2.4),
/// with zipfian keyword sets on vertices and edges drawn from a vocabulary
/// of `vocab` words named `kw0..`. Edge labels model predicates.
pub fn wikidata_like(n: usize, vocab: usize, seed: u64) -> Graph {
    let n = n.max(32);
    let vocab = vocab.max(8);
    let mut rng = StdRng::seed_from_u64(seed);
    let kw_dist = Zipf::new(vocab, 1.05);
    let pred_dist = Zipf::new(64, 1.2);
    // Sparse preferential-attachment skeleton, ~1.2 edges per vertex.
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * 1.2) as usize);
    for _ in 0..n {
        b.add_vertex(Label(0));
    }
    let kws: Vec<crate::KeywordId> = (0..vocab)
        .map(|i| b.intern_keyword(&format!("kw{i}")))
        .collect();
    let mut endpoints: Vec<u32> = vec![0, 1];
    b.add_edge(VertexId(0), VertexId(1), Label(0)).unwrap();
    let mut edges: Vec<crate::EdgeId> = Vec::new();
    for v in 2..n as u32 {
        // One guaranteed attachment keeps the graph connected-ish; a second
        // with probability 0.2 matches the 1.2 average.
        let attach = 1 + usize::from(rng.gen_bool(0.2));
        for _ in 0..attach {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target == v {
                continue;
            }
            let l = pred_dist.sample(&mut rng) as u32;
            if let Some(e) = b.add_edge_dedup(VertexId(v), VertexId(target), Label(l)) {
                endpoints.push(v);
                endpoints.push(target);
                edges.push(e);
            }
        }
    }
    // Keyword sets: 1–3 per vertex, 1–2 per edge, zipf-ranked vocabulary.
    for v in 0..n {
        let cnt = rng.gen_range(1..=3);
        for _ in 0..cnt {
            let k = kws[kw_dist.sample(&mut rng)];
            b.add_vertex_keyword(VertexId(v as u32), k);
        }
    }
    for &e in &edges {
        let cnt = rng.gen_range(1..=2);
        for _ in 0..cnt {
            let k = kws[kw_dist.sample(&mut rng)];
            b.add_edge_keyword(e, k);
        }
    }
    b.build()
}

/// R-MAT recursive-matrix generator (Chakrabarti et al.): each edge lands
/// in a quadrant with probabilities `(a, b, c, d)`, recursively. The
/// standard skew `(0.57, 0.19, 0.19, 0.05)` yields power-law degree
/// distributions with community structure — a common benchmark shape for
/// graph systems. Self-loops and duplicates are re-drawn.
pub fn rmat(scale_exp: u32, m: usize, num_labels: u32, seed: u64) -> Graph {
    let n = 1usize << scale_exp;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = StdRng::seed_from_u64(seed);
    let label_dist = Zipf::new(num_labels.max(1) as usize, 1.0);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let l = label_dist.sample(&mut rng) as u32;
        builder.add_vertex(Label(l));
    }
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < m && guard < 100 * m {
        guard += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale_exp {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        if builder
            .add_edge_dedup(VertexId(u as u32), VertexId(v as u32), Label(0))
            .is_some()
        {
            added += 1;
        }
    }
    builder.build()
}

/// Complete graph on `k` vertices (labels zero).
pub fn complete(k: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(k, k * (k - 1) / 2);
    for _ in 0..k {
        b.add_vertex(Label(0));
    }
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.add_edge(VertexId(u), VertexId(v), Label(0)).unwrap();
        }
    }
    b.build()
}

/// Path graph on `k` vertices.
pub fn path(k: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(k, k.saturating_sub(1));
    for _ in 0..k {
        b.add_vertex(Label(0));
    }
    for v in 1..k as u32 {
        b.add_edge(VertexId(v - 1), VertexId(v), Label(0)).unwrap();
    }
    b.build()
}

/// Cycle graph on `k ≥ 3` vertices.
pub fn cycle(k: usize) -> Graph {
    assert!(k >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(k, k);
    for _ in 0..k {
        b.add_vertex(Label(0));
    }
    for v in 0..k as u32 {
        b.add_edge(VertexId(v), VertexId((v + 1) % k as u32), Label(0))
            .unwrap();
    }
    b.build()
}

/// Star graph: one center adjacent to `k` leaves.
pub fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(k + 1, k);
    for _ in 0..=k {
        b.add_vertex(Label(0));
    }
    for v in 1..=k as u32 {
        b.add_edge(VertexId(0), VertexId(v), Label(0)).unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn er_respects_parameters() {
        let g = erdos_renyi(50, 100, 5, 42);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 100);
        assert!(g.num_vertex_labels() <= 5);
    }

    #[test]
    fn er_deterministic() {
        let g1 = erdos_renyi(30, 60, 3, 7);
        let g2 = erdos_renyi(30, 60, 3, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn ba_is_skewed() {
        let g = barabasi_albert(500, 4, 8, 3, 9);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 500);
        // Scale-free: the hub degree should far exceed the average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn dataset_stand_ins_build() {
        for g in [
            mico_like(300, 29, 1),
            patents_like(300, 37, 2),
            youtube_like(300, 80, 3),
            orkut_like(300, 4),
        ] {
            g.validate().unwrap();
            assert_eq!(g.num_vertices(), 300);
            assert!(g.num_edges() > 300);
        }
    }

    #[test]
    fn wikidata_like_has_keywords() {
        let g = wikidata_like(400, 50, 5);
        g.validate().unwrap();
        assert!(g.keyword_table().is_some());
        assert!(g.num_edges() < 2 * g.num_vertices(), "should be sparse");
        let with_kw = g
            .vertices()
            .filter(|&v| !g.vertex_keywords(v).is_empty())
            .count();
        assert_eq!(with_kw, g.num_vertices());
        let edges_with_kw = g
            .edges()
            .filter(|&e| !g.edge_keywords(e).is_empty())
            .count();
        assert!(edges_with_kw > g.num_edges() / 2);
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(9, 1500, 4, 11);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 512);
        assert!(g.num_edges() > 1200, "rmat produced too few edges");
        // Skewed: hub degree well above average.
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 3.0 * avg);
        // Deterministic.
        let g2 = rmat(9, 1500, 4, 11);
        assert_eq!(g.num_edges(), g2.num_edges());
    }

    #[test]
    fn small_shapes() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(path(4).num_edges(), 3);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(6).num_edges(), 6);
        assert_eq!(star(6).degree(VertexId(0)), 6);
    }
}
