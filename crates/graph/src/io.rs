//! Graph file formats.
//!
//! Two formats are supported so that the real evaluation datasets (Mico,
//! Patents, Youtube, Wikidata — Table 1) can be dropped in when available:
//!
//! - **Adjacency-list format** (the format used by Arabesque and the
//!   original Fractal release): one line per vertex,
//!   `vertex_id vertex_label neighbor1 [neighbor2 ...]`, with every
//!   undirected edge appearing in both endpoint lines. A labeled variant
//!   writes `neighbor,edge_label` pairs.
//! - **Edge-list format**: header `n m`, then one `u v [label]` line per
//!   edge; vertex labels optionally given by `v <vid> <label>` lines.

use crate::{Graph, GraphBuilder, GraphError, Label, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Loads a graph in the Arabesque adjacency-list format from `path`.
pub fn load_adjacency_list(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_adjacency_list(BufReader::new(file))
}

/// Reads the adjacency-list format from any reader.
///
/// Lines are `vid vlabel nbr1 [nbr2 ...]`; a neighbor token may be
/// `nbr,elabel` to carry an edge label. Vertex ids must be dense `0..n` and
/// lines must appear in id order (the format used by Arabesque's datasets).
pub fn read_adjacency_list<R: Read>(reader: BufReader<R>) -> Result<Graph, GraphError> {
    struct Pending {
        u: u32,
        v: u32,
        label: u32,
    }
    let mut labels: Vec<u32> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let vid: u32 = tok
            .next()
            .unwrap()
            .parse()
            .map_err(|_| GraphError::Parse(lineno + 1, "bad vertex id".into()))?;
        if vid as usize != labels.len() {
            return Err(GraphError::Parse(
                lineno + 1,
                format!("vertex ids must be dense and ordered, got {vid}"),
            ));
        }
        let vlabel: u32 = tok
            .next()
            .ok_or_else(|| GraphError::Parse(lineno + 1, "missing vertex label".into()))?
            .parse()
            .map_err(|_| GraphError::Parse(lineno + 1, "bad vertex label".into()))?;
        labels.push(vlabel);
        for t in tok {
            let (nbr, elabel) = match t.split_once(',') {
                Some((n, l)) => (
                    n.parse()
                        .map_err(|_| GraphError::Parse(lineno + 1, "bad neighbor id".into()))?,
                    l.parse()
                        .map_err(|_| GraphError::Parse(lineno + 1, "bad edge label".into()))?,
                ),
                None => (
                    t.parse()
                        .map_err(|_| GraphError::Parse(lineno + 1, "bad neighbor id".into()))?,
                    0u32,
                ),
            };
            // Each undirected edge appears twice; keep the (u < v) copy.
            if vid < nbr {
                pending.push(Pending {
                    u: vid,
                    v: nbr,
                    label: elabel,
                });
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(labels.len(), pending.len());
    for &l in &labels {
        b.add_vertex(Label(l));
    }
    for p in pending {
        b.add_edge(VertexId(p.u), VertexId(p.v), Label(p.label))?;
    }
    Ok(b.build())
}

/// Writes `g` in the adjacency-list format (with `nbr,elabel` tokens when
/// the graph has non-zero edge labels).
pub fn write_adjacency_list(g: &Graph, mut w: impl Write) -> std::io::Result<()> {
    let labeled_edges = g.num_edge_labels() > 1;
    for v in g.vertices() {
        write!(w, "{} {}", v.raw(), g.vertex_label(v).raw())?;
        for (&nbr, &e) in g.neighbors(v).iter().zip(g.incident_edges(v)) {
            if labeled_edges {
                write!(w, " {},{}", nbr, g.edge_labels[e as usize])?;
            } else {
                write!(w, " {nbr}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Saves `g` to `path` in the adjacency-list format.
pub fn save_adjacency_list(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_adjacency_list(g, BufWriter::new(file))
}

/// Loads an edge-list file: header `n m`, then `m` lines `u v [elabel]`,
/// optionally preceded by `v <vid> <vlabel>` vertex-label lines.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Reads the edge-list format from any reader.
pub fn read_edge_list<R: Read>(reader: BufReader<R>) -> Result<Graph, GraphError> {
    let mut lines = reader.lines().enumerate();
    let (n, _m) = loop {
        match lines.next() {
            Some((lineno, line)) => {
                let line = line?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut tok = line.split_whitespace();
                let n: usize = tok
                    .next()
                    .unwrap()
                    .parse()
                    .map_err(|_| GraphError::Parse(lineno + 1, "bad vertex count".into()))?;
                let m: usize = tok
                    .next()
                    .ok_or_else(|| GraphError::Parse(lineno + 1, "missing edge count".into()))?
                    .parse()
                    .map_err(|_| GraphError::Parse(lineno + 1, "bad edge count".into()))?;
                break (n, m);
            }
            None => return Err(GraphError::Parse(0, "empty edge-list file".into())),
        }
    };
    let mut vlabels = vec![0u32; n];
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let first = tok.next().unwrap();
        if first == "v" {
            let vid: usize = tok
                .next()
                .ok_or_else(|| GraphError::Parse(lineno + 1, "missing vertex id".into()))?
                .parse()
                .map_err(|_| GraphError::Parse(lineno + 1, "bad vertex id".into()))?;
            let l: u32 = tok
                .next()
                .ok_or_else(|| GraphError::Parse(lineno + 1, "missing vertex label".into()))?
                .parse()
                .map_err(|_| GraphError::Parse(lineno + 1, "bad vertex label".into()))?;
            if vid >= n {
                return Err(GraphError::Parse(
                    lineno + 1,
                    "vertex id out of range".into(),
                ));
            }
            vlabels[vid] = l;
        } else {
            let u: u32 = first
                .parse()
                .map_err(|_| GraphError::Parse(lineno + 1, "bad edge endpoint".into()))?;
            let v: u32 = tok
                .next()
                .ok_or_else(|| GraphError::Parse(lineno + 1, "missing edge endpoint".into()))?
                .parse()
                .map_err(|_| GraphError::Parse(lineno + 1, "bad edge endpoint".into()))?;
            let l: u32 = match tok.next() {
                Some(t) => t
                    .parse()
                    .map_err(|_| GraphError::Parse(lineno + 1, "bad edge label".into()))?,
                None => 0,
            };
            edges.push((u, v, l));
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for &l in &vlabels {
        b.add_vertex(Label(l));
    }
    for (u, v, l) in edges {
        b.add_edge(VertexId(u), VertexId(v), Label(l))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use std::io::BufReader;

    #[test]
    fn adjacency_roundtrip_unlabeled_edges() {
        let g = graph_from_edges(&[1, 2, 1, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (0, 3, 0)]);
        let mut buf = Vec::new();
        write_adjacency_list(&g, &mut buf).unwrap();
        let g2 = read_adjacency_list(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.vertex_label(v), g2.vertex_label(v));
        }
    }

    #[test]
    fn adjacency_roundtrip_labeled_edges() {
        let g = graph_from_edges(&[1, 2, 1], &[(0, 1, 5), (1, 2, 9)]);
        let mut buf = Vec::new();
        write_adjacency_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("1,5"));
        let g2 = read_adjacency_list(BufReader::new(buf.as_slice())).unwrap();
        let e = g2.edge_between(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(g2.edge_label(e), Label(9));
    }

    #[test]
    fn adjacency_rejects_sparse_ids() {
        let input = b"0 1 1\n2 1 0\n" as &[u8];
        assert!(read_adjacency_list(BufReader::new(input)).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let input = b"# comment\n4 3\nv 0 7\nv 3 2\n0 1 4\n1 2\n2 3 1\n" as &[u8];
        let g = read_edge_list(BufReader::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.vertex_label(VertexId(0)), Label(7));
        assert_eq!(g.vertex_label(VertexId(1)), Label(0));
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(g.edge_label(e), Label(4));
    }

    #[test]
    fn file_roundtrip() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let dir = std::env::temp_dir().join("fractal_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.adj");
        save_adjacency_list(&g, &path).unwrap();
        let g2 = load_adjacency_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
