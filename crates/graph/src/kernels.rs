//! Extension hot-path intersection kernels.
//!
//! Fractal's DFS spends nearly all of its time intersecting sorted
//! adjacency lists to compute valid extensions (§3, Fig. 7; the KClist
//! enumerator of Appendix B is repeated candidate-set intersection). This
//! module concentrates those inner loops into one tuned layer:
//!
//! - **sorted-merge** — the classic two-pointer merge, best when the two
//!   lists have comparable lengths;
//! - **galloping** — exponential search of each element of the smaller
//!   list inside the larger one, best when the lengths are skewed
//!   (`|large| / |small| ≥` [`GALLOP_RATIO`]): cost is
//!   `O(|small| · log |large|)` instead of `O(|small| + |large|)`;
//! - **bitset** — mark the smaller list in a word-level bitset over the
//!   vertex universe, probe the larger list branch-free, then clear only
//!   the marked words. Engages for long, similar-length lists
//!   (`|small| ≥` [`BITSET_MIN`]) where the merge loop's compare branches
//!   mispredict; requires per-core scratch and therefore lives on
//!   [`ExtensionKernels`].
//!
//! The crossover between the three paths is decided per call from the
//! relative set sizes; every invocation is tallied into [`KernelCounters`]
//! (per-path call counts, elements scanned, arena high-water mark) so the
//! heuristic stays observable through the flight recorder and the CI perf
//! gate.
//!
//! Intersection-with-filter variants ([`intersect_above`],
//! [`ExtensionKernels::intersect_above_into`]) push symmetry-breaking
//! lower bounds *into* the kernel: both inputs are first advanced past the
//! bound with a binary search, so candidates ruled out by a
//! `must_be_greater_than` constraint are never scanned at all.
//!
//! Candidate sets themselves live in a per-core bump arena
//! ([`ExtensionKernels`] level stack): DFS levels are strictly nested, so
//! a level is one contiguous arena region and push/pop is a truncation —
//! no per-extension `Vec` allocation. The arena is worker-local scratch
//! only: a stolen task re-derives its candidate stack from the
//! from-scratch prefix (`SubgraphEnumerator::rebuild`), so arenas never
//! travel in steal messages.

/// Size ratio at which the galloping path takes over from sorted-merge.
pub const GALLOP_RATIO: usize = 16;

/// Minimum smaller-list length for the bitset path (below it, marking
/// overhead dominates).
pub const BITSET_MIN: usize = 64;

/// Counters describing kernel-path activity since the last drain.
///
/// `elements_scanned` counts every element the kernels looked at (merge
/// pointer advances, gallop probes, bitset marks + probes) — the
/// deterministic work metric the CI perf gate compares across commits.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Sorted-merge intersections performed.
    pub merge_calls: u64,
    /// Galloping intersections performed.
    pub gallop_calls: u64,
    /// Bitset (mark/probe) intersections performed.
    pub bitset_calls: u64,
    /// Total elements scanned across all kernel invocations.
    pub elements_scanned: u64,
    /// Peak resident bytes of the candidate-set arena (+ scratch).
    pub arena_high_water_bytes: u64,
}

impl KernelCounters {
    /// Total kernel invocations across the three paths.
    pub fn calls(&self) -> u64 {
        self.merge_calls + self.gallop_calls + self.bitset_calls
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.calls() == 0 && self.elements_scanned == 0 && self.arena_high_water_bytes == 0
    }

    /// Folds `other` into `self` (counts add, high-water maxes).
    pub fn absorb(&mut self, other: &KernelCounters) {
        self.merge_calls += other.merge_calls;
        self.gallop_calls += other.gallop_calls;
        self.bitset_calls += other.bitset_calls;
        self.elements_scanned += other.elements_scanned;
        self.arena_high_water_bytes = self
            .arena_high_water_bytes
            .max(other.arena_high_water_bytes);
    }

    /// Drains the counters: returns the current values and zeroes `self`.
    pub fn take(&mut self) -> KernelCounters {
        std::mem::take(self)
    }
}

/// The subslice of a sorted list whose elements are strictly greater than
/// `lo` — the degenerate (single-list) lower-bound filter, used when a
/// symmetry-breaking bound applies but there is nothing to intersect with.
#[inline]
pub fn seek_above(list: &[u32], lo: u32) -> &[u32] {
    &list[list.partition_point(|&x| x <= lo)..]
}

/// The subslice of a sorted list whose elements are strictly smaller than
/// `hi` — the upper-bound counterpart of [`seek_above`], used by the
/// decomposed-counting executor for `must_be_less_than` symmetry bounds.
#[inline]
pub fn seek_below(list: &[u32], hi: u32) -> &[u32] {
    &list[..list.partition_point(|&x| x < hi)]
}

/// Adaptive sorted-set intersection of `a` and `b` into `out` (cleared
/// first). Picks merge or gallop from the length ratio; the bitset path
/// needs scratch and is only reachable through [`ExtensionKernels`].
pub fn intersect(a: &[u32], b: &[u32], out: &mut Vec<u32>, c: &mut KernelCounters) {
    out.clear();
    let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if s.is_empty() {
        return;
    }
    if l.len() / s.len() >= GALLOP_RATIO {
        gallop_into(s, l, out, c);
    } else {
        merge_into(s, l, out, c);
    }
}

/// Adaptive intersection keeping only elements strictly greater than `lo`
/// (the symmetry-breaking lower-bound filter variant). Both inputs are
/// advanced past the bound before any scanning happens.
pub fn intersect_above(a: &[u32], b: &[u32], lo: u32, out: &mut Vec<u32>, c: &mut KernelCounters) {
    intersect(seek_above(a, lo), seek_above(b, lo), out, c);
}

/// Two-pointer sorted-merge intersection (exposed for tests/benches; use
/// [`intersect`] for the adaptive entry point).
pub fn merge_into(a: &[u32], b: &[u32], out: &mut Vec<u32>, c: &mut KernelCounters) {
    c.merge_calls += 1;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    c.elements_scanned += (i + j) as u64;
}

/// Galloping intersection: for each element of `small`, exponential +
/// binary search inside `large`, resuming where the previous search ended
/// (exposed for tests/benches; use [`intersect`] for the adaptive entry
/// point).
pub fn gallop_into(small: &[u32], large: &[u32], out: &mut Vec<u32>, c: &mut KernelCounters) {
    c.gallop_calls += 1;
    let mut from = 0usize;
    let mut probes = 0u64;
    for &x in small {
        // Exponential probe: find a window [from+step/2, from+step] whose
        // upper end reaches x.
        let mut step = 1usize;
        while from + step < large.len() && large[from + step] < x {
            step <<= 1;
            probes += 1;
        }
        let hi = (from + step + 1).min(large.len());
        // Binary search for the first element >= x inside the window.
        let idx = from + large[from..hi].partition_point(|&y| y < x);
        probes += (hi - from).max(1).ilog2() as u64 + 1;
        if idx < large.len() && large[idx] == x {
            out.push(x);
            from = idx + 1;
        } else {
            from = idx;
        }
        if from >= large.len() {
            break;
        }
    }
    c.elements_scanned += small.len() as u64 + probes;
}

/// Streams one sorted adjacency slice (`nbrs` with parallel edge ids
/// `eids`) through vertex/edge renumbering maps, keeping pairs whose
/// mapped ids are live (`!= u32::MAX`). This is the map-probe kernel the
/// graph-reduction pass (§4.3) builds its compact CSR with: both
/// renumberings are monotone, so the output stays sorted and no
/// per-neighborhood permutation sort is needed.
pub fn retain_mapped(
    nbrs: &[u32],
    eids: &[u32],
    vmap: &[u32],
    emap: &[u32],
    out_v: &mut Vec<u32>,
    out_e: &mut Vec<u32>,
    c: &mut KernelCounters,
) {
    debug_assert_eq!(nbrs.len(), eids.len());
    c.bitset_calls += 1;
    c.elements_scanned += nbrs.len() as u64;
    for (&u, &e) in nbrs.iter().zip(eids.iter()) {
        let nv = vmap[u as usize];
        let ne = emap[e as usize];
        if nv != u32::MAX && ne != u32::MAX {
            out_v.push(nv);
            out_e.push(ne);
        }
    }
}

/// Upper bound on the member-set size for the probe path of
/// [`collect_induced_edges`] (hits are staged in a stack buffer).
pub const PROBE_MAX_MEMBERS: usize = 16;

/// Collects the edges connecting a new vertex (sorted adjacency `nbrs`
/// with parallel edge ids `eids`) to the current subgraph `members` —
/// the inner loop of vertex-induced growth (`Subgraph::push_vertex_induced`).
///
/// Hybrid on relative sizes, mirroring the merge/gallop crossover: when
/// the member set is small against `deg(v)`, each member is binary-probed
/// into the adjacency (`O(k log d)`); otherwise the adjacency is scanned
/// once through the `is_member` filter (`O(d)`). Both paths emit edge ids
/// in ascending adjacency position, so growth/rollback bookkeeping is
/// byte-identical regardless of the path taken. Returns the number of
/// edges emitted.
pub fn collect_induced_edges(
    nbrs: &[u32],
    eids: &[u32],
    members: &[u32],
    is_member: impl Fn(u32) -> bool,
    mut emit: impl FnMut(u32),
) -> u32 {
    debug_assert_eq!(nbrs.len(), eids.len());
    let d = nbrs.len();
    let k = members.len();
    // Cost of one binary probe (~log2 d), with a 2x fudge for the probe
    // path's branchier access pattern vs the linear scan.
    let probe_cost = (usize::BITS - d.leading_zeros() + 1) as usize;
    if k <= PROBE_MAX_MEMBERS && 2 * k * probe_cost < d {
        let mut hits = [(0u32, 0u32); PROBE_MAX_MEMBERS];
        let mut nh = 0;
        for &u in members {
            if let Ok(pos) = nbrs.binary_search(&u) {
                hits[nh] = (pos as u32, eids[pos]);
                nh += 1;
            }
        }
        hits[..nh].sort_unstable();
        for &(_, e) in &hits[..nh] {
            emit(e);
        }
        nh as u32
    } else {
        let mut added = 0;
        for (i, &u) in nbrs.iter().enumerate() {
            if is_member(u) {
                emit(eids[i]);
                added += 1;
            }
        }
        added
    }
}

/// Per-core kernel state: the bump-arena candidate-set stack, the bitset
/// scratch for the mark/probe path, and the accumulated counters.
///
/// One instance lives inside each enumerator clone (one per core); it is
/// **never** shipped with stolen work — a thief rebuilds its own stack by
/// replaying the stolen prefix, and [`reset_levels`](Self::reset_levels)
/// keeps the allocations warm across units.
#[derive(Debug, Default, Clone)]
pub struct ExtensionKernels {
    /// Accumulated path counters, drained by the runtime per work unit.
    counters: KernelCounters,
    /// Vertex-universe size the bitset scratch covers (0 = path disabled).
    universe: usize,
    /// Bitset scratch words (`universe / 64` once sized).
    bits: Vec<u64>,
    /// Bump arena holding all live candidate sets, contiguously.
    arena: Vec<u32>,
    /// Start offset of each live level inside `arena`.
    marks: Vec<usize>,
    /// Double-buffer scratch for multi-way unions.
    scratch_a: Vec<u32>,
    scratch_b: Vec<u32>,
    /// Per-list cursor scratch for the anchored k-way union.
    cursors: Vec<usize>,
}

impl ExtensionKernels {
    /// Fresh state with the bitset path disabled until
    /// [`ensure_universe`](Self::ensure_universe) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the bitset scratch to cover ids `0..n`. Idempotent and cheap
    /// when already large enough.
    pub fn ensure_universe(&mut self, n: usize) {
        if n > self.universe {
            self.universe = n;
            self.bits.resize(n.div_ceil(64), 0);
        }
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &KernelCounters {
        &self.counters
    }

    /// Drains the counters (stamping the current arena high-water mark).
    pub fn take_counters(&mut self) -> KernelCounters {
        self.note_high_water();
        self.counters.take()
    }

    /// Resident bytes of the arena + scratch buffers.
    pub fn resident_bytes(&self) -> usize {
        (self.arena.capacity() + self.scratch_a.capacity() + self.scratch_b.capacity()) * 4
            + self.bits.capacity() * 8
            + self.marks.capacity() * std::mem::size_of::<usize>()
    }

    fn note_high_water(&mut self) {
        let bytes = self.resident_bytes() as u64;
        if bytes > self.counters.arena_high_water_bytes {
            self.counters.arena_high_water_bytes = bytes;
        }
    }

    // ---- candidate-set level stack (bump arena) ----

    /// Number of live levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.marks.len()
    }

    /// The top (deepest) candidate set.
    #[inline]
    pub fn top(&self) -> &[u32] {
        // panic-ok: callers never read top() of an empty stack — a level is
        // pushed before any read (enumerator recursion invariant).
        let lo = *self.marks.last().expect("no live level");
        &self.arena[lo..]
    }

    /// Opens a new level initialized with a copy of `src`.
    pub fn push_level_copy(&mut self, src: &[u32]) {
        self.marks.push(self.arena.len());
        self.arena.extend_from_slice(src);
        self.note_high_water();
    }

    /// Opens a new level holding `top() ∩ other`, choosing the kernel path
    /// adaptively. The parent level is read in place while the result is
    /// bump-allocated behind it.
    pub fn push_level_intersect(&mut self, other: &[u32]) {
        // panic-ok: intersect is only called with a parent level open;
        // enforced by the enumerator's push/pop pairing.
        let plo = *self.marks.last().expect("no parent level");
        let phi = self.arena.len();
        self.marks.push(phi);
        let (slen, llen) = ((phi - plo).min(other.len()), (phi - plo).max(other.len()));
        if slen == 0 {
            return;
        }
        if llen / slen >= GALLOP_RATIO {
            self.gallop_parent(plo, phi, other);
        } else if slen >= BITSET_MIN && self.fits_universe(phi - plo, other) {
            self.bitset_parent(plo, phi, other);
        } else {
            self.merge_parent(plo, phi, other);
        }
        self.note_high_water();
    }

    /// Closes the top level, reclaiming its arena region.
    pub fn pop_level(&mut self) {
        // panic-ok: pop pairs a prior push in the same recursion; underflow is
        // a kernel bug that must abort the count.
        let lo = self.marks.pop().expect("pop on empty level stack");
        self.arena.truncate(lo);
    }

    /// Drops all levels (keeps capacity warm). Called when a stolen unit's
    /// prefix is about to be replayed from scratch.
    pub fn reset_levels(&mut self) {
        self.marks.clear();
        self.arena.clear();
    }

    fn fits_universe(&self, parent_len: usize, other: &[u32]) -> bool {
        if self.universe == 0 {
            return false;
        }
        let pmax = if parent_len == 0 {
            0
        } else {
            self.arena[self.arena.len() - 1]
        };
        let omax = other.last().copied().unwrap_or(0);
        (pmax.max(omax) as usize) < self.universe
    }

    /// Merge path over an arena parent: reads `arena[plo..phi]` by index
    /// while pushing behind `phi` (pushes may reallocate, so no borrows are
    /// held across them).
    fn merge_parent(&mut self, plo: usize, phi: usize, other: &[u32]) {
        self.counters.merge_calls += 1;
        let (mut i, mut j) = (plo, 0usize);
        while i < phi && j < other.len() {
            let x = self.arena[i];
            match x.cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.arena.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.counters.elements_scanned += (i - plo + j) as u64;
    }

    /// Gallop path over an arena parent: searches the smaller side's
    /// elements inside the larger side.
    fn gallop_parent(&mut self, plo: usize, phi: usize, other: &[u32]) {
        let parent_len = phi - plo;
        if parent_len <= other.len() {
            // Parent is small: gallop each parent element through `other`.
            self.counters.gallop_calls += 1;
            let mut from = 0usize;
            let mut probes = 0u64;
            for i in plo..phi {
                let x = self.arena[i];
                let mut step = 1usize;
                while from + step < other.len() && other[from + step] < x {
                    step <<= 1;
                    probes += 1;
                }
                let hi = (from + step + 1).min(other.len());
                let idx = from + other[from..hi].partition_point(|&y| y < x);
                probes += (hi - from).max(1).ilog2() as u64 + 1;
                if idx < other.len() && other[idx] == x {
                    self.arena.push(x);
                    from = idx + 1;
                } else {
                    from = idx;
                }
                if from >= other.len() {
                    break;
                }
            }
            self.counters.elements_scanned += parent_len as u64 + probes;
        } else {
            // `other` is small: gallop its elements through the parent
            // region (index-based binary searches into the arena).
            self.counters.gallop_calls += 1;
            let mut from = plo;
            let mut probes = 0u64;
            for &x in other {
                let mut step = 1usize;
                while from + step < phi && self.arena[from + step] < x {
                    step <<= 1;
                    probes += 1;
                }
                let hi = (from + step + 1).min(phi);
                let idx = from + self.arena[from..hi].partition_point(|&y| y < x);
                probes += (hi - from).max(1).ilog2() as u64 + 1;
                if idx < phi && self.arena[idx] == x {
                    self.arena.push(x);
                    from = idx + 1;
                } else {
                    from = idx;
                }
                if from >= phi {
                    break;
                }
            }
            self.counters.elements_scanned += other.len() as u64 + probes;
        }
    }

    /// Bitset path over an arena parent: mark the smaller side, probe the
    /// larger side (branch-free word tests), clear only the marked bits.
    fn bitset_parent(&mut self, plo: usize, phi: usize, other: &[u32]) {
        self.counters.bitset_calls += 1;
        let parent_len = phi - plo;
        if parent_len <= other.len() {
            for i in plo..phi {
                let v = self.arena[i] as usize;
                self.bits[v >> 6] |= 1 << (v & 63);
            }
            for &u in other {
                if self.bits[(u as usize) >> 6] >> (u & 63) & 1 == 1 {
                    self.arena.push(u);
                }
            }
            for i in plo..phi {
                let v = self.arena[i] as usize;
                self.bits[v >> 6] &= !(1 << (v & 63));
            }
            self.counters.elements_scanned += (2 * parent_len + other.len()) as u64;
        } else {
            for &u in other {
                self.bits[(u as usize) >> 6] |= 1 << (u & 63);
            }
            for i in plo..phi {
                let v = self.arena[i];
                if self.bits[(v as usize) >> 6] >> (v & 63) & 1 == 1 {
                    self.arena.push(v);
                }
            }
            for &u in other {
                self.bits[(u as usize) >> 6] &= !(1 << (u & 63));
            }
            self.counters.elements_scanned += (2 * other.len() + parent_len) as u64;
        }
    }

    // ---- flat (non-arena) intersections with bitset support ----

    /// Hybrid intersection into a caller buffer, with the bitset path
    /// available (unlike the free [`intersect`]).
    pub fn intersect_into(&mut self, a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        out.clear();
        let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if s.is_empty() {
            return;
        }
        if l.len() / s.len() >= GALLOP_RATIO {
            gallop_into(s, l, out, &mut self.counters);
        } else if s.len() >= BITSET_MIN && self.slices_fit_universe(s, l) {
            self.bitset_into(s, l, out);
        } else {
            merge_into(s, l, out, &mut self.counters);
        }
    }

    /// Hybrid intersection keeping only elements strictly above `lo` — the
    /// stateful counterpart of [`intersect_above`].
    pub fn intersect_above_into(&mut self, a: &[u32], b: &[u32], lo: u32, out: &mut Vec<u32>) {
        let a = seek_above(a, lo);
        let b = seek_above(b, lo);
        self.intersect_into(a, b, out);
    }

    fn slices_fit_universe(&self, a: &[u32], b: &[u32]) -> bool {
        if self.universe == 0 {
            return false;
        }
        let amax = a.last().copied().unwrap_or(0);
        let bmax = b.last().copied().unwrap_or(0);
        (amax.max(bmax) as usize) < self.universe
    }

    /// Bitset intersection of two flat slices (`s` marked, `l` probed);
    /// exposed for direct testing of the path.
    pub fn bitset_into(&mut self, s: &[u32], l: &[u32], out: &mut Vec<u32>) {
        assert!(
            self.slices_fit_universe(s, l),
            "bitset path requires ensure_universe over all ids"
        );
        self.counters.bitset_calls += 1;
        for &v in s {
            self.bits[(v as usize) >> 6] |= 1 << (v & 63);
        }
        for &u in l {
            if self.bits[(u as usize) >> 6] >> (u & 63) & 1 == 1 {
                out.push(u);
            }
        }
        for &v in s {
            self.bits[(v as usize) >> 6] &= !(1 << (v & 63));
        }
        self.counters.elements_scanned += (2 * s.len() + l.len()) as u64;
    }

    // ---- multi-way sorted union ----

    /// Sorted, deduplicated union of `lists` into `out` (cleared first):
    /// pairwise merges through the reusable double-buffer scratch, folding
    /// shorter lists first. Replaces the gather + `sort_unstable` + `dedup`
    /// pattern of the generic enumerators — the inputs are already-sorted
    /// CSR slices, so merging is `O(total · log k)` with no allocation.
    pub fn union_sorted_into(&mut self, lists: &[&[u32]], out: &mut Vec<u32>) {
        out.clear();
        match lists.len() {
            0 => return,
            1 => {
                out.extend_from_slice(lists[0]);
                return;
            }
            _ => {}
        }
        // Fold in ascending length order so early merges stay small.
        let mut order: Vec<usize> = (0..lists.len()).collect();
        order.sort_unstable_by_key(|&i| lists[i].len());
        let mut acc = std::mem::take(&mut self.scratch_a);
        let mut next = std::mem::take(&mut self.scratch_b);
        acc.clear();
        acc.extend_from_slice(lists[order[0]]);
        for &i in &order[1..] {
            next.clear();
            Self::union_pair(&acc, lists[i], &mut next, &mut self.counters);
            std::mem::swap(&mut acc, &mut next);
        }
        out.extend_from_slice(&acc);
        self.scratch_a = acc;
        self.scratch_b = next;
        self.note_high_water();
    }

    /// Sorted, deduplicated k-way union that also reports, for every output
    /// element, the **smallest list index containing it** (`anchors`, same
    /// length as `out`). For the growth-sequence canonicality rule the
    /// anchor of a candidate is exactly the earliest prefix position it is
    /// adjacent to, so tracking it during the union removes every
    /// per-candidate adjacency probe from the extension filter.
    ///
    /// Uses a direct k-way head scan (not the pairwise fold, which reorders
    /// lists and loses source indices); `k` is the prefix length, which is
    /// small, so the `O(out · k)` head comparisons stay cheap.
    pub fn union_sorted_anchored_into(
        &mut self,
        lists: &[&[u32]],
        out: &mut Vec<u32>,
        anchors: &mut Vec<u32>,
    ) {
        out.clear();
        anchors.clear();
        let k = lists.len();
        if k == 0 {
            return;
        }
        self.counters.merge_calls += 1;
        let cursors = &mut self.cursors;
        cursors.clear();
        cursors.resize(k, 0);
        loop {
            let mut min = 0u32;
            let mut src = u32::MAX;
            for i in 0..k {
                if cursors[i] < lists[i].len() {
                    let v = lists[i][cursors[i]];
                    if src == u32::MAX || v < min {
                        min = v;
                        src = i as u32;
                    }
                }
            }
            if src == u32::MAX {
                break;
            }
            out.push(min);
            anchors.push(src);
            for i in 0..k {
                if cursors[i] < lists[i].len() && lists[i][cursors[i]] == min {
                    cursors[i] += 1;
                }
            }
        }
        self.counters.elements_scanned += lists.iter().map(|l| l.len() as u64).sum::<u64>();
    }

    /// Deduplicating merge-union of two sorted lists.
    fn union_pair(a: &[u32], b: &[u32], out: &mut Vec<u32>, c: &mut KernelCounters) {
        c.merge_calls += 1;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        c.elements_scanned += (a.len() + b.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter()
            .copied()
            .filter(|x| b.binary_search(x).is_ok())
            .collect()
    }

    fn sets() -> Vec<(Vec<u32>, Vec<u32>)> {
        vec![
            (vec![], vec![]),
            (vec![1], vec![]),
            (vec![1, 5, 9], vec![5]),
            (vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7, 9]),
            (vec![0, 1, 2, 3], vec![0, 1, 2, 3]),
            ((0..200).collect(), (0..400).step_by(3).collect()),
            (vec![7, 700], (0..1000).collect()),
        ]
    }

    #[test]
    fn all_paths_agree_with_naive() {
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        let mut k = ExtensionKernels::new();
        k.ensure_universe(1024);
        for (a, b) in sets() {
            let want = naive(&a, &b);
            intersect(&a, &b, &mut out, &mut c);
            assert_eq!(out, want, "adaptive {a:?} {b:?}");
            out.clear();
            merge_into(&a, &b, &mut out, &mut c);
            assert_eq!(out, want, "merge {a:?} {b:?}");
            out.clear();
            if a.len() <= b.len() {
                gallop_into(&a, &b, &mut out, &mut c);
            } else {
                gallop_into(&b, &a, &mut out, &mut c);
            }
            assert_eq!(out, want, "gallop {a:?} {b:?}");
            out.clear();
            if a.len() <= b.len() {
                k.bitset_into(&a, &b, &mut out);
            } else {
                k.bitset_into(&b, &a, &mut out);
            }
            assert_eq!(out, want, "bitset {a:?} {b:?}");
            k.intersect_into(&a, &b, &mut out);
            assert_eq!(out, want, "stateful {a:?} {b:?}");
        }
        assert!(c.calls() > 0 && c.elements_scanned > 0);
    }

    #[test]
    fn lower_bound_variant_filters() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).step_by(2).collect();
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        intersect_above(&a, &b, 50, &mut out, &mut c);
        let want: Vec<u32> = (52..100).step_by(2).collect();
        assert_eq!(out, want);
        let mut k = ExtensionKernels::new();
        k.intersect_above_into(&a, &b, 50, &mut out);
        assert_eq!(out, want);
        assert_eq!(seek_above(&a, 97), &[98, 99]);
        assert!(seek_above(&a, 99).is_empty());
    }

    #[test]
    fn seek_below_truncates_at_bound() {
        let a: Vec<u32> = vec![2, 5, 8, 11];
        assert_eq!(seek_below(&a, 8), &[2, 5]);
        assert_eq!(seek_below(&a, 9), &[2, 5, 8]);
        assert_eq!(seek_below(&a, 100), &a[..]);
        assert!(seek_below(&a, 2).is_empty());
        assert!(seek_below(&a, 0).is_empty());
        // Above + below compose into an open interval.
        assert_eq!(seek_below(seek_above(&a, 2), 11), &[5, 8]);
    }

    #[test]
    fn arena_levels_nest_and_reset() {
        let mut k = ExtensionKernels::new();
        k.ensure_universe(64);
        k.push_level_copy(&[1, 2, 3, 5, 8]);
        assert_eq!(k.top(), &[1, 2, 3, 5, 8]);
        k.push_level_intersect(&[2, 3, 4, 8]);
        assert_eq!(k.top(), &[2, 3, 8]);
        k.push_level_intersect(&[8]);
        assert_eq!(k.top(), &[8]);
        assert_eq!(k.depth(), 3);
        k.pop_level();
        assert_eq!(k.top(), &[2, 3, 8]);
        k.push_level_intersect(&[]);
        assert!(k.top().is_empty());
        k.reset_levels();
        assert_eq!(k.depth(), 0);
        let c = k.take_counters();
        assert!(c.arena_high_water_bytes > 0);
        assert!(k.counters().is_empty());
    }

    #[test]
    fn arena_intersect_matches_naive_on_random_chains() {
        // Pseudo-random sorted sets via a fixed LCG; compare the arena
        // chain against naive progressive intersection.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for trial in 0..50 {
            let mut k = ExtensionKernels::new();
            k.ensure_universe(2048);
            let mk = |next: &mut dyn FnMut(u32) -> u32| {
                let len = next(300) as usize;
                let mut v: Vec<u32> = (0..len).map(|_| next(2048)).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let base = mk(&mut next);
            k.push_level_copy(&base);
            let mut want = base.clone();
            for _ in 0..4 {
                let other = mk(&mut next);
                k.push_level_intersect(&other);
                want.retain(|x| other.binary_search(x).is_ok());
                assert_eq!(k.top(), &want[..], "trial {trial}");
            }
        }
    }

    #[test]
    fn union_matches_sort_dedup() {
        let mut k = ExtensionKernels::new();
        let lists: Vec<Vec<u32>> = vec![
            vec![5, 9, 40],
            vec![],
            (0..50).step_by(5).collect(),
            vec![9, 10, 11],
        ];
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut out = Vec::new();
        k.union_sorted_into(&refs, &mut out);
        let mut want: Vec<u32> = lists.iter().flatten().copied().collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(out, want);
        // Single and empty inputs.
        k.union_sorted_into(&[&[1, 2][..]], &mut out);
        assert_eq!(out, vec![1, 2]);
        k.union_sorted_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn retain_mapped_keeps_live_pairs_sorted() {
        // vmap keeps vertices 2,4,6 -> 0,1,2; emap keeps edges 1,3 -> 0,1.
        let mut vmap = vec![u32::MAX; 8];
        vmap[2] = 0;
        vmap[4] = 1;
        vmap[6] = 2;
        let mut emap = vec![u32::MAX; 5];
        emap[1] = 0;
        emap[3] = 1;
        let nbrs = [1, 2, 4, 6];
        let eids = [0, 1, 3, 4];
        let (mut ov, mut oe) = (Vec::new(), Vec::new());
        let mut c = KernelCounters::default();
        retain_mapped(&nbrs, &eids, &vmap, &emap, &mut ov, &mut oe, &mut c);
        assert_eq!(ov, vec![0, 1]);
        assert_eq!(oe, vec![0, 1]);
        assert_eq!(c.elements_scanned, 4);
        assert_eq!(c.bitset_calls, 1);
    }

    #[test]
    fn counters_absorb_and_take() {
        let mut a = KernelCounters {
            merge_calls: 1,
            gallop_calls: 2,
            bitset_calls: 3,
            elements_scanned: 10,
            arena_high_water_bytes: 100,
        };
        let b = KernelCounters {
            merge_calls: 1,
            arena_high_water_bytes: 50,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.merge_calls, 2);
        assert_eq!(a.calls(), 7);
        assert_eq!(a.arena_high_water_bytes, 100);
        let taken = a.take();
        assert_eq!(taken.calls(), 7);
        assert!(a.is_empty());
    }
}
