//! Mutable graph construction with validation, frozen into [`Graph`].

use crate::keywords::{KeywordSets, KeywordTable};
use crate::{EdgeId, Graph, GraphError, KeywordId, Label, VertexId};
use std::collections::HashSet;

/// Builder that accumulates vertices and edges, validates the model
/// constraints (no self-loops, no duplicate undirected edges) and freezes
/// into an immutable CSR [`Graph`].
///
/// ```
/// use fractal_graph::{GraphBuilder, Label, VertexId};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(Label(0));
/// let v = b.add_vertex(Label(1));
/// b.add_edge(u, v, Label(7)).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// assert!(g.are_adjacent(u, v));
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    vertex_labels: Vec<u32>,
    edges: Vec<(u32, u32, u32)>,
    edge_set: HashSet<(u32, u32)>,
    vertex_keywords: Vec<Vec<KeywordId>>,
    edge_keywords: Vec<Vec<KeywordId>>,
    keyword_table: KeywordTable,
    has_keywords: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `n` vertices and `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            vertex_labels: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
            edge_set: HashSet::with_capacity(m),
            ..Self::default()
        }
    }

    /// Adds a vertex with the given primary label; returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::from_index(self.vertex_labels.len());
        self.vertex_labels.push(label.raw());
        self.vertex_keywords.push(Vec::new());
        id
    }

    /// Current number of vertices added.
    pub fn num_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Current number of edges added.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected labeled edge, rejecting self-loops, unknown
    /// endpoints and duplicates. Returns the edge id.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: Label,
    ) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u.raw()));
        }
        let n = self.vertex_labels.len() as u32;
        if u.raw() >= n {
            return Err(GraphError::UnknownVertex(u.raw()));
        }
        if v.raw() >= n {
            return Err(GraphError::UnknownVertex(v.raw()));
        }
        let key = (u.raw().min(v.raw()), u.raw().max(v.raw()));
        if !self.edge_set.insert(key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push((key.0, key.1, label.raw()));
        self.edge_keywords.push(Vec::new());
        Ok(id)
    }

    /// Adds an edge unless it already exists; returns the id of the new edge
    /// or `None` when it was a duplicate. Used by random generators where
    /// duplicate proposals are expected.
    pub fn add_edge_dedup(&mut self, u: VertexId, v: VertexId, label: Label) -> Option<EdgeId> {
        match self.add_edge(u, v, label) {
            Ok(id) => Some(id),
            Err(GraphError::DuplicateEdge(..)) => None,
            Err(_) => None,
        }
    }

    /// Whether the undirected edge `(u, v)` was already added.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = (u.raw().min(v.raw()), u.raw().max(v.raw()));
        self.edge_set.contains(&key)
    }

    /// Interns a keyword string for later use in `add_*_keyword`.
    pub fn intern_keyword(&mut self, name: &str) -> KeywordId {
        self.has_keywords = true;
        self.keyword_table.intern(name)
    }

    /// Attaches keyword `k` to vertex `v`.
    pub fn add_vertex_keyword(&mut self, v: VertexId, k: KeywordId) {
        self.has_keywords = true;
        self.vertex_keywords[v.index()].push(k);
    }

    /// Attaches keyword `k` to edge `e`.
    pub fn add_edge_keyword(&mut self, e: EdgeId, k: KeywordId) {
        self.has_keywords = true;
        self.edge_keywords[e.index()].push(k);
    }

    /// Freezes the accumulated graph into its immutable CSR form.
    ///
    /// O(V + E log E): adjacency is built by counting sort over endpoints and
    /// each neighborhood is then sorted by neighbor id.
    pub fn build(self) -> Graph {
        let n = self.vertex_labels.len();
        let m = self.edges.len();

        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut nbr_vertices = vec![0u32; 2 * m];
        let mut nbr_edges = vec![0u32; 2 * m];
        let mut edge_src = vec![0u32; m];
        let mut edge_dst = vec![0u32; m];
        let mut edge_labels = vec![0u32; m];
        for (e, &(u, v, l)) in self.edges.iter().enumerate() {
            edge_src[e] = u;
            edge_dst[e] = v;
            edge_labels[e] = l;
            let cu = cursor[u as usize] as usize;
            nbr_vertices[cu] = v;
            nbr_edges[cu] = e as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            nbr_vertices[cv] = u;
            nbr_edges[cv] = e as u32;
            cursor[v as usize] += 1;
        }
        // Sort each neighborhood by neighbor id, keeping edge ids aligned.
        let mut perm: Vec<u32> = Vec::new();
        for i in 0..n {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            let span = hi - lo;
            if span <= 1 {
                continue;
            }
            perm.clear();
            perm.extend(0..span as u32);
            let vs = &nbr_vertices[lo..hi];
            perm.sort_unstable_by_key(|&p| vs[p as usize]);
            let sorted_v: Vec<u32> = perm
                .iter()
                .map(|&p| nbr_vertices[lo + p as usize])
                .collect();
            let sorted_e: Vec<u32> = perm.iter().map(|&p| nbr_edges[lo + p as usize]).collect();
            nbr_vertices[lo..hi].copy_from_slice(&sorted_v);
            nbr_edges[lo..hi].copy_from_slice(&sorted_e);
        }

        let num_vertex_labels = self
            .vertex_labels
            .iter()
            .copied()
            .max()
            .map_or(0, |l| l + 1);
        let num_edge_labels = edge_labels.iter().copied().max().map_or(0, |l| l + 1);

        let (vertex_keywords, edge_keywords, keyword_table) = if self.has_keywords {
            (
                Some(KeywordSets::from_sets(self.vertex_keywords)),
                Some(KeywordSets::from_sets(self.edge_keywords)),
                Some(self.keyword_table),
            )
        } else {
            (None, None, None)
        };

        let g = Graph {
            offsets,
            nbr_vertices,
            nbr_edges,
            edge_src,
            edge_dst,
            vertex_labels: self.vertex_labels,
            edge_labels,
            vertex_keywords,
            edge_keywords,
            keyword_table,
            num_vertex_labels,
            num_edge_labels,
        };
        debug_assert!(g.validate().is_ok(), "builder produced invalid graph");
        g
    }
}

/// Builds a graph from explicit vertex labels and an edge list; convenience
/// for tests and examples.
///
/// `edges` entries are `(u, v, label)` triples over indices into `labels`.
pub fn graph_from_edges(labels: &[u32], edges: &[(u32, u32, u32)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_vertex(Label(l));
    }
    for &(u, v, l) in edges {
        b.add_edge(VertexId(u), VertexId(v), Label(l))
            .expect("invalid edge in graph_from_edges");
    }
    b.build()
}

/// Builds an unlabeled graph (all labels zero) from an edge list over
/// `n` vertices.
pub fn unlabeled_from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
    let labels = vec![0u32; n];
    let triples: Vec<(u32, u32, u32)> = edges.iter().map(|&(u, v)| (u, v, 0)).collect();
    graph_from_edges(&labels, &triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(Label(0));
        assert!(matches!(
            b.add_edge(v, v, Label(0)),
            Err(GraphError::SelfLoop(0))
        ));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(Label(0));
        assert!(matches!(
            b.add_edge(v, VertexId(5), Label(0)),
            Err(GraphError::UnknownVertex(5))
        ));
    }

    #[test]
    fn rejects_duplicate_in_both_orientations() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        b.add_edge(u, v, Label(0)).unwrap();
        assert!(matches!(
            b.add_edge(v, u, Label(1)),
            Err(GraphError::DuplicateEdge(0, 1))
        ));
        assert_eq!(b.add_edge_dedup(u, v, Label(0)), None);
    }

    #[test]
    fn neighborhoods_sorted_with_aligned_edge_ids() {
        // Insert edges in scrambled order; CSR must come out sorted.
        let g = unlabeled_from_edges(4, &[(2, 0), (3, 0), (1, 0)]);
        assert_eq!(g.neighbors(VertexId(0)), &[1, 2, 3]);
        for (&nbr, &e) in g
            .neighbors(VertexId(0))
            .iter()
            .zip(g.incident_edges(VertexId(0)))
        {
            let (s, d) = g.edge_endpoints(EdgeId(e));
            assert!(s == VertexId(0) || d == VertexId(0));
            assert!(s == VertexId(nbr) || d == VertexId(nbr));
        }
    }

    #[test]
    fn keywords_preserved() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        let e = b.add_edge(u, v, Label(0)).unwrap();
        let k1 = b.intern_keyword("drama");
        let k2 = b.intern_keyword("cruise");
        b.add_vertex_keyword(u, k2);
        b.add_edge_keyword(e, k1);
        b.add_edge_keyword(e, k2);
        let g = b.build();
        assert_eq!(g.vertex_keywords(u), &[k2]);
        assert_eq!(g.edge_keywords(e), &[k1, k2]);
        assert_eq!(g.keyword_table().unwrap().name(k1), "drama");
        assert!(g.edge_has_keyword(e, k1));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }
}
