//! Property-based tests for the graph substrate.

use fractal_graph::bitset::Bitset;
use fractal_graph::{GraphBuilder, Label, VertexId};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edge list with dedup handled by
/// the builder).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32, u32)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 0u32..4u32), 0..60);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, u32)]) -> fractal_graph::Graph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_vertex(Label(i as u32 % 3));
    }
    for &(u, v, l) in edges {
        if u != v {
            b.add_edge_dedup(VertexId(u), VertexId(v), Label(l));
        }
    }
    b.build()
}

proptest! {
    /// Every built graph passes internal validation.
    #[test]
    fn builder_always_valid((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        prop_assert!(g.validate().is_ok());
    }

    /// Adjacency is symmetric and consistent with edge endpoint tables.
    #[test]
    fn adjacency_symmetric((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                prop_assert!(g.neighbors(VertexId(u)).binary_search(&v.raw()).is_ok());
                prop_assert!(g.are_adjacent(v, VertexId(u)));
            }
        }
        // Handshake lemma.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    /// edge_between agrees with a brute-force scan of the endpoint table.
    #[test]
    fn edge_lookup_agrees_with_scan((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for u in g.vertices() {
            for v in g.vertices() {
                if u >= v { continue; }
                let scan = g.edges().find(|&e| {
                    let (a, b) = g.edge_endpoints(e);
                    (a, b) == (u, v)
                });
                prop_assert_eq!(g.edge_between(u, v), scan);
            }
        }
    }

    /// Neighborhood intersection equals the set-based definition.
    #[test]
    fn intersection_is_setwise((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        for u in g.vertices() {
            for v in g.vertices() {
                g.intersect_neighbors(u, v, &mut buf);
                let a: std::collections::BTreeSet<u32> = g.neighbors(u).iter().copied().collect();
                let b: std::collections::BTreeSet<u32> = g.neighbors(v).iter().copied().collect();
                let expect: Vec<u32> = a.intersection(&b).copied().collect();
                prop_assert_eq!(&buf, &expect);
            }
        }
    }

    /// Reduction with full masks preserves the graph; with a random vertex
    /// mask it keeps exactly the induced edges, relabeled consistently.
    #[test]
    fn reduction_induced_semantics((n, edges) in arb_graph(), keep_bits in proptest::collection::vec(any::<bool>(), 30)) {
        let g = build(n, &edges);
        let mut vmask = Bitset::new(g.num_vertices());
        for v in 0..g.num_vertices() {
            if keep_bits[v % keep_bits.len()] {
                vmask.set(v);
            }
        }
        let r = g.reduce(&vmask, &Bitset::full(g.num_edges()));
        // Kept edge count equals brute-force count of edges with both
        // endpoints kept.
        let expect = g.edges().filter(|&e| {
            let (a, b) = g.edge_endpoints(e);
            vmask.get(a.index()) && vmask.get(b.index())
        }).count();
        prop_assert_eq!(r.graph.num_edges(), expect);
        // Every reduced edge maps back to an original edge between the
        // mapped endpoints, with the same label.
        for e in r.graph.edges() {
            let (a, b) = r.graph.edge_endpoints(e);
            let (oa, ob) = (r.to_orig_vertex(a), r.to_orig_vertex(b));
            let oe = r.to_orig_edge(e);
            let (s, d) = g.edge_endpoints(oe);
            prop_assert_eq!((s, d), (oa.min(ob), oa.max(ob)));
            prop_assert_eq!(g.edge_label(oe), r.graph.edge_label(e));
            prop_assert_eq!(g.vertex_label(oa), r.graph.vertex_label(a));
        }
    }

    /// Adjacency-list round trip preserves the graph exactly.
    #[test]
    fn io_roundtrip((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        fractal_graph::io::write_adjacency_list(&g, &mut buf).unwrap();
        let g2 = fractal_graph::io::read_adjacency_list(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.vertex_label(v), g.vertex_label(v));
        }
    }
}
