//! Property tests for the extension hot-path kernels: every variant
//! (merge / gallop / bitset / adaptive, with and without the lower-bound
//! filter) must equal the naive reference intersection on random sorted
//! sets and on Mico-like generated graphs, and the arena level stack must
//! behave exactly like a stack of freshly-allocated `Vec`s.

use fractal_graph::kernels::{
    gallop_into, intersect, intersect_above, merge_into, seek_above, ExtensionKernels,
    KernelCounters,
};
use fractal_graph::{gen, VertexId};
use proptest::prelude::*;

/// Naive reference: binary-search membership of `a`'s elements in `b`.
fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter()
        .copied()
        .filter(|x| b.binary_search(x).is_ok())
        .collect()
}

fn naive_intersect_above(a: &[u32], b: &[u32], lo: u32) -> Vec<u32> {
    naive_intersect(a, b)
        .into_iter()
        .filter(|&x| x > lo)
        .collect()
}

/// A random sorted, deduplicated set over a bounded universe.
fn arb_sorted_set(universe: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..universe, 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn merge_equals_naive(
        a in arb_sorted_set(512, 120),
        b in arb_sorted_set(512, 120),
    ) {
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        merge_into(&a, &b, &mut out, &mut c);
        prop_assert_eq!(out, naive_intersect(&a, &b));
        prop_assert_eq!(c.merge_calls, 1);
    }

    #[test]
    fn gallop_equals_naive_both_orders(
        a in arb_sorted_set(512, 40),
        b in arb_sorted_set(512, 200),
    ) {
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        gallop_into(&a, &b, &mut out, &mut c);
        prop_assert_eq!(&out, &naive_intersect(&a, &b));
        // Galloping the large list through the small one must agree too.
        let mut out2 = Vec::new();
        gallop_into(&b, &a, &mut out2, &mut c);
        prop_assert_eq!(out2, out);
        prop_assert_eq!(c.gallop_calls, 2);
    }

    #[test]
    fn adaptive_equals_naive(
        a in arb_sorted_set(2048, 300),
        b in arb_sorted_set(2048, 300),
    ) {
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        intersect(&a, &b, &mut out, &mut c);
        prop_assert_eq!(out, naive_intersect(&a, &b));
        if !a.is_empty() && !b.is_empty() {
            prop_assert_eq!(c.calls(), 1);
        }
    }

    #[test]
    fn bitset_and_stateful_equal_naive(
        a in arb_sorted_set(1024, 300),
        b in arb_sorted_set(1024, 300),
    ) {
        let mut k = ExtensionKernels::new();
        k.ensure_universe(1024);
        let mut out = Vec::new();
        // Forced bitset path.
        if a.len() <= b.len() {
            k.bitset_into(&a, &b, &mut out);
        } else {
            k.bitset_into(&b, &a, &mut out);
        }
        prop_assert_eq!(&out, &naive_intersect(&a, &b));
        // Adaptive stateful path (may pick any of the three kernels).
        k.intersect_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &naive_intersect(&a, &b));
        prop_assert!(k.counters().calls() >= 1 || a.is_empty() || b.is_empty());
    }

    #[test]
    fn lower_bound_variants_equal_naive(
        a in arb_sorted_set(512, 150),
        b in arb_sorted_set(512, 150),
        lo in 0u32..512,
    ) {
        let want = naive_intersect_above(&a, &b, lo);
        let mut out = Vec::new();
        let mut c = KernelCounters::default();
        intersect_above(&a, &b, lo, &mut out, &mut c);
        prop_assert_eq!(&out, &want);
        let mut k = ExtensionKernels::new();
        k.ensure_universe(512);
        k.intersect_above_into(&a, &b, lo, &mut out);
        prop_assert_eq!(&out, &want);
        // seek_above is the single-list degenerate case.
        let above: Vec<u32> = a.iter().copied().filter(|&x| x > lo).collect();
        prop_assert_eq!(seek_above(&a, lo), &above[..]);
    }

    #[test]
    fn union_equals_sort_dedup(
        lists in proptest::collection::vec(arb_sorted_set(256, 60), 0..6),
    ) {
        let mut k = ExtensionKernels::new();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut out = Vec::new();
        k.union_sorted_into(&refs, &mut out);
        let mut want: Vec<u32> = lists.iter().flatten().copied().collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(out, want);
    }

    #[test]
    fn anchored_union_equals_union_plus_first_membership(
        lists in proptest::collection::vec(arb_sorted_set(256, 60), 0..6),
    ) {
        let mut k = ExtensionKernels::new();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let (mut out, mut anchors) = (Vec::new(), Vec::new());
        k.union_sorted_anchored_into(&refs, &mut out, &mut anchors);
        let mut plain = Vec::new();
        k.union_sorted_into(&refs, &mut plain);
        prop_assert_eq!(&out, &plain);
        prop_assert_eq!(anchors.len(), out.len());
        for (&u, &a) in out.iter().zip(&anchors) {
            let want = lists
                .iter()
                .position(|l| l.binary_search(&u).is_ok())
                .expect("union element missing from every list");
            prop_assert_eq!(a as usize, want);
        }
    }

    #[test]
    fn arena_stack_equals_vec_stack(
        base in arb_sorted_set(512, 200),
        others in proptest::collection::vec(arb_sorted_set(512, 200), 1..5),
        pops in 0usize..3,
    ) {
        let mut k = ExtensionKernels::new();
        k.ensure_universe(512);
        // Reference: a stack of owned Vecs.
        let mut stack: Vec<Vec<u32>> = vec![base.clone()];
        k.push_level_copy(&base);
        for o in &others {
            let top = stack.last().unwrap();
            stack.push(naive_intersect(top, o));
            k.push_level_intersect(o);
            prop_assert_eq!(k.top(), &stack.last().unwrap()[..]);
        }
        for _ in 0..pops.min(others.len()) {
            stack.pop();
            k.pop_level();
            prop_assert_eq!(k.top(), &stack.last().unwrap()[..]);
        }
        prop_assert_eq!(k.depth(), stack.len());
        k.reset_levels();
        prop_assert_eq!(k.depth(), 0);
    }

    #[test]
    fn graph_intersect_neighbors_equals_naive_on_mico(
        seed in 0u64..8,
        u in 0u32..200,
        v in 0u32..200,
    ) {
        let g = gen::mico_like(200, 3, seed);
        let mut out = Vec::new();
        let n = g.intersect_neighbors(VertexId(u), VertexId(v), &mut out);
        let want = naive_intersect(g.neighbors(VertexId(u)), g.neighbors(VertexId(v)));
        prop_assert_eq!(n, want.len());
        prop_assert_eq!(out, want);
    }

    #[test]
    fn stateful_kernels_equal_naive_on_mico_adjacency(
        seed in 0u64..4,
        pairs in proptest::collection::vec((0u32..300, 0u32..300, 0u32..300), 1..20),
    ) {
        let g = gen::mico_like(300, 3, seed);
        let mut k = ExtensionKernels::new();
        k.ensure_universe(g.num_vertices());
        let mut out = Vec::new();
        for &(u, v, lo) in &pairs {
            let (a, b) = (g.neighbors(VertexId(u)), g.neighbors(VertexId(v)));
            k.intersect_into(a, b, &mut out);
            prop_assert_eq!(&out, &naive_intersect(a, b));
            k.intersect_above_into(a, b, lo, &mut out);
            prop_assert_eq!(&out, &naive_intersect_above(a, b, lo));
        }
    }
}
