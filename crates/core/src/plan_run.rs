//! Parallel execution of compiled counting plans (the decomposed path).
//!
//! The enumeration engine ([`crate::engine`]) runs pattern-blind DFS over
//! subgraph enumerators; this module runs the *other* execution strategy —
//! a [`CountingPlan`] compiled by the pattern-decomposition planner — on
//! the same work-stealing runtime. Root words are plain vertices: every
//! unit evaluates the whole plan DAG rooted at one vertex and accumulates
//! per-node embedding counts, which the driver combines (inclusion–
//! exclusion, Möbius inversion) only after all roots are in.
//!
//! Replay safety mirrors the enumeration engine's staged-commit protocol:
//! per-unit values land in a scratch vector and fold into the core's
//! durable accumulator only when `process_unit` returns normally, so
//! fault-injected re-executions never double-count a root.

use crate::context::FractalGraph;
use crate::engine::ExecutionReport;
use fractal_graph::Graph;
use fractal_pattern::canon::CanonicalCode;
use fractal_pattern::{CountingPlan, PlanExecutor};
use fractal_runtime::executor::{run_job_with, CoreCtx, CoreTask, ExternalHooks, JobSpec};
use fractal_runtime::level::GlobalCoreId;
use fractal_runtime::stats::{JobReport, PlannerStats};
use fractal_runtime::sync::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// The runtime job of one compiled plan: roots default to the graph's
/// vertices (a driver partition can override them), `totals` collects the
/// per-node sums merged by core `finish`.
struct PlanJobSpec<'a> {
    graph: &'a Graph,
    plan: &'a CountingPlan,
    /// Driver-assigned root partition for distributed passes.
    roots_override: Option<Vec<u64>>,
    totals: Mutex<Vec<i128>>,
}

impl JobSpec for PlanJobSpec<'_> {
    fn roots(&self) -> Vec<u64> {
        match &self.roots_override {
            Some(roots) => roots.clone(),
            None => (0..self.graph.num_vertices() as u64).collect(),
        }
    }

    fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
        let n = self.plan.nodes.len();
        Box::new(PlanCoreTask {
            spec: self,
            exec: PlanExecutor::new(self.graph, self.plan),
            durable: vec![0; n],
            staged: vec![0; n],
        })
    }
}

/// Per-core plan evaluation with staged commits (see module docs).
struct PlanCoreTask<'a> {
    spec: &'a PlanJobSpec<'a>,
    exec: PlanExecutor<'a>,
    /// Per-node sums committed by completed units.
    durable: Vec<i128>,
    /// Per-unit staging buffer, folded into `durable` on unit commit.
    staged: Vec<i128>,
}

impl PlanCoreTask<'_> {
    fn state_bytes(&self) -> u64 {
        ((self.durable.len() + self.staged.len()) * std::mem::size_of::<i128>()) as u64
    }
}

impl CoreTask for PlanCoreTask<'_> {
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
        debug_assert!(prefix.is_empty(), "plan jobs are single-level");
        self.staged.iter_mut().for_each(|v| *v = 0);
        self.exec.eval_root(word as u32, &mut self.staged);
        // Commit: the unit completed, so its staged per-node values become
        // durable. A unit unwound mid-flight never reaches this point.
        for (d, s) in self.durable.iter_mut().zip(&self.staged) {
            *d += *s;
        }
        ctx.add_ec(self.exec.take_ec());
        let kc = self.exec.take_counters();
        if !kc.is_empty() {
            ctx.add_kernels(
                kc.merge_calls,
                kc.gallop_calls,
                kc.bitset_calls,
                kc.elements_scanned,
                kc.arena_high_water_bytes,
            );
        }
        ctx.track_state_bytes(self.state_bytes());
    }

    fn abort_unit(&mut self, _ctx: &mut CoreCtx<'_>) {
        // Discard everything the failed attempt staged; the extension-cost
        // and kernel counters of the aborted attempt would double-count.
        self.staged.iter_mut().for_each(|v| *v = 0);
        let _ = self.exec.take_ec();
        let _ = self.exec.take_counters();
    }

    fn finish(&mut self, ctx: &mut CoreCtx<'_>) {
        ctx.track_state_bytes(self.state_bytes());
        let mut totals = self.spec.totals.lock();
        for (t, d) in totals.iter_mut().zip(&self.durable) {
            *t += *d;
        }
    }
}

/// Runs a compiled plan over all roots of the graph on the work-stealing
/// runtime, returning the raw per-node totals (rooted embedding counts
/// summed over every root vertex) and the execution report. The report's
/// single step carries the plan's compile-time counters in
/// [`JobReport::planner`](fractal_runtime::stats::JobReport).
pub fn run_plan_counts(fg: &FractalGraph, plan: &CountingPlan) -> (Vec<i128>, ExecutionReport) {
    let t0 = Instant::now();
    let (totals, report) = run_plan_pass(fg, plan, None, None);
    (
        totals,
        ExecutionReport {
            steps: vec![report],
            elapsed: t0.elapsed(),
            participation: None,
        },
    )
}

/// One worker pass of a distributed decomposed run: evaluate only the
/// driver-assigned `roots` (plus any words pulled via `hooks`), returning
/// this worker's raw per-node partial totals and the runtime report. The
/// caller ships the totals to the driver, which sums partials element-wise
/// over all workers — per-root values are independent, so partial sums
/// merge exactly — and finalizes via its own identically-compiled plan.
pub fn execute_plan_step_distributed(
    fg: &FractalGraph,
    plan: &CountingPlan,
    roots: Vec<u64>,
    hooks: Option<Arc<dyn ExternalHooks>>,
) -> (Vec<i128>, JobReport) {
    run_plan_pass(fg, plan, Some(roots), hooks)
}

fn run_plan_pass(
    fg: &FractalGraph,
    plan: &CountingPlan,
    roots_override: Option<Vec<u64>>,
    hooks: Option<Arc<dyn ExternalHooks>>,
) -> (Vec<i128>, JobReport) {
    let spec = PlanJobSpec {
        graph: fg.graph(),
        plan,
        roots_override,
        totals: Mutex::new(vec![0; plan.nodes.len()]),
    };
    let mut report = run_job_with(&spec, fg.config(), hooks);
    let c = plan.counters();
    report.planner = PlannerStats {
        plans_compiled: c.plans_compiled,
        subpatterns_counted: c.subpatterns_counted,
        ie_terms: c.ie_terms,
    };
    let totals = std::mem::take(&mut *spec.totals.lock());
    (totals, report)
}

/// Runs a compiled plan end to end: evaluate all roots in parallel, then
/// combine the per-node totals into final counts keyed by canonical code
/// (induced counts for motif plans, subgraph counts for pattern plans).
pub fn run_plan(
    fg: &FractalGraph,
    plan: &CountingPlan,
) -> (Vec<(CanonicalCode, u64)>, ExecutionReport) {
    let (totals, report) = run_plan_counts(fg, plan);
    (plan.finalize(&totals), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FractalContext;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_pattern::{exec, GraphStats, Pattern};
    use fractal_runtime::ClusterConfig;

    fn fg_of(n: usize, edges: &[(u32, u32)], workers: usize, cores: usize) -> FractalGraph {
        FractalContext::new(ClusterConfig::local(workers, cores))
            .fractal_graph(unlabeled_from_edges(n, edges))
    }

    /// Deterministic pseudo-random graph (same scheme as the pattern-crate
    /// oracle tests).
    fn lcg_edges(n: u32, seed: u64, density: u64) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33) % 100 < density {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    #[test]
    fn parallel_triangle_count_matches_serial() {
        let fg = fg_of(
            5,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
            2,
            2,
        );
        let plan = CountingPlan::plan_pattern(&Pattern::clique(3), GraphStats::of(fg.graph()));
        let (counts, report) = run_plan(&fg, &plan);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].1, 10); // C(5,3) triangles in K5
        assert!(report.total_ec() > 0);
        let step = &report.steps[0];
        assert_eq!(step.planner.plans_compiled, plan.counters().plans_compiled);
        assert_eq!(
            step.planner.subpatterns_counted,
            plan.counters().subpatterns_counted
        );
        assert_eq!(step.planner.ie_terms, plan.counters().ie_terms);
    }

    #[test]
    fn parallel_motifs_match_single_threaded_executor() {
        for k in 3..=5 {
            let edges = lcg_edges(10, 77, 45);
            let fg = fg_of(10, &edges, 2, 3);
            let plan = CountingPlan::plan_motifs(k, GraphStats::of(fg.graph()));
            let (mut counts, _) = run_plan(&fg, &plan);
            counts.sort();
            let mut serial = exec::motifs_decomposed(fg.graph(), k);
            serial.sort();
            assert_eq!(counts, serial, "k={k}");
        }
    }

    #[test]
    fn raw_totals_are_per_node_sums() {
        let edges = lcg_edges(8, 5, 50);
        let fg = fg_of(8, &edges, 1, 2);
        let plan = CountingPlan::plan_pattern(&Pattern::path(4), GraphStats::of(fg.graph()));
        let (totals, _) = run_plan_counts(&fg, &plan);
        let (serial, _, _) = exec::count_all_roots(fg.graph(), &plan);
        assert_eq!(totals, serial);
    }
}
