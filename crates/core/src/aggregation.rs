//! The aggregation primitive (A): type-erased named aggregations.
//!
//! An aggregation is defined by the paper's four functions (Fig. 4, W2):
//! key extraction, value extraction, value reduction and an optional final
//! filter over the reduced mapping. Each core accumulates into a private
//! *shard*; shards are merged at the step barrier and the merged result is
//! stored under the aggregation's name for downstream aggregation filters
//! (W4) and output operators (O2).

use crate::view::SubgraphView;
use std::any::Any;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Object-safe aggregation specification (type-erased over K/V).
pub trait AggregatorSpec: Send + Sync {
    /// The aggregation's name (the paper's `aggName`).
    fn name(&self) -> &str;
    /// Creates an empty per-core shard.
    fn new_shard(&self) -> Box<dyn AggShard>;
}

/// A per-core accumulation shard.
///
/// Shards are also the unit of *replay-safe staging*: the engine
/// accumulates each dispatched unit into a staging shard and commits it
/// into the core's durable shard only when the unit completes
/// ([`drain_into`](Self::drain_into)), or discards it when the supervisor
/// aborts the unit for re-execution ([`reset`](Self::reset)). This is what
/// makes fault recovery exactly-once for aggregations.
pub trait AggShard: Send + Sync {
    /// Folds one subgraph into the shard.
    fn accumulate(&mut self, view: &SubgraphView<'_>);
    /// Merges another shard of the same aggregation into this one.
    fn merge_from(&mut self, other: Box<dyn AggShard>);
    /// Moves every entry of this shard into `target` (same aggregation),
    /// leaving this shard empty but reusable — the per-unit commit path,
    /// which must not reallocate either shard.
    fn drain_into(&mut self, target: &mut dyn AggShard);
    /// Discards all entries, restoring the freshly-created state (the
    /// per-unit abort path).
    fn reset(&mut self);
    /// Applies the final `aggFilter`, dropping entries that fail it.
    fn finalize(&mut self);
    /// Number of reduced entries.
    fn len(&self) -> usize;
    /// Total [`accumulate`](Self::accumulate) calls folded into this shard,
    /// including through merges (monotonic; feeds the flight recorder's
    /// aggregation-flush accounting).
    fn accumulated(&self) -> u64;
    /// Whether the shard holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Estimated live bytes (memory accounting).
    fn resident_bytes(&self) -> usize;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support (mutable; used by [`drain_into`](Self::drain_into)
    /// implementations to reach the target's concrete type).
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Downcast support (owned).
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

type ExtractFn<T> = Arc<dyn Fn(&SubgraphView<'_>) -> T + Send + Sync>;
type ReduceFn<V> = Arc<dyn Fn(&mut V, V) + Send + Sync>;
type FilterFn<K, V> = Arc<dyn Fn(&K, &V) -> bool + Send + Sync>;

/// A typed aggregation over keys `K` and values `V` — the generic engine
/// behind [`crate::Fractoid::aggregate`].
pub struct Aggregator<K, V> {
    name: String,
    key_fn: ExtractFn<K>,
    value_fn: ExtractFn<V>,
    reduce_fn: ReduceFn<V>,
    agg_filter: Option<FilterFn<K, V>>,
}

impl<K, V> Aggregator<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Builds an aggregation from the paper's three core functions.
    pub fn new(
        name: impl Into<String>,
        key_fn: impl Fn(&SubgraphView<'_>) -> K + Send + Sync + 'static,
        value_fn: impl Fn(&SubgraphView<'_>) -> V + Send + Sync + 'static,
        reduce_fn: impl Fn(&mut V, V) + Send + Sync + 'static,
    ) -> Self {
        Aggregator {
            name: name.into(),
            key_fn: Arc::new(key_fn),
            value_fn: Arc::new(value_fn),
            reduce_fn: Arc::new(reduce_fn),
            agg_filter: None,
        }
    }

    /// Adds the optional final filter over reduced `(key, value)` entries.
    pub fn with_filter(mut self, f: impl Fn(&K, &V) -> bool + Send + Sync + 'static) -> Self {
        self.agg_filter = Some(Arc::new(f));
        self
    }

    /// Extracts the reduced mapping from a shard of this aggregation's
    /// type, consuming the shard. The serialization boundary of distributed
    /// runs: workers call this to turn their merged local shard into a
    /// wire-encodable map. Panics on a type mismatch.
    pub fn take_map(shard: Box<dyn AggShard>) -> HashMap<K, V> {
        shard
            .into_any()
            .downcast::<TypedShard<K, V>>()
            .expect("aggregation type mismatch")
            .map
    }

    /// Rebuilds a shard of this aggregation from a decoded mapping — the
    /// inverse of [`Aggregator::take_map`], used by the driver to seed a
    /// globally merged result back into a fractoid store.
    pub fn shard_from_map(&self, map: HashMap<K, V>) -> Box<dyn AggShard> {
        let accumulated = map.len() as u64;
        let approx_bytes = map.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>() + 32);
        Box::new(TypedShard {
            map,
            key_fn: self.key_fn.clone(),
            value_fn: self.value_fn.clone(),
            reduce_fn: self.reduce_fn.clone(),
            agg_filter: self.agg_filter.clone(),
            approx_bytes,
            accumulated,
        })
    }
}

struct TypedShard<K, V> {
    map: HashMap<K, V>,
    key_fn: ExtractFn<K>,
    value_fn: ExtractFn<V>,
    reduce_fn: ReduceFn<V>,
    agg_filter: Option<FilterFn<K, V>>,
    /// Rough per-entry size estimate maintained incrementally.
    approx_bytes: usize,
    /// Total accumulate calls (monotonic, merged additively).
    accumulated: u64,
}

impl<K, V> AggregatorSpec for Aggregator<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn new_shard(&self) -> Box<dyn AggShard> {
        Box::new(TypedShard {
            map: HashMap::new(),
            key_fn: self.key_fn.clone(),
            value_fn: self.value_fn.clone(),
            reduce_fn: self.reduce_fn.clone(),
            agg_filter: self.agg_filter.clone(),
            approx_bytes: 0,
            accumulated: 0,
        })
    }
}

impl<K, V> AggShard for TypedShard<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn accumulate(&mut self, view: &SubgraphView<'_>) {
        self.accumulated += 1;
        let key = (self.key_fn)(view);
        let value = (self.value_fn)(view);
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                (self.reduce_fn)(e.get_mut(), value);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.approx_bytes += std::mem::size_of::<K>() + std::mem::size_of::<V>() + 32;
                e.insert(value);
            }
        }
    }

    fn merge_from(&mut self, other: Box<dyn AggShard>) {
        let other = other
            .into_any()
            .downcast::<TypedShard<K, V>>()
            .expect("merging shards of different aggregations");
        self.accumulated += other.accumulated;
        for (k, v) in other.map {
            match self.map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    (self.reduce_fn)(e.get_mut(), v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.approx_bytes += std::mem::size_of::<K>() + std::mem::size_of::<V>() + 32;
                    e.insert(v);
                }
            }
        }
    }

    fn drain_into(&mut self, target: &mut dyn AggShard) {
        let target = target
            .as_any_mut()
            .downcast_mut::<TypedShard<K, V>>()
            .expect("draining into a shard of a different aggregation");
        target.accumulated += self.accumulated;
        self.accumulated = 0;
        self.approx_bytes = 0;
        for (k, v) in self.map.drain() {
            match target.map.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    (self.reduce_fn)(e.get_mut(), v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    target.approx_bytes += std::mem::size_of::<K>() + std::mem::size_of::<V>() + 32;
                    e.insert(v);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.map.clear();
        self.approx_bytes = 0;
        self.accumulated = 0;
    }

    fn finalize(&mut self) {
        if let Some(f) = &self.agg_filter {
            self.map.retain(|k, v| f(k, v));
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn accumulated(&self) -> u64 {
        self.accumulated
    }

    fn resident_bytes(&self) -> usize {
        self.approx_bytes
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// A merged, finalized aggregation result stored under its name.
pub struct AggResult {
    shard: Box<dyn AggShard>,
}

impl AggResult {
    pub(crate) fn new(shard: Box<dyn AggShard>) -> Self {
        AggResult { shard }
    }

    /// Wraps a shard as a result without finalizing it. Used when seeding
    /// driver-merged aggregations, whose final filter the driver already
    /// applied globally (filtering per-worker partials would be wrong).
    pub fn from_shard(shard: Box<dyn AggShard>) -> Self {
        AggResult { shard }
    }

    /// The reduced mapping, downcast to its concrete types. Panics when the
    /// requested types differ from the aggregation's actual types.
    pub fn map<K, V>(&self) -> &HashMap<K, V>
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        &self
            .shard
            .as_any()
            .downcast_ref::<TypedShard<K, V>>()
            .expect("aggregation type mismatch")
            .map
    }

    /// Whether `key` is present (the usual aggregation-filter probe).
    pub fn contains_key<K, V>(&self, key: &K) -> bool
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.map::<K, V>().contains_key(key)
    }

    /// Number of reduced entries.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// Total subgraphs folded into this result across all cores.
    pub fn accumulated(&self) -> u64 {
        self.shard.accumulated()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// Estimated live bytes.
    pub fn resident_bytes(&self) -> usize {
        self.shard.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_enum::Subgraph;
    use fractal_graph::builder::unlabeled_from_edges;

    fn count_agg() -> Aggregator<usize, u64> {
        Aggregator::new(
            "counts",
            |view| view.num_vertices(),
            |_| 1u64,
            |acc, v| *acc += v,
        )
    }

    #[test]
    fn accumulate_and_reduce() {
        let g = unlabeled_from_edges(3, &[(0, 1), (1, 2)]);
        let spec = count_agg();
        let mut shard = spec.new_shard();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        sg.push_vertex_induced(&g, 1);
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        let result = AggResult::new(shard);
        assert_eq!(result.map::<usize, u64>()[&1], 1);
        assert_eq!(result.map::<usize, u64>()[&2], 2);
        assert_eq!(result.len(), 2);
        assert_eq!(result.accumulated(), 3);
        assert!(result.resident_bytes() > 0);
    }

    #[test]
    fn merge_shards() {
        let g = unlabeled_from_edges(2, &[(0, 1)]);
        let spec = count_agg();
        let mut a = spec.new_shard();
        let mut b = spec.new_shard();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        a.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        b.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        a.merge_from(b);
        let result = AggResult::new(a);
        assert_eq!(result.map::<usize, u64>()[&1], 2);
        assert_eq!(result.accumulated(), 2);
    }

    #[test]
    fn final_filter_drops_entries() {
        let g = unlabeled_from_edges(3, &[(0, 1), (1, 2)]);
        let spec = count_agg().with_filter(|_, &v| v >= 2);
        let mut shard = spec.new_shard();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        sg.push_vertex_induced(&g, 1);
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        shard.finalize();
        let result = AggResult::new(shard);
        assert_eq!(result.len(), 1);
        assert!(result.contains_key::<usize, u64>(&2));
        assert!(!result.contains_key::<usize, u64>(&1));
    }

    #[test]
    fn drain_into_commits_and_empties_the_staging_shard() {
        let g = unlabeled_from_edges(3, &[(0, 1), (1, 2)]);
        let spec = count_agg();
        let mut durable = spec.new_shard();
        let mut staged = spec.new_shard();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        durable.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        staged.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        sg.push_vertex_induced(&g, 1);
        staged.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        staged.drain_into(&mut *durable);
        assert!(staged.is_empty());
        assert_eq!(staged.accumulated(), 0);
        assert_eq!(staged.resident_bytes(), 0);
        // The staging shard is immediately reusable for the next unit.
        staged.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        assert_eq!(staged.accumulated(), 1);
        let result = AggResult::new(durable);
        assert_eq!(result.map::<usize, u64>()[&1], 2);
        assert_eq!(result.map::<usize, u64>()[&2], 1);
        assert_eq!(result.accumulated(), 3);
    }

    #[test]
    fn reset_discards_staged_entries() {
        let g = unlabeled_from_edges(2, &[(0, 1)]);
        let spec = count_agg();
        let mut shard = spec.new_shard();
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        shard.accumulate(&SubgraphView {
            graph: &g,
            subgraph: &sg,
        });
        assert!(!shard.is_empty());
        shard.reset();
        assert!(shard.is_empty());
        assert_eq!(shard.accumulated(), 0);
        assert_eq!(shard.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "aggregation type mismatch")]
    fn downcast_mismatch_panics() {
        let spec = count_agg();
        let result = AggResult::new(spec.new_shard());
        let _ = result.map::<u64, u64>();
    }
}
