//! User-facing views of subgraphs during and after execution.

use fractal_enum::Subgraph;
use fractal_graph::{EdgeId, Graph, VertexId};
use fractal_pattern::canon::{CanonicalForm, CodeCache};
use fractal_pattern::{CanonicalCode, Pattern};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-thread canonicalization cache: enumeration revisits the same few
    /// raw pattern shapes constantly, so this makes the hot aggregation key
    /// a single hash lookup.
    static CODE_CACHE: RefCell<CodeCache> = RefCell::new(CodeCache::new());
}

/// Canonical form of `p` through the per-thread memo cache.
pub fn canonical_form_cached(p: &Pattern) -> Arc<CanonicalForm> {
    CODE_CACHE.with(|c| c.borrow_mut().canonical_form(p))
}

/// The live subgraph a filter / aggregation closure observes (read-only).
///
/// Ids are in terms of the graph the fractoid executes on; when that graph
/// is a reduction of a larger one, output operators translate back to
/// original ids, but filters see the compact ids (matching the paper, where
/// filters run on the materialized reduced view).
pub struct SubgraphView<'a> {
    /// The input graph of the executing step.
    pub graph: &'a Graph,
    /// The subgraph under the cursor of the DFS.
    pub subgraph: &'a Subgraph,
}

impl SubgraphView<'_> {
    /// Vertices in insertion order.
    #[inline]
    pub fn vertices(&self) -> &[u32] {
        self.subgraph.vertices()
    }

    /// Edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[u32] {
        self.subgraph.edges()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.subgraph.num_vertices()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.subgraph.num_edges()
    }

    /// The most recently added edge.
    #[inline]
    pub fn last_edge(&self) -> Option<EdgeId> {
        self.subgraph.last_edge()
    }

    /// The most recently added vertex.
    #[inline]
    pub fn last_vertex(&self) -> Option<VertexId> {
        self.subgraph.last_vertex()
    }

    /// Edges added by the latest vertex extension (Listing 2's clique
    /// check compares this against `num_vertices - 1`).
    #[inline]
    pub fn last_level_edge_count(&self) -> usize {
        self.subgraph.last_level_edge_count()
    }

    /// Whether the current subgraph is a complete clique.
    pub fn is_clique(&self) -> bool {
        let k = self.num_vertices();
        self.num_edges() == k * (k - 1) / 2
    }

    /// The raw (uncanonicalized) pattern of this subgraph.
    pub fn pattern(&self, use_vlabels: bool, use_elabels: bool) -> Pattern {
        self.subgraph.pattern(self.graph, use_vlabels, use_elabels)
    }

    /// The canonical code of this subgraph's pattern (cached per thread) —
    /// the paper's `ρ(S)`, the usual aggregation key.
    pub fn pattern_code(&self, use_vlabels: bool, use_elabels: bool) -> CanonicalCode {
        canonical_form_cached(&self.pattern(use_vlabels, use_elabels))
            .code
            .clone()
    }

    /// Canonical form (code + permutation of the subgraph's vertex order
    /// onto canonical positions); FSM's minimum-image support needs the
    /// permutation.
    pub fn canonical_form(&self, use_vlabels: bool, use_elabels: bool) -> Arc<CanonicalForm> {
        canonical_form_cached(&self.pattern(use_vlabels, use_elabels))
    }
}

/// An owned result subgraph reported by the output operators, with ids
/// already translated to the **original** input graph when the fractoid ran
/// on a reduced view.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SubgraphData {
    /// Vertex ids (original graph).
    pub vertices: Vec<u32>,
    /// Edge ids (original graph).
    pub edges: Vec<u32>,
}

impl SubgraphData {
    /// Sorted copy (for set comparisons in tests).
    pub fn normalized(mut self) -> Self {
        self.vertices.sort_unstable();
        self.edges.sort_unstable();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::unlabeled_from_edges;

    #[test]
    fn view_accessors_and_clique_check() {
        let g = unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut sg = Subgraph::new(&g);
        sg.push_vertex_induced(&g, 0);
        sg.push_vertex_induced(&g, 1);
        sg.push_vertex_induced(&g, 2);
        let view = SubgraphView {
            graph: &g,
            subgraph: &sg,
        };
        assert_eq!(view.num_vertices(), 3);
        assert!(view.is_clique());
        assert_eq!(view.last_level_edge_count(), 2);
        assert_eq!(view.pattern_code(false, false).num_vertices(), 3);
    }

    #[test]
    fn cached_form_is_stable() {
        let p = Pattern::clique(3);
        let a = canonical_form_cached(&p);
        let b = canonical_form_cached(&p);
        assert_eq!(a.code, b.code);
    }

    #[test]
    fn normalized_sorts() {
        let d = SubgraphData {
            vertices: vec![3, 1],
            edges: vec![5, 2],
        }
        .normalized();
        assert_eq!(d.vertices, vec![1, 3]);
        assert_eq!(d.edges, vec![2, 5]);
    }
}
