//! The execution engine: Algorithm 2 (from-scratch step splitting) driving
//! Algorithm 1 (DFS step processing) on the work-stealing runtime.

use crate::aggregation::{AggResult, AggShard};
use crate::fractoid::{Fractoid, Primitive};
use crate::view::{SubgraphData, SubgraphView};
use fractal_enum::{Subgraph, SubgraphEnumerator};
use fractal_graph::bitset::Bitset;
use fractal_graph::Graph;
use fractal_runtime::executor::{run_job, run_job_with, CoreCtx, CoreTask, ExternalHooks, JobSpec};
use fractal_runtime::level::GlobalCoreId;
use fractal_runtime::stats::JobReport;
use fractal_runtime::sync::Mutex;
use fractal_runtime::sync::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared store of computed aggregation results, keyed by the `uid` of the
/// Aggregate primitive that produced them. Shared across fractoids derived
/// from one another, so "the execution engine reuses their results on every
/// subsequent step once they are computed" (§4.1) — including across the
/// re-executions of an iterative application like FSM.
#[derive(Default)]
pub struct AggStore {
    inner: Mutex<HashMap<u64, Arc<AggResult>>>,
}

impl AggStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches a computed result.
    pub fn get(&self, uid: u64) -> Option<Arc<AggResult>> {
        self.inner.lock().get(&uid).cloned()
    }

    /// Stores a computed result.
    pub fn insert(&self, uid: u64, result: Arc<AggResult>) {
        self.inner.lock().insert(uid, result);
    }

    /// Whether a result exists.
    pub fn contains(&self, uid: u64) -> bool {
        self.inner.lock().contains_key(&uid)
    }

    /// Total resident bytes of stored results (memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().values().map(|r| r.resident_bytes()).sum()
    }
}

/// Vertex/edge participation masks: which elements of the executed graph
/// belonged to at least one result subgraph. This feeds the transparent
/// graph reduction of §4.3 (Equation 1).
#[derive(Debug, Clone)]
pub struct Participation {
    /// Vertices that appeared in a result subgraph.
    pub vertices: Bitset,
    /// Edges that appeared in a result subgraph.
    pub edges: Bitset,
}

/// What the execution produces besides aggregations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Only aggregations (O2).
    None,
    /// Count result subgraphs.
    Count,
    /// Collect result subgraphs (O1).
    Collect,
    /// Only participation masks (transparent reduction support).
    TrackOnly,
}

impl OutputMode {
    fn tracks_participation(self) -> bool {
        matches!(self, OutputMode::TrackOnly)
    }
    fn collects(self) -> bool {
        matches!(self, OutputMode::Collect)
    }
    fn counts(self) -> bool {
        matches!(self, OutputMode::Count)
    }
}

/// Collected outputs of an execution.
#[derive(Debug, Default)]
pub struct OutputData {
    /// Result subgraphs (Collect mode), ids in original-graph terms.
    pub subgraphs: Vec<SubgraphData>,
    /// Result count (Count mode).
    pub count: u64,
}

/// Statistics and artifacts of executing a fractoid.
#[derive(Debug)]
pub struct ExecutionReport {
    /// One runtime report per fractal step, in execution order.
    pub steps: Vec<JobReport>,
    /// Total wall-clock time including step orchestration.
    pub elapsed: Duration,
    /// Participation masks (TrackOnly mode).
    pub participation: Option<Participation>,
}

impl ExecutionReport {
    /// Number of fractal steps the workflow was split into.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total extension cost over all steps (§4.3's EC metric).
    pub fn total_ec(&self) -> u64 {
        self.steps.iter().map(|s| s.total_ec()).sum()
    }

    /// Peak per-worker intermediate state over all steps, in bytes
    /// (Table 2's metric).
    pub fn peak_worker_state_bytes(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| s.worker_state_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Total successful `(internal, external)` steals.
    pub fn steals(&self) -> (u64, u64) {
        self.steps.iter().fold((0, 0), |(i, e), s| {
            let (si, se) = s.steals();
            (i + si, e + se)
        })
    }

    /// Writes the flight-recorder event traces of all steps as one JSONL
    /// stream (no-op for steps executed without tracing).
    pub fn write_trace_jsonl(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        for step in &self.steps {
            if let Some(trace) = &step.trace {
                trace.write_jsonl(out)?;
            }
        }
        Ok(())
    }
}

/// Splits the workflow into fractal steps (Algorithm 2): a step boundary
/// sits before every aggregation filter whose source aggregation is not in
/// the store. Returns the exclusive end index of each step; each step runs
/// `primitives[0..end]` from scratch.
pub(crate) fn split_steps(fractoid: &Fractoid) -> Vec<usize> {
    let prims = &fractoid.primitives;
    let mut known: Vec<u64> = Vec::new(); // uids computed by earlier steps
    let mut ends = Vec::new();
    for (i, p) in prims.iter().enumerate() {
        if let Primitive::AggFilter { name, .. } = p {
            // panic-ok: plan-split-time validation, once per job — an unknown
            // aggregation name is a programming error in the workflow and must
            // surface before any work runs.
            let source = resolve_source(prims, i, name);
            let source = source
                .unwrap_or_else(|| panic!("aggregation filter reads unknown aggregation {name:?}"));
            if !fractoid.store.contains(source) && !known.contains(&source) {
                ends.push(i);
                // Everything before the boundary is computed once this step
                // runs.
                for p in &prims[..i] {
                    if let Primitive::Aggregate { uid, .. } = p {
                        known.push(*uid);
                    }
                }
            }
        }
    }
    ends.push(prims.len());
    ends
}

/// The uid of the nearest preceding Aggregate named `name`.
fn resolve_source(prims: &[Primitive], idx: usize, name: &str) -> Option<u64> {
    prims[..idx].iter().rev().find_map(|p| match p {
        Primitive::Aggregate { uid, spec } if spec.name() == name => Some(*uid),
        _ => None,
    })
}

/// Executes a fractoid: split into steps, run each step on the runtime,
/// merge and publish aggregations between steps.
pub(crate) fn execute(fractoid: &Fractoid, mode: OutputMode) -> (ExecutionReport, OutputData) {
    let t0 = Instant::now();
    let prims = &fractoid.primitives;
    assert!(
        matches!(prims.first(), Some(Primitive::Expand)),
        "a fractal workflow must start with expand()"
    );
    let ends = split_steps(fractoid);
    // panic-ok: split_steps returns at least one boundary for a workflow
    // that passed the expand() assert above.
    let last = *ends.last().unwrap();
    let mut reports = Vec::with_capacity(ends.len());
    let mut output = OutputData::default();
    let mut participation: Option<Participation> = None;

    for &end in &ends {
        if end == 0 {
            continue;
        }
        let is_final = end == last;
        // Output and participation apply only to the final step's results.
        let step_mode = if is_final { mode } else { OutputMode::None };
        let spec = StepSpec::build(fractoid, &prims[..end], step_mode);
        let report = run_job(&spec, &fractoid.fgraph.config);
        // Publish freshly computed aggregations.
        let mut merged = spec.merged.lock();
        for (slot, uid) in spec.live_agg_uids.iter().enumerate() {
            let mut shard = merged[slot].take().unwrap_or_else(|| {
                // No core ran (empty roots): produce an empty shard.
                spec.live_agg_specs[slot].new_shard()
            });
            shard.finalize();
            fractoid.store.insert(*uid, Arc::new(AggResult::new(shard)));
        }
        drop(merged);
        if is_final {
            if step_mode.collects() {
                output.subgraphs = std::mem::take(&mut spec.collected.lock());
            }
            // ordering: Relaxed — counter is read after all workers joined.
            output.count = spec.counter.load(Ordering::Relaxed);
            if step_mode.tracks_participation() {
                participation = spec.participation.lock().take();
            }
        }
        reports.push(report);
    }

    (
        ExecutionReport {
            steps: reports,
            elapsed: t0.elapsed(),
            participation,
        },
        output,
    )
}

/// What one distributed worker pass over a step produces: the local count,
/// the local runtime report and the *unfinalized* merged shard of every
/// live aggregation (in workflow order). Nothing is published to the
/// fractoid's store — the driver owns the global merge + finalize.
pub struct StepOutcome {
    /// Local result-subgraph count (Count mode only).
    pub count: u64,
    /// This worker's runtime report for the pass.
    pub report: JobReport,
    /// Unfinalized merged shards, one per live aggregation in workflow
    /// order.
    pub shards: Vec<Box<dyn AggShard>>,
}

/// Executes one fractal step of a distributed run: enumerate only the
/// given `roots` (the driver's partition for this worker), optionally pull
/// extra root words from an external steal source via `hooks`, and return
/// the unfinalized local results instead of publishing them.
///
/// The workflow must form a *single* step from this fractoid's point of
/// view: every aggregation filter's source must already be in the store
/// (seeded via [`Fractoid::seed_aggregation`] for iterative applications
/// like FSM). The driver enforces this by splitting rounds itself.
pub(crate) fn execute_step_distributed(
    fractoid: &Fractoid,
    roots: Vec<u64>,
    count: bool,
    hooks: Option<Arc<dyn ExternalHooks>>,
) -> StepOutcome {
    let prims = &fractoid.primitives;
    assert!(
        matches!(prims.first(), Some(Primitive::Expand)),
        "a fractal workflow must start with expand()"
    );
    let ends = split_steps(fractoid);
    assert_eq!(
        ends.len(),
        1,
        "distributed step execution requires a single-step workflow \
         (seed upstream aggregations first); got {} steps",
        ends.len()
    );
    let mode = if count {
        OutputMode::Count
    } else {
        OutputMode::None
    };
    let mut spec = StepSpec::build(fractoid, prims, mode);
    spec.roots_override = Some(roots);
    let report = run_job_with(&spec, &fractoid.fgraph.config, hooks);
    let mut merged = spec.merged.lock();
    let shards: Vec<Box<dyn AggShard>> = spec
        .live_agg_uids
        .iter()
        .enumerate()
        .map(|(slot, _)| {
            merged[slot]
                .take()
                .unwrap_or_else(|| spec.live_agg_specs[slot].new_shard())
        })
        .collect();
    drop(merged);
    StepOutcome {
        // ordering: Relaxed — counter is read after all workers joined.
        count: spec.counter.load(Ordering::Relaxed),
        report,
        shards,
    }
}

/// Per-primitive pre-resolved execution info.
enum Resolved {
    Expand,
    Filter(Arc<crate::fractoid::FilterFn>),
    AggFilter {
        f: Arc<crate::fractoid::AggFilterFn>,
        source: Arc<AggResult>,
    },
    /// A live aggregation accumulating into shard `slot`.
    AggregateLive(usize),
    /// An aggregation computed by an earlier step: pure pass-through.
    AggregateReplayed,
}

/// The runtime job of one fractal step.
struct StepSpec<'a> {
    fractoid: &'a Fractoid,
    graph: &'a Graph,
    resolved: Vec<Resolved>,
    /// Position of each Expand primitive in `resolved`.
    ext_indices: Vec<usize>,
    /// Spec of each live aggregation, by slot.
    live_agg_specs: Vec<Arc<dyn crate::aggregation::AggregatorSpec>>,
    /// Uid of each live aggregation, by slot.
    live_agg_uids: Vec<u64>,
    /// Merged shards (one per live slot), filled by core `finish`.
    merged: Mutex<Vec<Option<Box<dyn AggShard>>>>,
    mode: OutputMode,
    /// Distributed runs partition root words across worker processes: when
    /// set, this worker enumerates only the given roots instead of the full
    /// root frontier (the driver owns the partitioning).
    roots_override: Option<Vec<u64>>,
    /// Pre-kernel compatibility mode (see `ClusterConfig::engine_compat`).
    compat: bool,
    collected: Mutex<Vec<SubgraphData>>,
    counter: AtomicU64,
    participation: Mutex<Option<Participation>>,
}

impl<'a> StepSpec<'a> {
    fn build(fractoid: &'a Fractoid, prims: &'a [Primitive], mode: OutputMode) -> Self {
        let graph: &Graph = &fractoid.fgraph.graph;
        let mut resolved = Vec::with_capacity(prims.len());
        let mut ext_indices = Vec::new();
        let mut live_agg_specs = Vec::new();
        let mut live_agg_uids = Vec::new();
        for (i, p) in prims.iter().enumerate() {
            match p {
                Primitive::Expand => {
                    ext_indices.push(i);
                    resolved.push(Resolved::Expand);
                }
                Primitive::Filter(f) => resolved.push(Resolved::Filter(f.clone())),
                Primitive::AggFilter { name, f } => {
                    // panic-ok: resolution re-walks the same primitives split_steps
                    // already validated; a miss here is unreachable.
                    let uid = resolve_source(prims, i, name)
                        .expect("aggregation filter reads unknown aggregation");
                    let source = fractoid
                        .store
                        .get(uid)
                        // panic-ok: the source aggregation was computed by an
                        // earlier step in the order split_steps produced.
                        .expect("step splitting must have computed the source aggregation");
                    resolved.push(Resolved::AggFilter {
                        f: f.clone(),
                        source,
                    });
                }
                Primitive::Aggregate { uid, spec } => {
                    if fractoid.store.contains(*uid) {
                        resolved.push(Resolved::AggregateReplayed);
                    } else {
                        let slot = live_agg_specs.len();
                        live_agg_specs.push(spec.clone());
                        live_agg_uids.push(*uid);
                        resolved.push(Resolved::AggregateLive(slot));
                    }
                }
            }
        }
        let num_live = live_agg_specs.len();
        StepSpec {
            fractoid,
            graph,
            resolved,
            ext_indices,
            live_agg_specs,
            live_agg_uids,
            merged: Mutex::new((0..num_live).map(|_| None).collect()),
            mode,
            roots_override: None,
            compat: fractoid.fgraph.config.engine_compat,
            collected: Mutex::new(Vec::new()),
            counter: AtomicU64::new(0),
            participation: Mutex::new(None),
        }
    }
}

impl JobSpec for StepSpec<'_> {
    fn roots(&self) -> Vec<u64> {
        if let Some(roots) = &self.roots_override {
            return roots.clone();
        }
        let mut enumerator = (self.fractoid.factory)(self.graph);
        let sg = Subgraph::new(self.graph);
        let mut roots = Vec::new();
        enumerator.compute_extensions(self.graph, &sg, &mut roots);
        roots
    }

    fn make_core_task<'s>(&'s self, _id: GlobalCoreId) -> Box<dyn CoreTask + 's> {
        let shards: Vec<Box<dyn AggShard>> =
            self.live_agg_specs.iter().map(|s| s.new_shard()).collect();
        let staged_shards: Vec<Box<dyn AggShard>> =
            self.live_agg_specs.iter().map(|s| s.new_shard()).collect();
        Box::new(StepTask {
            spec: self,
            enumerator: (self.fractoid.factory)(self.graph),
            sg: Subgraph::new(self.graph),
            shards,
            staged_shards,
            words: Vec::new(),
            collected: Vec::new(),
            staged_collected: Vec::new(),
            count: 0,
            staged_count: 0,
            part: if self.mode.tracks_participation() {
                Some(Participation {
                    vertices: Bitset::new(self.graph.num_vertices()),
                    edges: Bitset::new(self.graph.num_edges()),
                })
            } else {
                None
            },
            levels_since_track: 0,
            levels_registered: 0,
            exts_pool: Vec::new(),
        })
    }
}

/// The per-core DFS of Algorithm 1.
///
/// Result state is split in two: the *durable* side (`shards`,
/// `collected`, `count`) holds only results committed by completed units,
/// while the *staged* side (`staged_shards`, `staged_collected`,
/// `staged_count`) accumulates the unit currently being processed.
/// `process_unit` commits staged → durable on normal return; the
/// supervisor's `abort_unit` discards the staged side before re-executing
/// a failed unit — so retries and worker-death re-executions are
/// exactly-once. Participation masks are exempt: bit-sets are monotone and
/// re-execution re-derives the same bits, so double-marking is idempotent.
struct StepTask<'a> {
    spec: &'a StepSpec<'a>,
    enumerator: Box<dyn SubgraphEnumerator>,
    sg: Subgraph,
    shards: Vec<Box<dyn AggShard>>,
    /// Per-unit staging shards, drained into `shards` on unit commit.
    staged_shards: Vec<Box<dyn AggShard>>,
    words: Vec<u64>,
    collected: Vec<SubgraphData>,
    /// Per-unit staged result subgraphs, appended to `collected` on commit.
    staged_collected: Vec<SubgraphData>,
    count: u64,
    /// Per-unit staged count, folded into `count` on commit.
    staged_count: u64,
    part: Option<Participation>,
    levels_since_track: u32,
    /// Stealable levels currently registered by this unit (bounds how deep
    /// the stealable frontier grows — see [`MAX_REGISTERED_LEVELS`]).
    levels_registered: usize,
    /// Spare extension buffers for inlined (unregistered) levels, one per
    /// active inlined depth, recycled across the whole job.
    exts_pool: Vec<Vec<u64>>,
}

/// How many stealable levels one dispatched unit registers before the DFS
/// switches to inline (queue-free) expansion. Thieves take the shallowest
/// level with work (§4.2) — the largest subtrees — so registering deeper
/// levels mostly buys per-node `Arc`/queue overhead, not balance. The
/// frontier still deepens adaptively: a stolen unit re-registers its own
/// shallowest level on the thief.
const MAX_REGISTERED_LEVELS: usize = 1;

impl StepTask<'_> {
    fn leaf(&mut self) {
        match self.spec.mode {
            OutputMode::Collect => {
                let fg = &self.spec.fractoid.fgraph;
                self.staged_collected.push(SubgraphData {
                    vertices: self
                        .sg
                        .vertices()
                        .iter()
                        .map(|&v| fg.orig_vertex(v))
                        .collect(),
                    edges: self.sg.edges().iter().map(|&e| fg.orig_edge(e)).collect(),
                });
            }
            OutputMode::Count => self.staged_count += 1,
            OutputMode::TrackOnly => {
                // panic-ok: participation is Some whenever the mode is TrackOnly; both
                // are set together at engine construction.
                let p = self.part.as_mut().expect("participation mask missing");
                for &v in self.sg.vertices() {
                    p.vertices.set(v as usize);
                }
                for &e in self.sg.edges() {
                    p.edges.set(e as usize);
                }
            }
            OutputMode::None => {}
        }
    }

    fn state_bytes(&self) -> u64 {
        (self.sg.resident_bytes()
            + self
                .shards
                .iter()
                .chain(self.staged_shards.iter())
                .map(|s| s.resident_bytes())
                .sum::<usize>()
            + (self.collected.len() + self.staged_collected.len()) * 48) as u64
    }

    fn dfs(&mut self, ctx: &mut CoreCtx<'_>, idx: usize) {
        if idx == self.spec.resolved.len() {
            self.leaf();
            return;
        }
        // Split the borrow: `resolved[idx]` is only read, never mutated.
        match &self.spec.resolved[idx] {
            Resolved::Expand => {
                // Registering a stealable level costs a `Vec` + `Arc<LevelQueue>`
                // allocation, a prefix clone and per-word queue atomics at
                // every interior node. Thieves take the shallowest level with
                // work (§4.2) — the largest subtrees — so each unit registers
                // only its shallowest `MAX_REGISTERED_LEVELS` Expand levels
                // and inlines everything deeper (including the deepest level,
                // whose extensions root no further expansion and would only
                // ever yield single-leaf steals). Inlined work stays inside
                // the current unit, so pending-counter accounting is
                // untouched, and the stealable frontier still deepens on
                // demand: a stolen prefix re-registers its own shallowest
                // level on the thief.
                if !self.spec.compat
                    && (Some(&idx) == self.spec.ext_indices.last()
                        || self.levels_registered >= MAX_REGISTERED_LEVELS)
                {
                    let mut exts = self.exts_pool.pop().unwrap_or_default();
                    exts.clear();
                    let ec =
                        self.enumerator
                            .compute_extensions(self.spec.graph, &self.sg, &mut exts);
                    ctx.add_ec(ec);
                    // Terminal count leaves: nothing below this Expand reads
                    // subgraph state, so each extension contributes exactly
                    // one to the tally — count them without materializing
                    // (for KClist that skips a candidate-set intersection
                    // per leaf). `None` leaves are pure no-ops; skip those
                    // outright.
                    if idx + 1 == self.spec.resolved.len() {
                        match self.spec.mode {
                            OutputMode::Count => {
                                self.staged_count += exts.len() as u64;
                                self.exts_pool.push(exts);
                                return;
                            }
                            OutputMode::None => {
                                self.exts_pool.push(exts);
                                return;
                            }
                            OutputMode::Collect | OutputMode::TrackOnly => {}
                        }
                    }
                    for &w in &exts {
                        self.enumerator.extend(self.spec.graph, &mut self.sg, w);
                        self.dfs(ctx, idx + 1);
                        self.enumerator.retract(self.spec.graph, &mut self.sg);
                    }
                    self.exts_pool.push(exts);
                    return;
                }
                let mut exts = Vec::new();
                let ec = self
                    .enumerator
                    .compute_extensions(self.spec.graph, &self.sg, &mut exts);
                ctx.add_ec(ec);
                let level = ctx.push_level(&self.words, exts);
                self.levels_registered += 1;
                self.levels_since_track += 1;
                if self.levels_since_track >= 64 {
                    self.levels_since_track = 0;
                    ctx.track_state_bytes(self.state_bytes());
                }
                while let Some(w) = level.queue.claim() {
                    self.enumerator.extend(self.spec.graph, &mut self.sg, w);
                    self.words.push(w);
                    self.dfs(ctx, idx + 1);
                    self.words.pop();
                    self.enumerator.retract(self.spec.graph, &mut self.sg);
                }
                ctx.pop_level();
                self.levels_registered -= 1;
            }
            Resolved::Filter(f) => {
                let pass = f(&SubgraphView {
                    graph: self.spec.graph,
                    subgraph: &self.sg,
                });
                if pass {
                    self.dfs(ctx, idx + 1);
                }
            }
            Resolved::AggFilter { f, source } => {
                let pass = f(
                    &SubgraphView {
                        graph: self.spec.graph,
                        subgraph: &self.sg,
                    },
                    source,
                );
                if pass {
                    self.dfs(ctx, idx + 1);
                }
            }
            Resolved::AggregateLive(slot) => {
                let slot = *slot;
                let view = SubgraphView {
                    graph: self.spec.graph,
                    subgraph: &self.sg,
                };
                self.staged_shards[slot].accumulate(&view);
                self.dfs(ctx, idx + 1);
            }
            Resolved::AggregateReplayed => {
                self.dfs(ctx, idx + 1);
            }
        }
    }
}

impl CoreTask for StepTask<'_> {
    fn process_unit(&mut self, ctx: &mut CoreCtx<'_>, prefix: &[u64], word: u64) {
        // Rebuild enumeration state from the (possibly stolen) prefix —
        // the from-scratch principle applied to dispatched units.
        self.enumerator
            .rebuild(self.spec.graph, &mut self.sg, prefix);
        self.words.clear();
        self.words.extend_from_slice(prefix);
        self.levels_registered = 0;
        self.enumerator.extend(self.spec.graph, &mut self.sg, word);
        self.words.push(word);
        let resume = self.spec.ext_indices[self.words.len() - 1] + 1;
        self.dfs(ctx, resume);
        self.words.pop();
        self.enumerator.retract(self.spec.graph, &mut self.sg);
        // Commit: the unit completed, so its staged results become
        // durable. Everything before this point is discardable, which is
        // what lets the supervisor re-execute the unit from scratch.
        self.count += self.staged_count;
        self.staged_count = 0;
        if !self.staged_collected.is_empty() {
            self.collected.append(&mut self.staged_collected);
        }
        for (durable, staged) in self.shards.iter_mut().zip(self.staged_shards.iter_mut()) {
            if !staged.is_empty() {
                staged.drain_into(&mut **durable);
            }
        }
        ctx.track_state_bytes(self.state_bytes());
        // Drain the enumerator's kernel counters into the core stats (one
        // flush per unit keeps the hot path counter-local).
        let kc = self.enumerator.take_kernel_counters();
        if !kc.is_empty() {
            ctx.add_kernels(
                kc.merge_calls,
                kc.gallop_calls,
                kc.bitset_calls,
                kc.elements_scanned,
                kc.arena_high_water_bytes,
            );
        }
    }

    fn abort_unit(&mut self, _ctx: &mut CoreCtx<'_>) {
        // Discard everything the failed attempt staged; the re-execution
        // (here or on another core) re-derives it from scratch.
        // Participation masks are intentionally left alone — they are
        // monotone and idempotent under replay (see the struct docs).
        self.staged_count = 0;
        self.staged_collected.clear();
        for s in &mut self.staged_shards {
            s.reset();
        }
        self.levels_registered = 0;
        // Kernel counters of the aborted attempt would double-count scans:
        // drop them.
        let _ = self.enumerator.take_kernel_counters();
    }

    fn finish(&mut self, ctx: &mut CoreCtx<'_>) {
        ctx.track_state_bytes(self.state_bytes());
        for (slot, shard) in self.shards.iter().enumerate() {
            ctx.record_agg_flush(slot as u64, shard.len() as u64);
        }
        let mut merged = self.spec.merged.lock();
        for (slot, shard) in self.shards.drain(..).enumerate() {
            match &mut merged[slot] {
                Some(acc) => acc.merge_from(shard),
                none => *none = Some(shard),
            }
        }
        drop(merged);
        if self.spec.mode.collects() && !self.collected.is_empty() {
            self.spec.collected.lock().append(&mut self.collected);
        }
        if self.spec.mode.counts() {
            // ordering: Relaxed — fetch_add atomicity is all we need; the total is
            // only read after the parallel phase joins.
            self.spec.counter.fetch_add(self.count, Ordering::Relaxed);
        }
        if let Some(p) = self.part.take() {
            let mut global = self.spec.participation.lock();
            match &mut *global {
                Some(g) => {
                    g.vertices.union_with(&p.vertices);
                    g.edges.union_with(&p.edges);
                }
                none => *none = Some(p),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FractalContext;
    use fractal_graph::builder::unlabeled_from_edges;
    use fractal_runtime::ClusterConfig;

    fn ctx() -> FractalContext {
        FractalContext::new(ClusterConfig::local(1, 2))
    }

    /// Triangle + tail: known counts for quick sanity checks.
    fn small() -> crate::context::FractalGraph {
        ctx().fractal_graph(unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]))
    }

    #[test]
    fn count_connected_subgraphs() {
        let fg = small();
        assert_eq!(fg.vfractoid().expand(1).count(), 4);
        assert_eq!(fg.vfractoid().expand(2).count(), 4); // 4 edges
        assert_eq!(fg.vfractoid().expand(3).count(), 3);
    }

    #[test]
    fn count_triangles_with_filter() {
        let fg = small();
        let triangles = fg
            .vfractoid()
            .expand(1)
            .filter(|s| s.last_level_edge_count() == s.num_vertices().saturating_sub(1))
            .explore(3)
            .count();
        assert_eq!(triangles, 1);
    }

    #[test]
    fn subgraph_output_collects_all() {
        let fg = small();
        let mut subs = fg.vfractoid().expand(2).subgraphs();
        subs = subs.into_iter().map(|s| s.normalized()).collect();
        subs.sort();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].vertices, vec![0, 1]);
        assert_eq!(subs[0].edges.len(), 1);
    }

    #[test]
    fn aggregation_counts_by_size_key() {
        let fg = small();
        let agg = fg
            .vfractoid()
            .expand(3)
            .aggregate("by_edges", |s| s.num_edges(), |_| 1u64, |a, v| *a += v)
            .aggregation::<usize, u64>("by_edges");
        // 3-vertex connected subgraphs: one triangle (3 edges) and two
        // paths (2 edges).
        assert_eq!(agg.get(&3), Some(&1));
        assert_eq!(agg.get(&2), Some(&2));
    }

    #[test]
    fn step_splitting_at_agg_filter() {
        let fg = small();
        let f = fg
            .efractoid()
            .expand(1)
            .aggregate("sup", |s| s.num_edges(), |_| 1u64, |a, v| *a += v)
            .filter_agg("sup", |_, agg| !agg.is_empty())
            .expand(1);
        let ends = split_steps(&f);
        assert_eq!(ends, vec![2, 4]);
        // After execution the aggregation is cached: re-splitting a derived
        // fractoid sees no new boundary.
        let report = f.execute();
        assert_eq!(report.num_steps(), 2);
        let extended = f.clone().expand(1);
        let ends2 = split_steps(&extended);
        assert_eq!(ends2, vec![5]);
    }

    #[test]
    fn agg_filter_prunes_and_results_match() {
        // Two-step workflow: count single edges by a bucket key, then only
        // extend subgraphs whose first-edge bucket survived a threshold.
        let fg = small();
        let two_step = fg
            .efractoid()
            .expand(1)
            .aggregate_filtered(
                "bucket",
                |s| s.edges()[0] % 2, // bucket by parity of first edge id
                |_| 1u64,
                |a, v| *a += v,
                |_, &count| count >= 2, // only the bucket with >= 2 edges
            )
            .filter_agg("bucket", |s, agg| {
                agg.contains_key::<u32, u64>(&(s.edges()[0] % 2))
            })
            .expand(1);
        let report = two_step.execute();
        assert_eq!(report.num_steps(), 2);
        let survivors = two_step.count();
        // Edges 0..4: parity buckets {0: edges 0,2; 1: edges 1,3} — both
        // have 2, so nothing pruned; count = all 2-edge connected
        // subgraphs. Tighten the threshold to prune instead:
        let pruned = fg
            .efractoid()
            .expand(1)
            .aggregate_filtered(
                "bucket2",
                |s| s.edges()[0], // each edge its own bucket
                |_| 1u64,
                |a, v| *a += v,
                |&k, _| k == 0, // keep only edge 0's bucket
            )
            .filter_agg("bucket2", |s, agg| {
                agg.contains_key::<u32, u64>(&s.edges()[0])
            })
            .expand(1)
            .count();
        assert!(pruned < survivors);
        // Exactly the 2-edge subgraphs whose canonical first edge is 0:
        // {0,1}, {0,2}, {0,3}? edge 0 = (0,1); adjacent edges are 1,2 ->
        // subgraphs {0,1} and {0,2} (canonical first must be the minimum).
        assert_eq!(pruned, 2);
    }

    #[test]
    fn participation_tracking_marks_result_elements() {
        let fg = small();
        // Track participation of triangles only.
        let report = fg
            .vfractoid()
            .expand(1)
            .filter(|s| s.last_level_edge_count() == s.num_vertices().saturating_sub(1))
            .explore(3)
            .execute_tracking_participation();
        let p = report.participation.expect("participation requested");
        // The triangle is 0,1,2 with edges 0,1,2; vertex 3 and edge 3 are
        // out.
        assert!(p.vertices.get(0) && p.vertices.get(1) && p.vertices.get(2));
        assert!(!p.vertices.get(3));
        assert!(p.edges.get(0) && p.edges.get(1) && p.edges.get(2));
        assert!(!p.edges.get(3));
    }

    #[test]
    fn output_ids_translate_through_reduction() {
        let fg = small();
        // Reduce away vertex 3 (keep 0,1,2) and list triangles.
        let reduced = fg.vfilter(|v, _| v.raw() != 3);
        let subs = reduced
            .vfractoid()
            .expand(3)
            .filter(|s| s.is_clique())
            .subgraphs();
        assert_eq!(subs.len(), 1);
        let s = subs[0].clone().normalized();
        // Ids are original-graph ids.
        assert_eq!(s.vertices, vec![0, 1, 2]);
        assert_eq!(s.edges, vec![0, 1, 2]);
    }

    #[test]
    fn traced_run_records_agg_flushes_and_levels() {
        use fractal_runtime::trace::{EventKind, TraceConfig};
        let ctx =
            FractalContext::new(ClusterConfig::local(1, 2).with_trace(TraceConfig::enabled()));
        let fg = ctx.fractal_graph(unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]));
        let report = fg
            .vfractoid()
            .expand(3)
            .aggregate("by_edges", |s| s.num_edges(), |_| 1u64, |a, v| *a += v)
            .execute();
        assert_eq!(report.num_steps(), 1);
        let dump = report.steps[0].trace.as_ref().expect("tracing enabled");
        let count_kind = |k: EventKind| {
            dump.cores
                .iter()
                .flat_map(|c| c.events.iter())
                .filter(|e| e.kind == k)
                .count()
        };
        // One live aggregation slot flushed by each of the two cores.
        assert_eq!(count_kind(EventKind::AggFlush), 2);
        // The DFS registered (and unregistered) the middle enumeration
        // level (the deepest level is inlined and never registered).
        assert!(count_kind(EventKind::LevelPush) > 0);
        assert_eq!(
            count_kind(EventKind::LevelPush),
            count_kind(EventKind::LevelPop)
        );
        // And the JSONL stream of the whole execution is parseable.
        let mut buf = Vec::new();
        report.write_trace_jsonl(&mut buf).unwrap();
        assert!(
            fractal_runtime::TraceDump::parse_jsonl(std::str::from_utf8(&buf).unwrap()).is_ok()
        );
    }

    #[test]
    fn report_exposes_ec_and_steps() {
        let fg = small();
        let (count, report) = fg.vfractoid().expand(3).count_with_report();
        assert_eq!(count, 3);
        assert_eq!(report.num_steps(), 1);
        assert!(report.total_ec() > 0);
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "must start with expand")]
    fn workflow_must_start_with_expand() {
        let fg = small();
        fg.vfractoid().filter(|_| true).count();
    }
}
