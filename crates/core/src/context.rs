//! `FractalContext` and `FractalGraph`: the entry points of the API
//! (Fig. 2/3).

use crate::fractoid::{EnumFactory, Fractoid};
use fractal_enum::enumerator::{EdgeInducedEnumerator, PatternEnumerator, VertexInducedEnumerator};
use fractal_enum::SubgraphEnumerator;
use fractal_graph::{EdgeId, Graph, GraphError, VertexId};
use fractal_pattern::{ExplorationPlan, Pattern};
use fractal_runtime::ClusterConfig;
use std::path::Path;
use std::sync::Arc;

/// Configures and initializes the resources needed to run Fractal
/// applications (the paper's `FractalContext`, C1). Where the original
/// wraps a `SparkContext`, this wraps the simulated cluster configuration.
#[derive(Debug, Clone)]
pub struct FractalContext {
    config: ClusterConfig,
}

impl FractalContext {
    /// Creates a context over the given simulated cluster.
    pub fn new(config: ClusterConfig) -> Self {
        FractalContext { config }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Wraps an in-memory graph as a fractal graph.
    pub fn fractal_graph(&self, graph: Graph) -> FractalGraph {
        self.fractal_graph_shared(Arc::new(graph))
    }

    /// Wraps an already-shared graph snapshot as a fractal graph without
    /// copying it. This is the job-server path: `fractal serve` loads each
    /// registered snapshot once and hands the same `Arc`'d CSR to every
    /// concurrent job that names it.
    pub fn fractal_graph_shared(&self, graph: Arc<Graph>) -> FractalGraph {
        FractalGraph {
            graph,
            config: self.config.clone(),
            orig: None,
        }
    }

    /// Loads a graph in the adjacency-list format (the paper's
    /// `adjacencyList` initialization operator, I1).
    pub fn adjacency_list(&self, path: impl AsRef<Path>) -> Result<FractalGraph, GraphError> {
        Ok(self.fractal_graph(fractal_graph::io::load_adjacency_list(path)?))
    }
}

/// Maps a reduced graph's dense ids back to the original input graph.
#[derive(Debug)]
pub(crate) struct OrigIds {
    pub vertices: Vec<u32>,
    pub edges: Vec<u32>,
}

/// An input graph bound to a cluster configuration; the factory for
/// fractoids (B1–B3) and the carrier of graph reduction (§4.3, Fig. 10).
#[derive(Clone)]
pub struct FractalGraph {
    pub(crate) graph: Arc<Graph>,
    pub(crate) config: ClusterConfig,
    /// Present when this graph is a reduction of a larger input; output
    /// operators translate result ids through it.
    pub(crate) orig: Option<Arc<OrigIds>>,
}

impl FractalGraph {
    /// The underlying (possibly reduced) graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The cluster configuration this graph executes on.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Whether this graph is a reduced view.
    pub fn is_reduced(&self) -> bool {
        self.orig.is_some()
    }

    /// B1: a vertex-induced fractoid.
    pub fn vfractoid(&self) -> Fractoid {
        let factory: EnumFactory = Arc::new(|_g: &Graph| {
            Box::new(VertexInducedEnumerator::new()) as Box<dyn SubgraphEnumerator>
        });
        Fractoid::new(self.clone(), factory)
    }

    /// B1 with a custom subgraph enumerator (Appendix B, Listing 7): the
    /// factory is invoked once per core.
    pub fn vfractoid_with(
        &self,
        factory: impl Fn(&Graph) -> Box<dyn SubgraphEnumerator> + Send + Sync + 'static,
    ) -> Fractoid {
        Fractoid::new(self.clone(), Arc::new(factory))
    }

    /// B2: an edge-induced fractoid.
    pub fn efractoid(&self) -> Fractoid {
        let factory: EnumFactory = Arc::new(|_g: &Graph| {
            Box::new(EdgeInducedEnumerator::new()) as Box<dyn SubgraphEnumerator>
        });
        Fractoid::new(self.clone(), factory)
    }

    /// B3: a pattern-induced fractoid matching vertex and edge labels.
    pub fn pfractoid(&self, pattern: &Pattern) -> Fractoid {
        self.pfractoid_with_labels(pattern, true, true)
    }

    /// B3 ignoring all labels (pure topology matching).
    pub fn pfractoid_unlabeled(&self, pattern: &Pattern) -> Fractoid {
        self.pfractoid_with_labels(pattern, false, false)
    }

    /// B3 with explicit label-matching flags.
    pub fn pfractoid_with_labels(
        &self,
        pattern: &Pattern,
        match_vertex_labels: bool,
        match_edge_labels: bool,
    ) -> Fractoid {
        let plan = Arc::new(ExplorationPlan::new(pattern));
        let factory: EnumFactory = Arc::new(move |_g: &Graph| {
            Box::new(PatternEnumerator::new(
                plan.clone(),
                match_vertex_labels,
                match_edge_labels,
            )) as Box<dyn SubgraphEnumerator>
        });
        Fractoid::new(self.clone(), factory)
    }

    /// R1 (`vfilter`): materializes the reduced graph keeping vertices that
    /// satisfy `f` (plus edges between survivors).
    pub fn vfilter(&self, f: impl FnMut(VertexId, &Graph) -> bool) -> FractalGraph {
        let r = self.graph.vfilter(f);
        self.wrap_reduced(r)
    }

    /// R2 (`efilter`): materializes the reduced graph keeping edges that
    /// satisfy `f` (vertices with no surviving edge are dropped).
    pub fn efilter(&self, f: impl FnMut(EdgeId, &Graph) -> bool) -> FractalGraph {
        let r = self.graph.efilter(f);
        self.wrap_reduced(r)
    }

    /// Wraps a reduction of this graph, composing id maps when this graph
    /// is itself reduced.
    pub fn wrap_reduced(&self, r: fractal_graph::ReducedGraph) -> FractalGraph {
        let (vmap, emap) = match &self.orig {
            None => (r.orig_vertices.clone(), r.orig_edges.clone()),
            Some(prev) => (
                r.orig_vertices
                    .iter()
                    .map(|&v| prev.vertices[v as usize])
                    .collect(),
                r.orig_edges
                    .iter()
                    .map(|&e| prev.edges[e as usize])
                    .collect(),
            ),
        };
        FractalGraph {
            graph: Arc::new(r.graph),
            config: self.config.clone(),
            orig: Some(Arc::new(OrigIds {
                vertices: vmap,
                edges: emap,
            })),
        }
    }

    /// Translates a vertex id of this (possibly reduced) graph to the
    /// original input graph.
    pub fn orig_vertex(&self, v: u32) -> u32 {
        match &self.orig {
            None => v,
            Some(m) => m.vertices[v as usize],
        }
    }

    /// Translates an edge id of this (possibly reduced) graph to the
    /// original input graph.
    pub fn orig_edge(&self, e: u32) -> u32 {
        match &self.orig {
            None => e,
            Some(m) => m.edges[e as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::builder::graph_from_edges;
    use fractal_graph::Label;

    fn ctx() -> FractalContext {
        FractalContext::new(ClusterConfig::local(1, 2))
    }

    #[test]
    fn context_wraps_graph() {
        let g = graph_from_edges(&[0, 1], &[(0, 1, 0)]);
        let fg = ctx().fractal_graph(g);
        assert_eq!(fg.graph().num_edges(), 1);
        assert!(!fg.is_reduced());
        assert_eq!(fg.orig_vertex(1), 1);
    }

    #[test]
    fn reduction_composes_maps() {
        // Path 0-1-2-3 with labels 0,1,1,1; reduce twice.
        let g = graph_from_edges(&[0, 1, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        let fg = ctx().fractal_graph(g);
        // Keep label-1 vertices: 1,2,3 -> path of 3 (ids 0,1,2).
        let r1 = fg.vfilter(|v, g| g.vertex_label(v) == Label(1));
        assert!(r1.is_reduced());
        assert_eq!(r1.graph().num_vertices(), 3);
        assert_eq!(r1.orig_vertex(0), 1);
        // Reduce again: drop the vertex that was originally 3.
        let r2 = r1.vfilter(|v, _| r1.orig_vertex(v.raw()) != 3);
        assert_eq!(r2.graph().num_vertices(), 2);
        assert_eq!(r2.orig_vertex(0), 1);
        assert_eq!(r2.orig_vertex(1), 2);
        // Edge map composes as well: the surviving edge is original edge 1.
        assert_eq!(r2.graph().num_edges(), 1);
        assert_eq!(r2.orig_edge(0), 1);
    }

    #[test]
    fn adjacency_list_loader() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let dir = std::env::temp_dir().join("fractal_core_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.adj");
        fractal_graph::io::save_adjacency_list(&g, &path).unwrap();
        let fg = ctx().adjacency_list(&path).unwrap();
        assert_eq!(fg.graph().num_edges(), 2);
        std::fs::remove_file(path).ok();
    }
}
