//! # fractal-core
//!
//! The core of the Fractal system: the fractoid API (§3.1) and the
//! DFS / from-scratch execution engine (§4.1).
//!
//! A GPM application is written by deriving [`Fractoid`]s from a
//! [`FractalGraph`] and chaining the three computation primitives —
//! extension ([`Fractoid::expand`]), filtering ([`Fractoid::filter`],
//! [`Fractoid::filter_agg`]) and aggregation ([`Fractoid::aggregate`]) —
//! then triggering execution with an output operator
//! ([`Fractoid::subgraphs`], [`Fractoid::count`],
//! [`Fractoid::aggregation`]).
//!
//! Execution follows the paper exactly:
//!
//! * **Algorithm 2** splits the workflow into *fractal steps* at
//!   synchronization points (aggregation filters whose source aggregation
//!   is not yet computed); each step re-runs its ancestors' primitives
//!   *from scratch*, so no intermediate subgraphs are ever stored.
//! * **Algorithm 1** processes one step per core as a DFS over reusable
//!   subgraph enumerators, with every enumeration level registered as a
//!   stealable queue in the runtime (§4.2).
//!
//! One documented generalization: the paper's pseudocode treats aggregation
//! as the final primitive of a step; we let a *live* aggregation accumulate
//! and then continue to any following primitives, which subsumes the
//! paper's behaviour (a trailing aggregation still terminates the
//! recursion) and keeps replayed steps uniform.

pub mod aggregation;
pub mod context;
pub mod engine;
pub mod fractoid;
pub mod plan_run;
pub mod view;

pub use aggregation::{AggResult, AggShard, Aggregator};
pub use context::{FractalContext, FractalGraph};
pub use engine::{ExecutionReport, Participation, StepOutcome};
pub use fractoid::Fractoid;
pub use plan_run::{execute_plan_step_distributed, run_plan, run_plan_counts};
pub use view::{SubgraphData, SubgraphView};

/// The common public API surface.
pub mod prelude {
    pub use crate::aggregation::AggResult;
    pub use crate::context::{FractalContext, FractalGraph};
    pub use crate::engine::ExecutionReport;
    pub use crate::fractoid::Fractoid;
    pub use crate::view::{SubgraphData, SubgraphView};
    pub use fractal_runtime::{ClusterConfig, WsMode};
}
