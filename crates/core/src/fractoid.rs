//! The [`Fractoid`]: the state object all workflow operators act on
//! (§3.1).
//!
//! A fractoid is an immutable value: the input graph, the extension
//! strategy and the ordered primitive workflow. Operators return *new*
//! fractoids ("one can derive a fractoid from either another fractoid or
//! from the input graph"), so workflows compose and every partial result
//! can be executed and inspected separately — the interactive-analysis
//! property the paper emphasizes.

use crate::aggregation::{AggResult, AggShard, Aggregator, AggregatorSpec};
use crate::context::FractalGraph;
use crate::engine::{self, AggStore, ExecutionReport, OutputMode, StepOutcome};
use crate::view::{SubgraphData, SubgraphView};
use fractal_enum::{Subgraph, SubgraphEnumerator};
use fractal_graph::Graph;
use fractal_runtime::executor::ExternalHooks;
use fractal_runtime::sync::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Builds one enumerator per core.
pub type EnumFactory = Arc<dyn Fn(&Graph) -> Box<dyn SubgraphEnumerator> + Send + Sync>;

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

fn fresh_uid() -> u64 {
    // ordering: Relaxed — uniqueness comes from fetch_add atomicity alone; the
    // uid never synchronizes other memory.
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// A local-filter predicate.
pub type FilterFn = dyn Fn(&SubgraphView<'_>) -> bool + Send + Sync;
/// An aggregation-filter predicate (reads a named aggregation result).
pub type AggFilterFn = dyn Fn(&SubgraphView<'_>, &AggResult) -> bool + Send + Sync;

/// One element of a fractoid's workflow — the computation primitives of §3.
#[derive(Clone)]
pub(crate) enum Primitive {
    /// E: one subgraph extension.
    Expand,
    /// F (local): prune by local information.
    Filter(Arc<FilterFn>),
    /// F (aggregation): prune using an upstream named aggregation (W4).
    AggFilter { name: String, f: Arc<AggFilterFn> },
    /// A: map subgraphs to key/value pairs and reduce (W2). The `uid`
    /// identifies this primitive instance in the shared result store.
    Aggregate {
        uid: u64,
        spec: Arc<dyn AggregatorSpec>,
    },
}

impl Primitive {
    /// A short tag for workflow summaries (`EEEA` and the like).
    pub(crate) fn tag(&self) -> char {
        match self {
            Primitive::Expand => 'E',
            Primitive::Filter(_) => 'F',
            Primitive::AggFilter { .. } => 'G',
            Primitive::Aggregate { .. } => 'A',
        }
    }
}

/// The state of a Fractal application: input graph + extension strategy +
/// primitive workflow + shared aggregation results.
#[derive(Clone)]
pub struct Fractoid {
    pub(crate) fgraph: FractalGraph,
    pub(crate) factory: EnumFactory,
    pub(crate) primitives: Vec<Primitive>,
    pub(crate) store: Arc<AggStore>,
}

impl Fractoid {
    pub(crate) fn new(fgraph: FractalGraph, factory: EnumFactory) -> Self {
        Fractoid {
            fgraph,
            factory,
            primitives: Vec::new(),
            store: Arc::new(AggStore::new()),
        }
    }

    /// The graph this fractoid executes on.
    pub fn fractal_graph(&self) -> &FractalGraph {
        &self.fgraph
    }

    /// W1 (`expand`): appends `n` extension primitives.
    pub fn expand(mut self, n: usize) -> Fractoid {
        for _ in 0..n {
            self.primitives.push(Primitive::Expand);
        }
        self
    }

    /// W3 (`filter`): appends a local filter.
    pub fn filter(
        mut self,
        f: impl Fn(&SubgraphView<'_>) -> bool + Send + Sync + 'static,
    ) -> Fractoid {
        self.primitives.push(Primitive::Filter(Arc::new(f)));
        self
    }

    /// W4 (`filter` reading a named aggregation): appends an aggregation
    /// filter. Reading an aggregation that is not yet computed marks a
    /// synchronization point — the step boundary of Algorithm 2.
    pub fn filter_agg(
        mut self,
        agg_name: &str,
        f: impl Fn(&SubgraphView<'_>, &AggResult) -> bool + Send + Sync + 'static,
    ) -> Fractoid {
        self.primitives.push(Primitive::AggFilter {
            name: agg_name.to_string(),
            f: Arc::new(f),
        });
        self
    }

    /// W2 (`aggregate`): appends a named aggregation defined by key,
    /// value and reduction functions.
    pub fn aggregate<K, V>(
        self,
        name: &str,
        key: impl Fn(&SubgraphView<'_>) -> K + Send + Sync + 'static,
        value: impl Fn(&SubgraphView<'_>) -> V + Send + Sync + 'static,
        reduce: impl Fn(&mut V, V) + Send + Sync + 'static,
    ) -> Fractoid
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.aggregate_spec(Arc::new(Aggregator::new(name, key, value, reduce)))
    }

    /// W2 with the optional final `aggFilter` over reduced entries.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate_filtered<K, V>(
        self,
        name: &str,
        key: impl Fn(&SubgraphView<'_>) -> K + Send + Sync + 'static,
        value: impl Fn(&SubgraphView<'_>) -> V + Send + Sync + 'static,
        reduce: impl Fn(&mut V, V) + Send + Sync + 'static,
        agg_filter: impl Fn(&K, &V) -> bool + Send + Sync + 'static,
    ) -> Fractoid
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.aggregate_spec(Arc::new(
            Aggregator::new(name, key, value, reduce).with_filter(agg_filter),
        ))
    }

    /// W2 from a pre-built aggregator specification.
    pub fn aggregate_spec(mut self, spec: Arc<dyn AggregatorSpec>) -> Fractoid {
        self.primitives.push(Primitive::Aggregate {
            uid: fresh_uid(),
            spec,
        });
        self
    }

    /// W5 (`explore`): chains the current workflow fragment so it runs `n`
    /// times in total (Listings 2/4/7: `expand(1).filter(f).explore(k)`
    /// grows k-vertex subgraphs).
    pub fn explore(mut self, n: usize) -> Fractoid {
        if n == 0 {
            self.primitives.clear();
            return self;
        }
        let fragment = self.primitives.clone();
        for _ in 1..n {
            for p in &fragment {
                // Cloned aggregations are distinct primitive instances and
                // get fresh uids so their results don't collide.
                let p = match p {
                    Primitive::Aggregate { spec, .. } => Primitive::Aggregate {
                        uid: fresh_uid(),
                        spec: spec.clone(),
                    },
                    other => other.clone(),
                };
                self.primitives.push(p);
            }
        }
        self
    }

    /// The workflow as a compact tag string (`"EEEA"` for 3-cliques
    /// counting, as in §3).
    pub fn workflow_tags(&self) -> String {
        self.primitives.iter().map(|p| p.tag()).collect()
    }

    /// Number of primitives in the workflow.
    pub fn num_primitives(&self) -> usize {
        self.primitives.len()
    }

    // ---- Distributed-execution support (driver/worker substrate) ----

    /// The root work words of this fractoid's step: the extensions of the
    /// empty subgraph. Deterministic for a given graph + enumerator, so the
    /// driver and every worker compute the same list independently.
    pub fn step_roots(&self) -> Vec<u64> {
        let graph: &Graph = &self.fgraph.graph;
        let mut enumerator = (self.factory)(graph);
        let sg = Subgraph::new(graph);
        let mut roots = Vec::new();
        enumerator.compute_extensions(graph, &sg, &mut roots);
        roots
    }

    /// Number of Aggregate primitives in the workflow (the positional
    /// space of [`Fractoid::seed_aggregation`]).
    pub fn num_aggregations(&self) -> usize {
        self.primitives
            .iter()
            .filter(|p| matches!(p, Primitive::Aggregate { .. }))
            .count()
    }

    /// Seeds the `position`-th Aggregate primitive (0-based, workflow
    /// order) with an externally computed shard, marking it replayed. In a
    /// distributed run the driver ships globally merged + filtered results
    /// of earlier rounds to workers, which seed them positionally before
    /// executing the next round's step; the shard is stored as-is, without
    /// re-applying any final filter.
    pub fn seed_aggregation(&self, position: usize, shard: Box<dyn AggShard>) {
        let uid = self
            .primitives
            .iter()
            .filter_map(|p| match p {
                Primitive::Aggregate { uid, .. } => Some(*uid),
                _ => None,
            })
            .nth(position)
            .unwrap_or_else(|| panic!("no aggregation at position {position} in workflow"));
        self.store
            .insert(uid, Arc::new(AggResult::from_shard(shard)));
    }

    /// Executes this fractoid as one distributed step over the given root
    /// partition, optionally pulling extra roots from an external steal
    /// source. Returns unfinalized local results (see
    /// [`StepOutcome`]); nothing is published to the shared store.
    pub fn execute_step_distributed(
        &self,
        roots: Vec<u64>,
        count: bool,
        hooks: Option<Arc<dyn ExternalHooks>>,
    ) -> StepOutcome {
        engine::execute_step_distributed(self, roots, count, hooks)
    }

    // ---- Output operators (trigger execution; §3.1 Fig. 5) ----

    /// Executes the workflow and returns the execution report (steps,
    /// per-core statistics, participation masks).
    pub fn execute(&self) -> ExecutionReport {
        engine::execute(self, OutputMode::None).0
    }

    /// Executes with participation tracking enabled: the report's masks
    /// record every vertex/edge that belonged to a result subgraph,
    /// enabling the transparent graph reduction of §4.3.
    pub fn execute_tracking_participation(&self) -> ExecutionReport {
        engine::execute(self, OutputMode::TrackOnly).0
    }

    /// O1 (`subgraphs`): executes and returns all result subgraphs, with
    /// ids translated to the original input graph.
    pub fn subgraphs(&self) -> Vec<SubgraphData> {
        self.subgraphs_with_report().0
    }

    /// O1 plus the execution report.
    pub fn subgraphs_with_report(&self) -> (Vec<SubgraphData>, ExecutionReport) {
        let (report, out) = engine::execute(self, OutputMode::Collect);
        (out.subgraphs, report)
    }

    /// Executes and counts result subgraphs without materializing them.
    pub fn count(&self) -> u64 {
        self.count_with_report().0
    }

    /// Count plus the execution report.
    pub fn count_with_report(&self) -> (u64, ExecutionReport) {
        let (report, out) = engine::execute(self, OutputMode::Count);
        (out.count, report)
    }

    /// O2 (`aggregation`): executes and returns the named aggregation's
    /// reduced mapping (from its **last** occurrence in the workflow).
    pub fn aggregation<K, V>(&self, name: &str) -> HashMap<K, V>
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        self.aggregation_result(name).map::<K, V>().clone()
    }

    /// O2 returning the shared result handle (no clone). When the result
    /// was already computed (by this fractoid or an ancestor execution) it
    /// is served from the shared store without re-running the workflow.
    pub fn aggregation_result(&self, name: &str) -> Arc<AggResult> {
        let uid = self
            .primitives
            .iter()
            .rev()
            .find_map(|p| match p {
                Primitive::Aggregate { uid, spec } if spec.name() == name => Some(*uid),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no aggregation named {name:?} in workflow"));
        if let Some(cached) = self.store.get(uid) {
            return cached;
        }
        let (report, _) = engine::execute(self, OutputMode::None);
        drop(report);
        self.store
            .get(uid)
            .expect("aggregation executed but result missing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FractalContext;
    use fractal_runtime::ClusterConfig;

    fn fg() -> FractalGraph {
        let g = fractal_graph::gen::complete(4);
        FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
    }

    #[test]
    fn workflow_tags_match_paper_shorthand() {
        let f = fg()
            .vfractoid()
            .expand(3)
            .aggregate("c", |_| 0u32, |_| 1u64, |a, v| *a += v);
        assert_eq!(f.workflow_tags(), "EEEA");
    }

    #[test]
    fn explore_repeats_fragment() {
        let f = fg().vfractoid().expand(1).filter(|_| true).explore(3);
        assert_eq!(f.workflow_tags(), "EFEFEF");
        let zero = fg().vfractoid().expand(1).explore(0);
        assert_eq!(zero.num_primitives(), 0);
    }

    #[test]
    fn explore_re_uids_aggregates() {
        let f = fg()
            .vfractoid()
            .expand(1)
            .aggregate("a", |_| 0u32, |_| 1u64, |a, v| *a += v)
            .explore(2);
        let uids: Vec<u64> = f
            .primitives
            .iter()
            .filter_map(|p| match p {
                Primitive::Aggregate { uid, .. } => Some(*uid),
                _ => None,
            })
            .collect();
        assert_eq!(uids.len(), 2);
        assert_ne!(uids[0], uids[1]);
    }

    #[test]
    fn fractoids_are_values() {
        let base = fg().vfractoid().expand(1);
        let a = base.clone().expand(1);
        let b = base.clone().expand(2);
        assert_eq!(base.num_primitives(), 1);
        assert_eq!(a.num_primitives(), 2);
        assert_eq!(b.num_primitives(), 3);
    }
}
