//! Semantics tests for workflow composition: mid-workflow aggregations,
//! multiple live aggregations in one step, replay pass-through, and the
//! explore operator's interaction with aggregation uids.

use fractal_core::prelude::*;
use fractal_runtime::ClusterConfig;

fn fg() -> FractalGraph {
    // Triangle + tail (4 vertices, 4 edges).
    let g = fractal_graph::builder::unlabeled_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
    FractalContext::new(ClusterConfig::local(1, 2)).fractal_graph(g)
}

#[test]
fn mid_workflow_aggregation_continues() {
    // Aggregate after 1 expansion, then keep expanding: the documented
    // generalization of Algorithm 1 (live aggregation accumulates, then
    // the recursion continues).
    let f = fg()
        .vfractoid()
        .expand(1)
        .aggregate("singles", |_| 0u32, |_| 1u64, |a, v| *a += v)
        .expand(1)
        .aggregate("pairs", |_| 0u32, |_| 1u64, |a, v| *a += v);
    let singles = f.aggregation::<u32, u64>("singles");
    let pairs = f.aggregation::<u32, u64>("pairs");
    assert_eq!(singles[&0], 4); // 4 vertices
    assert_eq!(pairs[&0], 4); // 4 edges
}

#[test]
fn two_live_aggregations_single_step() {
    // Both aggregations live in the same step (no W4 filter): one pass
    // computes both.
    let f = fg()
        .vfractoid()
        .expand(2)
        .aggregate("by_edges", |s| s.num_edges(), |_| 1u64, |a, v| *a += v)
        .aggregate("total", |_| (), |_| 1u64, |a, v| *a += v);
    let report = f.execute();
    assert_eq!(report.num_steps(), 1);
    let by_edges = f.aggregation::<usize, u64>("by_edges");
    let total = f.aggregation::<(), u64>("total");
    assert_eq!(by_edges[&1], 4);
    assert_eq!(total[&()], 4);
}

#[test]
fn replayed_aggregation_not_double_counted() {
    // Execute a prefix fractoid, then extend it and execute again: the
    // prefix aggregation is replayed as a pass-through and its stored
    // result must not change.
    let prefix = fg()
        .vfractoid()
        .expand(1)
        .aggregate("roots", |_| 0u32, |_| 1u64, |a, v| *a += v);
    let before = prefix.aggregation::<u32, u64>("roots");
    let extended = prefix.clone().expand(2);
    let _ = extended.count(); // re-executes the workflow from scratch
    let after = prefix.aggregation::<u32, u64>("roots");
    assert_eq!(before, after);
    assert_eq!(after[&0], 4);
}

#[test]
fn shared_name_resolves_to_nearest_upstream() {
    // FSM-style name reuse: a W4 filter reads the nearest preceding
    // aggregation with its name, not a later one.
    let f = fg()
        .efractoid()
        .expand(1)
        .aggregate("support", |s| s.edges()[0], |_| 1u64, |a, v| *a += v)
        .filter_agg("support", |s, agg| {
            // Keep only subgraphs whose first edge is an even edge id that
            // exists in the (first) aggregation.
            s.edges()[0] % 2 == 0 && agg.contains_key::<u32, u64>(&s.edges()[0])
        })
        .expand(1)
        .aggregate("support", |s| s.edges()[0], |_| 1u64, |a, v| *a += v);
    let report = f.execute();
    assert_eq!(report.num_steps(), 2);
    // The final aggregation (2-edge subgraphs rooted at even first edge)
    // is what `aggregation("support")` returns — the last occurrence.
    let second = f.aggregation::<u32, u64>("support");
    for key in second.keys() {
        assert_eq!(key % 2, 0, "odd-rooted subgraph slipped through");
    }
}

#[test]
fn explore_after_aggregation_duplicates_fragment() {
    // explore(n) re-uids cloned aggregations; each occurrence publishes
    // its own result, and the name resolves to the last one.
    let f = fg()
        .vfractoid()
        .expand(1)
        .aggregate("cum", |s| s.num_vertices(), |_| 1u64, |a, v| *a += v)
        .explore(3);
    assert_eq!(f.workflow_tags(), "EAEAEA");
    let last = f.aggregation::<usize, u64>("cum");
    // Last occurrence aggregates 3-vertex subgraphs: 3 of them.
    assert_eq!(last[&3], 3);
}

#[test]
fn subgraphs_after_trailing_aggregate() {
    // O1 after a trailing aggregation returns the result subgraphs too
    // (the aggregate is not a dead end).
    let f = fg()
        .vfractoid()
        .expand(2)
        .aggregate("x", |_| 0u32, |_| 1u64, |a, v| *a += v);
    let subs = f.subgraphs();
    assert_eq!(subs.len(), 4);
}

#[test]
fn derived_branches_do_not_collide() {
    // Two branches from one base with same-named aggregations must not
    // share results (uids differ per operator application).
    let base = fg().vfractoid().expand(1);
    let a = base
        .clone()
        .filter(|s| s.vertices()[0] % 2 == 0)
        .expand(1)
        .aggregate("n", |_| 0u32, |_| 1u64, |acc, v| *acc += v);
    let b = base
        .clone()
        .expand(1)
        .aggregate("n", |_| 0u32, |_| 1u64, |acc, v| *acc += v);
    let na = a.aggregation::<u32, u64>("n");
    let nb = b.aggregation::<u32, u64>("n");
    // Branch a only grows from even roots; branch b from all roots.
    assert!(na[&0] < nb[&0]);
    assert_eq!(nb[&0], 4);
}
