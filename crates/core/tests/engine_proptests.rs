//! Property tests for the execution engine: random workflows on random
//! graphs, validated against a sequential oracle that mirrors the
//! documented semantics primitive by primitive.

use fractal_core::prelude::*;
use fractal_enum::canonical::canonical_vertex_extension;
use fractal_graph::{Graph, VertexId};
use fractal_runtime::{ClusterConfig, WsMode};
use proptest::prelude::*;

/// Oracle: sequential DFS over [expand, filter]* with the same canonical
/// rule and filter semantics as the engine.
fn oracle_count(g: &Graph, levels: &[Option<u32>]) -> u64 {
    fn rec(
        g: &Graph,
        levels: &[Option<u32>],
        prefix: &mut Vec<u32>,
        edge_count: &mut usize,
    ) -> u64 {
        let depth = prefix.len();
        if depth == levels.len() {
            return 1;
        }
        let cands: Vec<u32> = if prefix.is_empty() {
            (0..g.num_vertices() as u32).collect()
        } else {
            let mut c: Vec<u32> = prefix
                .iter()
                .flat_map(|&v| g.neighbors(VertexId(v)).iter().copied())
                .filter(|u| !prefix.contains(u))
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        let mut total = 0;
        for u in cands {
            if !canonical_vertex_extension(g, prefix, u) {
                continue;
            }
            // Edges the vertex-induced push would add.
            let added = prefix
                .iter()
                .filter(|&&v| g.are_adjacent(VertexId(v), VertexId(u)))
                .count();
            // The level's filter: min edge-added threshold (None = none).
            if let Some(min_added) = levels[depth] {
                if (added as u32) < min_added && depth > 0 {
                    continue;
                }
            }
            prefix.push(u);
            *edge_count += added;
            total += rec(g, levels, prefix, edge_count);
            *edge_count -= added;
            prefix.pop();
        }
        total
    }
    let mut prefix = Vec::new();
    let mut ec = 0;
    rec(g, levels, &mut prefix, &mut ec)
}

/// Engine: the same workflow built from fractoid operators.
fn engine_count(g: &Graph, levels: &[Option<u32>], cfg: ClusterConfig) -> u64 {
    let fc = FractalContext::new(cfg);
    let fg = fc.fractal_graph(g.clone());
    let mut f = fg.vfractoid();
    for (depth, &min_added) in levels.iter().enumerate() {
        f = f.expand(1);
        if let Some(min_added) = min_added {
            f = f.filter(move |s| depth == 0 || s.last_level_edge_count() as u32 >= min_added);
        }
    }
    f.count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random [expand, filter?]* workflows: engine == oracle across
    /// cluster shapes and stealing modes.
    #[test]
    fn random_workflows_match_oracle(
        n in 6usize..20,
        seed in 0u64..500,
        levels in proptest::collection::vec(proptest::option::of(0u32..3), 2..5),
    ) {
        let g = fractal_graph::gen::erdos_renyi(n, n * 2, 2, seed);
        let expect = oracle_count(&g, &levels);
        for cfg in [
            ClusterConfig::single_thread(),
            ClusterConfig::local(2, 2).with_ws(WsMode::Both).with_latency_us(1),
        ] {
            let got = engine_count(&g, &levels, cfg);
            prop_assert_eq!(got, expect, "levels {:?}", levels);
        }
    }

    /// Aggregation totals equal plain counts: summing a unit-valued
    /// aggregation over any key function must reproduce count().
    #[test]
    fn aggregation_total_equals_count(n in 6usize..18, seed in 0u64..300, k in 2usize..4) {
        let g = fractal_graph::gen::erdos_renyi(n, n * 2, 2, seed);
        let fc = FractalContext::new(ClusterConfig::local(1, 2));
        let fg = fc.fractal_graph(g);
        let count = fg.vfractoid().expand(k).count();
        let agg = fg
            .vfractoid()
            .expand(k)
            .aggregate("x", |s| s.num_edges() % 3, |_| 1u64, |a, v| *a += v)
            .aggregation::<usize, u64>("x");
        let total: u64 = agg.values().sum();
        prop_assert_eq!(total, count);
    }

    /// Participation masks contain exactly the union of result subgraphs.
    #[test]
    fn participation_is_exact_union(n in 6usize..16, seed in 0u64..200) {
        let g = fractal_graph::gen::erdos_renyi(n, n * 2, 1, seed);
        let fc = FractalContext::new(ClusterConfig::local(1, 2));
        let fg = fc.fractal_graph(g);
        let fr = fg.vfractoid().expand(3).filter(|s| s.is_clique());
        let subs = fr.subgraphs();
        let report = fr.execute_tracking_participation();
        let p = report.participation.unwrap();
        let mut vexpect = std::collections::BTreeSet::new();
        let mut eexpect = std::collections::BTreeSet::new();
        for s in &subs {
            vexpect.extend(s.vertices.iter().copied());
            eexpect.extend(s.edges.iter().copied());
        }
        let vgot: std::collections::BTreeSet<u32> =
            p.vertices.iter_ones().map(|i| i as u32).collect();
        let egot: std::collections::BTreeSet<u32> =
            p.edges.iter_ones().map(|i| i as u32).collect();
        prop_assert_eq!(vgot, vexpect);
        prop_assert_eq!(egot, eexpect);
    }
}
