//! End-to-end fractal-core tests: the public API against brute-force
//! oracles, across cluster shapes and stealing modes.

use fractal_core::prelude::*;
use fractal_graph::gen;
use fractal_pattern::Pattern;
use fractal_runtime::{ClusterConfig, WsMode};
use std::collections::HashMap;

fn contexts() -> Vec<FractalContext> {
    vec![
        FractalContext::new(ClusterConfig::single_thread()),
        FractalContext::new(ClusterConfig::local(1, 4)),
        FractalContext::new(ClusterConfig::local(2, 2).with_ws(WsMode::Both)),
        FractalContext::new(ClusterConfig::local(2, 2).with_ws(WsMode::ExternalOnly)),
        FractalContext::new(ClusterConfig::local(3, 2).with_ws(WsMode::InternalOnly)),
    ]
}

#[test]
fn motif_counting_is_shape_invariant() {
    let g = gen::mico_like(250, 4, 21);
    let mut reference: Option<HashMap<fractal_pattern::CanonicalCode, u64>> = None;
    for ctx in contexts() {
        let fg = ctx.fractal_graph(g.clone());
        let motifs = fg
            .vfractoid()
            .expand(3)
            .aggregate(
                "motifs",
                |s| s.pattern_code(false, false),
                |_| 1u64,
                |a, v| *a += v,
            )
            .aggregation::<fractal_pattern::CanonicalCode, u64>("motifs");
        // 3-vertex connected motifs: path and triangle only.
        assert_eq!(motifs.len(), 2);
        match &reference {
            None => reference = Some(motifs),
            Some(r) => assert_eq!(&motifs, r),
        }
    }
}

#[test]
fn clique_counts_match_pattern_matching() {
    let g = gen::youtube_like(300, 2, 9);
    let ctx = FractalContext::new(ClusterConfig::local(2, 2));
    let fg = ctx.fractal_graph(g);
    for k in [3usize, 4] {
        let via_filter = fg
            .vfractoid()
            .expand(1)
            .filter(|s| s.last_level_edge_count() == s.num_vertices().saturating_sub(1))
            .explore(k)
            .count();
        let via_pattern = fg
            .pfractoid_unlabeled(&Pattern::clique(k))
            .expand(k)
            .count();
        assert_eq!(via_filter, via_pattern, "k={k}");
        assert!(via_filter > 0, "k={k}: no cliques in the test graph");
    }
}

#[test]
fn edge_vs_vertex_induction_agree_on_triangles() {
    let g = gen::erdos_renyi(60, 240, 1, 4);
    let ctx = FractalContext::new(ClusterConfig::local(1, 3));
    let fg = ctx.fractal_graph(g);
    // Triangles via edge induction: 3-edge connected subgraphs with 3
    // vertices.
    let edge_triangles = fg
        .efractoid()
        .expand(3)
        .filter(|s| s.num_vertices() == 3)
        .count();
    let vertex_triangles = fg.vfractoid().expand(3).filter(|s| s.is_clique()).count();
    assert_eq!(edge_triangles, vertex_triangles);
}

#[test]
fn iterative_derivation_reuses_aggregations() {
    // Simulates the FSM loop shape: derive, aggregate, filter, extend —
    // and verify the second execution does not recompute step 0 (the store
    // is shared along the chain).
    let g = gen::patents_like(150, 3, 33);
    let ctx = FractalContext::new(ClusterConfig::local(1, 2));
    let fg = ctx.fractal_graph(g);
    let bootstrap = fg.efractoid().expand(1).aggregate(
        "support",
        |s| s.pattern_code(true, true),
        |_| 1u64,
        |a, v| *a += v,
    );
    let first = bootstrap.aggregation::<fractal_pattern::CanonicalCode, u64>("support");
    assert!(!first.is_empty());
    let next = bootstrap
        .clone()
        .filter_agg("support", |s, agg| {
            agg.contains_key::<fractal_pattern::CanonicalCode, u64>(&s.pattern_code(true, true))
        })
        .expand(1)
        .aggregate(
            "support2",
            |s| s.pattern_code(true, true),
            |_| 1u64,
            |a, v| *a += v,
        );
    // The derived workflow contains a W4 filter whose source is already
    // computed -> single step.
    let report = next.execute();
    assert_eq!(report.num_steps(), 1);
    let second = next.aggregation::<fractal_pattern::CanonicalCode, u64>("support2");
    assert!(!second.is_empty());
    // 2-edge patterns have 3 vertices (paths) or... every 2-edge connected
    // subgraph has 3 vertices here (no multi-edges), so all keys decode to
    // 3-vertex patterns.
    for code in second.keys() {
        assert_eq!(code.num_vertices(), 3);
    }
}

#[test]
fn keyword_style_reduction_end_to_end() {
    let g = gen::wikidata_like(500, 40, 8);
    let ctx = FractalContext::new(ClusterConfig::local(1, 2));
    let fg = ctx.fractal_graph(g.clone());
    let kw = g.keyword_table().unwrap().get("kw0").unwrap();
    // Reduce to edges whose document (edge + endpoints) carries kw0.
    let reduced = fg.efilter(|e, g| {
        let (s, d) = g.edge_endpoints(e);
        g.edge_keywords(e).contains(&kw)
            || g.vertex_keywords(s).contains(&kw)
            || g.vertex_keywords(d).contains(&kw)
    });
    assert!(reduced.graph().num_edges() < g.num_edges());
    let subs = reduced.efractoid().expand(1).subgraphs();
    // Every result edge, translated to original ids, carries the keyword.
    assert_eq!(subs.len(), reduced.graph().num_edges());
    for s in subs {
        let e = fractal_graph::EdgeId(s.edges[0]);
        let (a, b) = g.edge_endpoints(e);
        assert!(
            g.edge_keywords(e).contains(&kw)
                || g.vertex_keywords(a).contains(&kw)
                || g.vertex_keywords(b).contains(&kw)
        );
    }
}

#[test]
fn counts_deterministic_across_repeats() {
    let g = gen::mico_like(200, 3, 2);
    let ctx = FractalContext::new(ClusterConfig::local(2, 3));
    let fg = ctx.fractal_graph(g);
    let runs: Vec<u64> = (0..3).map(|_| fg.vfractoid().expand(3).count()).collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
