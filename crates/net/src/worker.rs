//! The worker process: serves driver sessions over a TCP connection.
//!
//! A worker accepts a single connection and inspects its first frame. A
//! plain driver `Hello` starts one classic session: the worker answers
//! the handshake, then serves `Assign`ed rounds with the in-process
//! multi-core executor. A [`Frame::Mux`] envelope instead switches the
//! connection into *multiplexed* mode for a `fractal serve` daemon: every
//! envelope is demultiplexed by job id onto a per-job **virtual session**
//! — the same session loop, running over in-process channels — so several
//! concurrent jobs share the one physical connection, each with its own
//! handshake, rounds, steal traffic and flushes.
//!
//! While a round runs, idle cores *pull* extra root words from the driver
//! ([`WorkerHooks`]) and the session's reader serves relayed
//! `StealRequest`s out of the running job's own queues
//! ([`fractal_runtime::ExternalJobHandle::steal_root`]) — the driver
//! mediates all steal traffic, so the worker never opens peer connections.
//!
//! Threads per session: the session loop is the frame **reader**; each
//! `Assign` spawns a **job** thread (the executor blocks it until the
//! round drains); a **heartbeat** thread beats every ~15 ms carrying the
//! root words completed since the last beat. All writes to the driver go
//! through one mutex-guarded sink, so frames never interleave — in mux
//! mode the sink is a [`MuxSink`] sharing the physical stream's lock with
//! every other job. Concurrent jobs each run `cores` executor threads
//! (deliberate oversubscription: the OS time-slices them, and
//! bit-identical results never depend on scheduling).

use crate::blob::{self, AppSpec};
use crate::frame::{
    decode_frame, read_frame, ChannelSource, Frame, FrameSink, FrameSource, MuxSink, Role,
    MISS_WORD, SHUTDOWN_ROUND,
};
use crate::linkfault::{DedupSource, FaultySink};
use fractal_apps::fsm::{fsm_fractoid, fsm_support_aggregator, DomainSupport};
use fractal_apps::{cliques, motifs};
use fractal_core::{
    execute_plan_step_distributed, Aggregator, FractalContext, FractalGraph, Fractoid,
};
use fractal_pattern::{CanonicalCode, CountingPlan, GraphStats};
use fractal_runtime::steal::{decode_unit, encode_unit, StolenUnit};
use fractal_runtime::sync::Mutex;
use fractal_runtime::sync::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use fractal_runtime::{
    ClusterConfig, ExternalHooks, ExternalJobHandle, ExternalPull, LinkFaultConfig,
    LinkFaultInjector, WsMode,
};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How a worker session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The driver sent `Done{SHUTDOWN_ROUND}`: clean end of job.
    Shutdown,
    /// The driver connection dropped (EOF or I/O error) mid-session.
    Disconnected,
}

/// Heartbeat period. Keep well under the driver's staleness watchdog.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(15);

/// How long a puller waits for its relayed steal reply before giving the
/// core back to the local steal loop (the reply is consumed as a *stale*
/// reply by a later pull — never lost).
const PULL_WAIT: Duration = Duration::from_millis(25);

type ReplySlot = (u64, Option<Vec<u8>>);

/// State shared between the reader, job, heartbeat and executor threads
/// of one session (physical or virtual — `K` is its frame sink).
struct Shared<K: FrameSink> {
    writer: Mutex<K>,
    seq: AtomicU32,
    round: AtomicU32,
    round_done: AtomicBool,
    disconnected: AtomicBool,
    completed: Mutex<Vec<u64>>,
    handle: Mutex<Option<ExternalJobHandle>>,
    reply_tx: Mutex<Option<Sender<ReplySlot>>>,
    /// The session's link-fault injector, when the link is armed; its
    /// count feeds `link_faults_injected` in every flush's report.
    injector: Option<Arc<LinkFaultInjector>>,
    /// Injections already reported by earlier flushes (delta encoding —
    /// the driver *sums* reports, so each flush carries only its own).
    injected_reported: AtomicU64,
}

impl<K: FrameSink> Shared<K> {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        // ordering: Relaxed — sequence numbers only need fetch_add atomicity for
        // uniqueness; frame payloads are serialized under the stream lock below.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.send_with_seq(seq, frame)
    }

    /// Sends with an explicit sequence number (steal replies echo the
    /// request's seq so the driver can match them to pending steals).
    fn send_with_seq(&self, seq: u32, frame: &Frame) -> io::Result<()> {
        let mut w = self.writer.lock();
        let res = w.send(seq, frame);
        if res.is_err() {
            // ordering: SeqCst — disconnect flag; set once on send failure, polled by
            // pull()/serve loop. Rare transition, not a hot read, so the strongest
            // ordering is free.
            self.disconnected.store(true, Ordering::SeqCst);
        }
        res
    }
}

/// The executor-side pull source: asks the driver for foreign root words
/// when local stealing comes up empty.
struct WorkerHooks<K: FrameSink> {
    shared: Arc<Shared<K>>,
    round: u32,
    rx: Mutex<Receiver<ReplySlot>>,
}

impl<K: FrameSink> WorkerHooks<K> {
    /// A steal reply carrying a unit: verify its checksum, ack or nack,
    /// and hand it to the executor.
    fn accept(&self, word: u64, bytes: Vec<u8>) -> ExternalPull {
        match decode_unit(&bytes) {
            Ok(unit) => {
                let _ = self.shared.send(&Frame::Ack {
                    round: self.round,
                    word,
                });
                ExternalPull::Unit {
                    unit,
                    wire_bytes: bytes.len() as u64,
                }
            }
            Err(_) => {
                let _ = self.shared.send(&Frame::Nack {
                    round: self.round,
                    word,
                });
                ExternalPull::Empty
            }
        }
    }
}

impl<K: FrameSink + 'static> ExternalHooks for WorkerHooks<K> {
    fn job_started(&self, handle: ExternalJobHandle) {
        *self.shared.handle.lock() = Some(handle);
    }

    fn pull(&self) -> ExternalPull {
        // ordering: SeqCst — pairs with the serve loop's SeqCst stores of
        // disconnected/round_done; pull() runs between units, not in the kernel
        // hot loop.
        if self.shared.disconnected.load(Ordering::SeqCst)
            || self.shared.round_done.load(Ordering::SeqCst)
        {
            return ExternalPull::Drained;
        }
        // One puller at a time; contended cores go back to local stealing.
        let rx = match self.rx.try_lock() {
            Some(g) => g,
            None => return ExternalPull::Empty,
        };
        // Drain replies a previous (timed-out) pull left behind. A stale
        // *hit* must be used: the driver already recorded the transfer, so
        // this process is the word's only live owner.
        loop {
            match rx.try_recv() {
                Ok((word, Some(bytes))) => return self.accept(word, bytes),
                Ok((_, None)) => continue, // stale miss
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return ExternalPull::Drained,
            }
        }
        if self
            .shared
            .send(&Frame::StealRequest { round: self.round })
            .is_err()
        {
            return ExternalPull::Drained;
        }
        match rx.recv_timeout(PULL_WAIT) {
            Ok((word, Some(bytes))) => self.accept(word, bytes),
            Ok((_, None)) => ExternalPull::Empty, // miss
            Err(RecvTimeoutError::Timeout) => ExternalPull::Empty,
            Err(RecvTimeoutError::Disconnected) => ExternalPull::Drained,
        }
    }

    fn root_done(&self, word: u64) {
        self.shared.completed.lock().push(word);
    }
}

/// Builds the round's fractoid for `app` and seeds prior-round
/// aggregations (FSM only).
fn build_fractoid(
    app: &AppSpec,
    fg: &FractalGraph,
    round: u32,
    seeds: &[HashMap<CanonicalCode, DomainSupport>],
) -> Fractoid {
    match app {
        AppSpec::Motifs { k, use_labels, .. } => {
            motifs::motifs_fractoid(fg, *k as usize, *use_labels)
        }
        AppSpec::Kclist { k } => cliques::cliques_kclist_fractoid(fg, *k as usize),
        AppSpec::Fsm { min_support, .. } => {
            let fractoid = fsm_fractoid(fg, *min_support, round as usize + 1);
            let agg = fsm_support_aggregator(fg, *min_support);
            assert!(
                seeds.len() >= round as usize,
                "round {round} needs {round} seed maps, got {}",
                seeds.len()
            );
            for (pos, map) in seeds.iter().take(round as usize).enumerate() {
                fractoid.seed_aggregation(pos, agg.shard_from_map(map.clone()));
            }
            fractoid
        }
    }
}

/// Runs one assigned round to completion and flushes its results.
fn run_round_seeded<K: FrameSink>(
    shared: &Arc<Shared<K>>,
    app: &AppSpec,
    fractoid: &Fractoid,
    round: u32,
    roots: Vec<u64>,
    hooks: Option<Arc<dyn ExternalHooks>>,
) {
    let mut outcome = fractoid.execute_step_distributed(roots, app.counts(), hooks);
    if let Some(inj) = &shared.injector {
        let now = inj.injected();
        // ordering: Relaxed — flushes are serialized per session; the
        // swap only carries the high-water mark between them.
        let last = shared.injected_reported.swap(now, Ordering::Relaxed);
        outcome.report.faults.link_faults_injected = now.saturating_sub(last);
    }
    let agg = match app {
        AppSpec::Motifs { .. } => {
            let map = Aggregator::<CanonicalCode, u64>::take_map(outcome.shards.remove(0));
            blob::encode_motifs_map(&map)
        }
        AppSpec::Kclist { .. } => Vec::new(),
        AppSpec::Fsm { .. } => {
            let map =
                Aggregator::<CanonicalCode, DomainSupport>::take_map(outcome.shards.remove(0));
            blob::encode_fsm_map(&map)
        }
    };
    let _ = shared.send(&Frame::AggFlush {
        round,
        count: outcome.count,
        agg,
        report: blob::encode_report(&outcome.report),
    });
}

/// Runs one assigned round of a *decomposed* motif job: compile the
/// counting plan from the shipped graph (deterministic — every worker and
/// the driver compile the identical plan), evaluate the assigned roots,
/// and flush the raw per-node partial totals. The driver sums partials
/// element-wise and owns the inclusion–exclusion finalize.
fn run_round_decomposed<K: FrameSink>(
    shared: &Arc<Shared<K>>,
    fg: &FractalGraph,
    k: usize,
    round: u32,
    roots: Vec<u64>,
    hooks: Option<Arc<dyn ExternalHooks>>,
) {
    let plan = CountingPlan::plan_motifs(k, GraphStats::of(fg.graph()));
    let (totals, mut report) = execute_plan_step_distributed(fg, &plan, roots, hooks);
    if let Some(inj) = &shared.injector {
        let now = inj.injected();
        // ordering: Relaxed — flushes are serialized per session; the
        // swap only carries the high-water mark between them.
        let last = shared.injected_reported.swap(now, Ordering::Relaxed);
        report.faults.link_faults_injected = now.saturating_sub(last);
    }
    let _ = shared.send(&Frame::AggFlush {
        round,
        count: 0,
        agg: blob::encode_plan_totals(&totals),
        report: blob::encode_report(&report),
    });
}

/// Serves exactly one connection accepted on `listener` and returns how
/// it ended. The executor runs with `cores` threads and internal-only
/// local stealing (cross-process balance goes through the driver instead
/// of the in-process simulation).
pub fn serve(listener: &TcpListener, cores: usize) -> io::Result<ServeOutcome> {
    serve_with(listener, cores, None)
}

/// [`serve`] with an optional link-degradation fault plan (`fractal
/// worker --link-fault <seed>`). Faults are armed only on multiplexed
/// (serve-daemon) sessions: each job's virtual link gets a
/// deterministic, job-seeded injector, and the daemon's router dedups
/// the other end — classic single-job links stay exact.
pub fn serve_with(
    listener: &TcpListener,
    cores: usize,
    link_fault: Option<LinkFaultConfig>,
) -> io::Result<ServeOutcome> {
    let (stream, _) = listener.accept()?;
    serve_conn_with(stream, cores, link_fault)
}

/// Serves one already-accepted connection (see [`serve`]). The first
/// frame decides the mode: a driver `Hello` runs one classic session, a
/// [`Frame::Mux`] envelope runs the multiplexing dispatcher until the
/// physical connection shuts down.
pub fn serve_conn(stream: TcpStream, cores: usize) -> io::Result<ServeOutcome> {
    serve_conn_with(stream, cores, None)
}

/// [`serve_conn`] with an optional link-fault plan (see [`serve_with`]).
pub fn serve_conn_with(
    stream: TcpStream,
    cores: usize,
    link_fault: Option<LinkFaultConfig>,
) -> io::Result<ServeOutcome> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let first = read_frame(&mut reader)?;
    match &first.1 {
        Frame::Hello {
            role: Role::Driver, ..
        } => run_session(reader, stream, cores, Some(first), None),
        Frame::Mux { .. } => serve_mux(reader, stream, cores, first, link_fault),
        Frame::Done {
            round: SHUTDOWN_ROUND,
        } => Ok(ServeOutcome::Shutdown),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected driver Hello or Mux",
        )),
    }
}

/// Runs one driver session over generic transports. `peeked` is a frame
/// the caller already read off the source (the mode-dispatch peek); it is
/// processed first. The session starts with the driver's `Hello`.
fn run_session<S, K>(
    mut source: S,
    sink: K,
    cores: usize,
    peeked: Option<(u32, Frame)>,
    injector: Option<Arc<LinkFaultInjector>>,
) -> io::Result<ServeOutcome>
where
    S: FrameSource,
    K: FrameSink + 'static,
{
    let shared = Arc::new(Shared {
        writer: Mutex::new(sink),
        seq: AtomicU32::new(0),
        round: AtomicU32::new(0),
        round_done: AtomicBool::new(false),
        disconnected: AtomicBool::new(false),
        completed: Mutex::new(Vec::new()),
        handle: Mutex::new(None),
        reply_tx: Mutex::new(None),
        injector,
        injected_reported: AtomicU64::new(0),
    });

    // Handshake: driver speaks first.
    let hello = match peeked {
        Some(f) => Ok(f),
        None => source.recv(),
    };
    match hello {
        Ok((
            _,
            Frame::Hello {
                role: Role::Driver, ..
            },
        )) => {}
        Ok(_) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected driver Hello",
            ))
        }
        Err(e) => return Err(e),
    }
    shared.send(&Frame::Hello {
        role: Role::Worker,
        cores: cores as u32,
    })?;

    // Heartbeat thread: liveness + completed-word deltas.
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&hb_stop);
        // ordering: SeqCst — heartbeat control: stop flag and current round are
        // rare control-plane reads on a 1-per-interval thread.
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                thread::sleep(HEARTBEAT_EVERY);
                let completed = std::mem::take(&mut *shared.completed.lock());
                let beat = Frame::Heartbeat {
                    round: shared.round.load(Ordering::SeqCst),
                    completed,
                };
                if shared.send(&beat).is_err() {
                    break;
                }
            }
        })
    };

    let mut ctx: Option<(AppSpec, FractalGraph)> = None;
    let mut seeds: Vec<HashMap<CanonicalCode, DomainSupport>> = Vec::new();
    let mut job: Option<thread::JoinHandle<()>> = None;
    let outcome;

    loop {
        let (seq, frame) = match source.recv() {
            Ok(f) => f,
            Err(_) => {
                outcome = ServeOutcome::Disconnected;
                break;
            }
        };
        match frame {
            Frame::Assign {
                round,
                recovery,
                job: job_blob,
                seed,
                roots,
            } => {
                // The driver never overlaps assigns with a running round:
                // joining here only waits out a just-finished flush.
                if let Some(h) = job.take() {
                    let _ = h.join();
                }
                if let Some(bytes) = job_blob {
                    let (app, graph) = blob::decode_job(&bytes)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    let config = ClusterConfig::local(1, cores).with_ws(WsMode::InternalOnly);
                    let fg = FractalContext::new(config).fractal_graph(graph);
                    ctx = Some((app, fg));
                }
                if let Some(bytes) = seed {
                    seeds = blob::decode_fsm_seeds(&bytes)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                }
                let (app, fg) = match &ctx {
                    Some(pair) => pair.clone(),
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "Assign before job blob",
                        ))
                    }
                };
                // ordering: SeqCst — round/round_done must be visible to the serve loop
                // before any steal for this round is answered; all worker-protocol flags
                // stay SeqCst.
                shared.round.store(round, Ordering::SeqCst);
                shared.round_done.store(false, Ordering::SeqCst);
                *shared.handle.lock() = None;
                let hooks: Option<Arc<dyn ExternalHooks>> = if recovery {
                    // Recovery passes re-run already-done words locally;
                    // they neither pull nor serve steals.
                    shared.round_done.store(true, Ordering::SeqCst);
                    *shared.reply_tx.lock() = None;
                    None
                } else {
                    let (tx, rx) = channel();
                    *shared.reply_tx.lock() = Some(tx);
                    Some(Arc::new(WorkerHooks {
                        shared: Arc::clone(&shared),
                        round,
                        rx: Mutex::new(rx),
                    }))
                };
                let shared_job = Arc::clone(&shared);
                let seeds_job = seeds.clone();
                job = Some(thread::spawn(move || {
                    if let AppSpec::Motifs {
                        k,
                        decomposed: true,
                        ..
                    } = app
                    {
                        run_round_decomposed(&shared_job, &fg, k as usize, round, roots, hooks);
                    } else {
                        let fractoid = build_fractoid(&app, &fg, round, &seeds_job);
                        run_round_seeded(&shared_job, &app, &fractoid, round, roots, hooks);
                    }
                }));
            }
            Frame::StealRequest { round } => {
                // Relayed on behalf of a thief: serve out of the running
                // job's root queues, echoing the request's seq.
                // ordering: SeqCst — steal service is gated on the same round/round_done
                // flags the Assign arm stores with SeqCst.
                let word = if round == shared.round.load(Ordering::SeqCst)
                    && !shared.round_done.load(Ordering::SeqCst)
                {
                    shared.handle.lock().as_ref().and_then(|h| h.steal_root())
                } else {
                    None
                };
                let reply = match word {
                    Some(word) => Frame::StealReply {
                        round,
                        word,
                        unit: Some(encode_unit(&StolenUnit {
                            prefix: Vec::new(),
                            word,
                        })),
                    },
                    None => Frame::StealReply {
                        round,
                        word: MISS_WORD,
                        unit: None,
                    },
                };
                if shared.send_with_seq(seq, &reply).is_err() {
                    outcome = ServeOutcome::Disconnected;
                    break;
                }
            }
            Frame::StealReply { round, word, unit } => {
                // ordering: SeqCst — stale-round steal replies are dropped; same SeqCst
                // protocol flags as above.
                if round == shared.round.load(Ordering::SeqCst) {
                    if let Some(tx) = shared.reply_tx.lock().as_ref() {
                        let _ = tx.send((word, unit));
                    }
                }
            }
            Frame::Done { round } => {
                if round == SHUTDOWN_ROUND {
                    outcome = ServeOutcome::Shutdown;
                    break;
                }
                // ordering: SeqCst — Done marks the round drained for pull(); pairs with
                // the SeqCst loads in pull() and the steal arms.
                if round == shared.round.load(Ordering::SeqCst) {
                    shared.round_done.store(true, Ordering::SeqCst);
                }
            }
            // Nothing else is driver → worker traffic; tolerate and move on.
            Frame::Hello { .. }
            | Frame::Ack { .. }
            | Frame::Nack { .. }
            | Frame::AggFlush { .. }
            | Frame::Heartbeat { .. }
            | Frame::Submit { .. }
            | Frame::Status { .. }
            | Frame::Cancel { .. }
            | Frame::Result { .. }
            | Frame::JobEvent { .. }
            | Frame::Mux { .. }
            | Frame::Watch { .. } => {}
        }
    }

    // Unblock and reap everything: a running job sees Drained immediately
    // (round_done + dropped reply sender), the heartbeat thread stops on
    // its next tick.
    // ordering: SeqCst — teardown: publish disconnected/round_done before
    // reaping threads so blocked pulls see Drained, not a hang.
    shared.disconnected.store(true, Ordering::SeqCst);
    shared.round_done.store(true, Ordering::SeqCst);
    *shared.reply_tx.lock() = None;
    if let Some(h) = job.take() {
        let _ = h.join();
    }
    hb_stop.store(true, Ordering::SeqCst);
    let _ = hb.join();
    // Flush-and-close the sink explicitly: an armed link may still hold
    // one reordered frame in its stash, and losing it would turn the
    // degraded link lossy (breaking the flush-is-commit contract).
    shared.writer.lock().close();
    Ok(outcome)
}

/// The multiplexing dispatcher: routes [`Frame::Mux`] envelopes from a
/// `fractal serve` daemon onto per-job virtual sessions, each running the
/// unmodified [`run_session`] loop over an in-process channel and a
/// [`MuxSink`] back onto the shared physical stream.
///
/// A job's first envelope (its driver `Hello`) spawns the session; its
/// `Done{SHUTDOWN_ROUND}` (or the daemon dropping the job's routing)
/// ends it. Frames for an already-ended job are discarded. Session
/// threads are *detached*, never joined here: a cancelled job's session
/// may spend minutes draining in-flight enumeration whose flush nobody
/// wants, and blocking the dispatcher on it would stall every other
/// job's traffic (their handshakes included). The dispatcher itself ends
/// when the physical connection shuts down: a bare `Done{SHUTDOWN_ROUND}`
/// is a clean daemon shutdown; EOF or a read error is a disconnect —
/// either way every virtual session sees channel EOF, and still-draining
/// discarded work dies with the process.
fn serve_mux(
    mut reader: TcpStream,
    writer: TcpStream,
    cores: usize,
    first: (u32, Frame),
    link_fault: Option<LinkFaultConfig>,
) -> io::Result<ServeOutcome> {
    let physical: Arc<Mutex<TcpStream>> = Arc::new(Mutex::new(writer));
    let physical_seq = Arc::new(AtomicU32::new(0));
    let mut sessions: HashMap<u64, Sender<(u32, Frame)>> = HashMap::new();
    let mut next = first;
    let outcome;
    loop {
        match next.1 {
            Frame::Mux { job, inner } => {
                // The physical frame's checksum already covered `inner`;
                // a decode failure here means a daemon-side bug, not wire
                // corruption. Drop the frame rather than kill every other
                // job on the connection.
                if let Ok(inner_frame) = decode_frame(&inner) {
                    let shutdown = matches!(
                        inner_frame.1,
                        Frame::Done {
                            round: SHUTDOWN_ROUND
                        }
                    );
                    let session = sessions.entry(job).or_insert_with(|| {
                        let (tx, rx) = channel();
                        let sink =
                            MuxSink::new(job, Arc::clone(&physical), Arc::clone(&physical_seq));
                        // Detached on purpose — see the module doc above.
                        match &link_fault {
                            Some(cfg) => {
                                // Deterministic per-job plan: same seed +
                                // same job id → identical fault stream.
                                let mut cfg = *cfg;
                                cfg.seed ^= job;
                                let injector = Arc::new(LinkFaultInjector::new(cfg));
                                let faulty = FaultySink::new(sink, Arc::clone(&injector));
                                let source = DedupSource::new(ChannelSource(rx));
                                thread::spawn(move || {
                                    run_session(source, faulty, cores, None, Some(injector))
                                });
                            }
                            None => {
                                thread::spawn(move || {
                                    run_session(ChannelSource(rx), sink, cores, None, None)
                                });
                            }
                        }
                        tx
                    });
                    let dead = session.send(inner_frame).is_err();
                    if dead || shutdown {
                        // Ended (or ending) session: forget its route so
                        // the map holds only live jobs; the session thread
                        // winds itself down on channel EOF.
                        sessions.remove(&job);
                    }
                }
            }
            Frame::Done {
                round: SHUTDOWN_ROUND,
            } => {
                outcome = ServeOutcome::Shutdown;
                break;
            }
            // Anything else on the physical link is stray traffic.
            _ => {}
        }
        next = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => {
                outcome = ServeOutcome::Disconnected;
                break;
            }
        };
    }
    Ok(outcome)
}
