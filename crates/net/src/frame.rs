//! The wire frame protocol of the cluster substrate (DESIGN.md §10).
//!
//! Every message between driver and workers is one *frame*:
//!
//! ```text
//! magic u16 (0xF2AC) | version u8 | type u8 | seq u32 | payload_len u32
//! | payload (payload_len bytes) | checksum u64 (FNV-1a over all prior bytes)
//! ```
//!
//! All integers are big-endian. `payload_len` is capped at
//! [`MAX_PAYLOAD`]; a peer announcing more is treated as protocol
//! corruption before any allocation happens, so a hostile or corrupted
//! length field cannot OOM the receiver. The trailing checksum covers the
//! header *and* payload — the same FNV-1a the in-process steal protocol
//! uses for its unit encoding, promoted to every frame.
//!
//! Frames carry opaque byte blobs (job spec, aggregation maps, reports)
//! whose encodings live in [`crate::blob`]; the frame layer only frames,
//! checks and routes them.

use fractal_runtime::steal::fnv1a64;
use std::io::{self, Read, Write};

/// Frame magic: the first two wire bytes of every fractal-net message.
pub const MAGIC: u16 = 0xF2AC;
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Hard cap on a frame's payload length (64 MiB).
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Fixed header size: magic + version + type + seq + payload_len.
pub const HEADER_LEN: usize = 12;
/// Trailing checksum size.
pub const CHECKSUM_LEN: usize = 8;
/// `Done { round: SHUTDOWN_ROUND }` is the session-shutdown sentinel.
pub const SHUTDOWN_ROUND: u32 = u32::MAX;
/// `StealReply { word: MISS_WORD, unit: None }` marks a steal miss.
pub const MISS_WORD: u64 = u64::MAX;

/// Who is speaking in a `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The driver process.
    Driver,
    /// A worker process.
    Worker,
    /// A `fractal client` submitting jobs to a `fractal serve` daemon.
    Client,
}

/// What a [`Frame::JobEvent`] announces about a job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Admission succeeded; `value` is the assigned job id.
    Accepted,
    /// Admission failed (queue full, tenant over quota); `detail` says why.
    Rejected,
    /// The job is waiting in the dispatch queue; `value` is its position.
    Queued,
    /// The job started executing on the worker pool.
    Running,
    /// Partial progress: `value` root words completed this round so far.
    Progress,
    /// The job finished; its result can be fetched with `Result`.
    Done,
    /// The job was cancelled before completing.
    Cancelled,
    /// The job failed; `detail` carries the error text.
    Failed,
}

impl EventKind {
    fn code(self) -> u8 {
        match self {
            EventKind::Accepted => 0,
            EventKind::Rejected => 1,
            EventKind::Queued => 2,
            EventKind::Running => 3,
            EventKind::Progress => 4,
            EventKind::Done => 5,
            EventKind::Cancelled => 6,
            EventKind::Failed => 7,
        }
    }

    fn from_code(code: u8) -> Result<Self, FrameError> {
        Ok(match code {
            0 => EventKind::Accepted,
            1 => EventKind::Rejected,
            2 => EventKind::Queued,
            3 => EventKind::Running,
            4 => EventKind::Progress,
            5 => EventKind::Done,
            6 => EventKind::Cancelled,
            7 => EventKind::Failed,
            _ => return Err(FrameError::Malformed("event kind")),
        })
    }

    /// Whether this event ends the job's lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            EventKind::Rejected | EventKind::Done | EventKind::Cancelled | EventKind::Failed
        )
    }
}

/// One protocol message. See DESIGN.md §10 for the full grammar and the
/// failure semantics of each type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Session opener, both directions: who am I, how many cores.
    Hello { role: Role, cores: u32 },
    /// Driver → worker: run `roots` for `round`. The first Assign of a
    /// session carries the job blob (graph + app spec); iterative apps
    /// ship the previous round's merged aggregation as `seed`.
    /// `recovery` passes re-execute a dead worker's words after the round
    /// was already declared done.
    Assign {
        round: u32,
        recovery: bool,
        job: Option<Vec<u8>>,
        seed: Option<Vec<u8>>,
        roots: Vec<u64>,
    },
    /// Thief worker → driver: give me work. Driver → victim worker:
    /// relayed on behalf of a thief (the driver mediates all steals).
    StealRequest { round: u32 },
    /// Victim worker → driver → thief worker. `word` names the
    /// transferred root explicitly so the driver records the ownership
    /// transfer without decoding `unit`; a miss is
    /// `word == MISS_WORD, unit == None`. The unit payload itself is the
    /// checksummed `encode_unit` format of the in-process steal protocol.
    StealReply {
        round: u32,
        word: u64,
        unit: Option<Vec<u8>>,
    },
    /// Thief → driver: the stolen unit decoded cleanly (metrics only).
    Ack { round: u32, word: u64 },
    /// Thief → driver: the unit payload was corrupt; the driver re-owns
    /// the word and serves it to another puller.
    Nack { round: u32, word: u64 },
    /// Worker → driver at end of round: local result count, the
    /// unfinalized aggregation blob and the worker's metrics report.
    AggFlush {
        round: u32,
        count: u64,
        agg: Vec<u8>,
        report: Vec<u8>,
    },
    /// Worker → driver, periodic: liveness plus the root words completed
    /// since the last beat.
    Heartbeat { round: u32, completed: Vec<u64> },
    /// Driver → workers: the round's words are all complete — drain and
    /// flush. `round == SHUTDOWN_ROUND` ends the session.
    Done { round: u32 },
    /// Client → serve daemon: run `app` (a [`crate::blob`] app-spec blob)
    /// against the registered graph `snapshot` on behalf of `tenant` at
    /// the given `priority` (higher runs first among queued jobs).
    /// `token` is a client-generated idempotency token: resubmitting the
    /// same token after an ambiguous failure returns the original job
    /// instead of double-admitting.
    Submit {
        tenant: String,
        priority: u8,
        snapshot: String,
        app: Vec<u8>,
        token: String,
    },
    /// Client → serve daemon: what state is job `job` in? Answered with a
    /// [`Frame::JobEvent`] describing the current lifecycle state.
    Status { job: u64 },
    /// Client → serve daemon: stop job `job`. Queued jobs are dropped;
    /// running jobs are interrupted at the next round boundary check.
    Cancel { job: u64 },
    /// Job result, both directions: a client sends `Result` with empty
    /// blobs to fetch; the daemon replies with the federated result —
    /// `count` plus the app-specific aggregation (`agg`) and the
    /// `fractal-metrics/1` job report (`report`) as blobs.
    Result {
        job: u64,
        count: u64,
        agg: Vec<u8>,
        report: Vec<u8>,
    },
    /// Serve daemon → client: a job lifecycle event (admission verdicts,
    /// queue position, progress, terminal states). `detail`/`value` are
    /// interpreted per [`EventKind`]. `event_seq` is the event's 1-based
    /// position in the job's event log within the daemon's current epoch
    /// (0 = unsequenced: always deliver); a reconnecting client resumes
    /// with `Watch { after_seq }` to skip events it already saw.
    JobEvent {
        job: u64,
        kind: EventKind,
        detail: String,
        value: u64,
        event_seq: u64,
    },
    /// Multiplexing envelope for shared worker sessions: `inner` is one
    /// complete encoded frame belonging to job `job`. The receiving side
    /// demultiplexes by job id onto per-job virtual sessions, so several
    /// concurrent jobs share one physical worker connection.
    Mux { job: u64, inner: Vec<u8> },
    /// Client → serve daemon: subscribe this connection to `job`'s event
    /// stream, replaying buffered events with `event_seq > after_seq`
    /// first. The reconnect primitive behind `fractal client --wait`:
    /// after a disconnect the client re-sends `Watch` with the last
    /// sequence number it saw and loses nothing.
    Watch { job: u64, after_seq: u64 },
}

impl Frame {
    fn type_code(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Assign { .. } => 2,
            Frame::StealRequest { .. } => 3,
            Frame::StealReply { .. } => 4,
            Frame::Ack { .. } => 5,
            Frame::Nack { .. } => 6,
            Frame::AggFlush { .. } => 7,
            Frame::Heartbeat { .. } => 8,
            Frame::Done { .. } => 9,
            Frame::Submit { .. } => 10,
            Frame::Status { .. } => 11,
            Frame::Cancel { .. } => 12,
            Frame::Result { .. } => 13,
            Frame::JobEvent { .. } => 14,
            Frame::Mux { .. } => 15,
            Frame::Watch { .. } => 16,
        }
    }
}

/// Why a frame failed to decode. Every variant is reachable from
/// adversarial input without panicking or allocating unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header + payload + checksum require.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame type code.
    UnknownType(u8),
    /// Announced payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The trailing FNV-1a checksum does not match.
    ChecksumMismatch,
    /// Payload parsed but bytes were left over.
    TrailingBytes,
    /// Structurally invalid payload (bad flag, inner length overrun, …).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            FrameError::Oversized(n) => write!(f, "payload length {n} exceeds cap"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after payload"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---- payload writer ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}
fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u32(out, words.len() as u32);
    for &w in words {
        put_u64(out, w);
    }
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_blob(out, s.as_bytes());
}

// ---- payload reader ----

/// Bounds-checked big-endian cursor over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        // `checked_add` keeps a hostile inner length from wrapping.
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn blob(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn string(&mut self) -> Result<String, FrameError> {
        let b = self.blob()?;
        String::from_utf8(b).map_err(|_| FrameError::Malformed("utf-8 string"))
    }
    fn words(&mut self) -> Result<Vec<u64>, FrameError> {
        let n = self.u32()? as usize;
        // Each word is 8 bytes; reject counts the payload can't hold
        // before allocating.
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(FrameError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Hello { role, cores } => {
            put_u8(
                &mut p,
                match role {
                    Role::Driver => 0,
                    Role::Worker => 1,
                    Role::Client => 2,
                },
            );
            put_u32(&mut p, *cores);
        }
        Frame::Assign {
            round,
            recovery,
            job,
            seed,
            roots,
        } => {
            put_u32(&mut p, *round);
            let mut flags = 0u8;
            if *recovery {
                flags |= 1;
            }
            if job.is_some() {
                flags |= 2;
            }
            if seed.is_some() {
                flags |= 4;
            }
            put_u8(&mut p, flags);
            if let Some(j) = job {
                put_blob(&mut p, j);
            }
            if let Some(s) = seed {
                put_blob(&mut p, s);
            }
            put_words(&mut p, roots);
        }
        Frame::StealRequest { round } => put_u32(&mut p, *round),
        Frame::StealReply { round, word, unit } => {
            put_u32(&mut p, *round);
            put_u64(&mut p, *word);
            match unit {
                Some(u) => {
                    put_u8(&mut p, 1);
                    put_blob(&mut p, u);
                }
                None => put_u8(&mut p, 0),
            }
        }
        Frame::Ack { round, word } | Frame::Nack { round, word } => {
            put_u32(&mut p, *round);
            put_u64(&mut p, *word);
        }
        Frame::AggFlush {
            round,
            count,
            agg,
            report,
        } => {
            put_u32(&mut p, *round);
            put_u64(&mut p, *count);
            put_blob(&mut p, agg);
            put_blob(&mut p, report);
        }
        Frame::Heartbeat { round, completed } => {
            put_u32(&mut p, *round);
            put_words(&mut p, completed);
        }
        Frame::Done { round } => put_u32(&mut p, *round),
        Frame::Submit {
            tenant,
            priority,
            snapshot,
            app,
            token,
        } => {
            put_str(&mut p, tenant);
            put_u8(&mut p, *priority);
            put_str(&mut p, snapshot);
            put_blob(&mut p, app);
            put_str(&mut p, token);
        }
        Frame::Status { job } => put_u64(&mut p, *job),
        Frame::Cancel { job } => put_u64(&mut p, *job),
        Frame::Result {
            job,
            count,
            agg,
            report,
        } => {
            put_u64(&mut p, *job);
            put_u64(&mut p, *count);
            put_blob(&mut p, agg);
            put_blob(&mut p, report);
        }
        Frame::JobEvent {
            job,
            kind,
            detail,
            value,
            event_seq,
        } => {
            put_u64(&mut p, *job);
            put_u8(&mut p, kind.code());
            put_str(&mut p, detail);
            put_u64(&mut p, *value);
            put_u64(&mut p, *event_seq);
        }
        Frame::Mux { job, inner } => {
            put_u64(&mut p, *job);
            put_blob(&mut p, inner);
        }
        Frame::Watch { job, after_seq } => {
            put_u64(&mut p, *job);
            put_u64(&mut p, *after_seq);
        }
    }
    p
}

fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor::new(payload);
    let frame = match ty {
        1 => {
            let role = match c.u8()? {
                0 => Role::Driver,
                1 => Role::Worker,
                2 => Role::Client,
                _ => return Err(FrameError::Malformed("hello role")),
            };
            Frame::Hello {
                role,
                cores: c.u32()?,
            }
        }
        2 => {
            let round = c.u32()?;
            let flags = c.u8()?;
            if flags & !7 != 0 {
                return Err(FrameError::Malformed("assign flags"));
            }
            let job = if flags & 2 != 0 {
                Some(c.blob()?)
            } else {
                None
            };
            let seed = if flags & 4 != 0 {
                Some(c.blob()?)
            } else {
                None
            };
            Frame::Assign {
                round,
                recovery: flags & 1 != 0,
                job,
                seed,
                roots: c.words()?,
            }
        }
        3 => Frame::StealRequest { round: c.u32()? },
        4 => {
            let round = c.u32()?;
            let word = c.u64()?;
            let unit = match c.u8()? {
                0 => None,
                1 => Some(c.blob()?),
                _ => return Err(FrameError::Malformed("steal reply flag")),
            };
            Frame::StealReply { round, word, unit }
        }
        5 => Frame::Ack {
            round: c.u32()?,
            word: c.u64()?,
        },
        6 => Frame::Nack {
            round: c.u32()?,
            word: c.u64()?,
        },
        7 => Frame::AggFlush {
            round: c.u32()?,
            count: c.u64()?,
            agg: c.blob()?,
            report: c.blob()?,
        },
        8 => Frame::Heartbeat {
            round: c.u32()?,
            completed: c.words()?,
        },
        9 => Frame::Done { round: c.u32()? },
        10 => Frame::Submit {
            tenant: c.string()?,
            priority: c.u8()?,
            snapshot: c.string()?,
            app: c.blob()?,
            token: c.string()?,
        },
        11 => Frame::Status { job: c.u64()? },
        12 => Frame::Cancel { job: c.u64()? },
        13 => Frame::Result {
            job: c.u64()?,
            count: c.u64()?,
            agg: c.blob()?,
            report: c.blob()?,
        },
        14 => Frame::JobEvent {
            job: c.u64()?,
            kind: EventKind::from_code(c.u8()?)?,
            detail: c.string()?,
            value: c.u64()?,
            event_seq: c.u64()?,
        },
        15 => Frame::Mux {
            job: c.u64()?,
            inner: c.blob()?,
        },
        16 => Frame::Watch {
            job: c.u64()?,
            after_seq: c.u64()?,
        },
        other => return Err(FrameError::UnknownType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Encodes one frame with the given sequence number into its full wire
/// representation (header + payload + checksum).
pub fn encode_frame(seq: u32, frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    put_u16(&mut out, MAGIC);
    put_u8(&mut out, VERSION);
    put_u8(&mut out, frame.type_code());
    put_u32(&mut out, seq);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

/// Decodes one complete frame from a buffer. The buffer must contain
/// exactly one frame; extra bytes are [`FrameError::TrailingBytes`].
pub fn decode_frame(buf: &[u8]) -> Result<(u32, Frame), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let magic = u16::from_be_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf[2] != VERSION {
        return Err(FrameError::BadVersion(buf[2]));
    }
    let ty = buf[3];
    let seq = u32::from_be_bytes(buf[4..8].try_into().unwrap());
    let len = u32::from_be_bytes(buf[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize + CHECKSUM_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    if buf.len() > total {
        return Err(FrameError::TrailingBytes);
    }
    let body = &buf[..HEADER_LEN + len as usize];
    let sum = u64::from_be_bytes(buf[total - CHECKSUM_LEN..total].try_into().unwrap());
    if fnv1a64(body) != sum {
        return Err(FrameError::ChecksumMismatch);
    }
    let frame = decode_payload(ty, &buf[HEADER_LEN..HEADER_LEN + len as usize])?;
    Ok((seq, frame))
}

fn invalid(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Reads one frame from a stream. Returns `UnexpectedEof` when the peer
/// closed the connection (cleanly between frames or mid-frame) and
/// `InvalidData` on protocol corruption.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u32, Frame)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(invalid(FrameError::BadMagic));
    }
    if header[2] != VERSION {
        return Err(invalid(FrameError::BadVersion(header[2])));
    }
    let ty = header[3];
    let seq = u32::from_be_bytes(header[4..8].try_into().unwrap());
    let len = u32::from_be_bytes(header[8..12].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(invalid(FrameError::Oversized(len)));
    }
    let mut rest = vec![0u8; len as usize + CHECKSUM_LEN];
    r.read_exact(&mut rest)?;
    let sum = u64::from_be_bytes(rest[len as usize..].try_into().unwrap());
    let mut body = Vec::with_capacity(HEADER_LEN + len as usize);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..len as usize]);
    if fnv1a64(&body) != sum {
        return Err(invalid(FrameError::ChecksumMismatch));
    }
    let frame = decode_payload(ty, &rest[..len as usize]).map_err(invalid)?;
    Ok((seq, frame))
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, seq: u32, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(seq, frame))
}

// ---- transport abstraction ----

/// The receiving half of a frame transport. A TCP stream is the physical
/// implementation; the serve daemon and the multiplexed worker sessions
/// implement it over in-process channels that carry demultiplexed
/// [`Frame::Mux`] payloads, so the driver and worker session loops run
/// unchanged over either.
pub trait FrameSource: Send {
    /// Blocks for the next frame. An `Err` means the transport is dead
    /// (peer hung up, channel closed); callers treat it as a disconnect.
    fn recv(&mut self) -> io::Result<(u32, Frame)>;
}

/// The sending half of a frame transport.
pub trait FrameSink: Send {
    /// Writes one frame. An `Err` marks the transport dead.
    fn send(&mut self, seq: u32, frame: &Frame) -> io::Result<()>;
    /// Best-effort teardown: unblock the peer's reader if possible.
    fn close(&mut self);
}

impl FrameSource for std::net::TcpStream {
    fn recv(&mut self) -> io::Result<(u32, Frame)> {
        read_frame(self)
    }
}

impl FrameSink for std::net::TcpStream {
    fn send(&mut self, seq: u32, frame: &Frame) -> io::Result<()> {
        write_frame(self, seq, frame)
    }
    fn close(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// A [`FrameSource`] over an in-process channel: the receiving end of one
/// job's demultiplexed [`Frame::Mux`] traffic. Dropping the sender is the
/// channel's EOF — `recv` then errors like a closed socket.
pub struct ChannelSource(pub std::sync::mpsc::Receiver<(u32, Frame)>);

impl FrameSource for ChannelSource {
    fn recv(&mut self) -> io::Result<(u32, Frame)> {
        self.0
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "mux channel closed"))
    }
}

/// A [`FrameSink`] that wraps every frame in a [`Frame::Mux`] envelope for
/// one job and writes it to a *shared* physical sink. The physical
/// sequence counter is shared across all jobs on the connection; per-job
/// sequence numbers live inside the envelope, so each virtual session
/// keeps its own uninterrupted seq space.
pub struct MuxSink<K: FrameSink> {
    job: u64,
    physical: std::sync::Arc<fractal_runtime::sync::Mutex<K>>,
    physical_seq: std::sync::Arc<fractal_runtime::sync::AtomicU32>,
}

impl<K: FrameSink> MuxSink<K> {
    pub fn new(
        job: u64,
        physical: std::sync::Arc<fractal_runtime::sync::Mutex<K>>,
        physical_seq: std::sync::Arc<fractal_runtime::sync::AtomicU32>,
    ) -> Self {
        MuxSink {
            job,
            physical,
            physical_seq,
        }
    }
}

impl<K: FrameSink> FrameSink for MuxSink<K> {
    fn send(&mut self, seq: u32, frame: &Frame) -> io::Result<()> {
        let env = Frame::Mux {
            job: self.job,
            inner: encode_frame(seq, frame),
        };
        // ordering: Relaxed — the physical sequence number only needs
        // fetch_add uniqueness; the envelope write is serialized by the
        // physical sink's lock.
        let pseq = self
            .physical_seq
            .fetch_add(1, fractal_runtime::sync::Ordering::Relaxed);
        let mut w = self.physical.lock();
        w.send(pseq, &env)
    }
    fn close(&mut self) {
        // The physical connection is shared with other jobs; closing a
        // virtual session must not tear it down.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_runtime::steal::corrupt_payload;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                role: Role::Worker,
                cores: 8,
            },
            Frame::Hello {
                role: Role::Driver,
                cores: 0,
            },
            Frame::Assign {
                round: 0,
                recovery: false,
                job: Some(vec![1, 2, 3]),
                seed: None,
                roots: vec![5, 9, 13],
            },
            Frame::Assign {
                round: 3,
                recovery: true,
                job: None,
                seed: Some(vec![0xAA; 17]),
                roots: vec![],
            },
            Frame::StealRequest { round: 2 },
            Frame::StealReply {
                round: 2,
                word: 77,
                unit: Some(vec![9; 20]),
            },
            Frame::StealReply {
                round: 2,
                word: MISS_WORD,
                unit: None,
            },
            Frame::Ack { round: 1, word: 42 },
            Frame::Nack { round: 1, word: 43 },
            Frame::AggFlush {
                round: 4,
                count: 1234,
                agg: vec![7; 33],
                report: vec![8; 9],
            },
            Frame::Heartbeat {
                round: 4,
                completed: vec![1, 2, 3, u64::MAX - 1],
            },
            Frame::Heartbeat {
                round: 4,
                completed: vec![],
            },
            Frame::Done { round: 5 },
            Frame::Done {
                round: SHUTDOWN_ROUND,
            },
            Frame::Hello {
                role: Role::Client,
                cores: 0,
            },
            Frame::Submit {
                tenant: "acme".into(),
                priority: 7,
                snapshot: "gen:mico:200:1".into(),
                app: vec![1, 2, 3, 4],
                token: "acme-42-a9".into(),
            },
            Frame::Submit {
                tenant: String::new(),
                priority: 0,
                snapshot: String::new(),
                app: vec![],
                token: String::new(),
            },
            Frame::Status { job: 42 },
            Frame::Cancel { job: u64::MAX },
            Frame::Result {
                job: 3,
                count: 0,
                agg: vec![],
                report: vec![],
            },
            Frame::Result {
                job: 9,
                count: 123_456,
                agg: vec![5; 21],
                report: vec![6; 13],
            },
            Frame::JobEvent {
                job: 9,
                kind: EventKind::Progress,
                detail: "round 2".into(),
                value: 17,
                event_seq: 3,
            },
            Frame::JobEvent {
                job: 10,
                kind: EventKind::Rejected,
                detail: "tenant quota".into(),
                value: 0,
                event_seq: 0,
            },
            Frame::Mux {
                job: 4,
                inner: encode_frame(11, &Frame::Done { round: 1 }),
            },
            Frame::Watch {
                job: 12,
                after_seq: 5,
            },
            Frame::Watch {
                job: 0,
                after_seq: 0,
            },
        ]
    }

    #[test]
    fn round_trip_every_frame_type() {
        for (i, f) in sample_frames().into_iter().enumerate() {
            let seq = 100 + i as u32;
            let wire = encode_frame(seq, &f);
            let (got_seq, got) = decode_frame(&wire).expect("decode");
            assert_eq!(got_seq, seq);
            assert_eq!(got, f, "frame {i}");
            // And through the stream reader.
            let mut cursor = std::io::Cursor::new(wire);
            let (s2, f2) = read_frame(&mut cursor).expect("stream decode");
            assert_eq!((s2, f2), (seq, f));
        }
    }

    #[test]
    fn truncation_at_every_length_is_an_error() {
        for f in sample_frames() {
            let wire = encode_frame(7, &f);
            for cut in 0..wire.len() {
                let err = decode_frame(&wire[..cut]).unwrap_err();
                assert!(
                    matches!(err, FrameError::Truncated | FrameError::ChecksumMismatch),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        for f in sample_frames() {
            let mut wire = encode_frame(3, &f);
            if wire.len() > HEADER_LEN + CHECKSUM_LEN {
                corrupt_payload(&mut wire[HEADER_LEN..]);
            } else {
                wire[HEADER_LEN] ^= 0x40; // flip a checksum byte
            }
            assert!(decode_frame(&wire).is_err());
        }
    }

    #[test]
    fn bad_magic_version_and_type_rejected() {
        let mut wire = encode_frame(1, &Frame::Done { round: 0 });
        wire[0] ^= 0xFF;
        assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::BadMagic);

        let mut wire = encode_frame(1, &Frame::Done { round: 0 });
        wire[2] = 99;
        assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::BadVersion(99));

        let mut wire = encode_frame(1, &Frame::Done { round: 0 });
        wire[3] = 200;
        // Checksum covers the type byte, so recompute it to reach the
        // type check.
        let n = wire.len();
        let sum = fnv1a64(&wire[..n - CHECKSUM_LEN]);
        wire[n - CHECKSUM_LEN..].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            FrameError::UnknownType(200)
        );
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = encode_frame(1, &Frame::Done { round: 0 });
        wire[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            FrameError::Oversized(MAX_PAYLOAD + 1)
        );
        // Stream path too: the reader must error out, not allocate 4 GiB.
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = encode_frame(1, &Frame::StealRequest { round: 9 });
        wire.push(0);
        assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::TrailingBytes);
    }

    #[test]
    fn inner_word_count_cannot_overallocate() {
        // Hand-build a Heartbeat whose word count claims far more words
        // than the payload holds.
        let mut payload = Vec::new();
        put_u32(&mut payload, 4); // round
        put_u32(&mut payload, u32::MAX); // claimed word count
        let mut wire = Vec::new();
        put_u16(&mut wire, MAGIC);
        put_u8(&mut wire, VERSION);
        put_u8(&mut wire, 8); // Heartbeat
        put_u32(&mut wire, 1);
        put_u32(&mut wire, payload.len() as u32);
        wire.extend_from_slice(&payload);
        let sum = fnv1a64(&wire);
        put_u64(&mut wire, sum);
        assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::Truncated);
    }

    /// Builds a frame's wire bytes from a raw payload, checksummed, so
    /// payload-level malformations survive the outer checks.
    fn frame_with_payload(ty: u8, payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        put_u16(&mut wire, MAGIC);
        put_u8(&mut wire, VERSION);
        put_u8(&mut wire, ty);
        put_u32(&mut wire, 1);
        put_u32(&mut wire, payload.len() as u32);
        wire.extend_from_slice(payload);
        let sum = fnv1a64(&wire);
        put_u64(&mut wire, sum);
        wire
    }

    #[test]
    fn bad_event_kind_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // job
        put_u8(&mut payload, 99); // invalid kind
        put_str(&mut payload, "x");
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 0); // event_seq
        assert_eq!(
            decode_frame(&frame_with_payload(14, &payload)).unwrap_err(),
            FrameError::Malformed("event kind")
        );
    }

    #[test]
    fn non_utf8_strings_rejected() {
        // A Submit whose tenant bytes are invalid UTF-8.
        let mut payload = Vec::new();
        put_blob(&mut payload, &[0xFF, 0xFE, 0x80]); // tenant
        put_u8(&mut payload, 0); // priority
        put_str(&mut payload, "snap");
        put_blob(&mut payload, &[]); // app
        put_str(&mut payload, "tok");
        assert_eq!(
            decode_frame(&frame_with_payload(10, &payload)).unwrap_err(),
            FrameError::Malformed("utf-8 string")
        );
    }

    #[test]
    fn bad_hello_client_role_byte_rejected() {
        let mut payload = Vec::new();
        put_u8(&mut payload, 3); // only 0/1/2 are valid roles
        put_u32(&mut payload, 4);
        assert_eq!(
            decode_frame(&frame_with_payload(1, &payload)).unwrap_err(),
            FrameError::Malformed("hello role")
        );
    }

    #[test]
    fn mux_envelope_round_trips_inner_frame() {
        let inner = Frame::AggFlush {
            round: 2,
            count: 7,
            agg: vec![1, 2],
            report: vec![3],
        };
        let env = Frame::Mux {
            job: 99,
            inner: encode_frame(5, &inner),
        };
        let wire = encode_frame(1, &env);
        let (_, got) = decode_frame(&wire).expect("outer decode");
        match got {
            Frame::Mux { job, inner: bytes } => {
                assert_eq!(job, 99);
                let (iseq, iframe) = decode_frame(&bytes).expect("inner decode");
                assert_eq!((iseq, iframe), (5, inner));
            }
            other => panic!("expected Mux, got {other:?}"),
        }
    }
}
