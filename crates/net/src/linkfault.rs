//! The link-degradation fault envelope: deterministic delay / duplicate
//! / reorder faults injected at the [`FrameSource`]/[`FrameSink`]
//! transport layer, plus the receive-side duplicate suppression that
//! makes the degraded link safe to run real jobs over.
//!
//! Model: an armed link is *at-least-once with bounded reordering* —
//! frames may arrive late, twice, or one position out of order, but are
//! never corrupted (corruption is the frame checksum's job) and never
//! silently dropped. Receivers restore exactly-once delivery with a
//! sliding window over `(sequence number, content hash)` pairs. Sequence
//! numbers alone are NOT unique on a session link: steal replies echo
//! the *requester's* seq so the driver can match them, and that space
//! overlaps the session's own monotonic counter — but an injected
//! duplicate is a byte-identical copy of a recent frame, so the pair
//! identifies it exactly while echoed-seq coincidences (different bytes)
//! pass through. The driver's merge paths (`AggFlush` in particular) are
//! not idempotent, which is exactly why dedup is part of the envelope
//! contract and not optional.
//!
//! All decisions come from [`fractal_runtime::LinkFaultInjector`] —
//! seeded, budgeted, deterministic — so chaos runs replay exactly.

use crate::frame::{encode_frame, Frame, FrameSink, FrameSource};
use fractal_runtime::steal::fnv1a64;
use fractal_runtime::{LinkFaultAction, LinkFaultInjector};
use std::collections::VecDeque;
use std::io;
use std::sync::Arc;

/// How many recent sequence numbers the duplicate filter remembers.
/// Reordering is hold-back-one, so duplicates land within a couple of
/// frames of the original; 16 leaves a wide margin.
pub const DEDUP_WINDOW: usize = 16;

/// A [`FrameSink`] wrapper that degrades the link per its injector's
/// deterministic plan: delays, duplicates, or holds back one frame until
/// its successor is sent. `close` flushes any held-back frame so the
/// envelope never *loses* traffic.
pub struct FaultySink<K: FrameSink> {
    inner: K,
    injector: Arc<LinkFaultInjector>,
    stash: Option<(u32, Frame)>,
}

impl<K: FrameSink> FaultySink<K> {
    pub fn new(inner: K, injector: Arc<LinkFaultInjector>) -> Self {
        FaultySink {
            inner,
            injector,
            stash: None,
        }
    }

    fn flush_stash(&mut self) -> io::Result<()> {
        if let Some((seq, frame)) = self.stash.take() {
            self.inner.send(seq, &frame)?;
        }
        Ok(())
    }
}

impl<K: FrameSink> FrameSink for FaultySink<K> {
    fn send(&mut self, seq: u32, frame: &Frame) -> io::Result<()> {
        // While a frame is held back, pass traffic through unfaulted:
        // one reorder in flight at a time keeps the displacement bounded
        // (and the dedup window small).
        let action = if self.stash.is_some() {
            LinkFaultAction::None
        } else {
            self.injector.on_send()
        };
        match action {
            LinkFaultAction::Reorder => {
                self.stash = Some((seq, frame.clone()));
                Ok(())
            }
            LinkFaultAction::Duplicate => {
                self.inner.send(seq, frame)?;
                self.inner.send(seq, frame)?;
                self.flush_stash()
            }
            LinkFaultAction::DelayUs(us) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                self.inner.send(seq, frame)?;
                self.flush_stash()
            }
            LinkFaultAction::None => {
                self.inner.send(seq, frame)?;
                self.flush_stash()
            }
        }
    }

    fn close(&mut self) {
        // A held-back final frame must still go out (e.g. the session's
        // AggFlush); losing it would turn a "degraded" link into a
        // "lossy" one and break the flush-is-commit contract.
        let _ = self.flush_stash();
        self.inner.close();
    }
}

/// The receive-side duplicate filter: remembers the last
/// [`DEDUP_WINDOW`] `(seq, content hash)` pairs of one session and
/// reports whether a frame is fresh. The content hash is essential: the
/// seq space alone is shared between a session's own counter and echoed
/// steal-reply seqs (see the module doc), so seq-only dedup would drop
/// legitimate traffic. Shared by [`DedupSource`] and the serve daemon's
/// per-job router demux.
#[derive(Debug, Default)]
pub struct DedupWindow {
    recent: VecDeque<(u32, u64)>,
}

impl DedupWindow {
    pub fn new() -> Self {
        DedupWindow::default()
    }

    /// True when the `(seq, content_hash)` pair has not been seen
    /// recently (and records it).
    pub fn fresh(&mut self, seq: u32, content_hash: u64) -> bool {
        if self.recent.contains(&(seq, content_hash)) {
            return false;
        }
        if self.recent.len() == DEDUP_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back((seq, content_hash));
        true
    }

    /// The canonical content hash of a decoded frame: FNV-1a over its
    /// wire encoding (the encoding is canonical, so re-encoding a decoded
    /// frame reproduces the sender's bytes exactly).
    pub fn content_hash(seq: u32, frame: &Frame) -> u64 {
        fnv1a64(&encode_frame(seq, frame))
    }
}

/// A [`FrameSource`] wrapper applying [`DedupWindow`] suppression:
/// injected duplicates are dropped before the session logic sees them.
pub struct DedupSource<S: FrameSource> {
    inner: S,
    window: DedupWindow,
}

impl<S: FrameSource> DedupSource<S> {
    pub fn new(inner: S) -> Self {
        DedupSource {
            inner,
            window: DedupWindow::new(),
        }
    }
}

impl<S: FrameSource> FrameSource for DedupSource<S> {
    fn recv(&mut self) -> io::Result<(u32, Frame)> {
        loop {
            let (seq, frame) = self.inner.recv()?;
            let hash = DedupWindow::content_hash(seq, &frame);
            if self.window.fresh(seq, hash) {
                return Ok((seq, frame));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ChannelSource;
    use fractal_runtime::LinkFaultConfig;
    use std::sync::mpsc::{channel, Sender};

    /// A sink that records every frame it is asked to write.
    struct RecordingSink(Sender<(u32, Frame)>);

    impl FrameSink for RecordingSink {
        fn send(&mut self, seq: u32, frame: &Frame) -> io::Result<()> {
            self.0
                .send((seq, frame.clone()))
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "receiver gone"))
        }
        fn close(&mut self) {}
    }

    fn beat(completed: u64) -> Frame {
        Frame::Heartbeat {
            round: 0,
            completed: vec![completed],
        }
    }

    #[test]
    fn faulty_sink_never_loses_frames_and_dedup_restores_stream() {
        let (tx, rx) = channel();
        let injector = Arc::new(LinkFaultInjector::new(LinkFaultConfig::flaky(1234)));
        let mut sink = FaultySink::new(RecordingSink(tx), Arc::clone(&injector));
        let n = 300u64;
        for i in 0..n {
            sink.send(i as u32, &beat(i)).expect("send");
        }
        sink.close();
        drop(sink);

        assert!(injector.injected() > 0, "flaky plan must actually fire");

        // Replay the degraded stream through the dedup filter.
        let mut source = DedupSource::new(ChannelSource(rx));
        let mut got = Vec::new();
        while let Ok((seq, frame)) = source.recv() {
            got.push((seq, frame));
        }
        // Exactly-once: every frame arrives exactly one time…
        assert_eq!(got.len() as u64, n);
        let mut seqs: Vec<u32> = got.iter().map(|(s, _)| *s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..n as u32).collect::<Vec<_>>());
        // …and payloads still pair with their sequence numbers.
        for (seq, frame) in &got {
            assert_eq!(frame, &beat(*seq as u64));
        }
    }

    #[test]
    fn close_flushes_a_held_back_frame() {
        // A reorder-only plan with period 1 holds the first frame back.
        let cfg = LinkFaultConfig {
            seed: 0,
            delay_period: 0,
            delay_us: 0,
            dup_period: 0,
            dup_budget: 0,
            reorder_period: 1,
            reorder_budget: 1,
        };
        let (tx, rx) = channel();
        let injector = Arc::new(LinkFaultInjector::new(cfg));
        let mut sink = FaultySink::new(RecordingSink(tx), injector);
        sink.send(0, &beat(0)).expect("send");
        assert!(rx.try_recv().is_err(), "frame should be held back");
        sink.close();
        assert_eq!(rx.try_recv().expect("flushed").0, 0);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut w = DedupWindow::new();
        for seq in 0..(DEDUP_WINDOW as u32 * 3) {
            assert!(w.fresh(seq, 7));
            assert!(!w.fresh(seq, 7), "immediate repeat must be suppressed");
        }
        // Pairs far outside the window are treated as fresh again — fine
        // in practice: a duplicate lands within a frame of its original.
        assert!(w.fresh(0, 7));
    }

    #[test]
    fn same_seq_different_content_is_not_a_duplicate() {
        // Steal replies echo the requester's seq, which can collide with
        // the session's own counter — the content hash must tell those
        // apart while still catching byte-identical injected duplicates.
        let mut w = DedupWindow::new();
        let a = DedupWindow::content_hash(3, &beat(1));
        let b = DedupWindow::content_hash(3, &beat(2));
        assert_ne!(a, b);
        assert!(w.fresh(3, a));
        assert!(w.fresh(3, b), "distinct payload on a reused seq is fresh");
        assert!(!w.fresh(3, a), "true duplicate is still suppressed");
    }
}
