//! `fractal client`: the submit/status/cancel/result side of the job
//! server protocol.
//!
//! A client connection is a plain frame stream: `Hello{Client}` ⇄
//! `Hello{Driver}`, then requests. The same connection doubles as the
//! event stream for every job submitted on it, so replies to explicit
//! requests (`Status`, `Result`, …) can interleave with pushed
//! [`Frame::JobEvent`]s; the helpers below skip events they are not
//! waiting for.
//!
//! Degraded links: [`Client::wait_resumable`] survives transient
//! disconnects. Every event carries its position in the job's event log
//! (`event_seq`); the client remembers the last position it delivered,
//! reconnects with capped exponential backoff plus deterministic jitter,
//! and re-subscribes with [`Frame::Watch`]`{ after_seq }` so the daemon
//! replays exactly the missed suffix — no event lost, none duplicated.

use crate::blob::{self, AppSpec};
use crate::frame::{read_frame, write_frame, EventKind, Frame, Role};
use fractal_runtime::fault::splitmix64;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A job's terminal outcome as observed by [`Client::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobTerminal {
    /// Finished; fetch the payload with [`Client::fetch_result`].
    Done {
        count: u64,
    },
    Cancelled,
    Failed(String),
}

/// How [`Client::wait_resumable`] rides out a flaky or restarting
/// server: capped exponential backoff with deterministic jitter between
/// reconnect attempts, and a per-frame read deadline so a silently dead
/// link is detected rather than waited on forever.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// First retry delay; doubles per failed attempt within one outage.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Consecutive failed reconnect attempts before giving up.
    pub max_attempts: u32,
    /// Jitter seed (deterministic per client; varies per attempt).
    pub seed: u64,
    /// Per-frame read deadline while waiting on the event stream. A
    /// timeout counts as a disconnect and triggers a reconnect.
    pub read_timeout: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(2000),
            max_attempts: 60,
            seed: 0x5EED_C11E_47FA_u64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ReconnectPolicy {
    /// The delay before reconnect attempt `attempt` (0-based):
    /// `min(base << attempt, cap)` plus up to 25% deterministic jitter.
    fn delay(&self, attempt: u32) -> Duration {
        let base = self.base_delay.as_micros() as u64;
        let cap = self.max_delay.as_micros() as u64;
        let exp = base
            .checked_shl(attempt.min(20))
            .unwrap_or(u64::MAX)
            .min(cap)
            .max(1);
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % (exp / 4 + 1);
        Duration::from_micros(exp + jitter)
    }
}

/// One connection to a serve daemon.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    seq: u32,
    /// The daemon's address, for reconnects.
    peer: Option<SocketAddr>,
    /// Successful reconnects performed by [`Client::wait_resumable`].
    reconnects: u64,
}

impl Client {
    /// Connects and handshakes as a client.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let peer = writer.peer_addr().ok();
        let reader = writer.try_clone()?;
        let mut c = Client {
            reader,
            writer,
            seq: 0,
            peer,
            reconnects: 0,
        };
        c.handshake()?;
        Ok(c)
    }

    fn handshake(&mut self) -> io::Result<()> {
        self.send(&Frame::Hello {
            role: Role::Client,
            cores: 0,
        })?;
        match self.recv()? {
            Frame::Hello {
                role: Role::Driver, ..
            } => Ok(()),
            _ => Err(invalid("expected driver Hello")),
        }
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        write_frame(&mut self.writer, seq, frame)
    }

    fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.reader).map(|(_, f)| f)
    }

    /// Successful reconnects performed so far (feeds the
    /// `client_reconnects` metric).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Submits a job. Returns the assigned job id, or an error carrying
    /// the daemon's rejection reason. `token` is the client-generated
    /// idempotency token — resubmitting the same token after an
    /// ambiguous failure returns the originally admitted job id.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u8,
        snapshot: &str,
        app: &AppSpec,
        token: &str,
    ) -> io::Result<u64> {
        self.send(&Frame::Submit {
            tenant: tenant.to_string(),
            priority,
            snapshot: snapshot.to_string(),
            app: blob::encode_app_spec(app),
            token: token.to_string(),
        })?;
        loop {
            match self.recv()? {
                Frame::JobEvent {
                    kind: EventKind::Accepted,
                    value,
                    ..
                } => return Ok(value),
                Frame::JobEvent {
                    kind: EventKind::Rejected,
                    detail,
                    ..
                } => return Err(io::Error::other(detail)),
                // Events for other jobs on this connection.
                _ => {}
            }
        }
    }

    /// Blocks until `job` reaches a terminal state, invoking `on_event`
    /// for every event observed for it along the way. Dies on the first
    /// disconnect; [`Client::wait_resumable`] is the robust variant.
    pub fn wait_with(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(EventKind, &str, u64),
    ) -> io::Result<JobTerminal> {
        loop {
            if let Frame::JobEvent {
                job: j,
                kind,
                detail,
                value,
                ..
            } = self.recv()?
            {
                if j != job {
                    continue;
                }
                on_event(kind, &detail, value);
                match kind {
                    EventKind::Done => return Ok(JobTerminal::Done { count: value }),
                    EventKind::Cancelled => return Ok(JobTerminal::Cancelled),
                    EventKind::Failed | EventKind::Rejected => {
                        return Ok(JobTerminal::Failed(detail))
                    }
                    _ => {}
                }
            }
        }
    }

    /// [`Client::wait_with`] without an event callback.
    pub fn wait(&mut self, job: u64) -> io::Result<JobTerminal> {
        self.wait_with(job, |_, _, _| {})
    }

    /// Like [`Client::wait_with`], but survives transient disconnects
    /// (including a daemon restart): on any stream error or read-deadline
    /// expiry it reconnects with capped exponential backoff + jitter and
    /// resumes the event stream from the last event it delivered, via
    /// [`Frame::Watch`]. Sequenced events (`event_seq > 0`) are
    /// deduplicated across reconnects, so the callback sees each of them
    /// at most once per daemon epoch; unsequenced events pass through.
    pub fn wait_resumable(
        &mut self,
        job: u64,
        policy: &ReconnectPolicy,
        mut on_event: impl FnMut(EventKind, &str, u64),
    ) -> io::Result<JobTerminal> {
        let mut last_seq = 0u64;
        // Subscribe explicitly: unlike `wait_with`, this path must work
        // on a connection that did not submit the job (post-restart).
        self.reader.set_read_timeout(Some(policy.read_timeout)).ok();
        self.send(&Frame::Watch {
            job,
            after_seq: last_seq,
        })
        .or_else(|_| self.reconnect_and_watch(job, last_seq, policy))?;
        loop {
            let frame = match self.recv() {
                Ok(f) => f,
                Err(_) => {
                    // Disconnect or deadline: resume from last_seq.
                    self.reconnect_and_watch(job, last_seq, policy)?;
                    continue;
                }
            };
            if let Frame::JobEvent {
                job: j,
                kind,
                detail,
                value,
                event_seq,
            } = frame
            {
                if j != job {
                    continue;
                }
                if event_seq > 0 {
                    if event_seq <= last_seq {
                        continue; // replayed duplicate
                    }
                    last_seq = event_seq;
                }
                on_event(kind, &detail, value);
                match kind {
                    EventKind::Done => return Ok(JobTerminal::Done { count: value }),
                    EventKind::Cancelled => return Ok(JobTerminal::Cancelled),
                    EventKind::Failed | EventKind::Rejected => {
                        return Ok(JobTerminal::Failed(detail))
                    }
                    _ => {}
                }
            }
        }
    }

    /// Re-dials the daemon (backoff per `policy`), re-handshakes and
    /// re-subscribes with `Watch { after_seq }`. On success the client's
    /// streams are replaced in place.
    fn reconnect_and_watch(
        &mut self,
        job: u64,
        after_seq: u64,
        policy: &ReconnectPolicy,
    ) -> io::Result<()> {
        let peer = self
            .peer
            .ok_or_else(|| invalid("cannot reconnect: unknown peer address"))?;
        let mut last_err = io::Error::new(io::ErrorKind::NotConnected, "no attempts");
        for attempt in 0..policy.max_attempts {
            std::thread::sleep(policy.delay(attempt));
            match Client::connect(peer) {
                Ok(fresh) => {
                    self.reader = fresh.reader;
                    self.writer = fresh.writer;
                    self.seq = fresh.seq;
                    self.reconnects += 1;
                    self.reader.set_read_timeout(Some(policy.read_timeout)).ok();
                    match self.send(&Frame::Watch { job, after_seq }) {
                        Ok(()) => return Ok(()),
                        Err(e) => last_err = e, // raced a dying server; retry
                    }
                }
                Err(e) => last_err = e,
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "gave up after {} reconnect attempts: {last_err}",
                policy.max_attempts
            ),
        ))
    }

    /// Asks for `job`'s current lifecycle state.
    pub fn status(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        self.send(&Frame::Status { job })?;
        self.next_event_for(job)
    }

    /// Requests cancellation; the reply reflects the state at receipt
    /// (queued jobs cancel immediately, running jobs asynchronously).
    pub fn cancel(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        self.send(&Frame::Cancel { job })?;
        self.next_event_for(job)
    }

    /// Fetches a finished job's result: `(count, agg blob, report blob)`.
    /// Errors if the job is not in the `Done` state.
    pub fn fetch_result(&mut self, job: u64) -> io::Result<(u64, Vec<u8>, Vec<u8>)> {
        self.send(&Frame::Result {
            job,
            count: 0,
            agg: Vec::new(),
            report: Vec::new(),
        })?;
        loop {
            match self.recv()? {
                Frame::Result {
                    job: j,
                    count,
                    agg,
                    report,
                } if j == job => return Ok((count, agg, report)),
                Frame::JobEvent {
                    job: j,
                    kind,
                    detail,
                    ..
                } if j == job && kind.is_terminal() => {
                    return Err(invalid(format!(
                        "job {job} has no result: {kind:?} {detail}"
                    )))
                }
                Frame::JobEvent { job: j, kind, .. } if j == job => {
                    return Err(invalid(format!("job {job} not finished: {kind:?}")))
                }
                _ => {} // events for other jobs
            }
        }
    }

    fn next_event_for(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        loop {
            if let Frame::JobEvent {
                job: j,
                kind,
                detail,
                value,
                ..
            } = self.recv()?
            {
                if j == job {
                    return Ok((kind, detail, value));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let p = ReconnectPolicy::default();
        let d0 = p.delay(0);
        assert!(d0 >= p.base_delay);
        assert_eq!(p.delay(0), d0, "jitter must be deterministic");
        // The exponential part saturates at the cap (+ ≤25% jitter).
        let late = p.delay(30);
        assert!(late <= p.max_delay + p.max_delay / 4 + Duration::from_micros(1));
        // Attempts produce distinct jitter.
        assert_ne!(p.delay(1), p.delay(2));
    }
}
