//! `fractal client`: the submit/status/cancel/result side of the job
//! server protocol.
//!
//! A client connection is a plain frame stream: `Hello{Client}` ⇄
//! `Hello{Driver}`, then requests. The same connection doubles as the
//! event stream for every job submitted on it, so replies to explicit
//! requests (`Status`, `Result`, …) can interleave with pushed
//! [`Frame::JobEvent`]s; the helpers below skip events they are not
//! waiting for.

use crate::blob::{self, AppSpec};
use crate::frame::{read_frame, write_frame, EventKind, Frame, Role};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A job's terminal outcome as observed by [`Client::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobTerminal {
    /// Finished; fetch the payload with [`Client::fetch_result`].
    Done {
        count: u64,
    },
    Cancelled,
    Failed(String),
}

/// One connection to a serve daemon.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    seq: u32,
}

impl Client {
    /// Connects and handshakes as a client.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = writer.try_clone()?;
        let mut c = Client {
            reader,
            writer,
            seq: 0,
        };
        c.send(&Frame::Hello {
            role: Role::Client,
            cores: 0,
        })?;
        match c.recv()? {
            Frame::Hello {
                role: Role::Driver, ..
            } => Ok(c),
            _ => Err(invalid("expected driver Hello")),
        }
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        write_frame(&mut self.writer, seq, frame)
    }

    fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.reader).map(|(_, f)| f)
    }

    /// Submits a job. Returns the assigned job id, or an error carrying
    /// the daemon's rejection reason.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u8,
        snapshot: &str,
        app: &AppSpec,
    ) -> io::Result<u64> {
        self.send(&Frame::Submit {
            tenant: tenant.to_string(),
            priority,
            snapshot: snapshot.to_string(),
            app: blob::encode_app_spec(app),
        })?;
        loop {
            match self.recv()? {
                Frame::JobEvent {
                    kind: EventKind::Accepted,
                    value,
                    ..
                } => return Ok(value),
                Frame::JobEvent {
                    kind: EventKind::Rejected,
                    detail,
                    ..
                } => return Err(io::Error::other(detail)),
                // Events for other jobs on this connection.
                _ => {}
            }
        }
    }

    /// Blocks until `job` reaches a terminal state, invoking `on_event`
    /// for every event observed for it along the way.
    pub fn wait_with(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(EventKind, &str, u64),
    ) -> io::Result<JobTerminal> {
        loop {
            if let Frame::JobEvent {
                job: j,
                kind,
                detail,
                value,
            } = self.recv()?
            {
                if j != job {
                    continue;
                }
                on_event(kind, &detail, value);
                match kind {
                    EventKind::Done => return Ok(JobTerminal::Done { count: value }),
                    EventKind::Cancelled => return Ok(JobTerminal::Cancelled),
                    EventKind::Failed | EventKind::Rejected => {
                        return Ok(JobTerminal::Failed(detail))
                    }
                    _ => {}
                }
            }
        }
    }

    /// [`Client::wait_with`] without an event callback.
    pub fn wait(&mut self, job: u64) -> io::Result<JobTerminal> {
        self.wait_with(job, |_, _, _| {})
    }

    /// Asks for `job`'s current lifecycle state.
    pub fn status(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        self.send(&Frame::Status { job })?;
        self.next_event_for(job)
    }

    /// Requests cancellation; the reply reflects the state at receipt
    /// (queued jobs cancel immediately, running jobs asynchronously).
    pub fn cancel(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        self.send(&Frame::Cancel { job })?;
        self.next_event_for(job)
    }

    /// Fetches a finished job's result: `(count, agg blob, report blob)`.
    /// Errors if the job is not in the `Done` state.
    pub fn fetch_result(&mut self, job: u64) -> io::Result<(u64, Vec<u8>, Vec<u8>)> {
        self.send(&Frame::Result {
            job,
            count: 0,
            agg: Vec::new(),
            report: Vec::new(),
        })?;
        loop {
            match self.recv()? {
                Frame::Result {
                    job: j,
                    count,
                    agg,
                    report,
                } if j == job => return Ok((count, agg, report)),
                Frame::JobEvent {
                    job: j,
                    kind,
                    detail,
                    ..
                } if j == job && kind.is_terminal() => {
                    return Err(invalid(format!(
                        "job {job} has no result: {kind:?} {detail}"
                    )))
                }
                Frame::JobEvent { job: j, kind, .. } if j == job => {
                    return Err(invalid(format!("job {job} not finished: {kind:?}")))
                }
                _ => {} // events for other jobs
            }
        }
    }

    fn next_event_for(&mut self, job: u64) -> io::Result<(EventKind, String, u64)> {
        loop {
            if let Frame::JobEvent {
                job: j,
                kind,
                detail,
                value,
            } = self.recv()?
            {
                if j == job {
                    return Ok((kind, detail, value));
                }
            }
        }
    }
}
