//! Write-ahead job journal: the serve daemon's crash-consistency spine.
//!
//! Every admission-control decision and every flush-is-commit boundary
//! is recorded as a checksummed, versioned, append-only record and
//! fsynced before the daemon acts on it. On restart the daemon replays
//! the journal, re-admits incomplete jobs in their original
//! priority/FIFO order and resumes each from its last committed
//! word-set, so a SIGKILL mid-job loses at most the uncommitted tail of
//! work — never a whole job, and never exactly-once-ness of results.
//!
//! Record wire format (big-endian, mirroring the frame protocol):
//!
//! ```text
//! | magic u32 | version u8 | type u8 | payload_len u32 |
//! | payload (payload_len bytes) | checksum u64 (FNV-1a over all prior) |
//! ```
//!
//! Replay is torn-write tolerant: decoding stops at the first record
//! that is truncated or fails its checksum, keeping the longest valid
//! prefix. Opening the journal for append truncates the file back to
//! that prefix so a torn tail can never be extended into a valid-looking
//! record by later appends.

use crate::frame::MAX_PAYLOAD;
use fractal_runtime::steal::fnv1a64;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Journal record magic ("FJ" + record-format tag).
pub const JOURNAL_MAGIC: u32 = 0xF24A_4E01;
/// Journal format version.
pub const JOURNAL_VERSION: u8 = 1;
/// Fixed header size: magic + version + type + payload_len.
pub const RECORD_HEADER_LEN: usize = 10;
/// Trailing checksum size.
pub const RECORD_CHECKSUM_LEN: usize = 8;
/// The journal file inside `--journal <dir>`.
pub const JOURNAL_FILE: &str = "jobs.journal";

/// One durable event in a job's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The admission decision: written (and fsynced) *before* the client
    /// sees `Accepted`, so an acknowledged job can never be lost.
    JobAdmitted {
        job: u64,
        /// Client-generated idempotency token: a retry of the same
        /// logical submission after an ambiguous failure re-uses the
        /// token and must not double-admit.
        token: String,
        tenant: String,
        priority: u8,
        /// Original FIFO position; replay re-admits in this order.
        submit_seq: u64,
        snapshot: String,
        /// Encoded [`crate::blob::AppSpec`].
        app: Vec<u8>,
    },
    /// The scheduler dispatched the job.
    JobStarted { job: u64 },
    /// A flush-is-commit boundary: the driver merged every worker's
    /// `AggFlush` for a round. Carries the *cumulative* resume state so
    /// only the latest record matters for recovery.
    WordSetCommitted {
        job: u64,
        /// Rounds fully committed (resume starts at this round index).
        rounds_done: u32,
        /// Cumulative count through the committed rounds.
        count: u64,
        /// Cumulative aggregation state (app-specific blob).
        agg: Vec<u8>,
    },
    /// Terminal: finished, with the full result payload so a restarted
    /// daemon can still serve `Result` fetches.
    JobFinished {
        job: u64,
        count: u64,
        agg: Vec<u8>,
        report: Vec<u8>,
    },
    /// Terminal: cancelled.
    JobCancelled { job: u64 },
    /// Terminal: failed.
    JobFailed { job: u64, error: String },
}

impl Record {
    fn type_code(&self) -> u8 {
        match self {
            Record::JobAdmitted { .. } => 1,
            Record::JobStarted { .. } => 2,
            Record::WordSetCommitted { .. } => 3,
            Record::JobFinished { .. } => 4,
            Record::JobCancelled { .. } => 5,
            Record::JobFailed { .. } => 6,
        }
    }

    /// The job this record belongs to.
    pub fn job(&self) -> u64 {
        match *self {
            Record::JobAdmitted { job, .. }
            | Record::JobStarted { job }
            | Record::WordSetCommitted { job, .. }
            | Record::JobFinished { job, .. }
            | Record::JobCancelled { job }
            | Record::JobFailed { job, .. } => job,
        }
    }
}

// ---- payload codec (self-contained; mirrors the frame codec idiom) ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_be_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes(b.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        // Length guard: the announced size can never exceed what is
        // actually present, so a hostile length cannot over-allocate.
        if n > self.buf.len() - self.pos {
            return None;
        }
        self.take(n).map(|b| b.to_vec())
    }
    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
    fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

fn encode_payload(r: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match r {
        Record::JobAdmitted {
            job,
            token,
            tenant,
            priority,
            submit_seq,
            snapshot,
            app,
        } => {
            put_u64(&mut out, *job);
            put_str(&mut out, token);
            put_str(&mut out, tenant);
            put_u8(&mut out, *priority);
            put_u64(&mut out, *submit_seq);
            put_str(&mut out, snapshot);
            put_bytes(&mut out, app);
        }
        Record::JobStarted { job } => put_u64(&mut out, *job),
        Record::WordSetCommitted {
            job,
            rounds_done,
            count,
            agg,
        } => {
            put_u64(&mut out, *job);
            put_u32(&mut out, *rounds_done);
            put_u64(&mut out, *count);
            put_bytes(&mut out, agg);
        }
        Record::JobFinished {
            job,
            count,
            agg,
            report,
        } => {
            put_u64(&mut out, *job);
            put_u64(&mut out, *count);
            put_bytes(&mut out, agg);
            put_bytes(&mut out, report);
        }
        Record::JobCancelled { job } => put_u64(&mut out, *job),
        Record::JobFailed { job, error } => {
            put_u64(&mut out, *job);
            put_str(&mut out, error);
        }
    }
    out
}

fn decode_payload(code: u8, payload: &[u8]) -> Option<Record> {
    let mut r = Rd::new(payload);
    let rec = match code {
        1 => Record::JobAdmitted {
            job: r.u64()?,
            token: r.string()?,
            tenant: r.string()?,
            priority: r.u8()?,
            submit_seq: r.u64()?,
            snapshot: r.string()?,
            app: r.bytes()?,
        },
        2 => Record::JobStarted { job: r.u64()? },
        3 => Record::WordSetCommitted {
            job: r.u64()?,
            rounds_done: r.u32()?,
            count: r.u64()?,
            agg: r.bytes()?,
        },
        4 => Record::JobFinished {
            job: r.u64()?,
            count: r.u64()?,
            agg: r.bytes()?,
            report: r.bytes()?,
        },
        5 => Record::JobCancelled { job: r.u64()? },
        6 => Record::JobFailed {
            job: r.u64()?,
            error: r.string()?,
        },
        _ => return None,
    };
    r.finish()?;
    Some(rec)
}

/// Encodes one record into its durable representation (header + payload
/// + checksum).
pub fn encode_record(r: &Record) -> Vec<u8> {
    let payload = encode_payload(r);
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + RECORD_CHECKSUM_LEN);
    put_u32(&mut out, JOURNAL_MAGIC);
    put_u8(&mut out, JOURNAL_VERSION);
    put_u8(&mut out, r.type_code());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let sum = fnv1a64(&out);
    put_u64(&mut out, sum);
    out
}

/// Attempts to decode one record at the start of `buf`. Returns the
/// record and the bytes it consumed, or `None` if the prefix is
/// truncated, torn, or corrupt — the replay stop condition.
pub fn decode_record(buf: &[u8]) -> Option<(Record, usize)> {
    if buf.len() < RECORD_HEADER_LEN {
        return None;
    }
    let magic = u32::from_be_bytes(buf[0..4].try_into().unwrap());
    if magic != JOURNAL_MAGIC || buf[4] != JOURNAL_VERSION {
        return None;
    }
    let code = buf[5];
    let len = u32::from_be_bytes(buf[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return None;
    }
    let total = RECORD_HEADER_LEN + len as usize + RECORD_CHECKSUM_LEN;
    if buf.len() < total {
        return None;
    }
    let body = &buf[..RECORD_HEADER_LEN + len as usize];
    let sum = u64::from_be_bytes(buf[total - 8..total].try_into().unwrap());
    if fnv1a64(body) != sum {
        return None;
    }
    let rec = decode_payload(code, &body[RECORD_HEADER_LEN..])?;
    Some((rec, total))
}

/// Replays `bytes`, returning every record of the longest valid prefix
/// plus that prefix's byte length.
pub fn replay_prefix(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut pos = 0;
    while let Some((rec, used)) = decode_record(&bytes[pos..]) {
        records.push(rec);
        pos += used;
    }
    (records, pos)
}

/// A job's terminal state as reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayTerminal {
    Finished {
        count: u64,
        agg: Vec<u8>,
        report: Vec<u8>,
    },
    Cancelled,
    Failed(String),
}

/// One job's folded journal history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayJob {
    pub token: String,
    pub tenant: String,
    pub priority: u8,
    pub submit_seq: u64,
    pub snapshot: String,
    /// Encoded [`crate::blob::AppSpec`].
    pub app: Vec<u8>,
    /// How many `JobStarted` records were journaled (one per dispatch:
    /// more than one means the daemon crashed mid-run and restarted the
    /// job). Doubles as the event-stream epoch: each restart re-emits
    /// lifecycle events under a higher epoch so sequence numbers never
    /// move backwards across a daemon restart.
    pub starts: u64,
    /// Latest committed word-set: `(rounds_done, cumulative count,
    /// cumulative agg blob)`. Later commits supersede earlier ones.
    pub committed: Option<(u32, u64, Vec<u8>)>,
    pub terminal: Option<ReplayTerminal>,
}

impl ReplayJob {
    /// Incomplete jobs are re-admitted on restart.
    pub fn incomplete(&self) -> bool {
        self.terminal.is_none()
    }
}

/// The daemon-relevant result of replaying a journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid records replayed (drives the `journal_replayed` counter).
    pub replayed: u64,
    /// Byte length of the valid prefix (the torn tail starts here).
    pub valid_len: u64,
    /// Per-job folded state, keyed by job id (iteration is id-ordered).
    pub jobs: BTreeMap<u64, ReplayJob>,
}

impl Replay {
    /// Folds a record stream into per-job state. Records for jobs with
    /// no preceding `JobAdmitted` are tolerated and dropped: the
    /// write-ahead discipline makes them impossible to *write*, but a
    /// hand-edited or partially-copied journal must still replay.
    pub fn fold(records: Vec<Record>, valid_len: usize) -> Replay {
        let mut rep = Replay {
            replayed: records.len() as u64,
            valid_len: valid_len as u64,
            jobs: BTreeMap::new(),
        };
        for rec in records {
            match rec {
                Record::JobAdmitted {
                    job,
                    token,
                    tenant,
                    priority,
                    submit_seq,
                    snapshot,
                    app,
                } => {
                    rep.jobs.entry(job).or_insert(ReplayJob {
                        token,
                        tenant,
                        priority,
                        submit_seq,
                        snapshot,
                        app,
                        starts: 0,
                        committed: None,
                        terminal: None,
                    });
                }
                Record::JobStarted { job } => {
                    if let Some(j) = rep.jobs.get_mut(&job) {
                        j.starts += 1;
                    }
                }
                Record::WordSetCommitted {
                    job,
                    rounds_done,
                    count,
                    agg,
                } => {
                    if let Some(j) = rep.jobs.get_mut(&job) {
                        j.committed = Some((rounds_done, count, agg));
                    }
                }
                Record::JobFinished {
                    job,
                    count,
                    agg,
                    report,
                } => {
                    if let Some(j) = rep.jobs.get_mut(&job) {
                        j.terminal = Some(ReplayTerminal::Finished { count, agg, report });
                    }
                }
                Record::JobCancelled { job } => {
                    if let Some(j) = rep.jobs.get_mut(&job) {
                        j.terminal = Some(ReplayTerminal::Cancelled);
                    }
                }
                Record::JobFailed { job, error } => {
                    if let Some(j) = rep.jobs.get_mut(&job) {
                        j.terminal = Some(ReplayTerminal::Failed(error));
                    }
                }
            }
        }
        rep
    }

    /// Incomplete jobs in original admission order (priority is applied
    /// by the scheduler, exactly as for live submissions).
    pub fn incomplete_jobs(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.incomplete())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_by_key(|id| self.jobs[id].submit_seq);
        ids
    }
}

/// An open, append-only journal. Every [`Journal::append`] is fsynced
/// before it returns: callers act on journaled state only after the
/// record is durable (write-ahead).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replays the
    /// existing contents, truncates any torn tail, and returns the
    /// journal positioned for append plus the replay result.
    pub fn open(dir: &Path) -> io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = replay_prefix(&bytes);
        if valid_len < bytes.len() {
            // Torn tail: cut it off so appends extend the valid prefix.
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        use std::io::Seek as _;
        file.seek(io::SeekFrom::Start(valid_len as u64))?;
        let replay = Replay::fold(records, valid_len);
        Ok((Journal { file, path }, replay))
    }

    /// Appends one record and fsyncs it. On return the record is durable.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let bytes = encode_record(rec);
        self.file.write_all(&bytes)?;
        self.file.sync_data()
    }

    /// The journal file path (diagnostics, smoke-test assertions).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::JobAdmitted {
                job: 1,
                token: "tok-a".into(),
                tenant: "acme".into(),
                priority: 3,
                submit_seq: 0,
                snapshot: "gen:mico:300:11".into(),
                app: vec![1, 2, 3],
            },
            Record::JobStarted { job: 1 },
            Record::WordSetCommitted {
                job: 1,
                rounds_done: 1,
                count: 42,
                agg: vec![9, 9],
            },
            Record::JobFinished {
                job: 1,
                count: 99,
                agg: vec![4],
                report: vec![5, 6],
            },
            Record::JobCancelled { job: 2 },
            Record::JobFailed {
                job: 3,
                error: "no live workers".into(),
            },
        ]
    }

    #[test]
    fn record_round_trip() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            let (back, used) = decode_record(&bytes).expect("decode");
            assert_eq!(back, rec);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        let full_len = bytes.len();
        // Whole stream replays.
        let (replayed, len) = replay_prefix(&bytes);
        assert_eq!(replayed, recs);
        assert_eq!(len, full_len);
        // Chop mid-final-record: everything before it survives.
        bytes.truncate(full_len - 3);
        let (replayed, len) = replay_prefix(&bytes);
        assert_eq!(replayed.len(), recs.len() - 1);
        assert!(len <= bytes.len());
    }

    #[test]
    fn replay_stops_at_corrupt_record() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        let mut offsets = Vec::new();
        for r in &recs {
            offsets.push(bytes.len());
            bytes.extend_from_slice(&encode_record(r));
        }
        // Flip one byte inside the third record's payload.
        bytes[offsets[2] + RECORD_HEADER_LEN] ^= 0xFF;
        let (replayed, len) = replay_prefix(&bytes);
        assert_eq!(replayed.len(), 2, "replay must stop at the corruption");
        assert_eq!(len, offsets[2]);
    }

    #[test]
    fn fold_builds_job_state_machine() {
        let rep = Replay::fold(sample_records(), 123);
        assert_eq!(rep.replayed, 6);
        assert_eq!(rep.valid_len, 123);
        let j1 = &rep.jobs[&1];
        assert_eq!(j1.starts, 1);
        assert_eq!(j1.committed.as_ref().unwrap().0, 1);
        assert!(matches!(
            j1.terminal,
            Some(ReplayTerminal::Finished { count: 99, .. })
        ));
        assert!(!j1.incomplete());
        // Orphan terminal records (no JobAdmitted) are dropped.
        assert!(!rep.jobs.contains_key(&2));
        assert!(!rep.jobs.contains_key(&3));
    }

    #[test]
    fn incomplete_jobs_keep_fifo_order() {
        let recs = vec![
            Record::JobAdmitted {
                job: 7,
                token: "b".into(),
                tenant: "t".into(),
                priority: 0,
                submit_seq: 2,
                snapshot: "s".into(),
                app: vec![],
            },
            Record::JobAdmitted {
                job: 4,
                token: "a".into(),
                tenant: "t".into(),
                priority: 0,
                submit_seq: 1,
                snapshot: "s".into(),
                app: vec![],
            },
            Record::JobAdmitted {
                job: 9,
                token: "c".into(),
                tenant: "t".into(),
                priority: 0,
                submit_seq: 3,
                snapshot: "s".into(),
                app: vec![],
            },
            Record::JobCancelled { job: 4 },
        ];
        let rep = Replay::fold(recs, 0);
        assert_eq!(rep.incomplete_jobs(), vec![7, 9]);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "fractal-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut j, rep) = Journal::open(&dir).expect("open fresh");
            assert_eq!(rep.replayed, 0);
            for r in sample_records() {
                j.append(&r).expect("append");
            }
        }
        // Tear the tail: append garbage plus a partial record.
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&Record::JobStarted { job: 9 })[..7]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let (mut j, rep) = Journal::open(&dir).expect("reopen");
            assert_eq!(rep.replayed, 6);
            assert_eq!(rep.valid_len as usize, good_len);
            // The torn bytes are gone from disk…
            assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, good_len);
            // …and a fresh append lands after the valid prefix.
            j.append(&Record::JobStarted { job: 9 }).expect("append");
        }
        let (_, rep) = Journal::open(&dir).expect("final open");
        assert_eq!(rep.replayed, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
