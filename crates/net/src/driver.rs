//! The driver process: job partitioning, steal relay, failure recovery
//! and final reduction.
//!
//! The driver is the hub of a star topology: every worker holds exactly
//! one TCP connection, to the driver, and all cross-process traffic —
//! including work stealing — is relayed through it. That buys a simple
//! consistency story: the driver is the single ledger of *word ownership*
//! (which process is responsible for delivering each root word's
//! results), updated at the moment a steal reply is forwarded, so no
//! two-party commit is ever needed. The driver is reliable by model
//! (driver failure fails the job); workers may die at any time.
//!
//! Exactly-once results under failure hinge on one rule: **flush, not
//! completion, is the commit point.** A worker that dies mid-round takes
//! its uncommitted results with it, so *all* its owned words — completed
//! or not — return to the driver's orphan pool and are re-executed by
//! survivors (served directly out of the pool to the next puller, since
//! root units have empty prefixes the driver can encode itself). A worker
//! that dies after the round was declared done but before its `AggFlush`
//! triggers a *recovery assign*: its unflushed word sets re-run on a
//! survivor as an extra pass with stealing disabled.

use crate::blob::{self, AppSpec};
use crate::frame::{Frame, FrameSink, FrameSource, Role, MISS_WORD, SHUTDOWN_ROUND};
use fractal_apps::fsm::{fsm_fractoid, DomainSupport};
use fractal_apps::{cliques, motifs};
use fractal_core::FractalContext;
use fractal_graph::Graph;
use fractal_pattern::{CanonicalCode, CountingPlan, GraphStats};
use fractal_runtime::steal::{encode_unit, StolenUnit};
use fractal_runtime::{
    ClusterConfig, CoreStats, FaultStats, GlobalCoreId, JobReport, PlannerStats,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use fractal_runtime::sync::{AtomicBool, Mutex, Ordering};

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Deterministic fault injection for the cluster substrate: SIGKILL a
/// worker process once it has demonstrably made progress (first heartbeat
/// carrying a completed word in round 0).
pub struct ChaosKill {
    /// Index of the worker to kill.
    pub target: usize,
    /// The kill action (e.g. `Child::kill` through a [`LocalCluster`]).
    pub kill: Box<dyn FnMut() + Send>,
}

/// Cluster job description handed to [`run_cluster`].
pub struct DriverConfig {
    /// Which application to run.
    pub app: AppSpec,
    /// The input graph (shipped to workers in the first `Assign`). Held by
    /// `Arc` so the serve daemon can hand many concurrent jobs the same
    /// loaded snapshot without copying it.
    pub graph: Arc<Graph>,
    /// Declare a worker dead when its heartbeats lapse this long (EOF on
    /// its connection is the primary death signal; this is the backstop
    /// for hung-but-connected processes).
    pub heartbeat_timeout: Duration,
    /// Optional process-kill fault injection.
    pub chaos_kill: Option<ChaosKill>,
    /// Cooperative cancellation: when the flag flips true the driver stops
    /// at its next event-loop iteration, shuts the workers' sessions down
    /// and returns a partial result marked `cancelled`.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Progress callback `(round, words_done, words_total)`, invoked from
    /// the driver thread whenever the completed-word count advances. The
    /// serve daemon streams these to clients as `JobEvent::Progress`.
    #[allow(clippy::type_complexity)]
    pub progress: Option<Arc<dyn Fn(u32, u64, u64) + Send + Sync>>,
    /// Chaos hook for the shutdown-race regression test: the driver stalls
    /// this long immediately after broadcasting the first `Done`, so every
    /// worker's final traffic (heartbeats, `AggFlush`, EOF) queues up
    /// behind one blocked event-loop iteration.
    pub chaos_stall_after_done: Option<Duration>,
    /// Invoked at every flush-is-commit boundary (end of a fully flushed
    /// round) with `(rounds_done, cumulative count, cumulative agg blob)`.
    /// The blob is self-contained resume state — the serve daemon journals
    /// it as a `WordSetCommitted` record, so a crashed job restarts from
    /// its last committed round, not from scratch.
    #[allow(clippy::type_complexity)]
    pub on_round_commit: Option<Arc<dyn Fn(u32, u64, &[u8]) + Send + Sync>>,
    /// Start from previously committed state instead of round 0.
    pub resume: Option<ResumeState>,
}

/// Committed cumulative state of a partially run job, decoded from its
/// last journalled `WordSetCommitted` record. [`run_cluster_links`] picks
/// up at round `rounds_done` with these accumulators pre-seeded, so a
/// resumed run's final counts are bit-identical to an uninterrupted one.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Fully committed rounds; execution restarts at this round index.
    pub rounds_done: u32,
    /// Cumulative result count over the committed rounds.
    pub count: u64,
    /// Cumulative motif map (Motifs only).
    pub motifs: HashMap<CanonicalCode, u64>,
    /// Per-round globally filtered frequent maps (FSM only).
    pub frequent: Vec<HashMap<CanonicalCode, DomainSupport>>,
}

impl ResumeState {
    /// Decodes the cumulative agg blob of a `WordSetCommitted` record back
    /// into driver accumulators (the inverse of what
    /// [`DriverConfig::on_round_commit`] is handed).
    pub fn decode(app: &AppSpec, rounds_done: u32, count: u64, agg: &[u8]) -> io::Result<Self> {
        let mut state = ResumeState {
            rounds_done,
            count,
            ..ResumeState::default()
        };
        match app {
            AppSpec::Motifs { .. } => {
                state.motifs = blob::decode_motifs_map(agg)
                    .map_err(|e| invalid(format!("resume motifs: {e}")))?;
            }
            AppSpec::Kclist { .. } => {}
            AppSpec::Fsm { .. } => {
                state.frequent = blob::decode_fsm_seeds(agg)
                    .map_err(|e| invalid(format!("resume fsm seeds: {e}")))?;
            }
        }
        Ok(state)
    }
}

impl DriverConfig {
    /// A config with default failure-detection settings.
    pub fn new(app: AppSpec, graph: Graph) -> Self {
        Self::new_shared(app, Arc::new(graph))
    }

    /// Same, over an already-shared graph snapshot (the serve path).
    pub fn new_shared(app: AppSpec, graph: Arc<Graph>) -> Self {
        DriverConfig {
            app,
            graph,
            heartbeat_timeout: Duration::from_millis(2000),
            chaos_kill: None,
            cancel: None,
            progress: None,
            chaos_stall_after_done: None,
            on_round_commit: None,
            resume: None,
        }
    }
}

/// Per-worker breakdown of a cluster run, for `fractal trace
/// --per-worker` and test assertions.
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// Worker name (host:port or a synthetic local name).
    pub name: String,
    /// Executor threads the worker announced in its `Hello`.
    pub cores: u32,
    /// Root words assigned by initial partitioning (all rounds).
    pub assigned: u64,
    /// Root-word completions it heartbeat'd.
    pub completed: u64,
    /// Words transferred *to* it (relayed steals + orphan serves).
    pub stolen_in: u64,
    /// Words transferred *from* it to thieves.
    pub stolen_out: u64,
    /// Corrupt steal units it reported (each re-owned by the driver).
    pub nacks: u64,
    /// `AggFlush` frames received from it.
    pub flushes: u64,
    /// Recovery passes it executed for dead peers.
    pub recoveries: u64,
    /// Externally pulled units it executed (from its metrics reports).
    pub net_units: u64,
    /// Whether the driver declared it dead.
    pub died: bool,
}

/// What a cluster run produced.
pub struct ClusterResult {
    /// The application that ran.
    pub app: AppSpec,
    /// Total result-subgraph count (count-mode apps, e.g. KClist).
    pub count: u64,
    /// Merged motif map (Motifs only).
    pub motifs: HashMap<CanonicalCode, u64>,
    /// Per-round globally filtered frequent-pattern maps (FSM only).
    pub frequent: Vec<HashMap<CanonicalCode, DomainSupport>>,
    /// Driver rounds actually executed.
    pub rounds: u32,
    /// Federated metrics: per-core stats of every worker (remapped to
    /// cluster-wide worker indices), summed counters, driver wall-clock.
    pub report: JobReport,
    /// Per-worker breakdowns.
    pub workers: Vec<WorkerSummary>,
    /// Workers declared dead.
    pub deaths: u64,
    /// Words returned to the orphan pool by deaths or nacks.
    pub orphaned_words: u64,
    /// Recovery passes assigned after post-done deaths.
    pub recovery_assigns: u64,
    /// Successful steal transfers relayed (including orphan serves).
    pub steal_relays: u64,
    /// Whether the job was cancelled before completing (the counters and
    /// maps above then hold only the rounds that fully finished).
    pub cancelled: bool,
}

enum Ev {
    Frame(usize, u32, Frame),
    Dead(usize),
}

struct Conn<K: FrameSink> {
    writer: Option<K>,
    seq: u32,
    alive: bool,
    got_job: bool,
    last_beat: Instant,
    /// Flushes expected / received for the current round.
    expected: u32,
    flushed: u32,
    /// Outstanding passes: the word sets whose results this worker still
    /// owes. Front = oldest; popped on each `AggFlush` (FIFO matches the
    /// worker's assign-order execution). Steal transfers move words
    /// between the *current* (front) passes of victim and thief.
    passes: VecDeque<HashSet<u64>>,
    summary: WorkerSummary,
}

impl<K: FrameSink> Conn<K> {
    fn send_seq(&mut self, seq: u32, frame: &Frame) -> bool {
        let Some(w) = self.writer.as_mut() else {
            return false;
        };
        w.send(seq, frame).is_ok()
    }

    fn send(&mut self, frame: &Frame) -> bool {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.send_seq(seq, frame)
    }
}

/// Per-round ledger.
struct RoundState {
    round: u32,
    /// word → globally completed?
    words: HashMap<u64, bool>,
    done_count: usize,
    /// Words the driver owns and serves directly to the next puller.
    orphans: VecDeque<u64>,
    /// Relayed steals in flight: (victim, forwarded seq) → (thief, the
    /// thief's request seq to echo).
    pending: HashMap<(usize, u32), (usize, u32)>,
    done_broadcast: bool,
    count: u64,
    motifs: HashMap<CanonicalCode, u64>,
    /// Element-wise sum of decomposed-plan partial totals (decomposed
    /// motifs only); sized by the first flush of the round.
    plan_totals: Vec<i128>,
    fsm: HashMap<CanonicalCode, DomainSupport>,
}

impl RoundState {
    fn new(round: u32, roots: &[u64]) -> Self {
        RoundState {
            round,
            words: roots.iter().map(|&w| (w, false)).collect(),
            done_count: 0,
            orphans: VecDeque::new(),
            pending: HashMap::new(),
            done_broadcast: false,
            count: 0,
            motifs: HashMap::new(),
            plan_totals: Vec::new(),
            fsm: HashMap::new(),
        }
    }
}

struct Driver<K: FrameSink> {
    app: AppSpec,
    conns: Vec<Conn<K>>,
    heartbeat_timeout: Duration,
    chaos_kill: Option<ChaosKill>,
    deaths: u64,
    orphaned_words: u64,
    recovery_assigns: u64,
    steal_relays: u64,
    // Federated metrics accumulators.
    acc_cores: HashMap<(usize, usize), CoreStats>,
    bytes_served: u64,
    steal_requests: u64,
    steal_hits: u64,
    faults: FaultStats,
    planner: PlannerStats,
}

impl<K: FrameSink> Driver<K> {
    fn alive(&self) -> Vec<usize> {
        (0..self.conns.len())
            .filter(|&i| self.conns[i].alive)
            .collect()
    }

    fn send_or_kill(&mut self, i: usize, frame: &Frame, rs: &mut RoundState) {
        if !self.conns[i].send(frame) {
            self.kill_worker(i, rs);
        }
    }

    /// Declares worker `i` dead and reroutes its obligations. Idempotent.
    fn kill_worker(&mut self, i: usize, rs: &mut RoundState) {
        if !self.conns[i].alive {
            return;
        }
        self.conns[i].alive = false;
        self.conns[i].summary.died = true;
        if let Some(mut w) = self.conns[i].writer.take() {
            w.close();
        }
        self.deaths += 1;

        // Relayed steals involving the dead worker.
        let stale: Vec<((usize, u32), (usize, u32))> = rs
            .pending
            .iter()
            .filter(|(&(v, _), &(t, _))| v == i || t == i)
            .map(|(k, v)| (*k, *v))
            .collect();
        for (key, (thief, tseq)) in stale {
            rs.pending.remove(&key);
            // Dead victim: unblock the thief with a miss. (Dead thief:
            // just forget the entry — a later hit reply from the victim
            // finds no match and its word is orphaned below.)
            if key.0 == i && self.conns[thief].alive {
                let miss = Frame::StealReply {
                    round: rs.round,
                    word: MISS_WORD,
                    unit: None,
                };
                if !self.conns[thief].send_seq(tseq, &miss) {
                    self.kill_worker(thief, rs);
                }
            }
        }

        let leftover: Vec<HashSet<u64>> = self.conns[i].passes.drain(..).collect();
        if !rs.done_broadcast {
            // Mid-round death: every owned word — completed or not — is
            // uncommitted (results died with the process). Back to the
            // pool; completions are rolled back.
            for set in leftover {
                for w in set {
                    if let Some(done) = rs.words.get_mut(&w) {
                        if *done {
                            *done = false;
                            rs.done_count -= 1;
                        }
                        rs.orphans.push_back(w);
                        self.orphaned_words += 1;
                    }
                }
            }
        } else {
            // Post-done death: unflushed passes re-run on a survivor as
            // recovery assigns (no stealing; one extra flush each).
            for set in leftover {
                if set.is_empty() {
                    continue;
                }
                let Some(&s) = self.alive().first() else {
                    return; // round loop notices all-dead and errors out
                };
                let mut roots: Vec<u64> = set.iter().copied().collect();
                roots.sort_unstable();
                self.conns[s].passes.push_back(set);
                self.conns[s].expected += 1;
                self.conns[s].summary.recoveries += 1;
                self.recovery_assigns += 1;
                let assign = Frame::Assign {
                    round: rs.round,
                    recovery: true,
                    job: None,
                    seed: None,
                    roots,
                };
                self.send_or_kill(s, &assign, rs);
            }
        }
    }

    fn accumulate_report(&mut self, i: usize, report: JobReport) {
        for (id, s) in report.cores {
            self.conns[i].summary.net_units += s.net_units;
            let acc = self.acc_cores.entry((i, id.core)).or_default();
            acc.busy_ns += s.busy_ns;
            acc.units += s.units;
            acc.internal_steals += s.internal_steals;
            acc.external_steals += s.external_steals;
            acc.net_units += s.net_units;
            acc.failed_steal_rounds += s.failed_steal_rounds;
            acc.bytes_received += s.bytes_received;
            acc.ec += s.ec;
            acc.peak_state_bytes = acc.peak_state_bytes.max(s.peak_state_bytes);
            acc.steal_ns += s.steal_ns;
            acc.kernel_merge += s.kernel_merge;
            acc.kernel_gallop += s.kernel_gallop;
            acc.kernel_bitset += s.kernel_bitset;
            acc.kernel_scanned += s.kernel_scanned;
            acc.arena_peak_bytes = acc.arena_peak_bytes.max(s.arena_peak_bytes);
        }
        self.bytes_served += report.bytes_served;
        self.steal_requests += report.steal_requests;
        self.steal_hits += report.steal_hits;
        self.faults.faults_injected += report.faults.faults_injected;
        self.faults.units_retried += report.faults.units_retried;
        self.faults.units_reexecuted += report.faults.units_reexecuted;
        self.faults.watchdog_trips += report.faults.watchdog_trips;
        self.faults.recovery_ns += report.faults.recovery_ns;
        self.faults.units_lost += report.faults.units_lost;
        self.faults.jobs_admitted += report.faults.jobs_admitted;
        self.faults.jobs_rejected += report.faults.jobs_rejected;
        self.faults.snapshot_evictions += report.faults.snapshot_evictions;
        self.faults.journal_replayed += report.faults.journal_replayed;
        self.faults.resumed_jobs += report.faults.resumed_jobs;
        self.faults.link_faults_injected += report.faults.link_faults_injected;
        self.faults.client_reconnects += report.faults.client_reconnects;
        // Every worker runs the same compiled plan: keep the shared
        // counters instead of summing duplicates.
        self.planner.absorb(&report.planner);
    }

    fn handle_frame(
        &mut self,
        i: usize,
        seq: u32,
        frame: Frame,
        rs: &mut RoundState,
    ) -> io::Result<()> {
        if !self.conns[i].alive {
            return Ok(());
        }
        // Any frame is proof of life, not just heartbeats: a worker whose
        // final AggFlush sat in the event queue during a slow iteration
        // must not be judged stale by a clock that kept running while its
        // delivered traffic waited to be processed.
        self.conns[i].last_beat = Instant::now();
        match frame {
            Frame::Heartbeat { round, completed } => {
                if round == rs.round {
                    self.conns[i].summary.completed += completed.len() as u64;
                    for w in &completed {
                        if let Some(done) = rs.words.get_mut(w) {
                            if !*done {
                                *done = true;
                                rs.done_count += 1;
                            }
                        }
                    }
                    let fire = !completed.is_empty()
                        && rs.round == 0
                        && self.chaos_kill.as_ref().is_some_and(|ck| ck.target == i);
                    if fire {
                        let mut ck = self.chaos_kill.take().expect("checked");
                        (ck.kill)();
                    }
                }
            }
            Frame::StealRequest { round } => {
                if round != rs.round || rs.done_broadcast {
                    let miss = Frame::StealReply {
                        round,
                        word: MISS_WORD,
                        unit: None,
                    };
                    if !self.conns[i].send_seq(seq, &miss) {
                        self.kill_worker(i, rs);
                    }
                } else if let Some(w) = rs.orphans.pop_front() {
                    // Serve the orphan directly: a root unit has an empty
                    // prefix, so the driver encodes it itself.
                    if let Some(front) = self.conns[i].passes.front_mut() {
                        front.insert(w);
                    } else {
                        self.conns[i].passes.push_back([w].into_iter().collect());
                    }
                    self.conns[i].summary.stolen_in += 1;
                    self.steal_relays += 1;
                    let unit = encode_unit(&StolenUnit {
                        prefix: Vec::new(),
                        word: w,
                    });
                    let reply = Frame::StealReply {
                        round,
                        word: w,
                        unit: Some(unit),
                    };
                    if !self.conns[i].send_seq(seq, &reply) {
                        // The kill path re-orphans w via the thief's pass.
                        self.kill_worker(i, rs);
                    }
                } else {
                    // Relay to the victim with the most unfinished words.
                    let victim = self
                        .alive()
                        .into_iter()
                        .filter(|&j| j != i)
                        .map(|j| {
                            let remaining = self.conns[j]
                                .passes
                                .front()
                                .map(|s| s.iter().filter(|w| !rs.words[*w]).count())
                                .unwrap_or(0);
                            (remaining, j)
                        })
                        .filter(|&(n, _)| n > 0)
                        .max_by_key(|&(n, _)| n)
                        .map(|(_, j)| j);
                    match victim {
                        Some(j) => {
                            let fwd_seq = self.conns[j].seq;
                            self.conns[j].seq = fwd_seq.wrapping_add(1);
                            rs.pending.insert((j, fwd_seq), (i, seq));
                            let fwd = Frame::StealRequest { round };
                            if !self.conns[j].send_seq(fwd_seq, &fwd) {
                                self.kill_worker(j, rs);
                            }
                        }
                        None => {
                            let miss = Frame::StealReply {
                                round,
                                word: MISS_WORD,
                                unit: None,
                            };
                            if !self.conns[i].send_seq(seq, &miss) {
                                self.kill_worker(i, rs);
                            }
                        }
                    }
                }
            }
            Frame::StealReply { round, word, unit } => {
                if round != rs.round {
                    return Ok(());
                }
                let hit = word != MISS_WORD && unit.is_some() && rs.words.contains_key(&word);
                match rs.pending.remove(&(i, seq)) {
                    Some((thief, tseq)) => {
                        if hit {
                            // Ownership transfer, recorded here — the
                            // victim has already claimed the word out of
                            // its queues, so from this moment the thief
                            // (or, on its death, the orphan pool) is the
                            // word's only live owner.
                            if let Some(front) = self.conns[i].passes.front_mut() {
                                front.remove(&word);
                            }
                            self.conns[i].summary.stolen_out += 1;
                            if self.conns[thief].alive {
                                if let Some(front) = self.conns[thief].passes.front_mut() {
                                    front.insert(word);
                                } else {
                                    self.conns[thief]
                                        .passes
                                        .push_back([word].into_iter().collect());
                                }
                                self.conns[thief].summary.stolen_in += 1;
                                self.steal_relays += 1;
                                let fwd = Frame::StealReply { round, word, unit };
                                if !self.conns[thief].send_seq(tseq, &fwd) {
                                    self.kill_worker(thief, rs);
                                }
                            } else {
                                rs.orphans.push_back(word);
                                self.orphaned_words += 1;
                            }
                        } else if self.conns[thief].alive {
                            let miss = Frame::StealReply {
                                round,
                                word: MISS_WORD,
                                unit: None,
                            };
                            if !self.conns[thief].send_seq(tseq, &miss) {
                                self.kill_worker(thief, rs);
                            }
                        }
                    }
                    None => {
                        // The thief died while this relay was in flight.
                        // The victim still claimed the word out — orphan
                        // it so a survivor re-executes it.
                        if hit {
                            if let Some(front) = self.conns[i].passes.front_mut() {
                                front.remove(&word);
                            }
                            rs.orphans.push_back(word);
                            self.orphaned_words += 1;
                        }
                    }
                }
            }
            Frame::Nack { round, word } => {
                if round == rs.round {
                    self.conns[i].summary.nacks += 1;
                    if let Some(front) = self.conns[i].passes.front_mut() {
                        front.remove(&word);
                    }
                    if rs.words.contains_key(&word) {
                        rs.orphans.push_back(word);
                        self.orphaned_words += 1;
                    }
                }
            }
            Frame::Ack { .. } => {} // metrics already counted at forward
            Frame::AggFlush {
                round,
                count,
                agg,
                report,
            } => {
                if round != rs.round {
                    return Ok(());
                }
                self.conns[i].flushed += 1;
                self.conns[i].summary.flushes += 1;
                self.conns[i].passes.pop_front();
                rs.count += count;
                match self.app {
                    // Decomposed motif workers flush raw per-plan-node
                    // partial totals; per-root values are independent, so
                    // the element-wise sum over workers is exact.
                    AppSpec::Motifs {
                        decomposed: true, ..
                    } => {
                        let totals = blob::decode_plan_totals(&agg)
                            .map_err(|e| invalid(format!("plan totals flush: {e}")))?;
                        if rs.plan_totals.is_empty() {
                            rs.plan_totals = totals;
                        } else {
                            if rs.plan_totals.len() != totals.len() {
                                return Err(invalid("plan totals length mismatch"));
                            }
                            for (t, v) in rs.plan_totals.iter_mut().zip(totals) {
                                *t += v;
                            }
                        }
                    }
                    AppSpec::Motifs { .. } => {
                        let map = blob::decode_motifs_map(&agg)
                            .map_err(|e| invalid(format!("motifs flush: {e}")))?;
                        for (k, v) in map {
                            *rs.motifs.entry(k).or_insert(0) += v;
                        }
                    }
                    AppSpec::Kclist { .. } => {}
                    AppSpec::Fsm { .. } => {
                        let map = blob::decode_fsm_map(&agg)
                            .map_err(|e| invalid(format!("fsm flush: {e}")))?;
                        for (k, v) in map {
                            match rs.fsm.entry(k) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    e.get_mut().merge(v)
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(v);
                                }
                            }
                        }
                    }
                }
                let rep = blob::decode_report(&report)
                    .map_err(|e| invalid(format!("report flush: {e}")))?;
                self.accumulate_report(i, rep);
            }
            // Session and serve-plane frames are never driver-bound on a
            // worker link; ignore them like any other stale traffic.
            Frame::Hello { .. }
            | Frame::Assign { .. }
            | Frame::Done { .. }
            | Frame::Submit { .. }
            | Frame::Status { .. }
            | Frame::Cancel { .. }
            | Frame::Result { .. }
            | Frame::JobEvent { .. }
            | Frame::Mux { .. }
            | Frame::Watch { .. } => {}
        }
        Ok(())
    }
}

fn handle_ev<K: FrameSink>(drv: &mut Driver<K>, rs: &mut RoundState, ev: Ev) -> io::Result<()> {
    match ev {
        Ev::Frame(i, seq, frame) => drv.handle_frame(i, seq, frame, rs),
        Ev::Dead(i) => {
            drv.kill_worker(i, rs);
            Ok(())
        }
    }
}

/// Runs a cluster job over already-connected worker TCP streams and
/// reduces the final result. `names` label the workers in reports
/// (host:port or synthetic). Returns an error only for driver-side
/// failures (handshake, corrupt flush blobs, all workers dead) —
/// individual worker deaths are recovered from and surfaced in the
/// result's counters.
pub fn run_cluster(
    streams: Vec<TcpStream>,
    names: Vec<String>,
    config: DriverConfig,
) -> io::Result<ClusterResult> {
    let mut links = Vec::with_capacity(streams.len());
    for stream in streams {
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        links.push((reader, stream));
    }
    run_cluster_links(links, names, config)
}

/// Runs a cluster job over generic frame transports — one
/// `(source, sink)` pair per worker session. This is the whole driver:
/// [`run_cluster`] is a thin TCP adapter over it, and the serve daemon
/// calls it with per-job virtual channels demultiplexed out of shared
/// physical worker connections.
pub fn run_cluster_links<S, K>(
    links: Vec<(S, K)>,
    names: Vec<String>,
    config: DriverConfig,
) -> io::Result<ClusterResult>
where
    S: FrameSource + 'static,
    K: FrameSink + 'static,
{
    assert_eq!(links.len(), names.len(), "one name per worker link");
    assert!(!links.is_empty(), "need at least one worker");
    let DriverConfig {
        app,
        graph,
        heartbeat_timeout,
        chaos_kill,
        cancel,
        progress,
        chaos_stall_after_done,
        on_round_commit,
        resume,
    } = config;
    let job_blob = blob::encode_job(&app, &graph);
    let fg = FractalContext::new(ClusterConfig::local(1, 1)).fractal_graph_shared(graph);
    // Root words are a pure function of graph + app, identical on every
    // process. For FSM they are the same every round (extensions of the
    // empty subgraph; aggregation filters prune only deeper levels).
    let roots = match &app {
        // Decomposed plans evaluate every vertex as a root (isolated
        // vertices included — size-1 plan nodes count them).
        AppSpec::Motifs {
            decomposed: true, ..
        } => (0..fg.graph().num_vertices() as u64).collect(),
        AppSpec::Motifs { k, use_labels, .. } => {
            motifs::motifs_fractoid(&fg, *k as usize, *use_labels).step_roots()
        }
        AppSpec::Kclist { k } => cliques::cliques_kclist_fractoid(&fg, *k as usize).step_roots(),
        AppSpec::Fsm { min_support, .. } => fsm_fractoid(&fg, *min_support, 1).step_roots(),
    };
    // The driver compiles the same plan every worker compiles from the
    // shipped graph (compilation is deterministic); it owns the
    // inclusion–exclusion finalize over the summed totals.
    let driver_plan = match &app {
        AppSpec::Motifs {
            k,
            decomposed: true,
            ..
        } => Some(CountingPlan::plan_motifs(
            *k as usize,
            GraphStats::of(fg.graph()),
        )),
        _ => None,
    };

    let (tx, rx): (_, Receiver<Ev>) = channel();
    let mut conns = Vec::with_capacity(links.len());
    for (i, ((mut source, mut sink), name)) in links.into_iter().zip(names).enumerate() {
        sink.send(
            0,
            &Frame::Hello {
                role: Role::Driver,
                cores: 0,
            },
        )?;
        let cores = match source.recv()? {
            (
                _,
                Frame::Hello {
                    role: Role::Worker,
                    cores,
                },
            ) => cores,
            _ => return Err(invalid(format!("worker {name}: expected Hello"))),
        };
        let txc = tx.clone();
        thread::spawn(move || loop {
            match source.recv() {
                Ok((seq, f)) => {
                    if txc.send(Ev::Frame(i, seq, f)).is_err() {
                        break;
                    }
                }
                Err(_) => {
                    let _ = txc.send(Ev::Dead(i));
                    break;
                }
            }
        });
        conns.push(Conn {
            writer: Some(sink),
            seq: 1,
            alive: true,
            got_job: false,
            last_beat: Instant::now(),
            expected: 0,
            flushed: 0,
            passes: VecDeque::new(),
            summary: WorkerSummary {
                name,
                cores,
                ..WorkerSummary::default()
            },
        });
    }
    drop(tx);

    let start = Instant::now();
    let mut drv = Driver {
        app,
        conns,
        heartbeat_timeout,
        chaos_kill,
        deaths: 0,
        orphaned_words: 0,
        recovery_assigns: 0,
        steal_relays: 0,
        acc_cores: HashMap::new(),
        bytes_served: 0,
        steal_requests: 0,
        steal_hits: 0,
        faults: FaultStats::default(),
        planner: PlannerStats::default(),
    };

    // Resumed jobs pick up their committed accumulators and skip the
    // rounds that already flushed: a resumed run replays no work, so its
    // final counts are bit-identical to an uninterrupted run.
    let resume = resume.unwrap_or_default();
    let start_round = resume.rounds_done.min(app.max_rounds());
    let mut total_count = resume.count;
    let mut motifs_result = resume.motifs;
    let mut frequent: Vec<HashMap<CanonicalCode, DomainSupport>> = resume.frequent;
    let mut rounds_run = start_round;
    // Replicate the FSM early-stop: if the committed state already ended
    // with an empty frequent map, the uninterrupted run would have broken
    // out of its round loop — a resumed run must not execute extra rounds.
    let fsm_already_converged = matches!(app, AppSpec::Fsm { .. })
        && start_round > 0
        && frequent.last().is_some_and(|m| m.is_empty());
    let mut stall_after_done = chaos_stall_after_done;
    let mut cancelled = false;
    let is_cancelled = || {
        cancel
            .as_ref()
            // ordering: Relaxed — the flag is a one-way latch polled every
            // event-loop iteration; no data is published through it.
            .is_some_and(|c| c.load(Ordering::Relaxed))
    };

    let round_range = if fsm_already_converged {
        start_round..start_round
    } else {
        start_round..app.max_rounds()
    };
    'rounds: for round in round_range {
        let alive = drv.alive();
        if alive.is_empty() {
            return Err(invalid("all workers died"));
        }
        let mut rs = RoundState::new(round, &roots);
        let seed_blob = if matches!(app, AppSpec::Fsm { .. }) && round > 0 {
            Some(blob::encode_fsm_seeds(&frequent))
        } else {
            None
        };

        // Partition root words round-robin over live workers and assign.
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); drv.conns.len()];
        for (j, &w) in roots.iter().enumerate() {
            parts[alive[j % alive.len()]].push(w);
        }
        for &i in &alive {
            let part = std::mem::take(&mut parts[i]);
            let c = &mut drv.conns[i];
            c.expected = 1;
            c.flushed = 0;
            c.passes.clear();
            c.passes.push_back(part.iter().copied().collect());
            c.summary.assigned += part.len() as u64;
            let job = if c.got_job {
                None
            } else {
                c.got_job = true;
                Some(job_blob.clone())
            };
            let assign = Frame::Assign {
                round,
                recovery: false,
                job,
                seed: seed_blob.clone(),
                roots: part,
            };
            drv.send_or_kill(i, &assign, &mut rs);
        }

        // Event loop: run the round to completion + full flush.
        let mut last_progress = 0usize;
        loop {
            if is_cancelled() {
                cancelled = true;
                break 'rounds;
            }
            if !rs.done_broadcast && rs.done_count == rs.words.len() {
                rs.done_broadcast = true;
                let done = Frame::Done { round };
                for i in drv.alive() {
                    drv.send_or_kill(i, &done, &mut rs);
                }
                if let Some(stall) = stall_after_done.take() {
                    // Chaos: block the loop so every worker's post-Done
                    // traffic queues behind this one iteration.
                    thread::sleep(stall);
                }
            }
            if rs.done_broadcast {
                let all_flushed = drv
                    .alive()
                    .iter()
                    .all(|&i| drv.conns[i].flushed >= drv.conns[i].expected);
                if all_flushed {
                    break;
                }
            }
            if drv.alive().is_empty() {
                return Err(invalid("all workers died"));
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ev) => {
                    handle_ev(&mut drv, &mut rs, ev)?;
                    // Drain everything already queued before judging
                    // staleness: a slow previous iteration must not turn a
                    // worker's *delivered-but-unprocessed* heartbeats and
                    // final AggFlush into a death sentence. A genuinely
                    // silent worker contributes nothing here, so the
                    // hung-process backstop below still fires for it.
                    while let Ok(ev) = rx.try_recv() {
                        handle_ev(&mut drv, &mut rs, ev)?;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(invalid("all worker connections lost"))
                }
            }
            if rs.done_count != last_progress {
                last_progress = rs.done_count;
                if let Some(p) = &progress {
                    p(round, rs.done_count as u64, rs.words.len() as u64);
                }
            }
            let stale: Vec<usize> = drv
                .alive()
                .into_iter()
                .filter(|&i| drv.conns[i].last_beat.elapsed() > drv.heartbeat_timeout)
                .collect();
            for i in stale {
                drv.kill_worker(i, &mut rs);
            }
        }

        rounds_run = round + 1;
        total_count += rs.count;
        let mut fsm_converged = false;
        match app {
            AppSpec::Motifs {
                decomposed: true, ..
            } => {
                let plan = driver_plan.as_ref().expect("decomposed plan compiled");
                if rs.plan_totals.is_empty() {
                    rs.plan_totals = vec![0; plan.nodes.len()];
                }
                motifs_result = plan.finalize(&rs.plan_totals).into_iter().collect();
            }
            AppSpec::Motifs { .. } => motifs_result = rs.motifs,
            AppSpec::Kclist { .. } => {}
            AppSpec::Fsm { min_support, .. } => {
                // Workers flush unfiltered partial maps; the support
                // filter is only meaningful on the global merge.
                let filtered: HashMap<CanonicalCode, DomainSupport> = rs
                    .fsm
                    .into_iter()
                    .filter(|(_, v)| v.has_enough_support(min_support))
                    .collect();
                fsm_converged = filtered.is_empty();
                frequent.push(filtered);
            }
        }
        // Flush-is-commit boundary: every flush of this round is merged,
        // so the cumulative accumulators are durable-safe to publish. The
        // converged FSM round is committed too — replaying it is what
        // tells a resumed run to stop where the original would have.
        if let Some(commit) = &on_round_commit {
            let agg = match app {
                AppSpec::Motifs { .. } => blob::encode_motifs_map(&motifs_result),
                AppSpec::Kclist { .. } => Vec::new(),
                AppSpec::Fsm { .. } => blob::encode_fsm_seeds(&frequent),
            };
            commit(rounds_run, total_count, &agg);
        }
        if fsm_converged {
            break;
        }
    }

    let shutdown = Frame::Done {
        round: SHUTDOWN_ROUND,
    };
    for i in drv.alive() {
        let _ = drv.conns[i].send(&shutdown);
    }

    let mut keys: Vec<(usize, usize)> = drv.acc_cores.keys().copied().collect();
    keys.sort_unstable();
    let cores = keys
        .into_iter()
        .map(|(worker, core)| {
            let stats = drv.acc_cores.remove(&(worker, core)).expect("key");
            (GlobalCoreId { worker, core }, stats)
        })
        .collect();
    let report = JobReport {
        elapsed: start.elapsed(),
        cores,
        bytes_served: drv.bytes_served,
        steal_requests: drv.steal_requests,
        steal_hits: drv.steal_hits,
        faults: drv.faults,
        planner: drv.planner,
        trace: None,
    };
    Ok(ClusterResult {
        app,
        count: total_count,
        motifs: motifs_result,
        frequent,
        rounds: rounds_run,
        report,
        workers: drv.conns.into_iter().map(|c| c.summary).collect(),
        deaths: drv.deaths,
        orphaned_words: drv.orphaned_words,
        recovery_assigns: drv.recovery_assigns,
        steal_relays: drv.steal_relays,
        cancelled,
    })
}

/// Renders the per-worker breakdown table (`fractal trace --per-worker`).
pub fn render_per_worker(result: &ClusterResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>5} {:>8} {:>9} {:>9} {:>10} {:>5} {:>7} {:>9} {:>9} {:>5}\n",
        "worker",
        "cores",
        "assigned",
        "completed",
        "stolen_in",
        "stolen_out",
        "nacks",
        "flushes",
        "recovered",
        "net_units",
        "died"
    ));
    for w in &result.workers {
        out.push_str(&format!(
            "{:<18} {:>5} {:>8} {:>9} {:>9} {:>10} {:>5} {:>7} {:>9} {:>9} {:>5}\n",
            w.name,
            w.cores,
            w.assigned,
            w.completed,
            w.stolen_in,
            w.stolen_out,
            w.nacks,
            w.flushes,
            w.recoveries,
            w.net_units,
            if w.died { "yes" } else { "no" }
        ));
    }
    out.push_str(&format!(
        "rounds={} deaths={} orphaned={} recovery_assigns={} steal_relays={} elapsed={:?}\n",
        result.rounds,
        result.deaths,
        result.orphaned_words,
        result.recovery_assigns,
        result.steal_relays,
        result.report.elapsed
    ));
    out
}

/// A locally spawned fleet of worker subprocesses, used by
/// `fractal submit --local-cluster N` and the chaos harness. Workers are
/// spawned with `--listen 127.0.0.1:0` and report their bound address on
/// stdout as `LISTENING <addr>`. Dropping the cluster kills and reaps all
/// children.
pub struct LocalCluster {
    children: Arc<Mutex<Vec<Child>>>,
    addrs: Vec<SocketAddr>,
}

impl LocalCluster {
    /// Spawns `n` workers by re-executing the current binary with
    /// `worker --listen 127.0.0.1:0 --cores <cores>`.
    pub fn spawn(n: usize, cores: usize) -> io::Result<LocalCluster> {
        let exe = std::env::current_exe()?;
        LocalCluster::spawn_with(n, |_| {
            let mut cmd = Command::new(&exe);
            cmd.args([
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--cores",
                &cores.to_string(),
            ]);
            cmd
        })
    }

    /// Spawns `n` workers with caller-built commands (the chaos harness
    /// re-executes itself with a hidden worker-mode argument). Each child
    /// must print `LISTENING <addr>` as its first stdout line.
    pub fn spawn_with(
        n: usize,
        mut make: impl FnMut(usize) -> Command,
    ) -> io::Result<LocalCluster> {
        let mut children = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let mut cmd = make(i);
            cmd.stdout(Stdio::piped());
            let mut child = cmd.spawn()?;
            let stdout = child.stdout.take().expect("stdout piped");
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let addr: SocketAddr = line
                .trim()
                .strip_prefix("LISTENING ")
                .ok_or_else(|| invalid(format!("worker {i}: bad banner {line:?}")))?
                .parse()
                .map_err(|e| invalid(format!("worker {i}: bad address: {e}")))?;
            // Keep the pipe drained so the child can never block on stdout.
            thread::spawn(move || {
                let _ = io::copy(&mut reader, &mut io::sink());
            });
            children.push(child);
            addrs.push(addr);
        }
        Ok(LocalCluster {
            children: Arc::new(Mutex::new(children)),
            addrs,
        })
    }

    /// The workers' listen addresses.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Opens one driver connection per worker, in index order.
    pub fn connect(&self) -> io::Result<Vec<TcpStream>> {
        self.addrs.iter().map(TcpStream::connect).collect()
    }

    /// A closure that SIGKILLs worker `i` when invoked (the chaos-kill
    /// action for [`ChaosKill`]).
    pub fn kill_fn(&self, i: usize) -> Box<dyn FnMut() + Send> {
        let children = Arc::clone(&self.children);
        Box::new(move || {
            if let Some(child) = children.lock().get_mut(i) {
                let _ = child.kill();
            }
        })
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        let mut children = self.children.lock();
        for child in children.iter_mut() {
            let _ = child.kill();
        }
        for child in children.iter_mut() {
            let _ = child.wait();
        }
    }
}
