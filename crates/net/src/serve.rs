//! `fractal serve`: the long-lived multi-tenant job server (DESIGN.md §12).
//!
//! One daemon process owns the worker pool. Clients connect over the same
//! frame protocol the cluster substrate speaks, submit jobs against
//! *registered graph snapshots*, and stream lifecycle events back. The
//! daemon multiplexes every concurrent job over the same physical worker
//! connections by wrapping each job's session traffic in job-id tagged
//! [`Frame::Mux`] envelopes; on the worker side each job gets its own
//! virtual session, so a job's rounds, steals and flushes are exactly the
//! single-job protocol and its results stay bit-identical to a
//! single-thread run.
//!
//! Three structures do the work:
//!
//! * **Admission + dispatch** — a bounded queue with per-tenant in-flight
//!   quotas and priority-aware FIFO ordering (higher priority first;
//!   submission order breaks ties). Over-quota or over-capacity submits
//!   are *rejected with a clean event*, never hung.
//! * **Snapshot cache** — immutable graphs registered by spec string
//!   (`gen:<name>:<n>:<seed>` or `file:<path>`), loaded once, shared
//!   across jobs via `Arc`'d CSR and evicted LRU against a byte budget.
//!   Eviction only drops the cache's reference: running jobs keep their
//!   snapshot alive through their own `Arc`s.
//! * **Worker links** — one physical connection per worker, owned by a
//!   router thread that demultiplexes `Mux` envelopes to per-job channel
//!   sources. A dead worker (EOF, SIGKILL) drops every registered route,
//!   so each affected job's driver sees that worker die *on its own
//!   session* and re-dispatches the corpse's obligations per affected
//!   job — survivors and unrelated jobs never notice.

use crate::blob::{self, AppSpec};
use crate::driver::{run_cluster_links, DriverConfig};
use crate::frame::{
    read_frame, ChannelSource, EventKind, Frame, FrameSink, MuxSink, Role, SHUTDOWN_ROUND,
};
use fractal_graph::{gen, io::load_adjacency_list, Graph};
use fractal_runtime::sync::{AtomicBool, AtomicU32, AtomicU64, Mutex, Ordering};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Admission and resource limits of a serve daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum *queued* (admitted, not yet running) jobs.
    pub max_queue: usize,
    /// Maximum in-flight (queued + running) jobs per tenant.
    pub max_per_tenant: usize,
    /// Maximum concurrently running jobs.
    pub max_running: usize,
    /// Snapshot cache byte budget (approximate, CSR-sized).
    pub snapshot_budget_bytes: u64,
    /// Per-job driver heartbeat staleness timeout.
    pub heartbeat_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue: 64,
            max_per_tenant: 8,
            max_running: 4,
            snapshot_budget_bytes: 256 << 20,
            heartbeat_timeout: Duration::from_millis(2000),
        }
    }
}

/// Daemon-wide serve-path counters, snapshotted into every finished job's
/// federated report (and asserted zero off the serve path by the perf
/// gate).
#[derive(Default)]
pub struct ServeStats {
    pub jobs_admitted: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub snapshot_evictions: AtomicU64,
}

// ---- snapshot cache ----

/// Parses and loads a snapshot spec: `gen:<name>:<n>:<seed>` for the
/// synthetic families or `file:<path>` for an adjacency-list file. The
/// spec string is the snapshot's identity, so two jobs naming the same
/// spec share one loaded graph.
pub fn load_snapshot(spec: &str) -> io::Result<Graph> {
    if let Some(path) = spec.strip_prefix("file:") {
        return load_adjacency_list(path).map_err(|e| invalid(format!("snapshot {spec}: {e}")));
    }
    let Some(rest) = spec.strip_prefix("gen:") else {
        return Err(invalid(format!(
            "snapshot {spec}: expected gen:<name>:<n>:<seed> or file:<path>"
        )));
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let [name, n, seed] = parts.as_slice() else {
        return Err(invalid(format!(
            "snapshot {spec}: expected gen:<name>:<n>:<seed>"
        )));
    };
    let n: usize = n
        .parse()
        .map_err(|_| invalid(format!("snapshot {spec}: bad vertex count")))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| invalid(format!("snapshot {spec}: bad seed")))?;
    // The label-count constants mirror `fractal submit --gen` exactly, so
    // a client-side verification run rebuilds a bit-identical graph.
    Ok(match *name {
        "mico" => gen::mico_like(n, 29, seed),
        "patents" => gen::patents_like(n, 37, seed),
        "youtube" => gen::youtube_like(n, 80, seed),
        "wikidata" => gen::wikidata_like(n, n / 20 + 8, seed),
        "orkut" => gen::orkut_like(n, seed),
        other => return Err(invalid(format!("snapshot {spec}: unknown family {other}"))),
    })
}

/// Rough resident size of a loaded CSR graph.
fn graph_bytes(g: &Graph) -> u64 {
    (g.num_vertices() as u64) * 16 + (g.num_edges() as u64) * 24
}

struct SnapshotEntry {
    graph: Arc<Graph>,
    bytes: u64,
    last_used: u64,
}

struct SnapshotCache {
    budget: u64,
    entries: HashMap<String, SnapshotEntry>,
    used: u64,
    tick: u64,
}

impl SnapshotCache {
    fn new(budget: u64) -> Self {
        SnapshotCache {
            budget,
            entries: HashMap::new(),
            used: 0,
            tick: 0,
        }
    }

    /// Returns the snapshot for `spec`, loading it on first use and
    /// evicting least-recently-used entries past the byte budget. Returns
    /// the evictions performed so the caller can count them.
    fn get_or_load(&mut self, spec: &str) -> io::Result<(Arc<Graph>, u64)> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(spec) {
            e.last_used = self.tick;
            return Ok((Arc::clone(&e.graph), 0));
        }
        let graph = Arc::new(load_snapshot(spec)?);
        let bytes = graph_bytes(&graph);
        let mut evictions = 0;
        while !self.entries.is_empty() && self.used + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let e = self.entries.remove(&lru).expect("present");
            self.used -= e.bytes;
            evictions += 1;
        }
        self.used += bytes;
        self.entries.insert(
            spec.to_string(),
            SnapshotEntry {
                graph: Arc::clone(&graph),
                bytes,
                last_used: self.tick,
            },
        );
        Ok((graph, evictions))
    }
}

// ---- worker links ----

/// job id → that job's virtual-session frame sender.
type RouteTable = Arc<Mutex<HashMap<u64, Sender<(u32, Frame)>>>>;

/// One physical worker connection, shared by every job.
struct WorkerLink {
    name: String,
    physical: Arc<Mutex<TcpStream>>,
    physical_seq: Arc<AtomicU32>,
    routes: RouteTable,
    dead: Arc<AtomicBool>,
}

impl WorkerLink {
    /// Starts the router thread: demultiplexes inbound `Mux` envelopes to
    /// per-job channels. On physical death it drops every route sender,
    /// so each subscribed job sees this worker die on its own session.
    fn start(stream: TcpStream, name: String) -> io::Result<WorkerLink> {
        stream.set_nodelay(true).ok();
        let mut reader = stream.try_clone()?;
        let link = WorkerLink {
            name,
            physical: Arc::new(Mutex::new(stream)),
            physical_seq: Arc::new(AtomicU32::new(0)),
            routes: Arc::new(Mutex::new(HashMap::new())),
            dead: Arc::new(AtomicBool::new(false)),
        };
        let routes = Arc::clone(&link.routes);
        let dead = Arc::clone(&link.dead);
        thread::spawn(move || {
            loop {
                match read_frame(&mut reader) {
                    Ok((_, Frame::Mux { job, inner })) => {
                        if let Ok(f) = crate::frame::decode_frame(&inner) {
                            let routes = routes.lock();
                            if let Some(tx) = routes.get(&job) {
                                // A send to a finished job's dropped
                                // receiver is stale traffic; ignore it.
                                let _ = tx.send(f);
                            }
                        }
                    }
                    Ok(_) => {} // stray non-mux traffic
                    Err(_) => break,
                }
            }
            dead.store(true, Ordering::SeqCst);
            // Channel EOF is the per-job death signal.
            routes.lock().clear();
        });
        Ok(link)
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Registers a job's route and returns its virtual link. `None` when
    /// the worker is already dead.
    fn open_virtual(&self, job: u64) -> Option<(ChannelSource, MuxSink<TcpStream>)> {
        if self.is_dead() {
            return None;
        }
        let (tx, rx) = channel();
        self.routes.lock().insert(job, tx);
        if self.is_dead() {
            // The router may have cleared routes just before our insert;
            // re-check so a dead link never looks open.
            self.routes.lock().remove(&job);
            return None;
        }
        let sink = MuxSink::new(
            job,
            Arc::clone(&self.physical),
            Arc::clone(&self.physical_seq),
        );
        Some((ChannelSource(rx), sink))
    }

    fn close_virtual(&self, job: u64) {
        self.routes.lock().remove(&job);
    }
}

// ---- job table ----

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

/// A finished job's result payload, served to `Result` fetches.
struct JobOutcome {
    count: u64,
    agg: Vec<u8>,
    report: Vec<u8>,
}

struct JobRecord {
    tenant: String,
    priority: u8,
    submit_seq: u64,
    app: AppSpec,
    snapshot: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    outcome: Option<JobOutcome>,
    error: String,
    subscribers: Vec<Arc<ClientConn>>,
}

struct ServerState {
    next_job: u64,
    submit_seq: u64,
    jobs: HashMap<u64, JobRecord>,
    /// Admitted, not yet running (ordering applied at pop time).
    queue: Vec<u64>,
    running: usize,
    tenant_inflight: HashMap<String, usize>,
    snapshots: SnapshotCache,
}

impl ServerState {
    /// Pops the next job to run: highest priority first, submission order
    /// within a priority (priority-aware FIFO).
    fn pop_next(&mut self) -> Option<u64> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, id)| {
                let j = &self.jobs[*id];
                (std::cmp::Reverse(j.priority), j.submit_seq)
            })
            .map(|(pos, _)| pos)?;
        Some(self.queue.swap_remove(best))
    }
}

/// One connected client: a locked writer so job threads and the client's
/// own request handler can interleave whole frames safely.
struct ClientConn {
    writer: Mutex<TcpStream>,
    seq: AtomicU32,
}

impl ClientConn {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        // ordering: Relaxed — sequence numbers only need fetch_add
        // uniqueness; the frame write is serialized by the writer lock.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut w = self.writer.lock();
        w.send(seq, frame)
    }
}

struct ServerInner {
    config: ServeConfig,
    stats: ServeStats,
    links: Vec<WorkerLink>,
    state: Mutex<ServerState>,
    sched_tx: Sender<()>,
}

/// The serve daemon. [`Server::bind`] wires the worker links and the
/// scheduler; [`Server::run`] accepts clients forever.
pub struct Server {
    inner: Arc<ServerInner>,
    listener: TcpListener,
}

impl Server {
    /// Binds the client listener and takes ownership of already-connected
    /// worker streams (one per worker, switched into mux mode by their
    /// first envelope).
    pub fn bind(
        listener: TcpListener,
        workers: Vec<(TcpStream, String)>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        assert!(!workers.is_empty(), "need at least one worker");
        let mut links = Vec::with_capacity(workers.len());
        for (stream, name) in workers {
            links.push(WorkerLink::start(stream, name)?);
        }
        let (sched_tx, sched_rx) = channel();
        let inner = Arc::new(ServerInner {
            state: Mutex::new(ServerState {
                next_job: 1,
                submit_seq: 0,
                jobs: HashMap::new(),
                queue: Vec::new(),
                running: 0,
                tenant_inflight: HashMap::new(),
                snapshots: SnapshotCache::new(config.snapshot_budget_bytes),
            }),
            config,
            stats: ServeStats::default(),
            links,
            sched_tx,
        });
        let sched_inner = Arc::clone(&inner);
        thread::spawn(move || scheduler_loop(sched_inner, sched_rx));
        Ok(Server { inner, listener })
    }

    /// The client listener's bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves clients until the listener fails. Each client
    /// connection gets its own handler thread.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || {
                let _ = serve_client(inner, stream);
            });
        }
    }
}

/// Dispatch loop: starts queued jobs while capacity allows. Woken on every
/// admission and every job completion; exits when the server drops.
fn scheduler_loop(inner: Arc<ServerInner>, rx: Receiver<()>) {
    while rx.recv().is_ok() {
        loop {
            let job = {
                let mut st = inner.state.lock();
                if st.running >= inner.config.max_running {
                    break;
                }
                let Some(id) = st.pop_next() else { break };
                st.running += 1;
                let rec = st.jobs.get_mut(&id).expect("queued job");
                rec.state = JobState::Running;
                id
            };
            let job_inner = Arc::clone(&inner);
            thread::spawn(move || run_one_job(job_inner, job));
        }
    }
}

/// Sends `frame` to every subscriber of `job` (best-effort).
fn emit(inner: &ServerInner, job: u64, frame: &Frame) {
    let subs: Vec<Arc<ClientConn>> = {
        let st = inner.state.lock();
        match st.jobs.get(&job) {
            Some(rec) => rec.subscribers.clone(),
            None => return,
        }
    };
    for s in subs {
        let _ = s.send(frame);
    }
}

fn event(job: u64, kind: EventKind, detail: impl Into<String>, value: u64) -> Frame {
    Frame::JobEvent {
        job,
        kind,
        detail: detail.into(),
        value,
    }
}

/// Runs one admitted job end-to-end on the shared pool and publishes its
/// terminal event. Always releases the job's slot and quota.
fn run_one_job(inner: Arc<ServerInner>, job: u64) {
    let (app, snapshot, cancel) = {
        let st = inner.state.lock();
        let rec = &st.jobs[&job];
        (rec.app, rec.snapshot.clone(), Arc::clone(&rec.cancel))
    };
    emit(&inner, job, &event(job, EventKind::Running, app.name(), 0));

    let outcome = execute_job(&inner, job, app, &snapshot, cancel);

    let mut st = inner.state.lock();
    st.running -= 1;
    let rec = st.jobs.get_mut(&job).expect("running job");
    let tenant = rec.tenant.clone();
    let terminal = match outcome {
        Ok(None) => {
            rec.state = JobState::Cancelled;
            event(job, EventKind::Cancelled, "", 0)
        }
        Ok(Some(out)) => {
            let count = out.count;
            rec.state = JobState::Done;
            rec.outcome = Some(out);
            event(job, EventKind::Done, "", count)
        }
        Err(e) => {
            rec.state = JobState::Failed;
            rec.error = e.to_string();
            event(job, EventKind::Failed, rec.error.clone(), 0)
        }
    };
    if let Some(n) = st.tenant_inflight.get_mut(&tenant) {
        *n = n.saturating_sub(1);
    }
    drop(st);
    emit(&inner, job, &terminal);
    let _ = inner.sched_tx.send(());
}

/// The job body: resolve the snapshot, open per-job virtual sessions on
/// every live worker, run the standard cluster driver over them, and
/// package the result. `Ok(None)` means the job was cancelled.
fn execute_job(
    inner: &Arc<ServerInner>,
    job: u64,
    app: AppSpec,
    snapshot: &str,
    cancel: Arc<AtomicBool>,
) -> io::Result<Option<JobOutcome>> {
    let graph = {
        let mut st = inner.state.lock();
        let (graph, evictions) = st.snapshots.get_or_load(snapshot)?;
        if evictions > 0 {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner
                .stats
                .snapshot_evictions
                .fetch_add(evictions, Ordering::Relaxed);
        }
        graph
    };

    let mut links = Vec::new();
    let mut names = Vec::new();
    let mut opened: Vec<&WorkerLink> = Vec::new();
    for link in &inner.links {
        if let Some(pair) = link.open_virtual(job) {
            links.push(pair);
            names.push(link.name.clone());
            opened.push(link);
        }
    }
    if links.is_empty() {
        return Err(invalid("no live workers"));
    }

    let mut config = DriverConfig::new_shared(app, graph);
    config.heartbeat_timeout = inner.config.heartbeat_timeout;
    config.cancel = Some(cancel);
    // Stream coarse progress (decile steps) to subscribers.
    let progress_inner = Arc::clone(inner);
    let last_decile = Arc::new(AtomicU64::new(0));
    config.progress = Some(Arc::new(move |round, done, total| {
        let decile = (done * 10).checked_div(total).unwrap_or(10);
        // ordering: Relaxed — a lost race only skips one coarse progress
        // event; the counter is monotonic within the driver thread.
        if decile > last_decile.swap(decile, Ordering::Relaxed) {
            emit(
                &progress_inner,
                job,
                &event(job, EventKind::Progress, format!("round {round}"), done),
            );
        }
    }));

    let result = run_cluster_links(links, names, config);
    for link in opened {
        link.close_virtual(job);
    }
    let result = result?;
    if result.cancelled {
        return Ok(None);
    }

    let agg = match app {
        AppSpec::Motifs { .. } => blob::encode_motifs_map(&result.motifs),
        AppSpec::Kclist { .. } => Vec::new(),
        AppSpec::Fsm { .. } => blob::encode_fsm_seeds(&result.frequent),
    };
    let mut report = result.report;
    // Stamp the daemon's serve-path counters into the job's federated
    // report so `--metrics-out` artifacts carry them.
    // ordering: Relaxed — monotonic diagnostic counters.
    report.faults.jobs_admitted = inner.stats.jobs_admitted.load(Ordering::Relaxed);
    report.faults.jobs_rejected = inner.stats.jobs_rejected.load(Ordering::Relaxed);
    report.faults.snapshot_evictions = inner.stats.snapshot_evictions.load(Ordering::Relaxed);
    Ok(Some(JobOutcome {
        count: result.count,
        agg,
        report: blob::encode_report(&report),
    }))
}

/// Serves one client connection: handshake, then submit/status/cancel/
/// result requests until EOF. The connection doubles as the event stream
/// for every job it submitted.
fn serve_client(inner: Arc<ServerInner>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let conn = Arc::new(ClientConn {
        writer: Mutex::new(stream),
        seq: AtomicU32::new(0),
    });
    match read_frame(&mut reader) {
        Ok((
            _,
            Frame::Hello {
                role: Role::Client, ..
            },
        )) => {}
        Ok(_) => return Err(invalid("expected client Hello")),
        Err(e) => return Err(e),
    }
    conn.send(&Frame::Hello {
        role: Role::Driver,
        cores: 0,
    })?;

    loop {
        let (_, frame) = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client hung up
        };
        match frame {
            Frame::Submit {
                tenant,
                priority,
                snapshot,
                app,
            } => handle_submit(&inner, &conn, tenant, priority, snapshot, &app)?,
            Frame::Status { job } => {
                let reply = status_event(&inner, job);
                conn.send(&reply)?;
            }
            Frame::Cancel { job } => {
                let reply = handle_cancel(&inner, job);
                conn.send(&reply)?;
            }
            Frame::Result { job, .. } => {
                let reply = {
                    let st = inner.state.lock();
                    match st.jobs.get(&job).and_then(|r| r.outcome.as_ref()) {
                        Some(out) => Frame::Result {
                            job,
                            count: out.count,
                            agg: out.agg.clone(),
                            report: out.report.clone(),
                        },
                        None => status_event_unlocked(&st, job),
                    }
                };
                conn.send(&reply)?;
            }
            // Anything else is not client → daemon traffic.
            _ => {}
        }
    }
}

/// Admission control: quota and capacity checks, queue insert, event.
fn handle_submit(
    inner: &Arc<ServerInner>,
    conn: &Arc<ClientConn>,
    tenant: String,
    priority: u8,
    snapshot: String,
    app_blob: &[u8],
) -> io::Result<()> {
    let app = match blob::decode_app_spec(app_blob) {
        Ok(app) => app,
        Err(e) => {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return conn.send(&event(
                0,
                EventKind::Rejected,
                format!("bad app spec: {e}"),
                0,
            ));
        }
    };
    let verdict = {
        let mut st = inner.state.lock();
        if st.queue.len() >= inner.config.max_queue {
            Err("queue full".to_string())
        } else if st
            .tenant_inflight
            .get(&tenant)
            .is_some_and(|&n| n >= inner.config.max_per_tenant)
        {
            Err(format!("tenant {tenant} over quota"))
        } else {
            let id = st.next_job;
            st.next_job += 1;
            st.submit_seq += 1;
            let submit_seq = st.submit_seq;
            *st.tenant_inflight.entry(tenant.clone()).or_insert(0) += 1;
            st.jobs.insert(
                id,
                JobRecord {
                    tenant,
                    priority,
                    submit_seq,
                    app,
                    snapshot,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    outcome: None,
                    error: String::new(),
                    subscribers: vec![Arc::clone(conn)],
                },
            );
            st.queue.push(id);
            Ok((id, st.queue.len() as u64))
        }
    };
    match verdict {
        Ok((id, qpos)) => {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner.stats.jobs_admitted.fetch_add(1, Ordering::Relaxed);
            conn.send(&event(id, EventKind::Accepted, "", id))?;
            conn.send(&event(id, EventKind::Queued, "", qpos))?;
            let _ = inner.sched_tx.send(());
            Ok(())
        }
        Err(why) => {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            conn.send(&event(0, EventKind::Rejected, why, 0))
        }
    }
}

/// A `JobEvent` describing `job`'s current lifecycle state.
fn status_event(inner: &ServerInner, job: u64) -> Frame {
    let st = inner.state.lock();
    match st.jobs.get(&job) {
        None => event(job, EventKind::Failed, "unknown job", 0),
        Some(rec) => match rec.state {
            JobState::Queued => {
                let pos = st.queue.iter().position(|&j| j == job).unwrap_or(0) as u64;
                event(job, EventKind::Queued, "", pos + 1)
            }
            JobState::Running => event(job, EventKind::Running, rec.app.name(), 0),
            JobState::Done => {
                let count = rec.outcome.as_ref().map(|o| o.count).unwrap_or(0);
                event(job, EventKind::Done, "", count)
            }
            JobState::Cancelled => event(job, EventKind::Cancelled, "", 0),
            JobState::Failed => event(job, EventKind::Failed, rec.error.clone(), 0),
        },
    }
}

fn handle_cancel(inner: &ServerInner, job: u64) -> Frame {
    let mut st = inner.state.lock();
    let Some(rec) = st.jobs.get_mut(&job) else {
        return event(job, EventKind::Failed, "unknown job", 0);
    };
    match rec.state {
        JobState::Queued => {
            rec.state = JobState::Cancelled;
            let tenant = rec.tenant.clone();
            st.queue.retain(|&j| j != job);
            if let Some(n) = st.tenant_inflight.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
            event(job, EventKind::Cancelled, "", 0)
        }
        JobState::Running => {
            // Cooperative: the job's driver notices at its next event-loop
            // iteration, winds the virtual sessions down and publishes the
            // terminal Cancelled event itself.
            rec.cancel.store(true, Ordering::SeqCst);
            event(job, EventKind::Running, "cancelling", 0)
        }
        // Already terminal: report the state as-is.
        _ => status_event_unlocked(&st, job),
    }
}

fn status_event_unlocked(st: &ServerState, job: u64) -> Frame {
    match st.jobs.get(&job) {
        None => event(job, EventKind::Failed, "unknown job", 0),
        Some(rec) => match rec.state {
            JobState::Queued => event(job, EventKind::Queued, "", 0),
            JobState::Running => event(job, EventKind::Running, rec.app.name(), 0),
            JobState::Done => event(
                job,
                EventKind::Done,
                "",
                rec.outcome.as_ref().map(|o| o.count).unwrap_or(0),
            ),
            JobState::Cancelled => event(job, EventKind::Cancelled, "", 0),
            JobState::Failed => event(job, EventKind::Failed, rec.error.clone(), 0),
        },
    }
}

/// Gracefully shuts every worker connection down (physical
/// `Done{SHUTDOWN_ROUND}`), so workers exit their mux dispatchers.
pub fn shutdown_workers(server: &Server) {
    for link in &server.inner.links {
        let shutdown = Frame::Done {
            round: SHUTDOWN_ROUND,
        };
        // ordering: Relaxed — physical seq needs only uniqueness.
        let seq = link.physical_seq.fetch_add(1, Ordering::Relaxed);
        let mut w = link.physical.lock();
        let _ = w.send(seq, &shutdown);
    }
}
