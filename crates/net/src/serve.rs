//! `fractal serve`: the long-lived multi-tenant job server (DESIGN.md §12).
//!
//! One daemon process owns the worker pool. Clients connect over the same
//! frame protocol the cluster substrate speaks, submit jobs against
//! *registered graph snapshots*, and stream lifecycle events back. The
//! daemon multiplexes every concurrent job over the same physical worker
//! connections by wrapping each job's session traffic in job-id tagged
//! [`Frame::Mux`] envelopes; on the worker side each job gets its own
//! virtual session, so a job's rounds, steals and flushes are exactly the
//! single-job protocol and its results stay bit-identical to a
//! single-thread run.
//!
//! Three structures do the work:
//!
//! * **Admission + dispatch** — a bounded queue with per-tenant in-flight
//!   quotas and priority-aware FIFO ordering (higher priority first;
//!   submission order breaks ties). Over-quota or over-capacity submits
//!   are *rejected with a clean event*, never hung.
//! * **Snapshot cache** — immutable graphs registered by spec string
//!   (`gen:<name>:<n>:<seed>` or `file:<path>`), loaded once, shared
//!   across jobs via `Arc`'d CSR and evicted LRU against a byte budget.
//!   Eviction only drops the cache's reference: running jobs keep their
//!   snapshot alive through their own `Arc`s.
//! * **Worker links** — one physical connection per worker, owned by a
//!   router thread that demultiplexes `Mux` envelopes to per-job channel
//!   sources. A dead worker (EOF, SIGKILL) drops every registered route,
//!   so each affected job's driver sees that worker die *on its own
//!   session* and re-dispatches the corpse's obligations per affected
//!   job — survivors and unrelated jobs never notice.

use crate::blob::{self, AppSpec};
use crate::driver::{run_cluster_links, DriverConfig, ResumeState};
use crate::frame::{
    read_frame, ChannelSource, EventKind, Frame, FrameSink, MuxSink, Role, SHUTDOWN_ROUND,
};
use crate::journal::{Journal, Record, Replay, ReplayTerminal};
use crate::linkfault::DedupWindow;
use fractal_graph::{gen, io::load_adjacency_list, Graph};
use fractal_runtime::sync::{AtomicBool, AtomicU32, AtomicU64, Mutex, Ordering};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Admission and resource limits of a serve daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum *queued* (admitted, not yet running) jobs.
    pub max_queue: usize,
    /// Maximum in-flight (queued + running) jobs per tenant.
    pub max_per_tenant: usize,
    /// Maximum concurrently running jobs.
    pub max_running: usize,
    /// Snapshot cache byte budget (approximate, CSR-sized).
    pub snapshot_budget_bytes: u64,
    /// Per-job driver heartbeat staleness timeout.
    pub heartbeat_timeout: Duration,
    /// Directory of the write-ahead job journal. When set, every
    /// admission/commit/terminal transition is journaled (fsynced) before
    /// clients observe it, and [`Server::bind`] replays the journal to
    /// resume incomplete jobs after a crash.
    pub journal_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue: 64,
            max_per_tenant: 8,
            max_running: 4,
            snapshot_budget_bytes: 256 << 20,
            heartbeat_timeout: Duration::from_millis(2000),
            journal_dir: None,
        }
    }
}

/// Daemon-wide serve-path counters, snapshotted into every finished job's
/// federated report (and asserted zero off the serve path by the perf
/// gate).
#[derive(Default)]
pub struct ServeStats {
    pub jobs_admitted: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub snapshot_evictions: AtomicU64,
    /// Valid journal records replayed at startup.
    pub journal_replayed: AtomicU64,
    /// Jobs that restarted from a journaled committed word-set.
    pub resumed_jobs: AtomicU64,
    /// Exactly-once tenant-quota releases (one per terminalized job; the
    /// cancel-vs-dispatch regression test asserts this never double-fires).
    pub quota_releases: AtomicU64,
}

// ---- snapshot cache ----

/// Parses and loads a snapshot spec: `gen:<name>:<n>:<seed>` for the
/// synthetic families or `file:<path>` for an adjacency-list file. The
/// spec string is the snapshot's identity, so two jobs naming the same
/// spec share one loaded graph.
pub fn load_snapshot(spec: &str) -> io::Result<Graph> {
    if let Some(path) = spec.strip_prefix("file:") {
        return load_adjacency_list(path).map_err(|e| invalid(format!("snapshot {spec}: {e}")));
    }
    let Some(rest) = spec.strip_prefix("gen:") else {
        return Err(invalid(format!(
            "snapshot {spec}: expected gen:<name>:<n>:<seed> or file:<path>"
        )));
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let [name, n, seed] = parts.as_slice() else {
        return Err(invalid(format!(
            "snapshot {spec}: expected gen:<name>:<n>:<seed>"
        )));
    };
    let n: usize = n
        .parse()
        .map_err(|_| invalid(format!("snapshot {spec}: bad vertex count")))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| invalid(format!("snapshot {spec}: bad seed")))?;
    // The label-count constants mirror `fractal submit --gen` exactly, so
    // a client-side verification run rebuilds a bit-identical graph.
    Ok(match *name {
        "mico" => gen::mico_like(n, 29, seed),
        "patents" => gen::patents_like(n, 37, seed),
        "youtube" => gen::youtube_like(n, 80, seed),
        "wikidata" => gen::wikidata_like(n, n / 20 + 8, seed),
        "orkut" => gen::orkut_like(n, seed),
        other => return Err(invalid(format!("snapshot {spec}: unknown family {other}"))),
    })
}

/// Rough resident size of a loaded CSR graph.
fn graph_bytes(g: &Graph) -> u64 {
    (g.num_vertices() as u64) * 16 + (g.num_edges() as u64) * 24
}

struct SnapshotEntry {
    graph: Arc<Graph>,
    bytes: u64,
    last_used: u64,
}

struct SnapshotCache {
    budget: u64,
    entries: HashMap<String, SnapshotEntry>,
    used: u64,
    tick: u64,
}

impl SnapshotCache {
    fn new(budget: u64) -> Self {
        SnapshotCache {
            budget,
            entries: HashMap::new(),
            used: 0,
            tick: 0,
        }
    }

    /// Returns the snapshot for `spec`, loading it on first use and
    /// evicting least-recently-used entries past the byte budget. Returns
    /// the evictions performed so the caller can count them.
    fn get_or_load(&mut self, spec: &str) -> io::Result<(Arc<Graph>, u64)> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(spec) {
            e.last_used = self.tick;
            return Ok((Arc::clone(&e.graph), 0));
        }
        let graph = Arc::new(load_snapshot(spec)?);
        let bytes = graph_bytes(&graph);
        let mut evictions = 0;
        while !self.entries.is_empty() && self.used + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let e = self.entries.remove(&lru).expect("present");
            self.used -= e.bytes;
            evictions += 1;
        }
        self.used += bytes;
        self.entries.insert(
            spec.to_string(),
            SnapshotEntry {
                graph: Arc::clone(&graph),
                bytes,
                last_used: self.tick,
            },
        );
        Ok((graph, evictions))
    }
}

// ---- worker links ----

/// job id → that job's virtual-session frame sender.
type RouteTable = Arc<Mutex<HashMap<u64, Sender<(u32, Frame)>>>>;

/// One physical worker connection, shared by every job.
struct WorkerLink {
    name: String,
    physical: Arc<Mutex<TcpStream>>,
    physical_seq: Arc<AtomicU32>,
    routes: RouteTable,
    dead: Arc<AtomicBool>,
}

impl WorkerLink {
    /// Starts the router thread: demultiplexes inbound `Mux` envelopes to
    /// per-job channels. On physical death it drops every route sender,
    /// so each subscribed job sees this worker die on its own session.
    fn start(stream: TcpStream, name: String) -> io::Result<WorkerLink> {
        stream.set_nodelay(true).ok();
        let mut reader = stream.try_clone()?;
        let link = WorkerLink {
            name,
            physical: Arc::new(Mutex::new(stream)),
            physical_seq: Arc::new(AtomicU32::new(0)),
            routes: Arc::new(Mutex::new(HashMap::new())),
            dead: Arc::new(AtomicBool::new(false)),
        };
        let routes = Arc::clone(&link.routes);
        let dead = Arc::clone(&link.dead);
        thread::spawn(move || {
            // Receive-side half of the link-fault envelope: a worker on a
            // degraded link may send a virtual frame twice, and the
            // drivers' merge paths (AggFlush) are not idempotent — so
            // each job's inner frames pass a dedup window keyed on
            // (seq, content hash): inner seqs alone are not unique
            // because steal replies echo the requester's seq, which can
            // collide with the session's own counter. Entries are tiny
            // and bounded by the jobs this link ever carried.
            let mut dedup: HashMap<u64, DedupWindow> = HashMap::new();
            loop {
                match read_frame(&mut reader) {
                    Ok((_, Frame::Mux { job, inner })) => {
                        if let Ok((seq, f)) = crate::frame::decode_frame(&inner) {
                            // `inner` IS the frame's canonical encoding,
                            // so hashing it equals content_hash(seq, f).
                            let h = fractal_runtime::steal::fnv1a64(&inner);
                            if !dedup.entry(job).or_default().fresh(seq, h) {
                                continue; // injected duplicate
                            }
                            let routes = routes.lock();
                            if let Some(tx) = routes.get(&job) {
                                // A send to a finished job's dropped
                                // receiver is stale traffic; ignore it.
                                let _ = tx.send((seq, f));
                            }
                        }
                    }
                    Ok(_) => {} // stray non-mux traffic
                    Err(_) => break,
                }
            }
            // ordering: SeqCst — the death flag is the only cross-thread signal
            // from the demux thread; pair it conservatively with the reader side.
            dead.store(true, Ordering::SeqCst);
            // Channel EOF is the per-job death signal.
            routes.lock().clear();
        });
        Ok(link)
    }

    fn is_dead(&self) -> bool {
        // ordering: SeqCst — pairs with the demux thread's store; worker death
        // is rare, so the stronger ordering costs nothing on the dispatch path.
        self.dead.load(Ordering::SeqCst)
    }

    /// Registers a job's route and returns its virtual link. `None` when
    /// the worker is already dead.
    fn open_virtual(&self, job: u64) -> Option<(ChannelSource, MuxSink<TcpStream>)> {
        if self.is_dead() {
            return None;
        }
        let (tx, rx) = channel();
        self.routes.lock().insert(job, tx);
        if self.is_dead() {
            // The router may have cleared routes just before our insert;
            // re-check so a dead link never looks open.
            self.routes.lock().remove(&job);
            return None;
        }
        let sink = MuxSink::new(
            job,
            Arc::clone(&self.physical),
            Arc::clone(&self.physical_seq),
        );
        Some((ChannelSource(rx), sink))
    }

    fn close_virtual(&self, job: u64) {
        self.routes.lock().remove(&job);
    }
}

// ---- job table ----

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

/// A finished job's result payload, served to `Result` fetches.
struct JobOutcome {
    count: u64,
    agg: Vec<u8>,
    report: Vec<u8>,
}

struct JobRecord {
    tenant: String,
    priority: u8,
    submit_seq: u64,
    app: AppSpec,
    snapshot: String,
    /// Client-generated idempotency token ("" = none).
    token: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    outcome: Option<JobOutcome>,
    error: String,
    subscribers: Vec<Arc<ClientConn>>,
    /// Whether this job's tenant-quota slot has been given back. Exactly
    /// one release per job, whatever the cancel/dispatch interleaving.
    quota_released: bool,
    /// Base of this job's `event_seq` numbers: `(journaled starts) << 32`.
    /// Each daemon restart re-emits under a higher epoch, so sequence
    /// numbers never move backwards and a reconnecting watcher's
    /// `after_seq` filter stays sound across restarts.
    epoch_base: u64,
    /// This epoch's sequenced event log, replayed to `Watch` subscribers.
    events: Vec<Frame>,
    /// Journaled committed word-set to resume from (restart path).
    resume: Option<ResumeState>,
}

struct ServerState {
    next_job: u64,
    submit_seq: u64,
    jobs: HashMap<u64, JobRecord>,
    /// Admitted, not yet running (ordering applied at pop time).
    queue: Vec<u64>,
    running: usize,
    tenant_inflight: HashMap<String, usize>,
    /// Idempotency token → admitted job id (re-submissions re-reply).
    tokens: HashMap<String, u64>,
    snapshots: SnapshotCache,
}

impl ServerState {
    /// Pops the next job to run: highest priority first, submission order
    /// within a priority (priority-aware FIFO).
    fn pop_next(&mut self) -> Option<u64> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, id)| {
                let j = &self.jobs[*id];
                (std::cmp::Reverse(j.priority), j.submit_seq)
            })
            .map(|(pos, _)| pos)?;
        Some(self.queue.swap_remove(best))
    }
}

/// One connected client: a locked writer so job threads and the client's
/// own request handler can interleave whole frames safely.
struct ClientConn {
    writer: Mutex<TcpStream>,
    seq: AtomicU32,
}

impl ClientConn {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        // ordering: Relaxed — sequence numbers only need fetch_add
        // uniqueness; the frame write is serialized by the writer lock.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut w = self.writer.lock();
        w.send(seq, frame)
    }
}

struct ServerInner {
    config: ServeConfig,
    stats: ServeStats,
    links: Vec<WorkerLink>,
    state: Mutex<ServerState>,
    sched_tx: Sender<()>,
    /// The write-ahead journal (when `journal_dir` is configured). Lock
    /// order: `state` before `journal`, never the other way around.
    journal: Option<Mutex<Journal>>,
}

impl ServerInner {
    /// Appends one record to the journal (fsynced) if journaling is on.
    /// Non-admission records are best-effort: a failed append is logged
    /// but cannot un-happen the in-memory transition it describes.
    fn journal_append(&self, rec: &Record) {
        if let Some(j) = &self.journal {
            if let Err(e) = j.lock().append(rec) {
                eprintln!("journal: append failed: {e}");
            }
        }
    }
}

/// The serve daemon. [`Server::bind`] wires the worker links and the
/// scheduler; [`Server::run`] accepts clients forever.
pub struct Server {
    inner: Arc<ServerInner>,
    listener: TcpListener,
}

impl Server {
    /// Binds the client listener and takes ownership of already-connected
    /// worker streams (one per worker, switched into mux mode by their
    /// first envelope).
    pub fn bind(
        listener: TcpListener,
        workers: Vec<(TcpStream, String)>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        assert!(!workers.is_empty(), "need at least one worker");
        let mut links = Vec::with_capacity(workers.len());
        for (stream, name) in workers {
            links.push(WorkerLink::start(stream, name)?);
        }
        let mut state = ServerState {
            next_job: 1,
            submit_seq: 0,
            jobs: HashMap::new(),
            queue: Vec::new(),
            running: 0,
            tenant_inflight: HashMap::new(),
            tokens: HashMap::new(),
            snapshots: SnapshotCache::new(config.snapshot_budget_bytes),
        };
        let stats = ServeStats::default();
        let journal = match &config.journal_dir {
            None => None,
            Some(dir) => {
                let (journal, replay) = Journal::open(dir)?;
                // ordering: Relaxed — startup, before any concurrency.
                stats
                    .journal_replayed
                    .store(replay.replayed, Ordering::Relaxed);
                restore_from_replay(&mut state, &replay);
                Some(Mutex::new(journal))
            }
        };
        let resumable = !state.queue.is_empty();
        let (sched_tx, sched_rx) = channel();
        let inner = Arc::new(ServerInner {
            state: Mutex::new(state),
            config,
            stats,
            links,
            sched_tx,
            journal,
        });
        let sched_inner = Arc::clone(&inner);
        thread::spawn(move || scheduler_loop(sched_inner, sched_rx));
        if resumable {
            let _ = inner.sched_tx.send(());
        }
        Ok(Server { inner, listener })
    }

    /// Test/introspection accessor: a tenant's current in-flight count.
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.inner
            .state
            .lock()
            .tenant_inflight
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Test/introspection accessor: total exactly-once quota releases.
    pub fn quota_releases(&self) -> u64 {
        // ordering: Relaxed — monotonic diagnostic counter.
        self.inner.stats.quota_releases.load(Ordering::Relaxed)
    }

    /// Test/introspection accessor: jobs resumed from journaled commits.
    pub fn resumed_jobs(&self) -> u64 {
        // ordering: Relaxed — monotonic diagnostic counter.
        self.inner.stats.resumed_jobs.load(Ordering::Relaxed)
    }

    /// The client listener's bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves clients until the listener fails. Each client
    /// connection gets its own handler thread.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let inner = Arc::clone(&self.inner);
            thread::spawn(move || {
                let _ = serve_client(inner, stream);
            });
        }
    }
}

/// Rebuilds the job table from a replayed journal: terminal jobs keep
/// their results servable, incomplete jobs re-queue with their original
/// priority and FIFO position — each resuming from its last committed
/// word-set, so an interrupted run's final counts stay bit-identical to
/// an uninterrupted one.
fn restore_from_replay(state: &mut ServerState, replay: &Replay) {
    for (&id, rj) in &replay.jobs {
        state.next_job = state.next_job.max(id + 1);
        state.submit_seq = state.submit_seq.max(rj.submit_seq);
        let (app, mut err) = match blob::decode_app_spec(&rj.app) {
            Ok(app) => (app, String::new()),
            Err(e) => (
                // Placeholder app for an undecodable record; the job is
                // forced Failed below and never dispatched.
                AppSpec::Kclist { k: 3 },
                format!("journal: undecodable app spec: {e}"),
            ),
        };
        let mut rec = JobRecord {
            tenant: rj.tenant.clone(),
            priority: rj.priority,
            submit_seq: rj.submit_seq,
            app,
            snapshot: rj.snapshot.clone(),
            token: rj.token.clone(),
            state: JobState::Failed,
            cancel: Arc::new(AtomicBool::new(false)),
            outcome: None,
            error: String::new(),
            subscribers: Vec::new(),
            // Terminal jobs never release again; incomplete ones own one
            // freshly re-taken quota slot.
            quota_released: true,
            epoch_base: rj.starts << 32,
            events: Vec::new(),
            resume: None,
        };
        match (&rj.terminal, err.is_empty()) {
            (_, false) => rec.error = std::mem::take(&mut err),
            (Some(ReplayTerminal::Finished { count, agg, report }), true) => {
                rec.state = JobState::Done;
                rec.outcome = Some(JobOutcome {
                    count: *count,
                    agg: agg.clone(),
                    report: report.clone(),
                });
            }
            (Some(ReplayTerminal::Cancelled), true) => rec.state = JobState::Cancelled,
            (Some(ReplayTerminal::Failed(e)), true) => rec.error = e.clone(),
            (None, true) => {
                rec.state = JobState::Queued;
                rec.quota_released = false;
                rec.resume = rj.committed.as_ref().and_then(|(rounds, count, agg)| {
                    match ResumeState::decode(&rec.app, *rounds, *count, agg) {
                        Ok(rs) => Some(rs),
                        Err(e) => {
                            // A commit record that no longer decodes is
                            // dropped: the job restarts from scratch,
                            // which is slower but still exact.
                            eprintln!("journal: job {id}: ignoring commit: {e}");
                            None
                        }
                    }
                });
                *state.tenant_inflight.entry(rj.tenant.clone()).or_insert(0) += 1;
                state.queue.push(id);
            }
        }
        if !rj.token.is_empty() {
            state.tokens.insert(rj.token.clone(), id);
        }
        state.jobs.insert(id, rec);
    }
}

/// Dispatch loop: starts queued jobs while capacity allows. Woken on every
/// admission and every job completion; exits when the server drops.
fn scheduler_loop(inner: Arc<ServerInner>, rx: Receiver<()>) {
    while rx.recv().is_ok() {
        loop {
            let job = {
                let mut st = inner.state.lock();
                if st.running >= inner.config.max_running {
                    break;
                }
                let Some(id) = st.pop_next() else { break };
                st.running += 1;
                let rec = st.jobs.get_mut(&id).expect("queued job");
                rec.state = JobState::Running;
                id
            };
            let job_inner = Arc::clone(&inner);
            thread::spawn(move || run_one_job(job_inner, job));
        }
    }
}

/// An *unsequenced* event frame (`event_seq: 0` = point-in-time reply,
/// always delivered, never deduplicated): status replies and rejections.
fn event(job: u64, kind: EventKind, detail: impl Into<String>, value: u64) -> Frame {
    Frame::JobEvent {
        job,
        kind,
        detail: detail.into(),
        value,
        event_seq: 0,
    }
}

/// Appends a *sequenced* lifecycle event to `job`'s event log and sends
/// it to every subscriber. Runs entirely under the state lock on purpose:
/// a concurrent `Watch` subscribes and replays the log under the same
/// lock, so a reconnecting watcher can never see a gap or an out-of-order
/// sequence — the property its `after_seq` dedup filter relies on.
fn log_event_locked(
    st: &mut ServerState,
    job: u64,
    kind: EventKind,
    detail: impl Into<String>,
    value: u64,
) {
    let Some(rec) = st.jobs.get_mut(&job) else {
        return;
    };
    let event_seq = rec.epoch_base + rec.events.len() as u64 + 1;
    let frame = Frame::JobEvent {
        job,
        kind,
        detail: detail.into(),
        value,
        event_seq,
    };
    rec.events.push(frame.clone());
    for s in &rec.subscribers {
        let _ = s.send(&frame);
    }
}

/// [`log_event_locked`] taking the lock itself.
fn log_event(
    inner: &ServerInner,
    job: u64,
    kind: EventKind,
    detail: impl Into<String>,
    value: u64,
) {
    log_event_locked(&mut inner.state.lock(), job, kind, detail, value);
}

/// Gives `job`'s tenant-quota slot back — exactly once per job, whatever
/// the cancel/dispatch interleaving (the `quota_released` latch is
/// flipped under the same lock that serializes state transitions).
fn release_quota(inner: &ServerInner, st: &mut ServerState, job: u64) {
    let Some(rec) = st.jobs.get_mut(&job) else {
        return;
    };
    if rec.quota_released {
        return;
    }
    rec.quota_released = true;
    let tenant = rec.tenant.clone();
    if let Some(n) = st.tenant_inflight.get_mut(&tenant) {
        *n = n.saturating_sub(1);
    }
    // ordering: Relaxed — monotonic diagnostic counter.
    inner.stats.quota_releases.fetch_add(1, Ordering::Relaxed);
}

/// Runs one admitted job end-to-end on the shared pool and publishes its
/// terminal event. Always releases the job's slot and quota — exactly
/// once. Terminal transitions are journaled (write-ahead) before clients
/// see them.
fn run_one_job(inner: Arc<ServerInner>, job: u64) {
    let (app, snapshot, cancel, resume) = {
        let mut st = inner.state.lock();
        let rec = st.jobs.get_mut(&job).expect("dispatched job");
        (
            rec.app,
            rec.snapshot.clone(),
            Arc::clone(&rec.cancel),
            rec.resume.take(),
        )
    };
    inner.journal_append(&Record::JobStarted { job });
    log_event(&inner, job, EventKind::Running, app.name(), 0);

    let outcome = execute_job(&inner, job, app, &snapshot, cancel, resume);

    // Write-ahead: the terminal record is durable before the in-memory
    // transition happens and before any client sees the terminal event.
    let terminal_rec = match &outcome {
        Ok(None) => Record::JobCancelled { job },
        Ok(Some(out)) => Record::JobFinished {
            job,
            count: out.count,
            agg: out.agg.clone(),
            report: out.report.clone(),
        },
        Err(e) => Record::JobFailed {
            job,
            error: e.to_string(),
        },
    };
    inner.journal_append(&terminal_rec);

    let mut st = inner.state.lock();
    st.running -= 1;
    let rec = st.jobs.get_mut(&job).expect("running job");
    let (kind, detail, value) = match outcome {
        Ok(None) => {
            rec.state = JobState::Cancelled;
            (EventKind::Cancelled, String::new(), 0)
        }
        Ok(Some(out)) => {
            let count = out.count;
            rec.state = JobState::Done;
            rec.outcome = Some(out);
            (EventKind::Done, String::new(), count)
        }
        Err(e) => {
            rec.state = JobState::Failed;
            rec.error = e.to_string();
            (EventKind::Failed, rec.error.clone(), 0)
        }
    };
    release_quota(&inner, &mut st, job);
    log_event_locked(&mut st, job, kind, detail, value);
    drop(st);
    let _ = inner.sched_tx.send(());
}

/// The job body: resolve the snapshot, open per-job virtual sessions on
/// every live worker, run the standard cluster driver over them, and
/// package the result. `Ok(None)` means the job was cancelled.
fn execute_job(
    inner: &Arc<ServerInner>,
    job: u64,
    app: AppSpec,
    snapshot: &str,
    cancel: Arc<AtomicBool>,
    resume: Option<ResumeState>,
) -> io::Result<Option<JobOutcome>> {
    let graph = {
        let mut st = inner.state.lock();
        let (graph, evictions) = st.snapshots.get_or_load(snapshot)?;
        if evictions > 0 {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner
                .stats
                .snapshot_evictions
                .fetch_add(evictions, Ordering::Relaxed);
        }
        graph
    };

    let mut links = Vec::new();
    let mut names = Vec::new();
    let mut opened: Vec<&WorkerLink> = Vec::new();
    for link in &inner.links {
        if let Some(pair) = link.open_virtual(job) {
            links.push(pair);
            names.push(link.name.clone());
            opened.push(link);
        }
    }
    if links.is_empty() {
        return Err(invalid("no live workers"));
    }

    let mut config = DriverConfig::new_shared(app, graph);
    config.heartbeat_timeout = inner.config.heartbeat_timeout;
    config.cancel = Some(cancel);
    if resume.is_some() {
        // ordering: Relaxed — monotonic diagnostic counter.
        inner.stats.resumed_jobs.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "journal: resuming job {job} from round {}",
            resume.as_ref().map(|r| r.rounds_done).unwrap_or(0)
        );
    }
    config.resume = resume;
    if inner.journal.is_some() {
        // Journal every flush-is-commit boundary so a restart resumes
        // from the last fully merged round instead of from scratch.
        let commit_inner = Arc::clone(inner);
        config.on_round_commit = Some(Arc::new(move |rounds_done, count, agg: &[u8]| {
            commit_inner.journal_append(&Record::WordSetCommitted {
                job,
                rounds_done,
                count,
                agg: agg.to_vec(),
            });
            // Greppable marker for the restart chaos harness: seeing this
            // line means a SIGKILL now provably tests resume-from-commit.
            eprintln!("journal: committed job {job} round {rounds_done}");
        }));
    }
    // Stream coarse progress (decile steps) to subscribers.
    let progress_inner = Arc::clone(inner);
    let last_decile = Arc::new(AtomicU64::new(0));
    config.progress = Some(Arc::new(move |round, done, total| {
        let decile = (done * 10).checked_div(total).unwrap_or(10);
        // ordering: Relaxed — a lost race only skips one coarse progress
        // event; the counter is monotonic within the driver thread.
        if decile > last_decile.swap(decile, Ordering::Relaxed) {
            log_event(
                &progress_inner,
                job,
                EventKind::Progress,
                format!("round {round}"),
                done,
            );
        }
    }));

    let result = run_cluster_links(links, names, config);
    for link in opened {
        link.close_virtual(job);
    }
    let result = result?;
    if result.cancelled {
        return Ok(None);
    }

    let agg = match app {
        AppSpec::Motifs { .. } => blob::encode_motifs_map(&result.motifs),
        AppSpec::Kclist { .. } => Vec::new(),
        AppSpec::Fsm { .. } => blob::encode_fsm_seeds(&result.frequent),
    };
    let mut report = result.report;
    // Stamp the daemon's serve-path counters into the job's federated
    // report so `--metrics-out` artifacts carry them.
    // ordering: Relaxed — monotonic diagnostic counters.
    report.faults.jobs_admitted = inner.stats.jobs_admitted.load(Ordering::Relaxed);
    report.faults.jobs_rejected = inner.stats.jobs_rejected.load(Ordering::Relaxed);
    report.faults.snapshot_evictions = inner.stats.snapshot_evictions.load(Ordering::Relaxed);
    report.faults.journal_replayed = inner.stats.journal_replayed.load(Ordering::Relaxed);
    report.faults.resumed_jobs = inner.stats.resumed_jobs.load(Ordering::Relaxed);
    Ok(Some(JobOutcome {
        count: result.count,
        agg,
        report: blob::encode_report(&report),
    }))
}

/// Serves one client connection: handshake, then submit/status/cancel/
/// result requests until EOF. The connection doubles as the event stream
/// for every job it submitted.
fn serve_client(inner: Arc<ServerInner>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone()?;
    let conn = Arc::new(ClientConn {
        writer: Mutex::new(stream),
        seq: AtomicU32::new(0),
    });
    match read_frame(&mut reader) {
        Ok((
            _,
            Frame::Hello {
                role: Role::Client, ..
            },
        )) => {}
        Ok(_) => return Err(invalid("expected client Hello")),
        Err(e) => return Err(e),
    }
    conn.send(&Frame::Hello {
        role: Role::Driver,
        cores: 0,
    })?;

    loop {
        let (_, frame) = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client hung up
        };
        match frame {
            Frame::Submit {
                tenant,
                priority,
                snapshot,
                app,
                token,
            } => handle_submit(&inner, &conn, tenant, priority, snapshot, &app, token)?,
            Frame::Watch { job, after_seq } => handle_watch(&inner, &conn, job, after_seq)?,
            Frame::Status { job } => {
                let reply = status_event(&inner, job);
                conn.send(&reply)?;
            }
            Frame::Cancel { job } => {
                let reply = handle_cancel(&inner, job);
                conn.send(&reply)?;
            }
            Frame::Result { job, .. } => {
                let reply = {
                    let st = inner.state.lock();
                    match st.jobs.get(&job).and_then(|r| r.outcome.as_ref()) {
                        Some(out) => Frame::Result {
                            job,
                            count: out.count,
                            agg: out.agg.clone(),
                            report: out.report.clone(),
                        },
                        None => status_event_unlocked(&st, job),
                    }
                };
                conn.send(&reply)?;
            }
            // Anything else is not client → daemon traffic.
            _ => {}
        }
    }
}

/// Admission control: idempotency-token dedup, quota and capacity
/// checks, write-ahead journaling, queue insert, events.
///
/// Write-ahead ordering: the `JobAdmitted` record is fsynced *before*
/// the job becomes schedulable and before the client sees `Accepted` —
/// so an acknowledged job survives any crash, and a crash before the
/// fsync only loses a job the client never saw admitted (its token
/// retry re-admits it without double-running).
fn handle_submit(
    inner: &Arc<ServerInner>,
    conn: &Arc<ClientConn>,
    tenant: String,
    priority: u8,
    snapshot: String,
    app_blob: &[u8],
    token: String,
) -> io::Result<()> {
    let app = match blob::decode_app_spec(app_blob) {
        Ok(app) => app,
        Err(e) => {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return conn.send(&event(
                0,
                EventKind::Rejected,
                format!("bad app spec: {e}"),
                0,
            ));
        }
    };
    // Phase 1 (state lock): dedup + admission checks; reserve the id and
    // the quota slot but do NOT make the job schedulable yet.
    let verdict = {
        let mut st = inner.state.lock();
        if !token.is_empty() {
            if let Some(&id) = st.tokens.get(&token) {
                // Retry of an already-admitted submission: re-reply with
                // the original id and attach this connection — never
                // double-admit.
                let rec = st.jobs.get_mut(&id).expect("token-indexed job");
                if !rec.subscribers.iter().any(|s| Arc::ptr_eq(s, conn)) {
                    rec.subscribers.push(Arc::clone(conn));
                }
                drop(st);
                return conn.send(&event(id, EventKind::Accepted, "duplicate token", id));
            }
        }
        if st.queue.len() >= inner.config.max_queue {
            Err("queue full".to_string())
        } else if st
            .tenant_inflight
            .get(&tenant)
            .is_some_and(|&n| n >= inner.config.max_per_tenant)
        {
            Err(format!("tenant {tenant} over quota"))
        } else {
            let id = st.next_job;
            st.next_job += 1;
            st.submit_seq += 1;
            let submit_seq = st.submit_seq;
            *st.tenant_inflight.entry(tenant.clone()).or_insert(0) += 1;
            if !token.is_empty() {
                st.tokens.insert(token.clone(), id);
            }
            st.jobs.insert(
                id,
                JobRecord {
                    tenant: tenant.clone(),
                    priority,
                    submit_seq,
                    app,
                    snapshot: snapshot.clone(),
                    token: token.clone(),
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    outcome: None,
                    error: String::new(),
                    subscribers: vec![Arc::clone(conn)],
                    quota_released: false,
                    epoch_base: 0,
                    events: Vec::new(),
                    resume: None,
                },
            );
            Ok((id, submit_seq))
        }
    };
    match verdict {
        Ok((id, submit_seq)) => {
            // Phase 2 (no state lock): make the admission durable.
            let durable = match &inner.journal {
                None => Ok(()),
                Some(j) => j.lock().append(&Record::JobAdmitted {
                    job: id,
                    token,
                    tenant,
                    priority,
                    submit_seq,
                    snapshot,
                    app: app_blob.to_vec(),
                }),
            };
            // Phase 3 (state lock): publish or roll back.
            let mut st = inner.state.lock();
            match durable {
                Ok(()) => {
                    st.queue.push(id);
                    let qpos = st.queue.len() as u64;
                    // ordering: Relaxed — monotonic diagnostic counter.
                    inner.stats.jobs_admitted.fetch_add(1, Ordering::Relaxed);
                    log_event_locked(&mut st, id, EventKind::Accepted, "", id);
                    log_event_locked(&mut st, id, EventKind::Queued, "", qpos);
                    drop(st);
                    let _ = inner.sched_tx.send(());
                    Ok(())
                }
                Err(e) => {
                    release_quota(inner, &mut st, id);
                    if let Some(rec) = st.jobs.remove(&id) {
                        st.tokens.remove(&rec.token);
                    }
                    drop(st);
                    // ordering: Relaxed — monotonic diagnostic counter.
                    inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    conn.send(&event(0, EventKind::Rejected, format!("journal: {e}"), 0))
                }
            }
        }
        Err(why) => {
            // ordering: Relaxed — monotonic diagnostic counter.
            inner.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            conn.send(&event(0, EventKind::Rejected, why, 0))
        }
    }
}

/// `Watch { job, after_seq }`: subscribe this connection to `job`'s event
/// stream and replay the sequenced events it missed. Subscribe + replay
/// happen under the state lock, atomically against [`log_event_locked`]
/// appends — the watcher sees every event exactly once, in order, even
/// when it races a live emission.
fn handle_watch(
    inner: &Arc<ServerInner>,
    conn: &Arc<ClientConn>,
    job: u64,
    after_seq: u64,
) -> io::Result<()> {
    let mut st = inner.state.lock();
    let Some(rec) = st.jobs.get_mut(&job) else {
        drop(st);
        return conn.send(&event(job, EventKind::Failed, "unknown job", 0));
    };
    if !rec.subscribers.iter().any(|s| Arc::ptr_eq(s, conn)) {
        rec.subscribers.push(Arc::clone(conn));
    }
    let mut logged_terminal = false;
    for f in &rec.events {
        if let Frame::JobEvent {
            event_seq, kind, ..
        } = f
        {
            logged_terminal |= kind.is_terminal();
            if *event_seq > after_seq {
                let _ = conn.send(f);
            }
        }
    }
    // A job that reached its terminal state in a *previous* daemon epoch
    // (restored from the journal) has an empty event log this epoch:
    // synthesize its terminal event (unsequenced = always delivered) so
    // the watcher completes instead of hanging.
    if !logged_terminal
        && matches!(
            rec.state,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    {
        let terminal = status_event_unlocked(&st, job);
        drop(st);
        return conn.send(&terminal);
    }
    Ok(())
}

/// A `JobEvent` describing `job`'s current lifecycle state.
fn status_event(inner: &ServerInner, job: u64) -> Frame {
    let st = inner.state.lock();
    match st.jobs.get(&job) {
        None => event(job, EventKind::Failed, "unknown job", 0),
        Some(rec) => match rec.state {
            JobState::Queued => {
                let pos = st.queue.iter().position(|&j| j == job).unwrap_or(0) as u64;
                event(job, EventKind::Queued, "", pos + 1)
            }
            JobState::Running => event(job, EventKind::Running, rec.app.name(), 0),
            JobState::Done => {
                let count = rec.outcome.as_ref().map(|o| o.count).unwrap_or(0);
                event(job, EventKind::Done, "", count)
            }
            JobState::Cancelled => event(job, EventKind::Cancelled, "", 0),
            JobState::Failed => event(job, EventKind::Failed, rec.error.clone(), 0),
        },
    }
}

fn handle_cancel(inner: &ServerInner, job: u64) -> Frame {
    let mut st = inner.state.lock();
    let Some(rec) = st.jobs.get_mut(&job) else {
        return event(job, EventKind::Failed, "unknown job", 0);
    };
    match rec.state {
        JobState::Queued => {
            rec.state = JobState::Cancelled;
            st.queue.retain(|&j| j != job);
            release_quota(inner, &mut st, job);
            // Journaled while holding the state lock: the lock order is
            // state → journal everywhere, and durability must precede the
            // terminal event below.
            inner.journal_append(&Record::JobCancelled { job });
            log_event_locked(&mut st, job, EventKind::Cancelled, "", 0);
            event(job, EventKind::Cancelled, "", 0)
        }
        JobState::Running => {
            // Cooperative: the job's driver notices at its next event-loop
            // iteration, winds the virtual sessions down and publishes the
            // terminal Cancelled event itself.
            // ordering: SeqCst — cancel is a rare control-plane flag; the driver
            // polls it between event-loop iterations, no tight loop reads it.
            rec.cancel.store(true, Ordering::SeqCst);
            event(job, EventKind::Running, "cancelling", 0)
        }
        // Already terminal: report the state as-is.
        _ => status_event_unlocked(&st, job),
    }
}

fn status_event_unlocked(st: &ServerState, job: u64) -> Frame {
    match st.jobs.get(&job) {
        None => event(job, EventKind::Failed, "unknown job", 0),
        Some(rec) => match rec.state {
            JobState::Queued => event(job, EventKind::Queued, "", 0),
            JobState::Running => event(job, EventKind::Running, rec.app.name(), 0),
            JobState::Done => event(
                job,
                EventKind::Done,
                "",
                rec.outcome.as_ref().map(|o| o.count).unwrap_or(0),
            ),
            JobState::Cancelled => event(job, EventKind::Cancelled, "", 0),
            JobState::Failed => event(job, EventKind::Failed, rec.error.clone(), 0),
        },
    }
}

/// Gracefully shuts every worker connection down (physical
/// `Done{SHUTDOWN_ROUND}`), so workers exit their mux dispatchers.
pub fn shutdown_workers(server: &Server) {
    for link in &server.inner.links {
        let shutdown = Frame::Done {
            round: SHUTDOWN_ROUND,
        };
        // ordering: Relaxed — physical seq needs only uniqueness.
        let seq = link.physical_seq.fetch_add(1, Ordering::Relaxed);
        let mut w = link.physical.lock();
        let _ = w.send(seq, &shutdown);
    }
}
