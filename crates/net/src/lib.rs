//! # fractal-net: multi-process cluster substrate
//!
//! Real distributed execution for fractal jobs: a **driver** process
//! partitions root work words across **worker** processes and reduces
//! their final aggregations; workers run the existing multi-core executor
//! and serve *external work stealing* over TCP through the driver
//! (hub-and-spoke — no peer connections), speaking a length-prefixed,
//! versioned binary frame protocol.
//!
//! Layering:
//! - [`frame`] — the wire frame codec (`Hello`/`Assign`/`StealRequest`/
//!   `StealReply`/`Ack`/`Nack`/`AggFlush`/`Heartbeat`/`Done`), checksummed
//!   and adversarially decoded.
//! - [`blob`] — typed payload encodings carried inside frames: job spec
//!   (app + graph), aggregation maps, metrics reports.
//! - [`worker`] — the worker process loop: runs jobs with an
//!   [`fractal_runtime::ExternalHooks`] pull source and answers steal
//!   requests from its own run queues.
//! - [`driver`] — the driver: assignment, steal relay, heartbeat
//!   watchdog, death recovery (orphaned words are re-executed on
//!   survivors), aggregation merge and report federation.
//! - [`serve`] — the long-lived multi-tenant job server: admission with
//!   per-tenant quotas, LRU-cached graph snapshots shared across jobs,
//!   and several concurrent jobs multiplexed over the same worker
//!   connections via job-id tagged [`frame::Frame::Mux`] envelopes.
//! - [`client`] — the submit/status/cancel/result client side, with a
//!   reconnect-with-backoff event-stream wait that survives transient
//!   disconnects.
//! - [`journal`] — the serve daemon's write-ahead job journal: durable
//!   admission/commit/terminal records with torn-write-tolerant replay,
//!   powering crash-consistent restarts (`serve --journal <dir>`).
//! - [`linkfault`] — the link-degradation fault envelope: deterministic
//!   delay/duplicate/reorder injection at the `FrameSource`/`FrameSink`
//!   layer plus the receive-side duplicate suppression that keeps
//!   degraded links exactly-once.
//!
//! Failure model: the driver is reliable (its failure fails the job);
//! workers may die at any point. A worker death mid-round returns *all*
//! its owned words to the orphan pool — completed-but-unflushed results
//! died with the process, so exactly-once output is preserved by making
//! flush, not completion, the commit point.

pub mod blob;
pub mod client;
pub mod driver;
pub mod frame;
pub mod journal;
pub mod linkfault;
pub mod serve;
pub mod worker;

pub use blob::AppSpec;
pub use client::{Client, JobTerminal, ReconnectPolicy};
pub use driver::{
    render_per_worker, run_cluster, run_cluster_links, ChaosKill, ClusterResult, DriverConfig,
    LocalCluster, ResumeState, WorkerSummary,
};
pub use frame::EventKind;
pub use journal::{Journal, Record, Replay};
pub use linkfault::{DedupSource, FaultySink};
pub use serve::{load_snapshot, ServeConfig, Server};
pub use worker::{serve, serve_conn, serve_with, ServeOutcome};
