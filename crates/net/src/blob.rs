//! Payload blob encodings: the typed content carried inside wire frames.
//!
//! Frames ([`crate::frame`]) move opaque byte blobs; this module defines
//! what's inside them — the job spec (graph + application), aggregation
//! maps (motif counts, FSM domain supports), and the per-worker metrics
//! report. All encodings are big-endian, deterministic (maps are sorted
//! before encoding) and bounds-checked on decode, mirroring the frame
//! layer's adversarial-input posture.

use fractal_apps::fsm::DomainSupport;
use fractal_graph::builder::graph_from_edges;
use fractal_graph::Graph;
use fractal_pattern::CanonicalCode;
use fractal_runtime::fault::FaultStats;
use fractal_runtime::level::GlobalCoreId;
use fractal_runtime::stats::{CoreStats, JobReport, PlannerStats};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Why a blob failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlobError {
    /// Fewer bytes than the structure requires.
    Truncated,
    /// Structurally invalid content.
    Malformed(&'static str),
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::Truncated => write!(f, "truncated blob"),
            BlobError::Malformed(what) => write!(f, "malformed blob: {what}"),
        }
    }
}

impl std::error::Error for BlobError {}

/// Which GPM application a cluster job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSpec {
    /// Motif counting: `vfractoid.expand(k).aggregate("motifs", …)`, or —
    /// with `decomposed` — the compiled counting-plan path (workers
    /// evaluate the shared plan DAG over their root partition and flush
    /// raw per-node totals; the driver combines them by Möbius inversion).
    Motifs {
        k: u32,
        use_labels: bool,
        decomposed: bool,
    },
    /// k-clique counting with the KClist enumerator.
    Kclist { k: u32 },
    /// Frequent subgraph mining (iterative, one round per pattern size).
    Fsm { min_support: u64, max_edges: u32 },
}

impl AppSpec {
    /// Whether workers count result subgraphs (vs. aggregate only).
    pub fn counts(&self) -> bool {
        matches!(self, AppSpec::Kclist { .. })
    }

    /// Upper bound on driver rounds (FSM may stop earlier).
    pub fn max_rounds(&self) -> u32 {
        match self {
            AppSpec::Motifs { .. } | AppSpec::Kclist { .. } => 1,
            AppSpec::Fsm { max_edges, .. } => (*max_edges).max(1),
        }
    }

    /// Short name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::Motifs { .. } => "motifs",
            AppSpec::Kclist { .. } => "kclist",
            AppSpec::Fsm { .. } => "fsm",
        }
    }
}

// ---- primitive helpers ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], BlobError> {
        let end = self.pos.checked_add(n).ok_or(BlobError::Truncated)?;
        if end > self.buf.len() {
            return Err(BlobError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BlobError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, BlobError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, BlobError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Guards a claimed element count against the remaining bytes so a
    /// corrupt count cannot trigger a huge allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, BlobError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / elem_bytes.max(1) {
            return Err(BlobError::Truncated);
        }
        Ok(n)
    }
    fn finish(self) -> Result<(), BlobError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(BlobError::Malformed("trailing bytes"))
        }
    }
}

// ---- app spec ----

fn put_app(out: &mut Vec<u8>, app: &AppSpec) {
    match app {
        AppSpec::Motifs {
            k,
            use_labels,
            decomposed,
        } => {
            put_u8(out, 1);
            put_u32(out, *k);
            // Flags byte: bit 0 = use_labels, bit 1 = decomposed. Plain
            // 0/1 values stay wire-compatible with the pre-planner layout.
            put_u8(out, (*use_labels as u8) | ((*decomposed as u8) << 1));
        }
        AppSpec::Kclist { k } => {
            put_u8(out, 2);
            put_u32(out, *k);
        }
        AppSpec::Fsm {
            min_support,
            max_edges,
        } => {
            put_u8(out, 3);
            put_u64(out, *min_support);
            put_u32(out, *max_edges);
        }
    }
}

fn get_app(c: &mut Cursor<'_>) -> Result<AppSpec, BlobError> {
    Ok(match c.u8()? {
        1 => {
            let k = c.u32()?;
            let flags = c.u8()?;
            if flags > 3 {
                return Err(BlobError::Malformed("motifs flags"));
            }
            if flags == 3 {
                // The planner compiles unlabeled plans only.
                return Err(BlobError::Malformed("labeled decomposed motifs"));
            }
            AppSpec::Motifs {
                k,
                use_labels: flags & 1 != 0,
                decomposed: flags & 2 != 0,
            }
        }
        2 => AppSpec::Kclist { k: c.u32()? },
        3 => AppSpec::Fsm {
            min_support: c.u64()?,
            max_edges: c.u32()?,
        },
        _ => return Err(BlobError::Malformed("app tag")),
    })
}

/// Encodes an app spec alone — the payload of a `Submit` frame, where the
/// graph travels separately as a registered snapshot id.
pub fn encode_app_spec(app: &AppSpec) -> Vec<u8> {
    let mut out = Vec::new();
    put_app(&mut out, app);
    out
}

/// Decodes an app spec encoded by [`encode_app_spec`].
pub fn decode_app_spec(bytes: &[u8]) -> Result<AppSpec, BlobError> {
    let mut c = Cursor::new(bytes);
    let app = get_app(&mut c)?;
    c.finish()?;
    Ok(app)
}

// ---- graph ----

/// Encodes a graph as vertex labels + `(u, v, label)` edge triples. Edge
/// order is the graph's canonical edge-id order, so a decode on any
/// machine rebuilds a bit-identical CSR (and therefore identical work
/// words and enumeration order).
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + g.num_vertices() * 4 + 4 + g.num_edges() * 12);
    put_u32(&mut out, g.num_vertices() as u32);
    for v in g.vertices() {
        put_u32(&mut out, g.vertex_label(v).raw());
    }
    put_u32(&mut out, g.num_edges() as u32);
    for e in g.edges() {
        let (u, v) = g.edge_endpoints(e);
        put_u32(&mut out, u.0);
        put_u32(&mut out, v.0);
        put_u32(&mut out, g.edge_label(e).raw());
    }
    out
}

/// Decodes a graph encoded by [`encode_graph`].
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, BlobError> {
    let mut c = Cursor::new(bytes);
    let (g, c) = decode_graph_inner(c.take(bytes.len())?).map(|g| (g, c))?;
    c.finish()?;
    Ok(g)
}

fn decode_graph_inner(bytes: &[u8]) -> Result<Graph, BlobError> {
    let mut c = Cursor::new(bytes);
    let nv = c.count(4)?;
    let mut labels = Vec::with_capacity(nv);
    for _ in 0..nv {
        labels.push(c.u32()?);
    }
    let ne = c.count(12)?;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let u = c.u32()?;
        let v = c.u32()?;
        let l = c.u32()?;
        if u as usize >= nv || v as usize >= nv || u == v {
            return Err(BlobError::Malformed("edge endpoint"));
        }
        edges.push((u, v, l));
    }
    c.finish()?;
    Ok(graph_from_edges(&labels, &edges))
}

// ---- job (app + graph) ----

/// Encodes the job blob shipped in the first `Assign` of a session.
pub fn encode_job(app: &AppSpec, g: &Graph) -> Vec<u8> {
    let mut out = Vec::new();
    put_app(&mut out, app);
    out.extend_from_slice(&encode_graph(g));
    out
}

/// Decodes a job blob back into the app spec and input graph.
pub fn decode_job(bytes: &[u8]) -> Result<(AppSpec, Graph), BlobError> {
    let mut c = Cursor::new(bytes);
    let app = get_app(&mut c)?;
    let rest = c.take(bytes.len() - c.pos)?;
    let g = decode_graph_inner(rest)?;
    Ok((app, g))
}

// ---- canonical codes ----

fn put_code(out: &mut Vec<u8>, code: &CanonicalCode) {
    put_u32(out, code.0.len() as u32);
    for &w in &code.0 {
        put_u32(out, w);
    }
}

fn get_code(c: &mut Cursor<'_>) -> Result<CanonicalCode, BlobError> {
    let n = c.count(4)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(c.u32()?);
    }
    Ok(CanonicalCode(words))
}

// ---- motifs aggregation map ----

/// Encodes a motif count map, sorted by canonical code for determinism.
pub fn encode_motifs_map(map: &HashMap<CanonicalCode, u64>) -> Vec<u8> {
    let mut rows: Vec<(&CanonicalCode, &u64)> = map.iter().collect();
    rows.sort_by(|a, b| a.0 .0.cmp(&b.0 .0));
    let mut out = Vec::new();
    put_u32(&mut out, rows.len() as u32);
    for (code, count) in rows {
        put_code(&mut out, code);
        put_u64(&mut out, *count);
    }
    out
}

/// Decodes a motif count map.
pub fn decode_motifs_map(bytes: &[u8]) -> Result<HashMap<CanonicalCode, u64>, BlobError> {
    let mut c = Cursor::new(bytes);
    let n = c.count(12)?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let code = get_code(&mut c)?;
        let count = c.u64()?;
        if map.insert(code, count).is_some() {
            return Err(BlobError::Malformed("duplicate motif key"));
        }
    }
    c.finish()?;
    Ok(map)
}

// ---- plan totals (decomposed motifs aggregation) ----

/// Encodes a decomposed-plan partial-totals vector: one `i128` per plan
/// node, each split into two big-endian `u64` halves (high word first).
pub fn encode_plan_totals(totals: &[i128]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, totals.len() as u32);
    for &v in totals {
        put_u64(&mut out, (v >> 64) as u64);
        put_u64(&mut out, v as u64);
    }
    out
}

/// Decodes a totals vector encoded by [`encode_plan_totals`].
pub fn decode_plan_totals(bytes: &[u8]) -> Result<Vec<i128>, BlobError> {
    let mut c = Cursor::new(bytes);
    let n = c.count(16)?;
    let mut totals = Vec::with_capacity(n);
    for _ in 0..n {
        let hi = c.u64()?;
        let lo = c.u64()?;
        totals.push(((hi as i128) << 64) | (lo as i128));
    }
    c.finish()?;
    Ok(totals)
}

// ---- FSM aggregation map ----

/// Encodes an FSM support map: per canonical pattern, the per-position
/// vertex domains (each domain sorted; patterns sorted by code).
pub fn encode_fsm_map(map: &HashMap<CanonicalCode, DomainSupport>) -> Vec<u8> {
    let mut rows: Vec<(&CanonicalCode, &DomainSupport)> = map.iter().collect();
    rows.sort_by(|a, b| a.0 .0.cmp(&b.0 .0));
    let mut out = Vec::new();
    put_u32(&mut out, rows.len() as u32);
    for (code, sup) in rows {
        put_code(&mut out, code);
        let domains = sup.domains();
        put_u32(&mut out, domains.len() as u32);
        for d in domains {
            let mut vs: Vec<u32> = d.iter().copied().collect();
            vs.sort_unstable();
            put_u32(&mut out, vs.len() as u32);
            for v in vs {
                put_u32(&mut out, v);
            }
        }
    }
    out
}

/// Decodes an FSM support map.
pub fn decode_fsm_map(bytes: &[u8]) -> Result<HashMap<CanonicalCode, DomainSupport>, BlobError> {
    let mut c = Cursor::new(bytes);
    let n = c.count(8)?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let code = get_code(&mut c)?;
        let nd = c.count(4)?;
        let mut domains = Vec::with_capacity(nd);
        for _ in 0..nd {
            let nv = c.count(4)?;
            let mut set = HashSet::with_capacity(nv);
            for _ in 0..nv {
                set.insert(c.u32()?);
            }
            domains.push(set);
        }
        if map
            .insert(code, DomainSupport::from_domains(domains))
            .is_some()
        {
            return Err(BlobError::Malformed("duplicate fsm key"));
        }
    }
    c.finish()?;
    Ok(map)
}

/// Encodes the seed list an FSM `Assign` ships for round `r`: the globally
/// merged + filtered support maps of rounds `0..r`, in round order.
pub fn encode_fsm_seeds(seeds: &[HashMap<CanonicalCode, DomainSupport>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, seeds.len() as u32);
    for map in seeds {
        let bytes = encode_fsm_map(map);
        put_u32(&mut out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decodes a seed list encoded by [`encode_fsm_seeds`].
pub fn decode_fsm_seeds(
    bytes: &[u8],
) -> Result<Vec<HashMap<CanonicalCode, DomainSupport>>, BlobError> {
    let mut c = Cursor::new(bytes);
    let n = c.count(4)?;
    let mut seeds = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.u32()? as usize;
        let chunk = c.take(len)?;
        seeds.push(decode_fsm_map(chunk)?);
    }
    c.finish()?;
    Ok(seeds)
}

// ---- metrics report ----

const CORE_STAT_FIELDS: usize = 15;

/// Encodes the metrics-relevant subset of a worker's [`JobReport`]: wall
/// time, server/fault counters and every per-core counter (busy segments
/// are dropped — they only feed local timeline rendering).
pub fn encode_report(r: &JobReport) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, r.elapsed.as_nanos() as u64);
    put_u64(&mut out, r.bytes_served);
    put_u64(&mut out, r.steal_requests);
    put_u64(&mut out, r.steal_hits);
    for v in [
        r.faults.faults_injected,
        r.faults.units_retried,
        r.faults.units_reexecuted,
        r.faults.watchdog_trips,
        r.faults.recovery_ns,
        r.faults.units_lost,
        r.faults.tap_drained,
        r.faults.jobs_admitted,
        r.faults.jobs_rejected,
        r.faults.snapshot_evictions,
        r.faults.journal_replayed,
        r.faults.resumed_jobs,
        r.faults.link_faults_injected,
        r.faults.client_reconnects,
        r.planner.plans_compiled,
        r.planner.subpatterns_counted,
        r.planner.ie_terms,
    ] {
        put_u64(&mut out, v);
    }
    put_u32(&mut out, r.cores.len() as u32);
    for (id, s) in &r.cores {
        put_u32(&mut out, id.worker as u32);
        put_u32(&mut out, id.core as u32);
        for v in [
            s.busy_ns,
            s.units,
            s.internal_steals,
            s.external_steals,
            s.net_units,
            s.failed_steal_rounds,
            s.bytes_received,
            s.ec,
            s.peak_state_bytes,
            s.steal_ns,
            s.kernel_merge,
            s.kernel_gallop,
            s.kernel_bitset,
            s.kernel_scanned,
            s.arena_peak_bytes,
        ] {
            put_u64(&mut out, v);
        }
    }
    out
}

/// Decodes a report encoded by [`encode_report`].
pub fn decode_report(bytes: &[u8]) -> Result<JobReport, BlobError> {
    let mut c = Cursor::new(bytes);
    let elapsed = Duration::from_nanos(c.u64()?);
    let bytes_served = c.u64()?;
    let steal_requests = c.u64()?;
    let steal_hits = c.u64()?;
    let faults = FaultStats {
        faults_injected: c.u64()?,
        units_retried: c.u64()?,
        units_reexecuted: c.u64()?,
        watchdog_trips: c.u64()?,
        recovery_ns: c.u64()?,
        units_lost: c.u64()?,
        tap_drained: c.u64()?,
        jobs_admitted: c.u64()?,
        jobs_rejected: c.u64()?,
        snapshot_evictions: c.u64()?,
        journal_replayed: c.u64()?,
        resumed_jobs: c.u64()?,
        link_faults_injected: c.u64()?,
        client_reconnects: c.u64()?,
    };
    let planner = PlannerStats {
        plans_compiled: c.u64()?,
        subpatterns_counted: c.u64()?,
        ie_terms: c.u64()?,
    };
    let ncores = c.count(8 + CORE_STAT_FIELDS * 8)?;
    let mut cores = Vec::with_capacity(ncores);
    for _ in 0..ncores {
        let worker = c.u32()? as usize;
        let core = c.u32()? as usize;
        // Struct fields evaluate in written order, which must match the
        // field order `encode_report` writes.
        let s = CoreStats {
            busy_ns: c.u64()?,
            units: c.u64()?,
            internal_steals: c.u64()?,
            external_steals: c.u64()?,
            net_units: c.u64()?,
            failed_steal_rounds: c.u64()?,
            bytes_received: c.u64()?,
            ec: c.u64()?,
            peak_state_bytes: c.u64()?,
            steal_ns: c.u64()?,
            kernel_merge: c.u64()?,
            kernel_gallop: c.u64()?,
            kernel_bitset: c.u64()?,
            kernel_scanned: c.u64()?,
            arena_peak_bytes: c.u64()?,
            ..Default::default()
        };
        cores.push((GlobalCoreId { worker, core }, s));
    }
    c.finish()?;
    Ok(JobReport {
        elapsed,
        cores,
        bytes_served,
        steal_requests,
        steal_hits,
        faults,
        planner,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractal_graph::gen;

    #[test]
    fn graph_round_trip_is_identical() {
        let g = gen::mico_like(120, 4, 7);
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).expect("decode");
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            assert_eq!(g.vertex_label(v), g2.vertex_label(v));
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
        for e in g.edges() {
            assert_eq!(g.edge_endpoints(e), g2.edge_endpoints(e));
            assert_eq!(g.edge_label(e), g2.edge_label(e));
        }
        // And a second encode is bit-identical (determinism).
        assert_eq!(bytes, encode_graph(&g2));
    }

    #[test]
    fn job_round_trip() {
        let g = gen::patents_like(60, 3, 5);
        for app in [
            AppSpec::Motifs {
                k: 3,
                use_labels: true,
                decomposed: false,
            },
            AppSpec::Motifs {
                k: 5,
                use_labels: false,
                decomposed: true,
            },
            AppSpec::Kclist { k: 4 },
            AppSpec::Fsm {
                min_support: 12,
                max_edges: 3,
            },
        ] {
            let bytes = encode_job(&app, &g);
            let (app2, g2) = decode_job(&bytes).expect("decode");
            assert_eq!(app, app2);
            assert_eq!(g.num_edges(), g2.num_edges());
        }
    }

    #[test]
    fn motifs_map_round_trip_and_determinism() {
        let mut map = HashMap::new();
        map.insert(CanonicalCode(vec![3, 1, 2]), 99u64);
        map.insert(CanonicalCode(vec![1]), 7);
        map.insert(CanonicalCode(vec![]), 1);
        let bytes = encode_motifs_map(&map);
        assert_eq!(decode_motifs_map(&bytes).expect("decode"), map);
        assert_eq!(bytes, encode_motifs_map(&map.clone()));
    }

    #[test]
    fn plan_totals_round_trip() {
        let totals = vec![
            0i128,
            1,
            -1,
            u64::MAX as i128 + 17,
            i128::MAX,
            i128::MIN,
            -(1i128 << 100),
        ];
        let bytes = encode_plan_totals(&totals);
        assert_eq!(decode_plan_totals(&bytes).expect("decode"), totals);
        assert_eq!(
            decode_plan_totals(&encode_plan_totals(&[])).expect("decode"),
            Vec::<i128>::new()
        );
        // Truncations error cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_plan_totals(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn fsm_map_round_trip() {
        let mut map = HashMap::new();
        map.insert(
            CanonicalCode(vec![2, 0, 1]),
            DomainSupport::from_domains(vec![
                [1u32, 5, 9].into_iter().collect(),
                [2u32].into_iter().collect(),
                HashSet::new(),
            ]),
        );
        map.insert(
            CanonicalCode(vec![2, 0, 0]),
            DomainSupport::from_domains(vec![[0u32, 1].into_iter().collect()]),
        );
        let bytes = encode_fsm_map(&map);
        let got = decode_fsm_map(&bytes).expect("decode");
        assert_eq!(got.len(), 2);
        for (code, sup) in &map {
            let g = &got[code];
            assert_eq!(g.domains(), sup.domains());
            assert_eq!(g.support(), sup.support());
        }
    }

    #[test]
    fn report_round_trip() {
        let s = CoreStats {
            busy_ns: 123,
            units: 9,
            net_units: 2,
            ec: 77,
            ..Default::default()
        };
        let r = JobReport {
            elapsed: Duration::from_millis(5),
            cores: vec![
                (GlobalCoreId { worker: 0, core: 0 }, s.clone()),
                (GlobalCoreId { worker: 0, core: 1 }, CoreStats::default()),
            ],
            bytes_served: 10,
            steal_requests: 4,
            steal_hits: 3,
            faults: FaultStats {
                faults_injected: 1,
                units_retried: 2,
                units_reexecuted: 3,
                watchdog_trips: 4,
                recovery_ns: 5,
                units_lost: 6,
                tap_drained: 7,
                jobs_admitted: 8,
                jobs_rejected: 9,
                snapshot_evictions: 10,
                journal_replayed: 11,
                resumed_jobs: 12,
                link_faults_injected: 13,
                client_reconnects: 14,
            },
            planner: PlannerStats {
                plans_compiled: 15,
                subpatterns_counted: 16,
                ie_terms: 17,
            },
            trace: None,
        };
        let bytes = encode_report(&r);
        let r2 = decode_report(&bytes).expect("decode");
        assert_eq!(r2.elapsed, r.elapsed);
        assert_eq!(r2.cores.len(), 2);
        assert_eq!(r2.cores[0].1.busy_ns, 123);
        assert_eq!(r2.cores[0].1.net_units, 2);
        assert_eq!(r2.faults.units_lost, 6);
        assert_eq!(r2.faults.jobs_admitted, 8);
        assert_eq!(r2.faults.snapshot_evictions, 10);
        assert_eq!(r2.faults.journal_replayed, 11);
        assert_eq!(r2.faults.resumed_jobs, 12);
        assert_eq!(r2.faults.link_faults_injected, 13);
        assert_eq!(r2.faults.client_reconnects, 14);
        assert_eq!(r2.planner.plans_compiled, 15);
        assert_eq!(r2.planner.subpatterns_counted, 16);
        assert_eq!(r2.planner.ie_terms, 17);
        assert_eq!(r2.steal_hits, 3);
    }

    #[test]
    fn app_spec_round_trip() {
        for app in [
            AppSpec::Motifs {
                k: 4,
                use_labels: false,
                decomposed: false,
            },
            AppSpec::Motifs {
                k: 5,
                use_labels: false,
                decomposed: true,
            },
            AppSpec::Kclist { k: 5 },
            AppSpec::Fsm {
                min_support: 3,
                max_edges: 2,
            },
        ] {
            let bytes = encode_app_spec(&app);
            assert_eq!(decode_app_spec(&bytes).expect("decode"), app);
        }
        assert!(decode_app_spec(&[]).is_err());
        assert!(decode_app_spec(&[9]).is_err());
        // Unknown flag bits and the labeled+decomposed combination are
        // rejected at decode.
        assert!(decode_app_spec(&[1, 0, 0, 0, 3, 4]).is_err());
        assert!(decode_app_spec(&[1, 0, 0, 0, 3, 7]).is_err());
        // Trailing bytes after a valid spec are rejected.
        let mut bytes = encode_app_spec(&AppSpec::Kclist { k: 3 });
        bytes.push(0);
        assert!(decode_app_spec(&bytes).is_err());
    }

    #[test]
    fn truncated_blobs_error_cleanly() {
        let g = gen::mico_like(40, 2, 3);
        let graph_bytes = encode_graph(&g);
        let mut map = HashMap::new();
        map.insert(CanonicalCode(vec![1, 2]), 5u64);
        let motif_bytes = encode_motifs_map(&map);
        for bytes in [&graph_bytes, &motif_bytes] {
            for cut in 0..bytes.len().min(64) {
                assert!(
                    decode_graph(&bytes[..cut]).is_err()
                        || decode_motifs_map(&bytes[..cut]).is_err()
                );
            }
        }
    }
}
