//! Property tests for the wire frame codec: arbitrary frames of every
//! type round-trip bit-exactly; adversarial transformations of the wire
//! image (single-byte flips, truncations, random byte soup) never panic
//! and never silently alias to a different frame. Complements the
//! hand-built corruption cases in `frame.rs` with generated coverage.

use fractal_net::frame::{decode_frame, encode_frame, EventKind, Frame, Role};
use proptest::prelude::*;

fn arb_blob(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_words(max: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..max)
}

/// Arbitrary string fields (tenant names, snapshot specs, event details):
/// includes the separator/spec characters the serve path actually uses,
/// plus a multi-byte codepoint to exercise UTF-8 on the wire.
fn arb_text() -> impl Strategy<Value = String> {
    const CHARS: [char; 12] = ['a', 'b', 'z', '0', '9', ':', '.', '_', '-', ' ', '/', 'é'];
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .iter()
            .map(|&b| CHARS[b as usize % CHARS.len()])
            .collect()
    })
}

const EVENT_KINDS: [EventKind; 8] = [
    EventKind::Accepted,
    EventKind::Rejected,
    EventKind::Queued,
    EventKind::Running,
    EventKind::Progress,
    EventKind::Done,
    EventKind::Cancelled,
    EventKind::Failed,
];

/// An arbitrary frame spanning all sixteen wire types, including optional
/// blob presence/absence combinations and sentinel-adjacent integers.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..16, // variant selector
        any::<u32>(),
        any::<u64>(),
        (0u8..8, arb_blob(40), arb_blob(40)),
        arb_words(24),
        (arb_text(), arb_text()),
    )
        .prop_map(
            |(sel, round, word, (flags, blob_a, blob_b), words, (text_a, text_b))| match sel {
                0 => Frame::Hello {
                    role: match flags % 3 {
                        0 => Role::Driver,
                        1 => Role::Worker,
                        _ => Role::Client,
                    },
                    cores: round,
                },
                1 => Frame::Assign {
                    round,
                    recovery: flags & 1 != 0,
                    job: (flags & 2 != 0).then_some(blob_a),
                    seed: (flags & 4 != 0).then_some(blob_b),
                    roots: words,
                },
                2 => Frame::StealRequest { round },
                3 => Frame::StealReply {
                    round,
                    word,
                    unit: (flags & 1 != 0).then_some(blob_a),
                },
                4 => Frame::Ack { round, word },
                5 => Frame::Nack { round, word },
                6 => Frame::AggFlush {
                    round,
                    count: word,
                    agg: blob_a,
                    report: blob_b,
                },
                7 => Frame::Heartbeat {
                    round,
                    completed: words,
                },
                8 => Frame::Done { round },
                9 => Frame::Submit {
                    tenant: text_a.clone(),
                    priority: flags,
                    snapshot: text_b,
                    app: blob_a,
                    token: text_a,
                },
                10 => Frame::Status { job: word },
                11 => Frame::Cancel { job: word },
                12 => Frame::Result {
                    job: word,
                    count: round as u64,
                    agg: blob_a,
                    report: blob_b,
                },
                13 => Frame::JobEvent {
                    job: word,
                    kind: EVENT_KINDS[(flags % 8) as usize],
                    detail: text_a,
                    value: round as u64,
                    event_seq: word.wrapping_mul(31),
                },
                // A mux envelope's payload is an opaque byte string at
                // this layer — corruption inside it is caught by the
                // outer checksum, so arbitrary bytes are the right test.
                14 => Frame::Mux {
                    job: word,
                    inner: blob_a,
                },
                _ => Frame::Watch {
                    job: word,
                    after_seq: round as u64,
                },
            },
        )
}

proptest! {
    #[test]
    fn arbitrary_frames_round_trip(seq in any::<u32>(), frame in arb_frame()) {
        let wire = encode_frame(seq, &frame);
        let (got_seq, got) = decode_frame(&wire).expect("round trip");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn single_byte_flips_are_always_detected(
        frame in arb_frame(),
        pos_pick in any::<usize>(),
        xor in 1u8..=255,
    ) {
        // Any one-byte change is caught by the magic/version/type/length
        // checks or the trailing FNV-1a checksum — never a panic, never a
        // silently different frame.
        let mut wire = encode_frame(5, &frame);
        let pos = pos_pick % wire.len();
        wire[pos] ^= xor;
        prop_assert!(decode_frame(&wire).is_err());
    }

    #[test]
    fn every_truncation_is_an_error(frame in arb_frame(), cut_pick in any::<usize>()) {
        let wire = encode_frame(5, &frame);
        let cut = cut_pick % wire.len();
        prop_assert!(decode_frame(&wire[..cut]).is_err());
    }

    #[test]
    fn decoding_random_bytes_never_panics_and_is_canonical(bytes in arb_blob(200)) {
        // Whatever random bytes do, the decoder must not panic; and the
        // encoding is canonical, so anything that does decode must
        // re-encode to the identical wire image.
        if let Ok((seq, frame)) = decode_frame(&bytes) {
            prop_assert_eq!(encode_frame(seq, &frame), bytes);
        }
    }
}
